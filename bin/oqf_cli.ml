(* oqf — optimizing queries on files.

   A command-line front end to the library: generate synthetic corpora,
   build (and persist) indices, run and explain queries, and ask the
   advisor which indices a workload needs. *)

open Cmdliner

let view_of_schema = Oqf_catalog.Schemas.find_result

let schema_arg =
  let doc = "Structuring schema: bibtex, log, sgml or mbox." in
  Arg.(required & opt (some string) None & info [ "s"; "schema" ] ~doc)

let file_arg =
  let doc = "The data file to operate on." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let index_names_arg =
  let doc =
    "Comma-separated region names to index (default: every non-terminal)."
  in
  Arg.(value & opt (some string) None & info [ "index" ] ~doc)

let split_names = function
  | None -> None
  | Some s ->
      Some
        (List.filter
           (fun x -> x <> "")
           (String.split_on_char ',' s))

let or_die = function
  | Ok x -> x
  | Error e ->
      prerr_endline ("oqf: " ^ e);
      exit 1

let resolve_index view names =
  match names with
  | Some names -> names
  | None -> Fschema.Grammar.indexable view.Fschema.View.grammar

(* --- parallelism --------------------------------------------------- *)

let jobs_arg =
  let doc =
    "Worker domains for parallel execution (default: the $(b,OQF_JOBS) \
     environment variable, else 1)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs = function
  | None -> Exec.Driver.default_jobs ()
  | Some n ->
      if n < 1 then
        or_die (Error (Printf.sprintf "jobs must be at least 1 (got %d)" n))
      else n

(* --- robustness plumbing ------------------------------------------- *)

let fail_policy_arg =
  let doc =
    "What a failing file does to the run: $(b,fail-fast) (any failure \
     fails the query, the default), $(b,partial) (failed files are \
     excluded and reported on stderr) or $(b,degrade) (retry, then \
     fall back to a naive scan of the raw file, excluding only files \
     with no remaining path to their data)."
  in
  Arg.(
    value & opt string "fail-fast" & info [ "fail-policy" ] ~docv:"POLICY" ~doc)

let resolve_fail_policy s = or_die (Exec.Driver.fail_policy_of_string s)

let faults_arg =
  let doc =
    "Arm deterministic fault injection (a testing aid), e.g. \
     $(b,transient:0.1,seed:7,burst:2) or $(b,crash:catalog.write\\@1); \
     same syntax as the $(b,OQF_FAULTS) environment variable."
  in
  Arg.(value & opt (some string) None & info [ "inject-faults" ] ~docv:"SPEC" ~doc)

let install_faults = function
  | None -> ()
  | Some spec -> Stdx.Fault.set (Some (or_die (Stdx.Fault.parse spec)))

(* Degradation reports go to stderr: stdout stays byte-identical to a
   fault-free run whenever every file kept a path to its data. *)
let report_degraded notes =
  if notes <> [] then Format.eprintf "%a%!" Oqf.Degrade.pp_report notes

(* --- static analysis plumbing -------------------------------------- *)

let force_arg =
  let doc =
    "Execute even when static analysis reports error-severity \
     diagnostics (e.g. a query that is provably empty on every \
     conforming file)."
  in
  Arg.(value & flag & info [ "force" ] ~doc)

(* [--format]/[--cost-threshold] are validated by hand so a bad value
   exits 1 with a message on stderr, like every other oqf error path
   (Cmdliner's own conv errors exit 124). *)
let format_arg =
  let doc = "Diagnostics format: $(b,text) or $(b,json)." in
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT" ~doc)

let resolve_format = function
  | "text" -> `Text
  | "json" -> `Json
  | f ->
      or_die
        (Error (Printf.sprintf "unknown format %s (expected text or json)" f))

let plan_arg =
  let doc =
    "Planner: $(b,cost) enumerates rewrite-equivalent plans and picks the \
     cheapest under the catalog statistics' cardinality estimates \
     (default); $(b,rules) applies only the paper's Prop 3.5 rewrites."
  in
  Arg.(value & opt string "cost" & info [ "plan" ] ~docv:"MODE" ~doc)

let resolve_plan_mode s = or_die (Oqf_cost.Planner.mode_of_string s)

let minimize_arg =
  let on =
    Arg.info [ "minimize" ]
      ~doc:
        "Containment-based query minimization: drop provably-redundant \
         conjuncts and subsumed union arms before planning.  On by default \
         under $(b,--plan cost)."
  in
  let off =
    Arg.info [ "no-minimize" ]
      ~doc:"Disable containment-based query minimization."
  in
  Arg.(value & vflag None [ (Some true, on); (Some false, off) ])

let resolve_cost_threshold = function
  | None -> None
  | Some s -> begin
      match float_of_string_opt s with
      | Some f when f > 0. -> Some f
      | _ ->
          or_die
            (Error
               (Printf.sprintf "cost threshold must be a positive number (got %s)"
                  s))
    end

(* --- observability plumbing ---------------------------------------- *)

let trace_arg =
  let doc =
    "Write an execution trace to $(docv): Chrome trace_event JSON when the \
     name ends in .json (load it in chrome://tracing or Perfetto), \
     JSON-lines otherwise."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Dump the metrics registry (counters and histograms) at exit." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* The sink is torn down via [at_exit] so the trace file is complete
   even when a later error path calls [exit 1]. *)
let install_trace = function
  | None -> ()
  | Some path ->
      let oc = open_out path in
      let sink =
        if Filename.check_suffix path ".json" then Obs.Sink.chrome oc
        else Obs.Sink.jsonl oc
      in
      Obs.Trace.set_sink (Some sink);
      at_exit (fun () ->
          Obs.Trace.set_sink None;
          close_out oc)

let dump_metrics_if requested =
  if requested then Format.printf "%a" Obs.Metrics.dump ()

(* --- query-log plumbing -------------------------------------------- *)

let qlog_arg =
  let doc =
    "Append one ndjson record per executed query (normalized query, \
     workload, trace id, latency, rows, cache hit, shard count, \
     degradation events) to $(docv) — the durable query log, rotated by \
     size.  $(b,oqf stats) aggregates it."
  in
  let env = Cmd.Env.info "OQF_QLOG" ~doc:"Default for $(b,--qlog)." in
  Arg.(value & opt (some string) None & info [ "qlog" ] ~docv:"FILE" ~doc ~env)

let workload_arg =
  let doc =
    "Workload label stamped on qlog records and per-workload metrics \
     (defaults to the schema name)."
  in
  Arg.(value & opt string "" & info [ "workload" ] ~docv:"LABEL" ~doc)

let slow_query_arg =
  let doc =
    "Queries at or above $(docv) milliseconds are additionally appended \
     to the slow-query log ($(b,QLOG.slow)) and counted in \
     $(b,qlog.slow)."
  in
  Arg.(
    value & opt (some float) None & info [ "slow-query-ms" ] ~docv:"MS" ~doc)

(* Torn down via [at_exit], like the trace sink: the tail record is
   flushed and fsynced even when a later error path exits 1. *)
let install_qlog ?slow_ms path =
  match path with
  | None -> ()
  | Some path -> (
      match Obs.Qlog.open_log ?slow_ms ~io_hook:Stdx.Fault.hit path with
      | Error e ->
          or_die (Error (Printf.sprintf "cannot open qlog %s: %s" path e))
      | Ok log ->
          Obs.Qlog.install (Some log);
          at_exit (fun () ->
              Obs.Qlog.install None;
              Obs.Qlog.close log))

(* A fresh per-invocation correlation context, minted only when a qlog
   is installed so the no-telemetry path stays allocation-free. *)
let fresh_qctx ~workload () =
  match Obs.Qlog.installed () with
  | None -> None
  | Some _ -> Some { Obs.Qlog.trace_id = Obs.Qlog.gen_trace_id (); workload }

(* --- generate ------------------------------------------------------ *)

let generate_cmd =
  let kind =
    let doc = "Corpus kind: bibtex, log, sgml or mbox." in
    Arg.(required & opt (some string) None & info [ "k"; "kind" ] ~doc)
  in
  let size =
    let doc = "Corpus size (references / entries / nesting depth)." in
    Arg.(value & opt int 100 & info [ "n"; "size" ] ~doc)
  in
  let seed =
    let doc = "PRNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~doc)
  in
  let out =
    let doc = "Output path (default: stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let run kind size seed out =
    let contents =
      match kind with
      | "bibtex" ->
          Workload.Bibtex_gen.generate
            { (Workload.Bibtex_gen.with_size size) with seed }
      | "log" ->
          Workload.Log_gen.generate
            { (Workload.Log_gen.with_size size) with seed }
      | "sgml" ->
          Workload.Sgml_gen.generate
            { (Workload.Sgml_gen.with_depth size) with seed }
      | "mbox" ->
          Workload.Mbox_gen.generate
            { (Workload.Mbox_gen.with_size size) with seed }
      | k -> or_die (Error ("unknown corpus kind " ^ k))
    in
    match out with
    | None -> print_string contents
    | Some path ->
        let oc = open_out path in
        output_string oc contents;
        close_out oc;
        Printf.printf "wrote %d bytes to %s\n" (String.length contents) path
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic corpus.")
    Term.(const run $ kind $ size $ seed $ out)

(* --- index --------------------------------------------------------- *)

let index_cmd =
  let out =
    let doc = "Where to write the index." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  let run schema file names out =
    let view = or_die (view_of_schema schema) in
    let text = Pat.Text.of_file file in
    let keep = resolve_index view (split_names names) in
    let instance = or_die (Fschema.View.index_file view text ~keep) in
    Pat.Index_store.save ~path:out instance;
    Printf.printf "indexed %s: %d region names, %d regions, saved to %s\n"
      file
      (List.length (Pat.Instance.names instance))
      (Pat.Instance.total_regions instance)
      out
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:"Parse a file once and persist its word and region indices.")
    Term.(const run $ schema_arg $ file_arg $ index_names_arg $ out)

(* --- query --------------------------------------------------------- *)

let query_arg =
  let doc = "The query, e.g. 'SELECT r FROM References r WHERE …'." in
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc)

let query_cmd =
  let no_optimize =
    let doc = "Evaluate the naive translation without optimization." in
    Arg.(value & flag & info [ "no-optimize" ] ~doc)
  in
  let load =
    let doc =
      "Load a persisted index (built with the index subcommand) instead of \
       re-indexing the file; FILE is then ignored."
    in
    Arg.(value & opt (some file) None & info [ "load" ] ~doc)
  in
  let baseline =
    let doc =
      "Ignore indices: parse the whole file and evaluate in the database \
       (the standard implementation)."
    in
    Arg.(value & flag & info [ "baseline" ] ~doc)
  in
  let analyze =
    let doc =
      "EXPLAIN ANALYZE: print the plan, the optimizer rewrites and the \
       per-node actual costs (next to the static cost estimates) of the \
       expressions evaluated on the index."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run schema file names q_text no_optimize minimize load baseline explain
      force jobs fail_policy plan faults trace metrics qlog workload slow_ms =
    install_trace trace;
    install_faults faults;
    install_qlog ?slow_ms qlog;
    let qctx = fresh_qctx ~workload () in
    let fail_policy = resolve_fail_policy fail_policy in
    let plan_mode = resolve_plan_mode plan in
    let jobs = resolve_jobs jobs in
    let view = or_die (view_of_schema schema) in
    let loaded_instance =
      match load with
      | None -> None
      | Some path ->
          Some
            (or_die
               (Result.map_error Pat.Index_store.error_message
                  (Pat.Index_store.load_result ~path)))
    in
    let text =
      match loaded_instance with
      | Some instance -> Pat.Instance.text instance
      | None -> Pat.Text.of_file file
    in
    let q =
      match Odb.Query_parser.parse q_text with
      | Ok q -> q
      | Error e ->
          or_die (Error (Format.asprintf "%a" Odb.Query_parser.pp_error e))
    in
    if baseline then begin
      let rows, stats = or_die (Oqf.Execute.run_baseline view text q) in
      List.iter
        (fun row ->
          print_endline
            (String.concat " | " (List.map Odb.Value.to_display_string row)))
        rows;
      Format.printf "-- %d rows; %a@." (List.length rows) Stdx.Stats.pp stats
    end
    else begin
      let src =
        match loaded_instance with
        | Some instance -> Oqf.Execute.source_of_instance view instance
        | None ->
            let index = resolve_index view (split_names names) in
            or_die (Oqf.Execute.make_source view text ~index)
      in
      let print_row row =
        print_endline
          (String.concat " | " (List.map Odb.Value.to_display_string row))
      in
      let print_outcome (r : Oqf.Execute.outcome) =
        if explain then
          Format.printf "%a" (Oqf.Explain.pp ~show_times:false ~source:src) r;
        List.iter print_row r.Oqf.Execute.rows;
        Format.printf "-- %d rows (%d candidates%s); %a@."
          r.Oqf.Execute.answers_count r.Oqf.Execute.candidates_count
          (if r.Oqf.Execute.plan.Oqf.Plan.exact then ", exact plan" else "")
          Stdx.Stats.pp r.Oqf.Execute.stats
      in
      (* --explain stays on the direct path (the plan printer wants
         the instrumented run); otherwise jobs > 1 or a recovery
         policy routes the single file through the parallel driver,
         whose merged output is identical to the sequential run's *)
      if (jobs > 1 || fail_policy <> Exec.Driver.Fail_fast) && not explain
      then begin
        let corpus = Oqf.Corpus.of_sources [ (file, src) ] in
        let out =
          or_die
            (Exec.Driver.run_parallel ~optimize:(not no_optimize) ?minimize
               ~force ~jobs ~fail_policy ~plan_mode ?qctx corpus q)
        in
        report_degraded out.Exec.Driver.degraded;
        match out.Exec.Driver.per_file with
        | [ (_, r) ] -> print_outcome r
        | _ ->
            (* the file did not answer from its index: a naive
               fallback's rows are in [out.rows], an exclusion leaves
               them empty *)
            List.iter (fun (_, row) -> print_row row) out.Exec.Driver.rows;
            Format.printf "-- %d rows (degraded); %a@."
              (List.length out.Exec.Driver.rows)
              Stdx.Stats.pp out.Exec.Driver.stats
      end
      else begin
        match
          Oqf.Execute.run ~optimize:(not no_optimize) ?minimize ~explain
            ~force ~plan_mode ?qctx src q
        with
        | Ok r -> print_outcome r
        | Error e -> begin
            (* the per-file recovery ladder, minus the shard rung; a
               query-level defect fails under every policy — it would
               fail identically on every file *)
            if Oqf.Execute.semantic_error src.Oqf.Execute.view q <> None then
              or_die (Error e);
            match fail_policy with
            | Exec.Driver.Fail_fast -> or_die (Error e)
            | Exec.Driver.Partial ->
                report_degraded [ Oqf.Degrade.make ~file Oqf.Degrade.Excluded e ];
                Format.printf "-- 0 rows (file excluded)@."
            | Exec.Driver.Degrade -> begin
                match Oqf.Execute.run_naive ~file src q with
                | Ok rows ->
                    report_degraded
                      [ Oqf.Degrade.make ~file Oqf.Degrade.Naive_fallback e ];
                    List.iter print_row rows;
                    Format.printf "-- %d rows (degraded); naive fallback@."
                      (List.length rows)
                | Error ne ->
                    report_degraded
                      [
                        Oqf.Degrade.make ~file Oqf.Degrade.Excluded
                          (e ^ "; " ^ ne);
                      ];
                    Format.printf "-- 0 rows (file excluded)@."
              end
          end
      end
    end;
    dump_metrics_if metrics
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a query against a file.")
    Term.(
      const run $ schema_arg $ file_arg $ index_names_arg $ query_arg
      $ no_optimize $ minimize_arg $ load $ baseline $ analyze $ force_arg
      $ jobs_arg
      $ fail_policy_arg $ plan_arg $ faults_arg $ trace_arg $ metrics_arg
      $ qlog_arg $ workload_arg $ slow_query_arg)

(* --- explain ------------------------------------------------------- *)

let explain_cmd =
  (* explain is static analysis: the file argument is accepted for a
     uniform command shape but its contents are not read *)
  let run schema _file names q_text =
    let view = or_die (view_of_schema schema) in
    let q =
      match Odb.Query_parser.parse q_text with
      | Ok q -> q
      | Error e ->
          or_die (Error (Format.asprintf "%a" Odb.Query_parser.pp_error e))
    in
    let index = resolve_index view (split_names names) in
    print_string (or_die (Oqf.Advisor.explain view ~index q))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the plan, the optimized region expressions and costs.")
    Term.(const run $ schema_arg $ file_arg $ index_names_arg $ query_arg)

(* --- tree ---------------------------------------------------------- *)

let tree_cmd =
  let run schema file names =
    let view = or_die (view_of_schema schema) in
    let text = Pat.Text.of_file file in
    match Fschema.Parser_engine.parse view.Fschema.View.grammar text with
    | Error e ->
        or_die (Error (Format.asprintf "%a" Fschema.Parser_engine.pp_error e))
    | Ok tree ->
        let keep = split_names names in
        Format.printf "%a" (Fschema.Parse_tree.pp ?keep) tree
  in
  Cmd.v
    (Cmd.info "tree"
       ~doc:
         "Print a file's parse tree; with --index, only the indexed names \
          (the view of the paper's Figures 2 and 3).")
    Term.(const run $ schema_arg $ file_arg $ index_names_arg)

(* --- schema -------------------------------------------------------- *)

let schema_cmd =
  let dot =
    let doc = "Emit the region inclusion graph in GraphViz DOT format." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let run schema dot =
    let view = or_die (view_of_schema schema) in
    let rig = Fschema.Rig_of_grammar.full view.Fschema.View.grammar in
    if dot then print_string (Ralg.Rig.to_dot rig)
    else begin
      Format.printf "%a@." Fschema.Grammar.pp view.Fschema.View.grammar;
      Format.printf "@.derived database types (§4.1):@.";
      print_string (Fschema.Schema_types.to_string view);
      Format.printf "@.region inclusion graph:@.%a@." Ralg.Rig.pp rig
    end
  in
  Cmd.v
    (Cmd.info "schema"
       ~doc:
         "Print a structuring schema: grammar, derived database types and \
          the region inclusion graph (optionally as GraphViz DOT).")
    Term.(const run $ schema_arg $ dot)

(* --- rexpr --------------------------------------------------------- *)

let rexpr_cmd =
  let expr_arg =
    let doc = "A region expression, e.g. 'Reference > sigma[\"Chang\"](Last_Name)'." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"EXPR" ~doc)
  in
  let show_text =
    let doc = "Print the text of each resulting region." in
    Arg.(value & flag & info [ "text" ] ~doc)
  in
  let run schema file names expr_text show_text trace metrics =
    install_trace trace;
    let view = or_die (view_of_schema schema) in
    let text = Pat.Text.of_file file in
    let expr =
      match Ralg.Expr_parser.parse expr_text with
      | Ok e -> e
      | Error e ->
          or_die (Error (Format.asprintf "%a" Ralg.Expr_parser.pp_error e))
    in
    let keep = resolve_index view (split_names names) in
    let instance = or_die (Fschema.View.index_file view text ~keep) in
    let rig = Fschema.Rig_of_grammar.for_index view.Fschema.View.grammar ~keep in
    if Ralg.Trivial.check rig expr then
      print_endline "(trivially empty under the schema's RIG)"
    else begin
      let optimized = Ralg.Optimizer.optimize rig expr in
      if not (Ralg.Expr.equal optimized expr) then
        Format.printf "optimized: %a@." Ralg.Expr.pp optimized;
      let result = Ralg.Eval.eval instance optimized in
      Pat.Region_set.iter
        (fun r ->
          if show_text then
            Format.printf "%a %S@." Pat.Region.pp r (Pat.Region.text text r)
          else Format.printf "%a@." Pat.Region.pp r)
        result;
      Format.printf "-- %d regions@." (Pat.Region_set.cardinal result)
    end;
    dump_metrics_if metrics
  in
  Cmd.v
    (Cmd.info "rexpr"
       ~doc:"Evaluate a raw region-algebra expression against a file.")
    Term.(
      const run $ schema_arg $ file_arg $ index_names_arg $ expr_arg
      $ show_text $ trace_arg $ metrics_arg)

(* --- catalog ------------------------------------------------------- *)

let catalog_dir_arg =
  let doc = "The catalog directory." in
  Arg.(required & opt (some string) None & info [ "c"; "catalog" ] ~doc)

let open_catalog dir =
  let cat = or_die (Oqf_catalog.Catalog.open_dir dir) in
  List.iter
    (fun w -> Format.eprintf "oqf: warning: %s@." w)
    (Oqf_catalog.Catalog.recovery_warnings cat);
  cat

(* Refresh every entry; [refresh_all] keeps going past failures, so
   the healthy entries are up to date either way.  Under fail-fast the
   collected failures then fail the command; under the recovery
   policies they become warnings — load-time self-healing and the
   driver's recovery ladder still get their chance per file. *)
let refresh_catalog cat ~fail_policy =
  let failures =
    List.filter_map
      (fun (_, r) -> match r with Ok _ -> None | Error msg -> Some msg)
      (Oqf_catalog.Catalog.refresh_all cat)
  in
  match (fail_policy, failures) with
  | _, [] -> ()
  | Exec.Driver.Fail_fast, msgs ->
      List.iter (fun msg -> Format.eprintf "oqf: %s@." msg) msgs;
      exit 1
  | (Exec.Driver.Partial | Exec.Driver.Degrade), msgs ->
      List.iter (fun msg -> Format.eprintf "oqf: warning: %s@." msg) msgs

(* The corpus plus the files already lost before execution started
   (index dead and unhealable): failure under fail-fast, Excluded
   notes otherwise. *)
let corpus_of_catalog cat ~schema ~fail_policy =
  match fail_policy with
  | Exec.Driver.Fail_fast ->
      (or_die (Oqf.Corpus.of_catalog cat ~schema), [])
  | Exec.Driver.Partial | Exec.Driver.Degrade ->
      or_die (Oqf.Corpus.of_catalog_robust cat ~schema)

let catalog_init_cmd =
  let dir =
    let doc = "Directory to hold the catalog (created if missing)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let run dir =
    let (_ : Oqf_catalog.Catalog.t) = or_die (Oqf_catalog.Catalog.init dir) in
    Printf.printf "initialized empty catalog in %s\n" dir
  in
  Cmd.v
    (Cmd.info "init" ~doc:"Create an empty index catalog in a directory.")
    Term.(const run $ dir)

let catalog_add_cmd =
  let run dir schema names file faults =
    install_faults faults;
    let cat = open_catalog dir in
    let index = split_names names in
    let entry = or_die (Oqf_catalog.Catalog.add cat ~schema ?index file) in
    Printf.printf "added %s (schema %s): %d region names indexed\n"
      entry.Oqf_catalog.Catalog.source entry.Oqf_catalog.Catalog.schema
      (List.length entry.Oqf_catalog.Catalog.index_names)
  in
  Cmd.v
    (Cmd.info "add"
       ~doc:"Index a source file and record it in the catalog.")
    Term.(
      const run $ catalog_dir_arg $ schema_arg $ index_names_arg $ file_arg
      $ faults_arg)

let catalog_refresh_cmd =
  let file =
    let doc = "Refresh only this source (default: every entry)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run dir file =
    let cat = open_catalog dir in
    let report (source, outcome) =
      Format.printf "%s: %a@." source Oqf_catalog.Catalog.pp_refresh outcome
    in
    match file with
    | Some source ->
        report (source, or_die (Oqf_catalog.Catalog.refresh cat source))
    | None ->
        (* refresh_all keeps going past a failing entry; the others
           still refresh, and every failure is reported *)
        let failed =
          List.fold_left
            (fun failed (source, outcome) ->
              match outcome with
              | Ok outcome ->
                  report (source, outcome);
                  failed
              | Error msg ->
                  Format.eprintf "%s@." msg;
                  true)
            false
            (Oqf_catalog.Catalog.refresh_all cat)
        in
        if failed then exit 1
  in
  Cmd.v
    (Cmd.info "refresh"
       ~doc:
         "Bring stale entries up to date: incremental extension for \
          append-only growth, full rebuild otherwise.")
    Term.(const run $ catalog_dir_arg $ file)

let catalog_status_cmd =
  let run dir =
    let cat = open_catalog dir in
    match Oqf_catalog.Catalog.status cat with
    | [] -> print_endline "catalog is empty"
    | rows ->
        List.iter
          (fun ((e : Oqf_catalog.Catalog.entry), st) ->
            Format.printf "%-9s %-7s %8dB  %a@." e.schema
              (Printf.sprintf "%d names" (List.length e.index_names))
              e.length Oqf_catalog.Catalog.pp_staleness st;
            Format.printf "  %s -> %s@." e.source e.index_file)
          rows
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Fingerprint every source and report freshness per entry.")
    Term.(const run $ catalog_dir_arg)

let catalog_stats_cmd =
  (* both renderings sort per-name stats by region name, so the output
     is deterministic whatever order the manifest happens to hold *)
  let sorted_stats (e : Oqf_catalog.Catalog.entry) =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) e.stats
  in
  let run dir fmt =
    let fmt = resolve_format fmt in
    let cat = open_catalog dir in
    let entries = Oqf_catalog.Catalog.entries cat in
    match fmt with
    | `Json ->
        let entry_json (e : Oqf_catalog.Catalog.entry) =
          Obs.Jsonx.Obj
            [
              ("source", Obs.Jsonx.Str e.source);
              ("schema", Obs.Jsonx.Str e.schema);
              ("length", Obs.Jsonx.Num (float_of_int e.length));
              ( "names",
                Obs.Jsonx.Arr
                  (List.map
                     (fun (name, regions, mps) ->
                       let base =
                         [
                           ("name", Obs.Jsonx.Str name);
                           ("regions", Obs.Jsonx.Num (float_of_int regions));
                           ( "match_points",
                             Obs.Jsonx.Num (float_of_int mps) );
                         ]
                       in
                       let depths =
                         match List.assoc_opt name e.depths with
                         | None | Some [||] -> []
                         | Some hist ->
                             [
                               ( "depths",
                                 Obs.Jsonx.Arr
                                   (Array.to_list hist
                                   |> List.map (fun c ->
                                          Obs.Jsonx.Num (float_of_int c))) );
                             ]
                       in
                       Obs.Jsonx.Obj (base @ depths))
                     (sorted_stats e)) );
            ]
        in
        print_endline
          (Obs.Jsonx.to_string
             (Obs.Jsonx.Obj
                [ ("entries", Obs.Jsonx.Arr (List.map entry_json entries)) ]))
    | `Text -> begin
        match entries with
        | [] -> print_endline "catalog is empty"
        | entries ->
            let t_regions = ref 0 and t_mps = ref 0 in
            List.iter
              (fun (e : Oqf_catalog.Catalog.entry) ->
                Printf.printf "%s (schema %s, %dB)\n" e.source e.schema
                  e.length;
                (match sorted_stats e with
                | [] ->
                    print_endline
                      "  (no stats recorded; re-run catalog refresh to \
                       collect them)"
                | stats ->
                    List.iter
                      (fun (name, regions, mps) ->
                        t_regions := !t_regions + regions;
                        t_mps := !t_mps + mps;
                        Printf.printf "  %-16s %8d regions %10d match points\n"
                          name regions mps)
                      stats))
              entries;
            Printf.printf "-- %d entries: regions=%d match-points=%d\n"
              (List.length entries) !t_regions !t_mps
      end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Report per-name region and match-point counts recorded in the \
          manifest at build time.  Entries indexed before the counts \
          existed show none until their next refresh or rebuild.")
    Term.(const run $ catalog_dir_arg $ format_arg)

let catalog_query_cmd =
  let query =
    let doc = "The query, run against every catalogued file of the schema." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let no_refresh =
    let doc = "Query the persisted indices as they are, without a staleness check." in
    Arg.(value & flag & info [ "no-refresh" ] ~doc)
  in
  let shards =
    let doc =
      "Report each shard's file count, weight and elapsed time on stderr \
       (timings vary run to run, so this never touches stdout)."
    in
    Arg.(value & flag & info [ "shards" ] ~doc)
  in
  let run dir schema q_text no_refresh jobs shards fail_policy plan faults
      metrics =
    install_faults faults;
    let fail_policy = resolve_fail_policy fail_policy in
    let plan_mode = resolve_plan_mode plan in
    let jobs = resolve_jobs jobs in
    let cat = open_catalog dir in
    if not no_refresh then refresh_catalog cat ~fail_policy;
    let q =
      match Odb.Query_parser.parse q_text with
      | Ok q -> q
      | Error e ->
          or_die (Error (Format.asprintf "%a" Odb.Query_parser.pp_error e))
    in
    let corpus, lost = corpus_of_catalog cat ~schema ~fail_policy in
    (* the parallel driver merges in corpus order, so the output is
       byte-identical whatever the jobs count — CI runs this at
       OQF_JOBS=4 against the same expectations *)
    let r =
      or_die (Exec.Driver.run_parallel ~jobs ~fail_policy ~plan_mode corpus q)
    in
    report_degraded (lost @ r.Exec.Driver.degraded);
    if shards then
      List.iter
        (fun s -> Format.eprintf "%a@." Exec.Driver.pp_shard_report s)
        r.Exec.Driver.per_shard;
    List.iter
      (fun (file, row) ->
        Printf.printf "%s: %s\n" file
          (String.concat " | " (List.map Odb.Value.to_display_string row)))
      r.Exec.Driver.rows;
    Format.printf "-- %d rows from %d files; %a@."
      (List.length r.Exec.Driver.rows)
      (List.length (Oqf.Corpus.files corpus))
      Stdx.Stats.pp r.Exec.Driver.stats;
    Format.printf "-- instance cache: %a@." Oqf_catalog.Instance_cache.pp_stats
      (Oqf_catalog.Instance_cache.stats (Oqf_catalog.Catalog.cache cat));
    dump_metrics_if metrics
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Run a query against every catalogued file of a schema, straight \
          off the persisted indices (refreshing stale ones first).")
    Term.(
      const run $ catalog_dir_arg $ schema_arg $ query $ no_refresh $ jobs_arg
      $ shards $ fail_policy_arg $ plan_arg $ faults_arg $ metrics_arg)

let catalog_repair_cmd =
  let run dir fmt =
    let fmt = resolve_format fmt in
    let cat = open_catalog dir in
    let actions = Oqf_catalog.Catalog.repair cat in
    match fmt with
    | `Json ->
        let item (file, a) =
          let action, detail =
            match a with
            | Oqf_catalog.Catalog.Healed reason -> ("healed", reason)
            | Oqf_catalog.Catalog.Quarantined reason -> ("quarantined", reason)
            | Oqf_catalog.Catalog.Removed_orphan ->
                ("removed-orphan", "unreferenced index file")
            | Oqf_catalog.Catalog.Collapsed_generation g ->
                ( "collapsed-generation",
                  Printf.sprintf "stray generation %d" g )
          in
          Printf.sprintf {|{"file":"%s","action":"%s","detail":"%s"}|}
            (Oqf.Degrade.json_escape file)
            (Oqf.Degrade.json_escape action)
            (Oqf.Degrade.json_escape detail)
        in
        print_endline ("[" ^ String.concat "," (List.map item actions) ^ "]")
    | `Text -> begin
        match actions with
        | [] -> print_endline "catalog is healthy; nothing to repair"
        | actions ->
            List.iter
              (fun (file, a) ->
                Format.printf "%s: %a@." file
                  Oqf_catalog.Catalog.pp_repair_action a)
              actions;
            let count p = List.length (List.filter (fun (_, a) -> p a) actions) in
            Printf.printf
              "-- healed=%d quarantined=%d orphans-removed=%d \
               generations-collapsed=%d\n"
              (count (function Oqf_catalog.Catalog.Healed _ -> true | _ -> false))
              (count (function
                | Oqf_catalog.Catalog.Quarantined _ -> true
                | _ -> false))
              (count (function
                | Oqf_catalog.Catalog.Removed_orphan -> true
                | _ -> false))
              (count (function
                | Oqf_catalog.Catalog.Collapsed_generation _ -> true
                | _ -> false))
      end
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Apply the self-healing logic offline: rebuild missing or corrupt \
          indices from their sources, drop entries whose source file is \
          gone, and sweep orphan index files.  Entries that are merely \
          stale are left for refresh.")
    Term.(const run $ catalog_dir_arg $ format_arg)

let catalog_audit_cmd =
  let run dir fmt =
    let fmt = resolve_format fmt in
    let cat = open_catalog dir in
    let ds = Analysis.Catalog_audit.audit cat in
    (match fmt with
    | `Json -> print_endline (Analysis.Diagnostic.list_to_json ds)
    | `Text ->
        List.iter
          (fun d -> print_endline (Analysis.Diagnostic.to_string d))
          ds;
        let e, w, h = Analysis.Diagnostic.count ds in
        Printf.printf "-- audited %d entries: errors=%d warnings=%d hints=%d\n"
          (List.length (Oqf_catalog.Catalog.entries cat))
          e w h);
    if Analysis.Diagnostic.has_errors ds then exit 1
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Audit the catalog for stale fingerprints (OQF201), orphan index \
          files nothing references (OQF202) and manifest entries whose \
          source or index is missing (OQF203).  Exits 1 when any \
          error-severity diagnostic is found.")
    Term.(const run $ catalog_dir_arg $ format_arg)

let catalog_cmd =
  Cmd.group
    (Cmd.info "catalog"
       ~doc:
         "Manage a persistent catalog of indexed files: init, add, refresh \
          (incremental for append-only sources), status, audit, repair and \
          multi-file query.")
    [
      catalog_init_cmd; catalog_add_cmd; catalog_refresh_cmd;
      catalog_status_cmd; catalog_stats_cmd; catalog_query_cmd;
      catalog_audit_cmd; catalog_repair_cmd;
    ]

(* --- batch --------------------------------------------------------- *)

let batch_cmd =
  let queries_file =
    let doc =
      "File with one query per line; blank lines and lines starting with \
       $(b,#) are skipped."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERIES" ~doc)
  in
  let data =
    let doc =
      "A data file to query (repeatable); the alternative to --catalog."
    in
    Arg.(value & opt_all file [] & info [ "f"; "data" ] ~docv:"FILE" ~doc)
  in
  let catalog_dir =
    let doc = "Query every catalogued file of the schema in this catalog." in
    Arg.(value & opt (some string) None & info [ "c"; "catalog" ] ~docv:"DIR" ~doc)
  in
  let read_queries path =
    let ic = open_in path in
    let rec go n acc =
      match input_line ic with
      | exception End_of_file ->
          close_in ic;
          List.rev acc
      | line ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then go (n + 1) acc
          else begin
            match Odb.Query_parser.parse line with
            | Ok q -> go (n + 1) ((line, q) :: acc)
            | Error e ->
                close_in ic;
                or_die
                  (Error
                     (Format.asprintf "%s:%d: %a" path n Odb.Query_parser.pp_error
                        e))
          end
    in
    go 1 []
  in
  let run schema queries_file data catalog_dir force minimize jobs
      fail_policy plan faults trace metrics qlog workload slow_ms =
    install_trace trace;
    install_faults faults;
    install_qlog ?slow_ms qlog;
    let fail_policy = resolve_fail_policy fail_policy in
    let plan_mode = resolve_plan_mode plan in
    let jobs = resolve_jobs jobs in
    let queries = read_queries queries_file in
    if queries = [] then or_die (Error (queries_file ^ ": no queries"));
    let corpus =
      match (catalog_dir, data) with
      | Some _, _ :: _ -> or_die (Error "--catalog and --data are exclusive")
      | Some dir, [] ->
          let cat = open_catalog dir in
          refresh_catalog cat ~fail_policy;
          let corpus, lost = corpus_of_catalog cat ~schema ~fail_policy in
          report_degraded lost;
          corpus
      | None, [] -> or_die (Error "need --catalog DIR or --data FILE")
      | None, files ->
          let view = or_die (view_of_schema schema) in
          or_die
            (Oqf.Corpus.make_full view
               (List.map (fun f -> (f, Pat.Text.of_file f)) files))
    in
    let cache = Exec.Rcache.create () in
    let results =
      Exec.Driver.run_batch ~force ?minimize ~jobs ~cache ~fail_policy
        ~plan_mode ~workload corpus (List.map snd queries)
    in
    let failed =
      List.fold_left2
        (fun failed (line, _) (_, result) ->
          Printf.printf "== %s\n" line;
          match result with
          | Error e ->
              Printf.printf "-- error: %s\n" e;
              true
          | Ok (out : Exec.Driver.outcome) ->
              List.iter
                (fun (file, row) ->
                  Printf.printf "%s: %s\n" file
                    (String.concat " | "
                       (List.map Odb.Value.to_display_string row)))
                out.Exec.Driver.rows;
              Printf.printf "-- %d rows%s\n"
                (List.length out.Exec.Driver.rows)
                (if out.Exec.Driver.from_cache then " (cached)" else "");
              report_degraded out.Exec.Driver.degraded;
              failed)
        false queries results
    in
    Format.printf "-- result cache: %a@." Exec.Rcache.pp_stats
      (Exec.Rcache.stats cache);
    dump_metrics_if metrics;
    if failed then exit 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a file of queries through the domain worker pool against a \
          corpus (from a catalog or from data files), sharing one \
          fingerprint-keyed result cache.")
    Term.(
      const run $ schema_arg $ queries_file $ data $ catalog_dir $ force_arg
      $ minimize_arg $ jobs_arg $ fail_policy_arg $ plan_arg $ faults_arg
      $ trace_arg $ metrics_arg $ qlog_arg $ workload_arg $ slow_query_arg)

(* --- check --------------------------------------------------------- *)

(* Non-comment lines of a query/expression file, with line numbers. *)
let read_check_lines path =
  let ic = open_in path in
  let rec go n acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (n + 1) acc
        else go (n + 1) ((n, line) :: acc)
  in
  go 1 []

(* A declared RIG file: one [A -> B] line per edge, a bare name per
   isolated node, [#] comments. *)
let parse_rig_file path =
  let split_arrow line =
    let n = String.length line in
    let rec find i =
      if i + 2 > n then None
      else if String.sub line i 2 = "->" then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> `Node (String.trim line)
    | Some i ->
        `Edge
          ( String.trim (String.sub line 0 i),
            String.trim (String.sub line (i + 2) (n - i - 2)) )
  in
  let nodes, edges =
    List.fold_left
      (fun (nodes, edges) (lineno, line) ->
        match split_arrow line with
        | `Node n when n <> "" -> (n :: nodes, edges)
        | `Edge (a, b) when a <> "" && b <> "" ->
            (a :: b :: nodes, (a, b) :: edges)
        | _ ->
            or_die
              (Error (Printf.sprintf "%s:%d: bad RIG line %S" path lineno line)))
      ([], []) (read_check_lines path)
  in
  Ralg.Rig.create
    ~names:(List.sort_uniq String.compare nodes)
    ~edges:(List.rev edges)

let check_cmd =
  let queries_files =
    let doc =
      "Check every query in $(docv), one per line (blank lines and lines \
       starting with $(b,#) are skipped).  Repeatable."
    in
    Arg.(value & opt_all file [] & info [ "queries" ] ~docv:"FILE" ~doc)
  in
  let exprs =
    let doc = "Check a raw region-algebra expression.  Repeatable." in
    Arg.(value & opt_all string [] & info [ "expr" ] ~docv:"EXPR" ~doc)
  in
  let pos_queries =
    let doc = "Queries to check." in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  let cost_threshold =
    let doc =
      "OQF006 threshold: warn when a direct-inclusion expression's weighted \
       cost estimate exceeds $(docv) (default 50000)."
    in
    Arg.(value & opt (some string) None & info [ "cost-threshold" ] ~docv:"N" ~doc)
  in
  let declared_rig =
    let doc =
      "Check the schema-derived RIG against the one declared in $(docv) \
       (one $(b,A -> B) line per edge, bare names for isolated nodes)."
    in
    Arg.(value & opt (some file) None & info [ "declared-rig" ] ~docv:"FILE" ~doc)
  in
  let list_codes =
    let doc =
      "Print the full diagnostic code table (code, severity, one-line \
       meaning) in the selected $(b,--format) and exit."
    in
    Arg.(value & flag & info [ "list-codes" ] ~doc)
  in
  let schema_opt =
    let doc = "Structuring schema: bibtex, log, sgml or mbox." in
    Arg.(value & opt (some string) None & info [ "s"; "schema" ] ~doc)
  in
  let run schema names queries_files exprs fmt threshold plan declared_rig
      list_codes pos_queries =
    let fmt = resolve_format fmt in
    if list_codes then begin
      (* one rendering path with the checkers: each row is a Diagnostic,
         so the JSON shape matches what --format json emits for real
         findings *)
      let rows =
        List.map
          (fun (code, severity, descr) ->
            Analysis.Diagnostic.make ~code ~severity descr)
          Analysis.Diagnostic.registry
      in
      (match fmt with
      | `Json -> print_endline (Analysis.Diagnostic.list_to_json rows)
      | `Text ->
          List.iter
            (fun (code, severity, descr) ->
              Printf.printf "%s  %-7s  %s\n" code
                (Analysis.Diagnostic.severity_to_string severity)
                descr)
            Analysis.Diagnostic.registry);
      exit 0
    end;
    let schema =
      match schema with
      | Some s -> s
      | None -> or_die (Error "a schema is required: pass -s bibtex|log|sgml|mbox")
    in
    let threshold = resolve_cost_threshold threshold in
    let plan_mode = resolve_plan_mode plan in
    let view = or_die (view_of_schema schema) in
    let index = resolve_index view (split_names names) in
    let env = Oqf.Compile.env view ~index in
    let query_rig =
      Ralg.Rig.partial env.Oqf.Compile.full_rig ~keep:index
    in
    (* OQF006 prices expressions with the same model the chosen planner
       uses, so check and execution never disagree about what is
       expensive.  Static analysis has no file at hand, so cost mode
       prices against uniform assumed statistics. *)
    let cost =
      match plan_mode with
      | Oqf_cost.Planner.Rules -> None
      | Oqf_cost.Planner.Cost_based ->
          Some (Oqf_cost.Model.legacy (Oqf_cost.Stats.uniform ()))
    in
    let parse_failure pp e =
      [
        Analysis.Diagnostic.make ~code:"OQF000"
          ~severity:Analysis.Diagnostic.Error (Format.asprintf "%a" pp e);
      ]
    in
    let check_query text =
      match Odb.Query_parser.parse text with
      | Error e -> parse_failure Odb.Query_parser.pp_error e
      | Ok q ->
          (Oqf.Check.query ~text ?cost ?cost_threshold:threshold env
             ~query_rig q)
            .Oqf.Check.diagnostics
    in
    let check_expr text =
      match Ralg.Expr_parser.parse text with
      | Error e -> parse_failure Ralg.Expr_parser.pp_error e
      | Ok e ->
          Analysis.Expr_check.check ~text ?cost ?cost_threshold:threshold
            query_rig e
    in
    let file_entries =
      List.concat_map
        (fun path ->
          List.map
            (fun (n, line) -> (Printf.sprintf "%s:%d: %s" path n line, line))
            (read_check_lines path))
        queries_files
    in
    let query_entries = List.map (fun q -> (q, q)) pos_queries in
    let file_items =
      List.map (fun (label, line) -> (label, check_query line)) file_entries
    in
    let query_items =
      List.map (fun (label, q) -> (label, check_query q)) query_entries
    in
    let expr_items = List.map (fun e -> (e, check_expr e)) exprs in
    (* cross-query pass: two or more parseable queries in one
       invocation are analyzed as a batch for OQF304 subsumption *)
    let cross_items =
      let parsed =
        List.filter_map
          (fun (label, text) ->
            match Odb.Query_parser.parse text with
            | Ok q -> Some (label, q)
            | Error _ -> None)
          (file_entries @ query_entries)
      in
      if List.length parsed < 2 then []
      else begin
        match Oqf.Check.cross_query parsed with
        | [] -> []
        | ds -> [ ("cross-query analysis", ds) ]
      end
    in
    (* schema-level checks run when no query/expression inputs are
       given, and whenever a declared RIG asks for the comparison *)
    let schema_items =
      if
        (file_items = [] && query_items = [] && expr_items = [])
        || declared_rig <> None
      then begin
        let declared = Option.map parse_rig_file declared_rig in
        [
          ( "schema " ^ schema,
            Analysis.Schema_check.check ?declared_rig:declared view );
        ]
      end
      else []
    in
    let items =
      file_items @ query_items @ expr_items @ cross_items @ schema_items
    in
    let all = List.concat_map snd items in
    (match fmt with
    | `Json -> print_endline (Analysis.Diagnostic.list_to_json all)
    | `Text ->
        List.iter
          (fun (label, ds) ->
            Printf.printf "== %s\n" label;
            match ds with
            | [] -> print_endline "  ok"
            | ds ->
                List.iter
                  (fun d ->
                    Printf.printf "  %s\n" (Analysis.Diagnostic.to_string d))
                  ds)
          items;
        let e, w, h = Analysis.Diagnostic.count all in
        Printf.printf "-- errors=%d warnings=%d hints=%d\n" e w h);
    if Analysis.Diagnostic.has_errors all then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze queries, region expressions and structuring \
          schemas against the RIG: trivial emptiness (OQF001), unknown \
          names (OQF002), optimizer rewrites (OQF003/4), unreachable pairs \
          (OQF005), cost (OQF006), containment findings (OQF301-305, with \
          a cross-query subsumption pass over batches) and schema checks \
          (OQF101-103).  $(b,--list-codes) prints the full code table.  \
          Exits 1 when any error-severity diagnostic is found.")
    Term.(
      const run $ schema_opt $ index_names_arg $ queries_files $ exprs
      $ format_arg $ cost_threshold $ plan_arg $ declared_rig $ list_codes
      $ pos_queries)

(* --- advise -------------------------------------------------------- *)

let advise_cmd =
  let schema =
    let doc =
      "Structuring schema: bibtex, log, sgml or mbox.  Required with \
       positional queries; with $(b,--qlog) it restricts the replay to \
       that schema's queries (each record carries its own schema)."
    in
    Arg.(value & opt (some string) None & info [ "s"; "schema" ] ~doc)
  in
  let queries =
    let doc = "Queries of the workload (compute a sufficient index set)." in
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY" ~doc)
  in
  let qlogs =
    let doc =
      "Replay the query log in $(docv) against the cost model and \
       recommend index changes with predicted latency savings.  \
       Repeatable (pass rotated segments in order)."
    in
    Arg.(value & opt_all file [] & info [ "qlog" ] ~docv:"FILE" ~doc)
  in
  let catalog_dir =
    let doc =
      "Price the replay with this catalog's recorded statistics \
       (cardinalities, match-point densities, depth histograms); without \
       it, uniform statistics are assumed."
    in
    Arg.(
      value & opt (some string) None & info [ "c"; "catalog" ] ~docv:"DIR" ~doc)
  in
  let top =
    let doc = "Show at most $(docv) recommendations." in
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc)
  in
  (* compile-for-replay: how would each variable of [q_text] be
     answered under [index]?  Injected into the advisor so lib/cost
     needs no dependency on the query compiler. *)
  let replay_compile ~index ~schema q_text =
    match view_of_schema schema with
    | Error e -> Error e
    | Ok view -> (
        match Odb.Query_parser.parse q_text with
        | Error e -> Error (Format.asprintf "%a" Odb.Query_parser.pp_error e)
        | Ok q -> (
            match Oqf.Compile.compile (Oqf.Compile.env view ~index) q with
            | Error e -> Error e
            | Ok plan ->
                Ok
                  (List.map
                     (fun (vp : Oqf.Plan.var_plan) ->
                       match vp.Oqf.Plan.candidates with
                       | Oqf.Plan.All -> `Scan
                       | Oqf.Plan.Empty -> `Empty
                       | Oqf.Plan.Expr e -> `Index (e, vp.Oqf.Plan.covered))
                     plan.Oqf.Plan.var_plans)))
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  let run schema names queries qlogs catalog_dir top fmt =
    let fmt = resolve_format fmt in
    match (queries, qlogs) with
    | [], [] -> or_die (Error "need QUERY arguments or --qlog FILE")
    | _ :: _, _ :: _ ->
        or_die (Error "positional queries and --qlog are exclusive")
    | (_ :: _ as queries), [] ->
        (* sufficient-index mode (§7): which names make every query of
           the workload exactly answerable from the index *)
        let schema =
          match schema with
          | Some s -> s
          | None -> or_die (Error "positional queries require --schema")
        in
        let view = or_die (view_of_schema schema) in
        let module Sset = Set.Make (String) in
        let names =
          List.fold_left
            (fun acc q_text ->
              let q =
                match Odb.Query_parser.parse q_text with
                | Ok q -> q
                | Error e ->
                    or_die
                      (Error (Format.asprintf "%a" Odb.Query_parser.pp_error e))
              in
              let names = or_die (Oqf.Advisor.required_indices view q) in
              Sset.union acc (Sset.of_list names))
            Sset.empty queries
        in
        Printf.printf "index these region names for exact evaluation:\n  %s\n"
          (String.concat ", " (Sset.elements names))
    | [], qlogs ->
        (* workload-replay mode: cost-model what the log actually ran *)
        let stats =
          match catalog_dir with
          | None -> Oqf_cost.Stats.uniform ()
          | Some dir ->
              let cat = open_catalog dir in
              Oqf_cost.Stats.of_entries (Oqf_catalog.Catalog.entries cat)
        in
        let agg = or_die (Obs.Qstats.of_files ~top:1000 qlogs) in
        let items =
          let module SM = Map.Make (String) in
          let add m (q : Obs.Qstats.query) =
            if SM.mem q.Obs.Qstats.text m then m
            else
              SM.add q.Obs.Qstats.text
                {
                  Oqf_cost.Advise.query = q.Obs.Qstats.text;
                  schema = q.Obs.Qstats.schema;
                  workload = q.Obs.Qstats.workload;
                  count = q.Obs.Qstats.count;
                  total_ms = q.Obs.Qstats.total_ms;
                }
                m
          in
          let m =
            List.fold_left add (SM.empty : Oqf_cost.Advise.item SM.t)
              (agg.Obs.Qstats.by_count @ agg.Obs.Qstats.by_total_ms)
          in
          let all = List.map snd (SM.bindings m) in
          match schema with
          | None -> all
          | Some s ->
              List.filter (fun (i : Oqf_cost.Advise.item) -> i.schema = s) all
        in
        let schemas =
          List.filter_map
            (fun (i : Oqf_cost.Advise.item) ->
              if i.schema = "" then None else Some i.schema)
            items
          |> List.sort_uniq compare
        in
        let indexable =
          List.concat_map
            (fun s ->
              match view_of_schema s with
              | Ok view -> Fschema.Grammar.indexable view.Fschema.View.grammar
              | Error _ -> [])
            schemas
          |> List.sort_uniq compare
        in
        let index =
          match split_names names with Some ns -> ns | None -> indexable
        in
        let recs =
          take top
            (Oqf_cost.Advise.advise ~stats ~compile:replay_compile ~index
               ~indexable items)
        in
        let action_str = function `Add -> "add" | `Drop -> "drop" in
        (match fmt with
        | `Json ->
            let rec_json (r : Oqf_cost.Advise.recommendation) =
              Obs.Jsonx.Obj
                [
                  ("action", Obs.Jsonx.Str (action_str r.action));
                  ("name", Obs.Jsonx.Str r.name);
                  ("predicted_ms", Obs.Jsonx.Num r.predicted_ms);
                  ("queries", Obs.Jsonx.Num (float_of_int r.queries));
                  ("detail", Obs.Jsonx.Str r.detail);
                ]
            in
            print_endline
              (Obs.Jsonx.to_string
                 (Obs.Jsonx.Obj
                    [
                      ("replayed", Obs.Jsonx.Num (float_of_int (List.length items)));
                      ("records", Obs.Jsonx.Num (float_of_int agg.Obs.Qstats.records));
                      ( "recommendations",
                        Obs.Jsonx.Arr (List.map rec_json recs) );
                    ]))
        | `Text ->
            Printf.printf "replayed %d distinct queries from %d qlog records\n"
              (List.length items) agg.Obs.Qstats.records;
            if recs = [] then
              print_endline
                "no index changes recommended: the workload is served as \
                 well as the candidate set allows"
            else
              List.iter
                (fun (r : Oqf_cost.Advise.recommendation) ->
                  Printf.printf "%s %s: %s\n" (action_str r.action) r.name
                    r.detail)
                recs)
  in
  Cmd.v
    (Cmd.info "advise"
       ~doc:
         "Compute a sufficient index set for a query workload (§7), or \
          replay a query log against the cost model and recommend index \
          changes with predicted savings.")
    Term.(
      const run $ schema $ index_names_arg $ queries $ qlogs $ catalog_dir
      $ top $ format_arg)

(* --- serve / client ------------------------------------------------ *)

let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let http_port =
    let doc = "Also serve the protocol over HTTP on 127.0.0.1:$(docv)." in
    Arg.(value & opt (some int) None & info [ "http" ] ~docv:"PORT" ~doc)
  in
  let max_active =
    let doc = "Concurrently executing requests (admission slots)." in
    Arg.(value & opt int 8 & info [ "max-active" ] ~docv:"N" ~doc)
  in
  let max_queue =
    let doc =
      "Admission queue bound; a request arriving with the queue full is \
       answered with a typed $(b,overloaded) event instead of waiting."
    in
    Arg.(value & opt int 16 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let timeout =
    let doc =
      "Default per-file deadline in milliseconds for requests that carry \
       none."
    in
    Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let drain =
    let doc = "Shutdown grace for in-flight requests (milliseconds)." in
    Arg.(value & opt float 2000. & info [ "drain-ms" ] ~docv:"MS" ~doc)
  in
  let watch =
    let doc =
      "Ingest source changes continuously: a background watcher polls \
       every catalogued source and commits refreshed generations while \
       requests keep streaming from their pinned snapshots."
    in
    Arg.(value & flag & info [ "watch" ] ~doc)
  in
  let watch_interval =
    let doc = "Watcher poll interval in milliseconds (with $(b,--watch))." in
    Arg.(
      value
      & opt float 500.
      & info [ "watch-interval-ms" ] ~docv:"MS" ~doc)
  in
  let run catalog_dir socket http_port jobs max_active max_queue timeout
      fail_policy drain watch watch_interval faults metrics qlog slow_ms =
    install_faults faults;
    install_qlog ?slow_ms qlog;
    let jobs = resolve_jobs jobs in
    let fail_policy = resolve_fail_policy fail_policy in
    let config =
      {
        Serve.Server.socket_path = socket;
        http_port;
        catalog_dir;
        jobs;
        max_active;
        max_queue;
        default_timeout_ms = timeout;
        default_fail_policy = fail_policy;
        drain_ms = drain;
        watch;
        watch_interval_ms = watch_interval;
      }
    in
    or_die (Serve.Server.run config);
    dump_metrics_if metrics
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived query daemon: load the catalog once, keep its \
          caches warm, admit concurrent clients onto a shared worker pool \
          and stream each file's answer rows while later files are still \
          scanning.  Speaks newline-delimited JSON over a Unix-domain \
          socket (and optionally HTTP).  With $(b,--watch) a background \
          watcher ingests source changes continuously; queries always \
          read a pinned catalog generation.  SIGINT/SIGTERM drain \
          in-flight requests before exiting.")
    Term.(
      const run $ catalog_dir_arg $ socket_arg $ http_port $ jobs_arg
      $ max_active $ max_queue $ timeout $ fail_policy_arg $ drain $ watch
      $ watch_interval $ faults_arg $ metrics_arg $ qlog_arg
      $ slow_query_arg)

let watch_cmd =
  let interval =
    let doc = "Poll interval in milliseconds." in
    Arg.(value & opt float 500. & info [ "interval-ms" ] ~docv:"MS" ~doc)
  in
  let scans =
    let doc =
      "Run $(docv) synchronous scan passes and exit instead of watching \
       until interrupted (deterministic; for scripting and tests)."
    in
    Arg.(value & opt (some int) None & info [ "scans" ] ~docv:"N" ~doc)
  in
  let run dir interval scans faults metrics qlog slow_ms =
    install_faults faults;
    install_qlog ?slow_ms qlog;
    let cat = open_catalog dir in
    let print_event = function
      | Oqf_catalog.Watch.Refreshed (src, outcome) ->
          Format.printf "%s: %a@." src Oqf_catalog.Catalog.pp_refresh outcome
      | Oqf_catalog.Watch.Failed (src, msg) ->
          Format.printf "%s: failed: %s@." src msg
      | Oqf_catalog.Watch.Skipped src ->
          Format.printf "%s: skipped (breaker open)@." src
    in
    (match scans with
    | Some n ->
        for i = 1 to n do
          let r = Oqf_catalog.Watch.scan ~on_event:print_event cat in
          Format.printf
            "-- scan %d: scanned=%d refreshed=%d failed=%d skipped=%d \
             retired=%d generation=%d@."
            i r.Oqf_catalog.Watch.scanned r.refreshed r.failed r.skipped
            (List.length r.retired) r.generation
        done
    | None ->
        let w =
          Oqf_catalog.Watch.start ~interval_ms:interval ~on_event:print_event
            cat
        in
        Printf.printf "oqf watch: polling %s every %gms (Ctrl-C to stop)\n%!"
          dir interval;
        let stop = Atomic.make false in
        let on_signal _ = Atomic.set stop true in
        (try
           Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
           Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
         with Invalid_argument _ -> ());
        while not (Atomic.get stop) do
          Unix.sleepf 0.1
        done;
        Oqf_catalog.Watch.stop w;
        Printf.printf "oqf watch: stopped at generation %d\n%!"
          (Oqf_catalog.Catalog.generation cat));
    dump_metrics_if metrics
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Watch every catalogued source for changes and ingest them \
          continuously: each poll refreshes the entries whose files \
          changed (committing a new catalog generation) and retires \
          generations no query pins any more.  $(b,--scans) runs a fixed \
          number of synchronous passes instead of polling forever.")
    Term.(
      const run $ catalog_dir_arg $ interval $ scans $ faults_arg
      $ metrics_arg $ qlog_arg $ slow_query_arg)

let client_cmd =
  let op_arg =
    let doc =
      "Operation: $(b,ping), $(b,query), $(b,rexpr), $(b,stats) or \
       $(b,shutdown)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP" ~doc)
  in
  let text_arg =
    let doc = "The query (for $(b,query)) or region expression (for \
               $(b,rexpr))." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"TEXT" ~doc)
  in
  let schema_opt =
    let doc = "Structuring schema of the corpus to query." in
    Arg.(value & opt (some string) None & info [ "s"; "schema" ] ~doc)
  in
  let timeout =
    let doc = "Per-file deadline in milliseconds." in
    Arg.(value & opt (some float) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let connect_wait =
    let doc =
      "Keep retrying the connection for $(docv) ms before failing — covers \
       racing a daemon that is still starting."
    in
    Arg.(value & opt float 2000. & info [ "connect-wait-ms" ] ~docv:"MS" ~doc)
  in
  let fail_policy_opt =
    let doc = "Per-request failure policy (defaults to the server's)." in
    Arg.(
      value
      & opt (some string) None
      & info [ "fail-policy" ] ~docv:"POLICY" ~doc)
  in
  let run socket op text schema timeout fail_policy force connect_wait
      workload =
    let conn = or_die (Serve.Client.connect ~wait_ms:connect_wait socket) in
    let query_req () =
      let schema =
        match schema with
        | Some s -> s
        | None -> or_die (Error "missing --schema")
      in
      let text =
        match text with
        | Some t -> t
        | None -> or_die (Error ("missing " ^ op ^ " text argument"))
      in
      {
        Serve.Protocol.schema;
        text;
        timeout_ms = timeout;
        fail_policy =
          Option.map
            (fun p -> or_die (Exec.Driver.fail_policy_of_string p))
            fail_policy;
        force;
        workload;
      }
    in
    let req =
      match op with
      | "ping" -> Serve.Protocol.Ping
      | "stats" -> Serve.Protocol.Stats
      | "shutdown" -> Serve.Protocol.Shutdown
      | "query" -> Serve.Protocol.Query (query_req ())
      | "rexpr" -> Serve.Protocol.Rexpr (query_req ())
      | op -> or_die (Error (Printf.sprintf "unknown operation %S" op))
    in
    let rows = ref 0 in
    let failed = ref false in
    let on_event (ev : Serve.Protocol.response) =
      match ev with
      | Serve.Protocol.Row { file; values; _ } ->
          incr rows;
          Printf.printf "%s: %s\n" file (String.concat " | " values)
      | Serve.Protocol.Region { file; start; stop; _ } ->
          incr rows;
          Printf.printf "%s: [%d,%d]\n" file start stop
      | Serve.Protocol.Done { rows; cached; degraded; _ } ->
          List.iter
            (fun (file, action, detail) ->
              Printf.eprintf "oqf: degraded %s: %s: %s\n" file action detail)
            degraded;
          Printf.printf "-- %d %s%s\n" rows
            (if op = "rexpr" then "regions" else "rows")
            (if cached then " (cached)" else "")
      | Serve.Protocol.Diagnostics { diagnostics; _ } ->
          List.iter
            (fun d -> print_endline (Obs.Jsonx.to_string d))
            diagnostics;
          failed := true
      | Serve.Protocol.Overloaded { active; queued; _ } ->
          Printf.eprintf "oqf: overloaded (active=%d queued=%d)\n" active
            queued;
          failed := true
      | Serve.Protocol.Failed { message; _ } ->
          Printf.eprintf "oqf: %s\n" message;
          failed := true
      | Serve.Protocol.Pong _ -> print_endline "pong"
      | Serve.Protocol.Stats_reply { payload; _ } ->
          print_endline (Obs.Jsonx.to_string payload)
      | Serve.Protocol.Bye _ -> print_endline "bye"
    in
    (match Serve.Client.stream conn req ~on_event with
    | Ok _ -> ()
    | Error e ->
        Serve.Client.close conn;
        or_die (Error e));
    Serve.Client.close conn;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running $(b,oqf serve) daemon: ping it, stream a query \
          or region expression, read its metrics, or ask it to shut down.")
    Term.(
      const run $ socket_arg $ op_arg $ text_arg $ schema_opt $ timeout
      $ fail_policy_opt $ force_arg $ connect_wait $ workload_arg)

(* --- stats: aggregate a query log ---------------------------------- *)

let stats_cmd =
  let files_arg =
    let doc =
      "Query log file(s) to aggregate — pass the current segment and any \
       rotated $(b,.1)/$(b,.2)… siblings together for full history."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"QLOG" ~doc)
  in
  let top_arg =
    let doc = "How many queries in each top-N list." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let run files top format slow_ms =
    let format = resolve_format format in
    let stats = or_die (Obs.Qstats.of_files ~top ?slow_ms files) in
    match format with
    | `Text -> Format.printf "%a" Obs.Qstats.pp stats
    | `Json -> print_endline (Obs.Jsonx.to_string (Obs.Qstats.to_json stats))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Aggregate a query log ($(b,--qlog)) into per-workload \
          p50/p95/p99 latency, cache-hit and degradation trends, and the \
          top-N queries by frequency and total latency — the replay \
          input for index advice.")
    Term.(const run $ files_arg $ top_arg $ format_arg $ slow_query_arg)

(* --- metrics: exposition from a process or a live daemon ----------- *)

let metrics_cmd =
  let dump =
    let run () = print_string (Obs.Expo.render ()) in
    Cmd.v
      (Cmd.info "dump"
         ~doc:
           "Print this process's metrics registry in Prometheus text \
            exposition format (the same rendering the serve daemon's \
            $(b,/metrics) endpoint returns).")
      Term.(const run $ const ())
  in
  let scrape =
    let port_arg =
      let doc = "HTTP port of the daemon ($(b,oqf serve --http) PORT)." in
      Arg.(required & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
    in
    let validate_arg =
      let doc =
        "Validate the exposition syntax instead of printing it; exits 1 \
         on the first malformed line."
      in
      Arg.(value & flag & info [ "validate" ] ~doc)
    in
    let run port validate =
      match or_die (Serve.Client.http_get ~port "/metrics") with
      | 200, body ->
          if validate then begin
            or_die (Obs.Expo.validate body);
            Printf.printf "metrics: %d lines, exposition syntax ok\n"
              (List.length
                 (List.filter
                    (fun l -> String.trim l <> "")
                    (String.split_on_char '\n' body)))
          end
          else print_string body
      | code, body ->
          or_die
            (Error (Printf.sprintf "GET /metrics: HTTP %d: %s" code body))
    in
    Cmd.v
      (Cmd.info "scrape"
         ~doc:
           "Fetch $(b,/metrics) from a live $(b,oqf serve --http) daemon \
            and print it, or $(b,--validate) its exposition syntax (the \
            CI serve-suite gate).")
      Term.(const run $ port_arg $ validate_arg)
  in
  Cmd.group
    (Cmd.info "metrics"
       ~doc:"Prometheus-format metrics: dump this process's registry or \
             scrape a live daemon.")
    [ dump; scrape ]

let () =
  let info =
    Cmd.info "oqf" ~version:"1.0.0"
      ~doc:"Optimizing queries on files: database queries over indexed text."
  in
  let group =
    Cmd.group info
      [
        generate_cmd; index_cmd; query_cmd; explain_cmd; check_cmd;
        advise_cmd; schema_cmd; rexpr_cmd; tree_cmd; catalog_cmd; batch_cmd;
        serve_cmd; watch_cmd; client_cmd; stats_cmd; metrics_cmd;
      ]
  in
  (* [~catch:false] so engine exceptions become one-line errors with
     exit 1, not a backtrace with Cmdliner's exit 125 *)
  exit
    (match Cmd.eval ~catch:false group with
    | code -> code
    | exception Ralg.Eval.Unknown_region n ->
        prerr_endline ("oqf: unknown region name: " ^ n);
        1
    | exception Sys_error msg ->
        prerr_endline ("oqf: " ^ msg);
        1
    | exception (Stdx.Fault.Injected _ as e) ->
        prerr_endline ("oqf: " ^ Printexc.to_string e);
        1)
