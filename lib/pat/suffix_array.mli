(** The PAT array: a suffix array over word-start positions.

    Gonnet's PAT structure is a lexicographically sorted array of the
    sistrings (suffixes) beginning at each word start.  Any string that
    occurs in the text starting at a word boundary can be located with
    two binary searches, independent of file size. *)

type t

val build : Text.t -> t
(** Sort all word-start suffixes of the text by their first 1024 bytes.
    O(w log w) comparisons for w word starts, each bounded by the cap,
    so construction stays near-linear even on pathological repetitive
    texts.  Searches remain exact for patterns of any length (longer
    patterns filter within the capped-prefix range). *)

val size : t -> int
(** Number of indexed sistrings (= number of word starts). *)

val extend : t -> Text.t -> old_len:int -> t
(** [extend t new_text ~old_len] upgrades an array built over the first
    [old_len] bytes (the old text, which must be a prefix of
    [new_text]) to one over the whole of [new_text], tokenizing only
    the appended tail.  Entries whose capped comparison window lies in
    the unchanged prefix keep their order; only tail word starts and
    the few old entries whose window crosses the append point are
    re-sorted, then merged.  Raises [Invalid_argument] when [old_len]
    is not the length of the indexed text. *)

val find : t -> string -> int array
(** [find t pattern] returns every position [p] (sorted increasing) such
    that [pattern] occurs in the text at [p] and [p] is a word start.
    The empty pattern matches every word start.  Records one word lookup
    in {!Stdx.Stats.global}. *)

val find_word : t -> string -> int array
(** Like {!find} but additionally requires the match to end at a token
    boundary, so that searching for ["Chang"] does not return positions
    of ["Changed"].  Multi-token patterns (["G. F. Corliss"]) are
    supported: only the final token's boundary is checked. *)

val count : t -> string -> int
(** Number of occurrences of the pattern at word starts, without
    materialising positions. *)
