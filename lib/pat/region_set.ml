type t = Region.t array
(* Invariant: strictly increasing under Region.compare (start ascending,
   stop descending), hence duplicate-free. *)

let tick_op () = Stdx.Stats.(incr index_ops)
let tick_cmp n = Stdx.Stats.(add_to region_comparisons n)

let produced (r : t) =
  Stdx.Stats.(add_to regions_produced (Array.length r));
  r

let empty = [||]
let is_empty t = Array.length t = 0
let cardinal = Array.length
let of_list rs = Stdx.Sorted_array.of_list ~cmp:Region.compare rs

let of_pairs ps =
  of_list (List.map (fun (start, stop) -> Region.make ~start ~stop) ps)

let to_list = Array.to_list
let to_array t = t
let mem t r = Stdx.Sorted_array.mem ~cmp:Region.compare t r
let equal a b = Stdx.Sorted_array.equal ~cmp:Region.compare a b
let subset a b = Stdx.Sorted_array.subset ~cmp:Region.compare a b
let iter = Array.iter
let fold f init t = Array.fold_left f init t
let filter p t = Stdx.Sorted_array.filter p t
let choose t = if Array.length t = 0 then None else Some t.(0)

let union a b =
  tick_op ();
  tick_cmp (Array.length a + Array.length b);
  produced (Stdx.Sorted_array.union ~cmp:Region.compare a b)

let inter a b =
  tick_op ();
  tick_cmp (Array.length a + Array.length b);
  produced (Stdx.Sorted_array.inter ~cmp:Region.compare a b)

let diff a b =
  tick_op ();
  tick_cmp (Array.length a + Array.length b);
  produced (Stdx.Sorted_array.diff ~cmp:Region.compare a b)

(* Binary searches on the [start] component only.  Regions sharing a
   start are contiguous, so these delimit start windows. *)
let first_start_geq (t : t) x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      tick_cmp 1;
      if t.(mid).Region.start < x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t)

let last_start_leq (t : t) x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      tick_cmp 1;
      if t.(mid).Region.start <= x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t) - 1

let stops (t : t) = Array.map (fun r -> r.Region.stop) t

let min_stop_table t = Stdx.Range_minmax.of_array ~kind:`Min (stops t)
let max_stop_table t = Stdx.Range_minmax.of_array ~kind:`Max (stops t)

(* Building a range-min table over [s] costs O(|s| log |s|); for a
   handful of probes a direct window scan is cheaper. *)
let small_threshold = 16

let including r s =
  tick_op ();
  if is_empty r || is_empty s then empty
  else if Array.length r <= small_threshold then begin
    let keep (reg : Region.t) =
      let lo = first_start_geq s reg.start in
      let n = Array.length s in
      let rec scan i =
        if i >= n then false
        else begin
          let cand = s.(i) in
          tick_cmp 1;
          if cand.Region.start > reg.stop then false
          else cand.Region.stop <= reg.stop || scan (i + 1)
        end
      in
      scan lo
    in
    produced (filter keep r)
  end
  else begin
    let table = min_stop_table s in
    let keep (reg : Region.t) =
      let lo = first_start_geq s reg.start in
      let hi = last_start_leq s reg.stop in
      match Stdx.Range_minmax.query table ~lo ~hi with
      | Some m -> m <= reg.stop
      | None -> false
    in
    produced (filter keep r)
  end

let included r s =
  tick_op ();
  if is_empty r || is_empty s then empty
  else if Array.length r <= small_threshold then begin
    let keep (reg : Region.t) =
      let hi = last_start_leq s reg.start in
      let rec scan i =
        if i < 0 then false
        else begin
          tick_cmp 1;
          s.(i).Region.stop >= reg.stop || scan (i - 1)
        end
      in
      scan hi
    in
    produced (filter keep r)
  end
  else begin
    let table = max_stop_table s in
    let keep (reg : Region.t) =
      let hi = last_start_leq s reg.start in
      match Stdx.Range_minmax.query table ~lo:0 ~hi with
      | Some m -> m >= reg.stop
      | None -> false
    in
    produced (filter keep r)
  end

(* Is there a context region strictly between [outer] and [inner]?  The
   candidate window is the context regions whose start lies in
   [outer.start, inner.start]; each is tested for membership in the stop
   band.  Extents equal to either operand do not count as "between". *)
let blocked ~(context : t) (outer : Region.t) (inner : Region.t) =
  let lo = first_start_geq context outer.start in
  let hi = last_start_leq context inner.start in
  let rec go i =
    if i > hi then false
    else begin
      let u = context.(i) in
      tick_cmp 1;
      if
        u.Region.stop >= inner.Region.stop
        && u.Region.stop <= outer.Region.stop
        && (not (Region.equal u outer))
        && not (Region.equal u inner)
      then true
      else go (i + 1)
    end
  in
  go lo

let count_strictly_between ~(context : t) ~(outer : Region.t)
    ~(inner : Region.t) =
  let lo = first_start_geq context outer.start in
  let hi = last_start_leq context inner.start in
  let count = ref 0 in
  for i = lo to hi do
    let u = context.(i) in
    tick_cmp 1;
    if
      u.Region.stop >= inner.Region.stop
      && u.Region.stop <= outer.Region.stop
      && (not (Region.equal u outer))
      && not (Region.equal u inner)
    then incr count
  done;
  !count

(* Enumerate the regions of [s] included in [reg], in order, applying
   [f] until it returns true; returns whether some application did. *)
let exists_included_in (s : t) (reg : Region.t) f =
  let lo = first_start_geq s reg.start in
  let n = Array.length s in
  let rec go i =
    if i >= n then false
    else begin
      let cand = s.(i) in
      tick_cmp 1;
      if cand.Region.start > reg.stop then false
      else if cand.Region.stop <= reg.stop && f cand then true
      else go (i + 1)
    end
  in
  go lo

let directly_including ~context r s =
  tick_op ();
  let keep reg =
    exists_included_in s reg (fun inner ->
        not (blocked ~context reg inner))
  in
  produced (filter keep r)

let directly_including_strict ~context r s =
  tick_op ();
  let keep reg =
    exists_included_in s reg (fun inner ->
        (not (Region.equal reg inner)) && not (blocked ~context reg inner))
  in
  produced (filter keep r)

(* Enumerate regions of [s] that include [reg]: their start is <=
   reg.start and stop >= reg.stop. *)
let exists_including (s : t) (reg : Region.t) f =
  let hi = last_start_leq s reg.start in
  let rec go i =
    if i < 0 then false
    else begin
      let cand = s.(i) in
      tick_cmp 1;
      if cand.Region.stop >= reg.stop && f cand then true else go (i - 1)
    end
  in
  go hi

let directly_included ~context r s =
  tick_op ();
  let keep reg =
    exists_including s reg (fun outer ->
        not (blocked ~context outer reg))
  in
  produced (filter keep r)

let directly_included_strict ~context r s =
  tick_op ();
  let keep reg =
    exists_including s reg (fun outer ->
        (not (Region.equal reg outer)) && not (blocked ~context outer reg))
  in
  produced (filter keep r)

let including_strict r s =
  tick_op ();
  if is_empty r || is_empty s then empty
  else begin
    let keep (reg : Region.t) =
      exists_included_in s reg (fun inner -> not (Region.equal reg inner))
    in
    produced (filter keep r)
  end

let included_strict r s =
  tick_op ();
  if is_empty r || is_empty s then empty
  else begin
    let keep (reg : Region.t) =
      exists_including s reg (fun outer -> not (Region.equal reg outer))
    in
    produced (filter keep r)
  end

let including_at_depth ~context ~depth r s =
  tick_op ();
  let keep reg =
    exists_included_in s reg (fun inner ->
        count_strictly_between ~context ~outer:reg ~inner = depth)
  in
  produced (filter keep r)

let innermost t =
  tick_op ();
  if is_empty t then empty
  else begin
    let table = min_stop_table t in
    let keep i (reg : Region.t) =
      let lo = first_start_geq t reg.start in
      let hi = last_start_leq t reg.stop in
      match Stdx.Range_minmax.query_excluding table ~lo ~hi ~skip:i with
      | Some m -> m > reg.stop
      | None -> true
    in
    let out = ref [] in
    for i = Array.length t - 1 downto 0 do
      if keep i t.(i) then out := t.(i) :: !out
    done;
    produced (Array.of_list !out)
  end

let outermost t =
  tick_op ();
  if is_empty t then empty
  else begin
    let table = max_stop_table t in
    let keep i (reg : Region.t) =
      let hi = last_start_leq t reg.start in
      match Stdx.Range_minmax.query_excluding table ~lo:0 ~hi ~skip:i with
      | Some m -> m < reg.stop
      | None -> true
    in
    let out = ref [] in
    for i = Array.length t - 1 downto 0 do
      if keep i t.(i) then out := t.(i) :: !out
    done;
    produced (Array.of_list !out)
  end

let containing_match t ~positions ~len =
  tick_op ();
  let cmp = Int.compare in
  let keep (reg : Region.t) =
    let i = Stdx.Sorted_array.lower_bound ~cmp positions reg.start in
    tick_cmp 1;
    i < Array.length positions && positions.(i) + len <= reg.stop
  in
  produced (filter keep t)

let matching_prefix t ~positions ~len =
  tick_op ();
  let cmp = Int.compare in
  let keep (reg : Region.t) =
    tick_cmp 1;
    Region.length reg >= len && Stdx.Sorted_array.mem ~cmp positions reg.start
  in
  produced (filter keep t)

let occurrences_within _t ~positions ~len (reg : Region.t) =
  let cmp = Int.compare in
  let lo = Stdx.Sorted_array.lower_bound ~cmp positions reg.start in
  let hi = Stdx.Sorted_array.upper_bound ~cmp positions (reg.stop - len) in
  max 0 (hi - lo)

let containing_at_least t ~positions ~len ~count =
  tick_op ();
  let keep reg =
    tick_cmp 1;
    occurrences_within t ~positions ~len reg >= count
  in
  produced (filter keep t)

let matching_exact t ~positions ~len =
  tick_op ();
  let cmp = Int.compare in
  let keep (reg : Region.t) =
    tick_cmp 1;
    Region.length reg = len && Stdx.Sorted_array.mem ~cmp positions reg.start
  in
  produced (filter keep t)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Region.pp)
    (to_list t)
