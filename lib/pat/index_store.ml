(* On-disk layout (format version 2):

     "OQF-INDEX-" ^ version digits ^ "\n"   header, human-greppable
     16 bytes                               MD5 digest of the payload
     marshalled payload                     contents + region bindings

   Version 1 files (the seed format) had the bare magic "OQF-INDEX-1"
   followed immediately by the marshalled payload, with no terminator,
   no version negotiation and no checksum; they are recognised and
   rejected as [Version_mismatch] so callers (the catalog) can treat
   them as stale and rebuild. *)

let magic_prefix = "OQF-INDEX-"
let format_version = 2

type error =
  | Not_an_index_file of string
  | Version_mismatch of { path : string; found : int; expected : int }
  | Corrupt of { path : string; reason : string }

let error_message = function
  | Not_an_index_file path -> Printf.sprintf "%s is not an oqf index file" path
  | Version_mismatch { path; found; expected } ->
      Printf.sprintf "%s: index format version %d, expected %d (rebuild it)"
        path found expected
  | Corrupt { path; reason } ->
      Printf.sprintf "%s: corrupt index file (%s)" path reason

type payload = { contents : string; bindings : (string * (int * int) list) list }

let save ~path instance =
  let bindings =
    List.map
      (fun name ->
        let set = Instance.find instance name in
        ( name,
          List.map
            (fun (r : Region.t) -> (r.start, r.stop))
            (Region_set.to_list set) ))
      (Instance.names instance)
  in
  let payload =
    { contents = Text.unsafe_contents (Instance.text instance); bindings }
  in
  let body = Marshal.to_string payload [] in
  (* Write-then-rename so a crash mid-write never leaves a torn file
     under the final name: readers see the old image or the new one. *)
  Stdx.Retry.io ~site:"index.write" @@ fun () ->
  Stdx.Fault.hit "index.write";
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (magic_prefix ^ string_of_int format_version ^ "\n");
      Digest.output oc (Digest.string body);
      output_string oc body);
  Sys.rename tmp path

(* The version digits run up to the '\n' terminator.  A version-1 file
   has a '1' followed by raw marshal bytes instead of the terminator;
   reading digits-then-terminator classifies it correctly. *)
let read_header ic path =
  let m =
    try really_input_string ic (String.length magic_prefix)
    with End_of_file -> ""
  in
  if m <> magic_prefix then Error (Not_an_index_file path)
  else begin
    let buf = Buffer.create 4 in
    let rec digits () =
      match input_char ic with
      | '0' .. '9' as c ->
          Buffer.add_char buf c;
          digits ()
      | c -> Some c
      | exception End_of_file -> None
    in
    let terminator = digits () in
    match (int_of_string_opt (Buffer.contents buf), terminator) with
    | None, _ -> Error (Not_an_index_file path)
    | Some v, Some '\n' when v = format_version -> Ok ()
    | Some v, _ ->
        Error (Version_mismatch { path; found = v; expected = format_version })
  end

(* Transient read failures (including injected ones) are retried under
   the [index.load] budget; an exhausted budget degrades to a [Corrupt]
   result so callers fall into the heal path rather than crashing. *)
let load_result ~path =
  if not (Sys.file_exists path) then
    Error (Corrupt { path; reason = path ^ ": No such file or directory" })
  else
    match
      Stdx.Retry.io ~site:"index.load" (fun () ->
          Stdx.Fault.hit "index.load";
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match read_header ic path with
              | Error e -> Error e
              | Ok () -> begin
                  match
                    let stored = Digest.input ic in
                    let body =
                      really_input_string ic
                        (in_channel_length ic - pos_in ic)
                    in
                    (stored, Stdx.Fault.corrupting "index.load" body)
                  with
                  | exception End_of_file ->
                      Error (Corrupt { path; reason = "truncated" })
                  | stored, body ->
                      if not (Digest.equal stored (Digest.string body)) then
                        Error (Corrupt { path; reason = "checksum mismatch" })
                      else begin
                        match (Marshal.from_string body 0 : payload) with
                        | exception _ ->
                            Error
                              (Corrupt { path; reason = "undecodable payload" })
                        | payload ->
                            let text = Text.of_string payload.contents in
                            Ok
                              (Instance.create text
                                 (List.map
                                    (fun (name, pairs) ->
                                      (name, Region_set.of_pairs pairs))
                                    payload.bindings))
                      end
                end))
    with
    | result -> result
    | exception Sys_error e -> Error (Corrupt { path; reason = e })
    | exception Stdx.Fault.Injected _ ->
        Error (Corrupt { path; reason = "i/o fault reading index" })

let verify ~path =
  if not (Sys.file_exists path) then
    Error (Corrupt { path; reason = path ^ ": No such file or directory" })
  else
    match
      Stdx.Retry.io ~site:"index.load" (fun () ->
          Stdx.Fault.hit "index.load";
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match read_header ic path with
              | Error e -> Error e
              | Ok () -> begin
                  match
                    let stored = Digest.input ic in
                    let body =
                      really_input_string ic (in_channel_length ic - pos_in ic)
                    in
                    Digest.equal stored (Digest.string body)
                  with
                  | exception End_of_file ->
                      Error (Corrupt { path; reason = "truncated" })
                  | true -> Ok ()
                  | false -> Error (Corrupt { path; reason = "checksum mismatch" })
                end))
    with
    | result -> result
    | exception Sys_error e -> Error (Corrupt { path; reason = e })
    | exception Stdx.Fault.Injected _ ->
        Error (Corrupt { path; reason = "i/o fault reading index" })

let load ~path =
  match load_result ~path with
  | Ok instance -> instance
  | Error e -> failwith ("Index_store.load: " ^ error_message e)
