(** Region-index instances.

    A {e region index} is a set of region names; an {e instance} maps
    each name to a set of regions in one text (paper, Definition of the
    region algebra, §3.1).  The instance also carries the word index and
    the {e universe} — the union of all indexed regions — which is the
    context against which direct inclusion is decided. *)

type t

val create : Text.t -> (string * Region_set.t) list -> t
(** Build an instance over a text; the word index is built eagerly.
    Raises [Invalid_argument] on duplicate names. *)

val create_with_word_index : Text.t -> Word_index.t -> (string * Region_set.t) list -> t
(** Like {!create} but reusing an already-built word index over the
    {e same} text value (physical equality is required) — the
    incremental-maintenance path, where the word index was extended
    rather than rebuilt.  Raises [Invalid_argument] otherwise. *)

val text : t -> Text.t
val word_index : t -> Word_index.t

val names : t -> string list
(** Indexed region names, sorted. *)

val find : t -> string -> Region_set.t
(** Instance of a region name.  Raises [Not_found] for unknown names. *)

val find_opt : t -> string -> Region_set.t option
val mem : t -> string -> bool

val universe : t -> Region_set.t
(** Union of all indexed region sets (cached). *)

val restrict : t -> string list -> t
(** Keep only the given names (partial indexing); the word index is
    shared.  Unknown names are ignored. *)

val add : t -> string -> Region_set.t -> t
(** Add (or replace) one named region set. *)

val total_regions : t -> int
(** Sum of cardinals over all names — the "amount of indexing". *)

val satisfies_rig :
  t -> edges:(string * string) list -> (string * string) option
(** Check Definition 3.1: for every pair of indexed regions [r ∈ Ri],
    [s ∈ Rj] such that [r] directly includes [s] (w.r.t. the universe),
    the edge [(Ri, Rj)] must be listed.  Returns a violating name pair,
    or [None] when the instance satisfies the graph.  Quadratic; meant
    for tests. *)
