type t = { text : Text.t; sa : Suffix_array.t }

let build text = { text; sa = Suffix_array.build text }

let extend t new_text ~old_len =
  { text = new_text; sa = Suffix_array.extend t.sa new_text ~old_len }

let text t = t.text
let size t = Suffix_array.size t.sa
let match_points t w = Suffix_array.find_word t.sa w
let occurrence_count t w = Suffix_array.count t.sa w

let select_containing t w regions =
  let positions = match_points t w in
  Region_set.containing_match regions ~positions ~len:(String.length w)

let select_exact t w regions =
  let positions = match_points t w in
  Region_set.matching_exact regions ~positions ~len:(String.length w)

let prefix_points t w = Suffix_array.find t.sa w

let select_prefix t w regions =
  let positions = prefix_points t w in
  Region_set.matching_prefix regions ~positions ~len:(String.length w)

let select_min_count t w ~count regions =
  let positions = match_points t w in
  Region_set.containing_at_least regions ~positions ~len:(String.length w)
    ~count

let select_proximity t w1 w2 ~window regions =
  let m1 = match_points t w1 and m2 = match_points t w2 in
  let l1 = String.length w1 and l2 = String.length w2 in
  let cmp = Int.compare in
  let keep (reg : Region.t) =
    (* iterate the w1 occurrences inside the region; for each, check
       for a w2 occurrence inside the region within the window *)
    let lo = Stdx.Sorted_array.lower_bound ~cmp m1 reg.Region.start in
    let rec go i =
      if i >= Array.length m1 then false
      else begin
        let p1 = m1.(i) in
        if p1 + l1 > reg.Region.stop then false
        else begin
          let lo2 = Stdx.Sorted_array.lower_bound ~cmp m2 (p1 - window) in
          let rec probe j =
            j < Array.length m2
            && m2.(j) <= p1 + window
            && ((m2.(j) >= reg.Region.start
                && m2.(j) + l2 <= reg.Region.stop)
               || probe (j + 1))
          in
          probe lo2 || go (i + 1)
        end
      end
    in
    go lo
  in
  Region_set.filter keep regions
