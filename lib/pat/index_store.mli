(** Index persistence.

    Saves a built instance (text, named region sets) to disk and loads
    it back, so the CLI can separate the indexing phase from the query
    phase like the PAT system does.  The word index (suffix array) is
    rebuilt on load — it is cheaper to rebuild than to store and its
    construction is deterministic.

    Files carry a magic header, a format-version field and an MD5
    checksum of the payload, so a corrupt, truncated or outdated index
    file is rejected with a precise error instead of a garbage decode.
    The catalog treats {!Version_mismatch} as "stale, rebuild". *)

val format_version : int
(** The version written by {!save} and required by {!load}. *)

type error =
  | Not_an_index_file of string  (** missing or foreign magic header *)
  | Version_mismatch of { path : string; found : int; expected : int }
  | Corrupt of { path : string; reason : string }
      (** unreadable, truncated, checksum mismatch or undecodable *)

val error_message : error -> string

val save : path:string -> Instance.t -> unit
(** Write the instance to [path].  Overwrites. *)

val load_result : path:string -> (Instance.t, error) result
(** Read an instance back, classifying every failure. *)

val verify : path:string -> (unit, error) result
(** Check header, version and checksum without reconstructing the
    instance — the catalog's cheap staleness probe. *)

val load : path:string -> Instance.t
(** Like {!load_result} but raises [Failure] with the error message. *)
