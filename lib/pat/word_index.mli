(** The word index: match-point lookup over the PAT array.

    Combines the suffix array with the word-selection operators of the
    region algebra, "implemented by combined usage of the word and
    region indices" (paper §3.1). *)

type t

val build : Text.t -> t
(** Index every word start of the text. *)

val extend : t -> Text.t -> old_len:int -> t
(** Incremental maintenance for append-only files: upgrade an index
    over the first [old_len] bytes to one over all of [new_text]
    (whose prefix must equal the old text), tokenizing only the
    appended tail — see {!Suffix_array.extend}. *)

val text : t -> Text.t

val size : t -> int
(** Number of indexed sistrings (= word starts of the text). *)

val match_points : t -> string -> int array
(** Sorted positions where the string occurs starting at a word
    boundary and ending at a token boundary. *)

val occurrence_count : t -> string -> int
(** Number of word-start occurrences of the string (prefix semantics,
    no end-boundary check). *)

val select_containing : t -> string -> Region_set.t -> Region_set.t
(** [σ_w] (containment): the regions containing an occurrence of [w]. *)

val select_exact : t -> string -> Region_set.t -> Region_set.t
(** [σ_w] (exact): the regions whose extent is exactly an occurrence of
    [w] — "a Last_Name region that is the word Chang". *)

val prefix_points : t -> string -> int array
(** Sorted word-start positions where the string occurs as a prefix of
    the following text (no end-boundary check). *)

val select_prefix : t -> string -> Region_set.t -> Region_set.t
(** Prefix search: regions whose extent begins with an occurrence of
    the string ("Key regions starting with Ref00"). *)

val select_min_count : t -> string -> count:int -> Region_set.t -> Region_set.t
(** Frequency search: regions containing at least [count] occurrences
    of the word. *)

val select_proximity :
  t -> string -> string -> window:int -> Region_set.t -> Region_set.t
(** Proximity search: regions containing an occurrence of each word
    whose start positions lie within [window] bytes of each other. *)
