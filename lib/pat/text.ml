type t = { contents : string }

let of_string contents = { contents }

let of_file path =
  Stdx.Retry.io ~site:"source.read" @@ fun () ->
  Stdx.Fault.hit "source.read";
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      { contents = really_input_string ic n })

let length t = String.length t.contents
let get t i = t.contents.[i]
let sub t ~pos ~len = String.sub t.contents pos len

let scan_sub t ~pos ~len =
  Stdx.Stats.(add_to bytes_scanned len);
  String.sub t.contents pos len

let unsafe_contents t = t.contents
