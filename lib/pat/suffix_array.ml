type t = { text : Text.t; order : int array (* word starts in suffix order *) }

(* Sistrings are ordered by their first [prefix_cap] bytes only.  Two
   sistrings agreeing on that long a prefix may appear in either order,
   which is invisible to any pattern search of length <= prefix_cap:
   binary search only ever compares pattern-length prefixes.  The cap
   bounds construction at O(w log w · prefix_cap) even on pathological
   texts (megabytes of repeated characters); longer patterns are
   handled in {!find} by a filtering pass. *)
let prefix_cap = 1024

(* Compare the suffixes beginning at [i] and [j] byte-wise, up to the
   cap. *)
let compare_suffixes s i j =
  if i = j then 0
  else begin
    let n = String.length s in
    let limit = prefix_cap in
    let rec go i j steps =
      if steps >= limit then 0
      else if i >= n then if j >= n then 0 else -1
      else if j >= n then 1
      else
        let c = Char.compare s.[i] s.[j] in
        if c <> 0 then c else go (i + 1) (j + 1) (steps + 1)
    in
    go i j 0
  end

let build text =
  let order = Tokenizer.word_starts text in
  let s = Text.unsafe_contents text in
  Array.sort (compare_suffixes s) order;
  { text; order }

let size t = Array.length t.order

(* Extend an array built over the first [old_len] bytes to the whole of
   [new_text] (whose prefix of length [old_len] must equal the old
   text).  Appending bytes cannot change whether a position < old_len
   is a word start (that depends on bytes p-1 and p only), and it
   cannot change the sort key of a position whose capped comparison
   window [p, p+prefix_cap) lies entirely inside the unchanged prefix:
   such windows never reached the old end of text either, so those
   entries keep their relative order.  Only the positions near the old
   end (window crossing old_len) and the word starts of the appended
   tail need sorting — a merge then rebuilds the full order without
   re-sorting the untouched bulk. *)
let extend t new_text ~old_len =
  if old_len <> Text.length t.text then
    invalid_arg "Suffix_array.extend: old_len does not match the indexed text";
  let s = Text.unsafe_contents new_text in
  let kept =
    Array.of_seq
      (Seq.filter (fun p -> p + prefix_cap <= old_len) (Array.to_seq t.order))
  in
  let affected = ref [] in
  Array.iter
    (fun p -> if p + prefix_cap > old_len then affected := p :: !affected)
    t.order;
  for p = Text.length new_text - 1 downto old_len do
    if Tokenizer.is_word_start new_text p then affected := p :: !affected
  done;
  let affected = Array.of_list !affected in
  Array.sort (compare_suffixes s) affected;
  let n_kept = Array.length kept and n_aff = Array.length affected in
  let order = Array.make (n_kept + n_aff) 0 in
  let i = ref 0 and j = ref 0 in
  for k = 0 to n_kept + n_aff - 1 do
    let take_kept =
      !j >= n_aff
      || (!i < n_kept && compare_suffixes s kept.(!i) affected.(!j) <= 0)
    in
    if take_kept then begin
      order.(k) <- kept.(!i);
      incr i
    end
    else begin
      order.(k) <- affected.(!j);
      incr j
    end
  done;
  { text = new_text; order }

(* -1 when the suffix at [pos] is smaller than every string with prefix
   [pattern], 0 when [pattern] is a prefix of the suffix, 1 otherwise. *)
let compare_prefix s pos pattern =
  let n = String.length s and m = String.length pattern in
  let rec go k =
    if k >= m then 0
    else if pos + k >= n then -1
    else
      let c = Char.compare s.[pos + k] pattern.[k] in
      if c <> 0 then c else go (k + 1)
  in
  go 0

let bounds t pattern =
  let s = Text.unsafe_contents t.text in
  let n = Array.length t.order in
  let rec lower lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if compare_prefix s t.order.(mid) pattern < 0 then lower (mid + 1) hi
      else lower lo mid
  in
  let rec upper lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if compare_prefix s t.order.(mid) pattern <= 0 then upper (mid + 1) hi
      else upper lo mid
  in
  let lo = lower 0 n in
  let hi = upper lo n in
  (lo, hi)

(* Occurrence test for the (rare) patterns longer than the sort cap. *)
let occurs_at s pos pattern =
  let m = String.length pattern in
  pos + m <= String.length s && String.sub s pos m = pattern

let find t pattern =
  Stdx.Stats.(incr word_lookups);
  let out =
    if String.length pattern <= prefix_cap then begin
      let lo, hi = bounds t pattern in
      Array.sub t.order lo (hi - lo)
    end
    else begin
      (* search by the capped prefix, then filter the survivors *)
      let s = Text.unsafe_contents t.text in
      let lo, hi = bounds t (String.sub pattern 0 prefix_cap) in
      Array.of_list
        (List.filter
           (fun p -> occurs_at s p pattern)
           (Array.to_list (Array.sub t.order lo (hi - lo))))
    end
  in
  Array.sort compare out;
  out

let find_word t pattern =
  let positions = find t pattern in
  let m = String.length pattern in
  if m = 0 || not (Tokenizer.is_word_char pattern.[m - 1]) then positions
  else
    Stdx.Sorted_array.filter
      (fun p -> Tokenizer.is_word_end t.text (p + m))
      positions

let count t pattern =
  if String.length pattern <= prefix_cap then begin
    Stdx.Stats.(incr word_lookups);
    let lo, hi = bounds t pattern in
    hi - lo
  end
  else Array.length (find t pattern)
