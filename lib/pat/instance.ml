module Smap = Map.Make (String)

type t = {
  text : Text.t;
  word_index : Word_index.t;
  regions : Region_set.t Smap.t;
  mutable universe_cache : Region_set.t option;
}

let region_map bindings =
  List.fold_left
    (fun acc (name, set) ->
      if Smap.mem name acc then
        invalid_arg ("Instance.create: duplicate region name " ^ name)
      else Smap.add name set acc)
    Smap.empty bindings

let create text bindings =
  {
    text;
    word_index = Word_index.build text;
    regions = region_map bindings;
    universe_cache = None;
  }

let create_with_word_index text word_index bindings =
  if Word_index.text word_index != text then
    invalid_arg "Instance.create_with_word_index: word index over another text";
  { text; word_index; regions = region_map bindings; universe_cache = None }

let text t = t.text
let word_index t = t.word_index
let names t = List.map fst (Smap.bindings t.regions)
let find t name = Smap.find name t.regions
let find_opt t name = Smap.find_opt name t.regions
let mem t name = Smap.mem name t.regions

let universe t =
  match t.universe_cache with
  | Some u -> u
  | None ->
      let u =
        Smap.fold
          (fun _ set acc -> Region_set.union acc set)
          t.regions Region_set.empty
      in
      t.universe_cache <- Some u;
      u

let restrict t keep =
  let keep_set = List.fold_left (fun m k -> Smap.add k () m) Smap.empty keep in
  {
    t with
    regions = Smap.filter (fun name _ -> Smap.mem name keep_set) t.regions;
    universe_cache = None;
  }

let add t name set =
  { t with regions = Smap.add name set t.regions; universe_cache = None }

let total_regions t =
  Smap.fold (fun _ set acc -> acc + Region_set.cardinal set) t.regions 0

let satisfies_rig t ~edges =
  let u = universe t in
  let edge_mem a b = List.exists (fun (x, y) -> x = a && y = b) edges in
  let bindings = Smap.bindings t.regions in
  let violation = ref None in
  List.iter
    (fun (ni, ri) ->
      List.iter
        (fun (nj, rj) ->
          if !violation = None then
            Region_set.iter
              (fun r ->
                Region_set.iter
                  (fun s ->
                    if
                      !violation = None
                      && Region.strictly_includes r s
                      && (not (edge_mem ni nj))
                      &&
                      (* no indexed region strictly between *)
                      not
                        (Region_set.fold
                           (fun acc u_reg ->
                             acc
                             || Region.strictly_includes r u_reg
                                && Region.strictly_includes u_reg s)
                           false u)
                    then violation := Some (ni, nj))
                  rj)
              ri)
        bindings)
    bindings;
  !violation
