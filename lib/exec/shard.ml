type 'a t = { id : int; items : 'a list; weight : int }

type 'a bin = { mutable acc : (int * 'a) list; mutable total : int }

let by_weight ~shards ~weight items =
  if shards < 1 then invalid_arg "Exec.Shard.by_weight: shards must be at least 1";
  let bins = Array.init shards (fun _ -> { acc = []; total = 0 }) in
  let weighted = List.mapi (fun i x -> (i, weight x, x)) items in
  let heaviest_first =
    (* descending weight, input order breaking ties: deterministic *)
    List.sort
      (fun (i, wa, _) (j, wb, _) -> if wa <> wb then compare wb wa else compare i j)
      weighted
  in
  List.iter
    (fun (i, w, x) ->
      let lightest = ref 0 in
      for b = 1 to shards - 1 do
        if bins.(b).total < bins.(!lightest).total then lightest := b
      done;
      let bin = bins.(!lightest) in
      bin.acc <- (i, x) :: bin.acc;
      bin.total <- bin.total + w)
    heaviest_first;
  let out = ref [] in
  for b = shards - 1 downto 0 do
    if bins.(b).acc <> [] then
      (* items inside a shard go back to input order so per-shard
         evaluation visits files exactly as the sequential runner would *)
      let items =
        List.sort (fun (i, _) (j, _) -> compare i j) bins.(b).acc
        |> List.map snd
      in
      out := { id = b; items; weight = bins.(b).total } :: !out
  done;
  (* re-number densely so shard ids are stable under empty-bin removal *)
  List.mapi (fun i s -> { s with id = i }) !out

(* Cost-informed balance: a file's query work scales with its bytes
   (phase-2 parsing) plus its indexed-region population (phase-1 index
   operations), so heavily-indexed small files no longer read as
   feather-weight.  The factor prices one indexed region at roughly
   the cost of scanning a few words. *)
let source_weight (src : Oqf.Execute.source) =
  Pat.Text.length src.Oqf.Execute.text
  + (16 * Pat.Instance.total_regions src.Oqf.Execute.instance)

let of_corpus ~shards corpus =
  by_weight ~shards
    ~weight:(fun (_, src) -> source_weight src)
    (Oqf.Corpus.sources corpus)
