(** A bounded LRU cache of corpus query results.

    Keys pair the {e normalized} query text (the canonical rendering
    of the parsed query, so formatting differences collapse) with a
    {e corpus fingerprint} — an MD5 over every member's name, length
    and content digest.  Any change to any member changes the
    fingerprint, so entries are invalidated automatically: after a
    catalog refresh picks up an appended or edited source, the
    rebuilt corpus fingerprints differently, the stale entry can
    never be hit again, and the LRU bound ages it out.

    All operations are mutex-serialized — batch workers on different
    domains share one cache.  Hits, misses and evictions feed the
    [exec.rcache.*] registry counters. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 128) bounds the number of resident entries;
    inserting past it evicts the least recently used. *)

type key

val key : query:Odb.Query.t -> fingerprint:string -> key
(** Normalizes the query via its canonical rendering. *)

val fingerprint : Oqf.Corpus.t -> string
(** Hex MD5 over the corpus members' (name, length, content digest)
    triples, in corpus order. *)

type payload = (string * Odb.Query_eval.row) list
(** Result rows tagged with the file they came from, as
    {!Oqf.Corpus.run} returns them. *)

val find : t -> key -> payload option
val add : t -> key -> payload -> unit

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
