(** A bounded LRU cache of corpus query results, with a
    containment-aware lookup layer.

    Keys pair the {e normalized} query text (the canonical rendering
    of the parsed query, so formatting differences collapse) with a
    {e corpus fingerprint} — an MD5 over every member's name, length
    and content digest.  Any change to any member changes the
    fingerprint, so entries are invalidated automatically: after a
    catalog refresh picks up an appended or edited source, the
    rebuilt corpus fingerprints differently, the stale entry can
    never be hit again, and the LRU bound ages it out.

    On top of exact lookup, {!find_contained} serves a query from a
    cached {e superset}: if a resident same-corpus entry's query
    subsumes the probe ({!Oqf.Subsume.subsumes}), the cached rows are
    filtered by the residual conjuncts — byte-identical to a fresh
    evaluation, per the row-decidability contract {!Oqf.Subsume}
    documents and DESIGN §14 proves.  Containment hits count
    separately ([exec.rcache.containment_hits]) and refresh the
    superset entry's LRU stamp.

    All operations are mutex-serialized — batch workers on different
    domains share one cache.  Hits, misses, evictions and containment
    hits feed the [exec.rcache.*] registry counters. *)

type t

val create : ?capacity:int -> ?containment:bool -> unit -> t
(** [capacity] (default 128) bounds the number of resident entries;
    inserting past it evicts the least recently used.  [containment]
    (default [true]) enables the subsumption lookup layer; pass
    [false] to restrict the cache to exact hits (the escape hatch, and
    the baseline the CT1 benchmark compares against). *)

type key

val key : query:Odb.Query.t -> fingerprint:string -> key
(** Normalizes the query via its canonical rendering, and retains the
    parsed query for subsumption probing. *)

val fingerprint : Oqf.Corpus.t -> string
(** Hex MD5 over the corpus members' (name, length, content digest)
    triples, in corpus order. *)

type payload = (string * Odb.Query_eval.row) list
(** Result rows tagged with the file they came from, as
    {!Oqf.Corpus.run} returns them. *)

val find : t -> key -> payload option
(** Exact lookup; counts a hit or a miss. *)

val find_contained : t -> key -> (payload * string) option
(** Subsumption lookup, tried after {!find} misses: the filtered rows
    plus the canonical text of the superset query that served them.
    Among several resident supersets the smallest payload wins (least
    filtering work).  [None] when no resident entry subsumes the
    probe, or when the cache was created with [~containment:false]. *)

val add : t -> key -> payload -> unit

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  containment_hits : int;
  entries : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
