type shard_report = {
  shard : int;
  files : string list;
  weight_bytes : int;
  elapsed_ms : float;
}

type outcome = {
  rows : (string * Odb.Query_eval.row) list;
  per_file : (string * Oqf.Execute.outcome) list;
  per_shard : shard_report list;
  stats : Stdx.Stats.t;
  from_cache : bool;
}

let default_jobs () =
  match Sys.getenv_opt "OQF_JOBS" with
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1
    end
  | None -> 1

let cached_outcome payload =
  {
    rows = payload;
    per_file = [];
    per_shard = [];
    stats = Stdx.Stats.create ();
    from_cache = true;
  }

(* Cache protocol shared by the sequential and parallel paths: probe,
   run on miss, populate on success. *)
let with_cache cache corpus q run =
  match cache with
  | None -> run ()
  | Some cache ->
      let key = Rcache.key ~query:q ~fingerprint:(Rcache.fingerprint corpus) in
      (match Rcache.find cache key with
      | Some payload -> Ok (cached_outcome payload)
      | None -> begin
          match run () with
          | Error _ as e -> e
          | Ok outcome ->
              Rcache.add cache key outcome.rows;
              Ok outcome
        end)

let run_one ?optimize ?force ?cache corpus q =
  with_cache cache corpus q @@ fun () ->
  match Oqf.Corpus.run ?optimize ?force corpus q with
  | Error _ as e -> e
  | Ok r ->
      Ok
        {
          rows = r.Oqf.Corpus.rows;
          per_file = r.Oqf.Corpus.per_file;
          per_shard = [];
          stats = r.Oqf.Corpus.stats;
          from_cache = false;
        }

(* Evaluate one shard: its files in order, stopping at the first
   failure (mirroring the sequential executor within the shard). *)
let eval_shard ?optimize ?force q (shard : (string * Oqf.Execute.source) Shard.t) =
  let t0 = Obs.Trace.now_ms () in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (name, src) :: rest -> begin
        match Oqf.Execute.run ?optimize ?force src q with
        | Error e -> Error (name, e)
        | Ok r -> go ((name, r) :: acc) rest
      end
  in
  let result =
    if Obs.Trace.enabled () then
      Obs.Trace.with_span "exec.shard"
        ~attrs:(fun () ->
          [
            ("shard", Obs.Trace.Int shard.Shard.id);
            ("files", Obs.Trace.Int (List.length shard.Shard.items));
            ("weight_bytes", Obs.Trace.Int shard.Shard.weight);
          ])
        (fun () -> go [] shard.Shard.items)
    else go [] shard.Shard.items
  in
  let report =
    {
      shard = shard.Shard.id;
      files = List.map fst shard.Shard.items;
      weight_bytes = shard.Shard.weight;
      elapsed_ms = Obs.Trace.now_ms () -. t0;
    }
  in
  (report, result)

let run_parallel ?optimize ?force ?jobs ?cache ?timeout_ms corpus q =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then
    Error (Printf.sprintf "jobs must be at least 1 (got %d)" jobs)
  else
    with_cache cache corpus q @@ fun () ->
    let sources = Oqf.Corpus.sources corpus in
    let position =
      let tbl = Hashtbl.create (List.length sources) in
      List.iteri (fun i (name, _) -> Hashtbl.replace tbl name i) sources;
      fun name -> try Hashtbl.find tbl name with Not_found -> max_int
    in
    let shards = Shard.of_corpus ~shards:jobs corpus in
    let before = Stdx.Stats.snapshot () in
    let shard_results =
      match shards with
      | [] -> []
      | _ ->
          Pool.with_pool ~jobs:(min jobs (List.length shards)) @@ fun pool ->
          Pool.run_all ?timeout_ms pool
            (List.map (fun s () -> eval_shard ?optimize ?force q s) shards)
    in
    let after = Stdx.Stats.snapshot () in
    (* a task-level failure (timeout, uncaught exception) has no file
       attribution; surface it against its shard *)
    let task_errors, shard_outcomes =
      List.partition_map
        (fun (shard, res) ->
          match res with
          | Error msg ->
              Left (Printf.sprintf "shard %d: %s" shard.Shard.id msg)
          | Ok (report, per_shard_result) -> Right (report, per_shard_result))
        (List.combine shards shard_results)
    in
    match task_errors with
    | e :: _ -> Error e
    | [] -> begin
        (* deterministic error: the earliest failing file in corpus order *)
        let failures =
          List.filter_map
            (fun (_, r) -> match r with Error f -> Some f | Ok _ -> None)
            shard_outcomes
        in
        match
          List.sort
            (fun (a, _) (b, _) -> compare (position a) (position b))
            failures
        with
        | (name, e) :: _ -> Error (Printf.sprintf "%s: %s" name e)
        | [] ->
            let per_file =
              List.concat_map
                (fun (_, r) -> match r with Ok l -> l | Error _ -> [])
                shard_outcomes
              |> List.sort (fun (a, _) (b, _) -> compare (position a) (position b))
            in
            let rows =
              List.concat_map
                (fun (name, (r : Oqf.Execute.outcome)) ->
                  List.map (fun row -> (name, row)) r.Oqf.Execute.rows)
                per_file
            in
            let per_shard =
              List.sort
                (fun a b -> compare a.shard b.shard)
                (List.map fst shard_outcomes)
            in
            Ok
              {
                rows;
                per_file;
                per_shard;
                stats = Stdx.Stats.diff ~before ~after;
                from_cache = false;
              }
      end

let run_batch ?optimize ?force ?jobs ?cache corpus queries =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then
    List.map
      (fun q -> (q, Error (Printf.sprintf "jobs must be at least 1 (got %d)" jobs)))
      queries
  else
    Pool.with_pool ~jobs @@ fun pool ->
    let handles =
      List.map
        (fun q ->
          (q, Pool.submit pool (fun () -> run_one ?optimize ?force ?cache corpus q)))
        queries
    in
    List.map
      (fun (q, h) ->
        let result =
          match Pool.await h with
          | Ok (Ok outcome) -> Ok outcome
          | Ok (Error e) -> Error e
          | Error e -> Error e  (* the task itself died *)
        in
        (q, result))
      handles

let pp_shard_report ppf r =
  Format.fprintf ppf "shard %d: %d files, %d KB, %.2f ms" r.shard
    (List.length r.files) (r.weight_bytes / 1024) r.elapsed_ms
