type shard_report = {
  shard : int;
  files : string list;
  weight_bytes : int;
  elapsed_ms : float;
}

type fail_policy = Fail_fast | Partial | Degrade

let fail_policy_of_string = function
  | "fail-fast" -> Ok Fail_fast
  | "partial" -> Ok Partial
  | "degrade" -> Ok Degrade
  | s ->
      Error
        (Printf.sprintf
           "unknown fail policy %S (expected fail-fast, partial or degrade)" s)

let fail_policy_to_string = function
  | Fail_fast -> "fail-fast"
  | Partial -> "partial"
  | Degrade -> "degrade"

type outcome = {
  rows : (string * Odb.Query_eval.row) list;
  per_file : (string * Oqf.Execute.outcome) list;
  per_shard : shard_report list;
  stats : Stdx.Stats.t;
  from_cache : bool;
  cache_superset : string option;
  degraded : Oqf.Degrade.t list;
}

let shard_quarantined = Obs.Metrics.counter "shard.quarantined"

let default_jobs () =
  match Sys.getenv_opt "OQF_JOBS" with
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1
    end
  | None -> 1

(* --- query-log integration ---------------------------------------- *)

let counter_value name =
  match Obs.Metrics.find_counter name with
  | Some c -> Obs.Metrics.value c
  | None -> 0

let schema_of_corpus corpus =
  match Oqf.Corpus.sources corpus with
  | (_, src) :: _ ->
      Option.value
        (Oqf_catalog.Schemas.name_of_view src.Oqf.Execute.view)
        ~default:""
  | [] -> ""

(* Whole-query latency under the workload label, interned per
   workload.  Execute.run's query.latency_ms{workload} is per *file*;
   this histogram is per driven query — the series `oqf stats` over a
   qlog of the same traffic reproduces. *)
let exec_query_ms =
  let table : (string, Obs.Metrics.histogram) Hashtbl.t = Hashtbl.create 8 in
  let lock = Mutex.create () in
  fun workload ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match Hashtbl.find_opt table workload with
        | Some h -> h
        | None ->
            let h =
              Obs.Metrics.histogram
                (Obs.Label.render "exec.query_ms" [ ("workload", workload) ])
            in
            Hashtbl.replace table workload h;
            h)

(* One qlog record per driven query (the per-file Execute.run calls
   underneath deliberately get no qctx, so they stay silent).  The
   retry/fault figures are process-global counter deltas around the
   run — exact when requests are sequential, attribution-approximate
   under concurrency, which is fine for trend aggregation. *)
let with_qlog ?qctx ?generation ~kind corpus q run =
  match (qctx, Obs.Qlog.installed ()) with
  | Some (ctx : Obs.Qlog.ctx), Some log ->
      let t0 = Obs.Trace.now_ms () in
      let retries0 = counter_value "retry.attempts" in
      let faults0 = counter_value "fault.injected" in
      let result = run () in
      let latency_ms = Obs.Trace.now_ms () -. t0 in
      let schema = schema_of_corpus corpus in
      let retries = counter_value "retry.attempts" - retries0 in
      let faults = counter_value "fault.injected" - faults0 in
      let record ~rows ~cached ~shards ~outcome ?error ~events () =
        Obs.Qlog.append log
          (Obs.Qlog.make ~ctx ~workload_default:schema ~schema ~kind
             ~query:(Odb.Query.to_string q) ~latency_ms ~rows ~cached ~shards
             ~outcome ?error ~events ~retries ~faults ?generation ())
      in
      (match result with
      | Ok (o : outcome) ->
          record ~rows:(List.length o.rows) ~cached:o.from_cache
            ~shards:(List.length o.per_shard)
            ~outcome:(if o.degraded = [] then "ok" else "degraded")
            ~events:
              ((match o.cache_superset with
               | Some superset -> [ ("rcache.containment", superset) ]
               | None -> [])
              @ List.map
                  (fun (d : Oqf.Degrade.t) ->
                    (Oqf.Degrade.action_to_string d.Oqf.Degrade.action,
                     d.Oqf.Degrade.file))
                  o.degraded)
            ()
      | Error e ->
          record ~rows:0 ~cached:false ~shards:0 ~outcome:"error" ~error:e
            ~events:[] ());
      let workload = if ctx.workload <> "" then ctx.workload else schema in
      if workload <> "" then
        Obs.Metrics.observe (exec_query_ms workload) latency_ms;
      result
  | _ -> run ()

let cached_outcome ?superset payload =
  {
    rows = payload;
    per_file = [];
    per_shard = [];
    stats = Stdx.Stats.create ();
    from_cache = true;
    cache_superset = superset;
    degraded = [];
  }

(* Cache protocol shared by the sequential and parallel paths: probe,
   run on miss, populate on success.  A degraded outcome is never
   cached — its rows may not reflect what the indices will serve once
   the fault clears. *)
let with_cache cache corpus q run =
  match cache with
  | None -> run ()
  | Some cache ->
      let key = Rcache.key ~query:q ~fingerprint:(Rcache.fingerprint corpus) in
      (match Rcache.find cache key with
      | Some payload -> Ok (cached_outcome payload)
      | None -> begin
          match Rcache.find_contained cache key with
          | Some (payload, superset) ->
              (* a resident superset answered by filtering; populate the
                 exact key so the next occurrence hits directly *)
              Rcache.add cache key payload;
              Ok (cached_outcome ~superset payload)
          | None -> begin
              match run () with
              | Error _ as e -> e
              | Ok outcome ->
                  if outcome.degraded = [] then
                    Rcache.add cache key outcome.rows;
                  Ok outcome
            end
        end)

(* Turn corpus-ordered per-file results into an outcome body according
   to the fail policy.  [Fail_fast] surfaces the earliest failure;
   [Partial] excludes failed files; [Degrade] walks the recovery
   ladder per failed file: circuit breaker → query-level error check →
   naive scan of the raw file → exclusion.  Returns the merged rows,
   the indexed per-file outcomes, and the degradation report. *)
let resolve ~fail_policy q results =
  let exception Abort of string in
  let breaker_key name = "source:" ^ name in
  try
    let rows = ref [] in
    let per_file = ref [] in
    let degraded = ref [] in
    let note d = degraded := d :: !degraded in
    List.iter
      (fun (name, (src : Oqf.Execute.source), result) ->
        match result with
        | Ok (o : Oqf.Execute.outcome) ->
            Stdx.Retry.Breaker.success (breaker_key name);
            rows :=
              List.rev_append
                (List.map (fun row -> (name, row)) o.Oqf.Execute.rows)
                !rows;
            per_file := (name, o) :: !per_file
        | Error e -> begin
            match fail_policy with
            | Fail_fast -> raise (Abort (Printf.sprintf "%s: %s" name e))
            | Partial ->
                Obs.Metrics.incr shard_quarantined;
                note (Oqf.Degrade.make ~file:name Oqf.Degrade.Excluded e)
            | Degrade ->
                if Stdx.Retry.Breaker.state (breaker_key name) = Stdx.Retry.Breaker.Open
                then begin
                  Obs.Metrics.incr shard_quarantined;
                  note
                    (Oqf.Degrade.make ~file:name Oqf.Degrade.Excluded
                       ("circuit open; " ^ e))
                end
                else begin
                  match Oqf.Execute.semantic_error src.Oqf.Execute.view q with
                  | Some se ->
                      (* the query itself is broken: every file fails the
                         same way, degrading would silently return nothing *)
                      raise (Abort (Printf.sprintf "%s: %s" name se))
                  | None -> begin
                      match Oqf.Execute.run_naive ~file:name src q with
                      | Ok nrows ->
                          Stdx.Retry.Breaker.success (breaker_key name);
                          rows :=
                            List.rev_append
                              (List.map (fun row -> (name, row)) nrows)
                              !rows;
                          note
                            (Oqf.Degrade.make ~file:name
                               Oqf.Degrade.Naive_fallback e)
                      | Error ne ->
                          Stdx.Retry.Breaker.failure (breaker_key name);
                          Obs.Metrics.incr shard_quarantined;
                          note
                            (Oqf.Degrade.make ~file:name Oqf.Degrade.Excluded
                               (e ^ "; " ^ ne))
                    end
                end
          end)
      results;
    Ok (List.rev !rows, List.rev !per_file, List.rev !degraded)
  with Abort e -> Error e

let run_one ?optimize ?minimize ?force ?plan_mode ?cache
    ?(fail_policy = Fail_fast) ?qctx ?generation corpus q =
  with_qlog ?qctx ?generation ~kind:"query" corpus q @@ fun () ->
  match fail_policy with
  | Fail_fast -> begin
      with_cache cache corpus q @@ fun () ->
      match Oqf.Corpus.run ?optimize ?minimize ?force ?plan_mode corpus q with
      | Error _ as e -> e
      | Ok r ->
          Ok
            {
              rows = r.Oqf.Corpus.rows;
              per_file = r.Oqf.Corpus.per_file;
              per_shard = [];
              stats = r.Oqf.Corpus.stats;
              from_cache = false;
              cache_superset = None;
              degraded = [];
            }
    end
  | Partial | Degrade -> begin
      with_cache cache corpus q @@ fun () ->
      let before = Stdx.Stats.snapshot () in
      let results =
        List.map
          (fun (name, src) ->
            (name, src, Oqf.Execute.run ?optimize ?minimize ?force ?plan_mode src q))
          (Oqf.Corpus.sources corpus)
      in
      match resolve ~fail_policy q results with
      | Error _ as e -> e
      | Ok (rows, per_file, degraded) ->
          let after = Stdx.Stats.snapshot () in
          Ok
            {
              rows;
              per_file;
              per_shard = [];
              stats = Stdx.Stats.diff ~before ~after;
              from_cache = false;
              cache_superset = None;
              degraded;
            }
    end

(* Evaluate one shard: its files in order.  Under [stop_at_first]
   (fail-fast) evaluation stops at the first failing file, mirroring
   the sequential executor; otherwise every file gets its own result
   so the policies can recover per file.  The [pool.task] fault site
   fires here, inside the retryable task body. *)
let eval_shard ?optimize ?minimize ?force ?plan_mode ~stop_at_first q
    (shard : (string * Oqf.Execute.source) Shard.t) =
  Stdx.Fault.hit "pool.task";
  let t0 = Obs.Trace.now_ms () in
  let rec go acc = function
    | [] -> List.rev acc
    | (name, src) :: rest -> begin
        match Oqf.Execute.run ?optimize ?minimize ?force ?plan_mode src q with
        | Error e ->
            let acc = (name, Error e) :: acc in
            if stop_at_first then List.rev acc else go acc rest
        | Ok r -> go ((name, Ok r) :: acc) rest
      end
  in
  let result =
    if Obs.Trace.enabled () then
      Obs.Trace.with_span "exec.shard"
        ~attrs:(fun () ->
          [
            ("shard", Obs.Trace.Int shard.Shard.id);
            ("files", Obs.Trace.Int (List.length shard.Shard.items));
            ("weight_bytes", Obs.Trace.Int shard.Shard.weight);
          ])
        (fun () -> go [] shard.Shard.items)
    else go [] shard.Shard.items
  in
  let report =
    {
      shard = shard.Shard.id;
      files = List.map fst shard.Shard.items;
      weight_bytes = shard.Shard.weight;
      elapsed_ms = Obs.Trace.now_ms () -. t0;
    }
  in
  (report, result)

let run_parallel ?optimize ?minimize ?force ?plan_mode ?jobs ?cache
    ?timeout_ms ?(fail_policy = Fail_fast) ?qctx ?generation corpus q =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then
    Error (Printf.sprintf "jobs must be at least 1 (got %d)" jobs)
  else
    with_qlog ?qctx ?generation ~kind:"query" corpus q @@ fun () ->
    with_cache cache corpus q @@ fun () ->
    let sources = Oqf.Corpus.sources corpus in
    let position =
      let tbl = Hashtbl.create (List.length sources) in
      List.iteri (fun i (name, _) -> Hashtbl.replace tbl name i) sources;
      fun name -> try Hashtbl.find tbl name with Not_found -> max_int
    in
    let stop_at_first = fail_policy = Fail_fast in
    let eval s =
      eval_shard ?optimize ?minimize ?force ?plan_mode ~stop_at_first q s
    in
    let shards = Shard.of_corpus ~shards:jobs corpus in
    let before = Stdx.Stats.snapshot () in
    let shard_results =
      match shards with
      | [] -> []
      | _ ->
          Pool.with_pool ~jobs:(min jobs (List.length shards)) @@ fun pool ->
          Pool.run_all ?timeout_ms pool
            (List.map
               (fun s () -> Stdx.Retry.io ~site:"pool.task" (fun () -> eval s))
               shards)
    in
    (* A task-level failure (timeout, worker death, injected fault that
       outlived its retry budget) has no file attribution.  Fail-fast
       surfaces it against its shard; the recovering policies re-run
       the shard once on the coordinator and only then push the
       failure down to its files. *)
    let task_errors = ref [] in
    let degraded_shards = ref [] in
    let shard_outcomes =
      List.filter_map
        (fun (shard, res) ->
          match res with
          | Ok (report, per_shard_result) -> Some (report, per_shard_result)
          | Error msg when fail_policy = Fail_fast ->
              task_errors :=
                Printf.sprintf "shard %d: %s" shard.Shard.id msg
                :: !task_errors;
              None
          | Error msg -> begin
              degraded_shards :=
                Oqf.Degrade.make
                  ~file:(Printf.sprintf "shard %d" shard.Shard.id)
                  Oqf.Degrade.Shard_retried msg
                :: !degraded_shards;
              match
                Stdx.Retry.io ~site:"pool.task" (fun () -> eval shard)
              with
              | outcome -> Some outcome
              | exception e ->
                  (* even the direct re-run failed: fail each file and
                     let the per-file ladder take over *)
                  let err = Printexc.to_string e in
                  Some
                    ( {
                        shard = shard.Shard.id;
                        files = List.map fst shard.Shard.items;
                        weight_bytes = shard.Shard.weight;
                        elapsed_ms = 0.;
                      },
                      List.map
                        (fun (name, _) -> (name, Error err))
                        shard.Shard.items )
            end)
        (List.combine shards shard_results)
    in
    let after = Stdx.Stats.snapshot () in
    match List.rev !task_errors with
    | e :: _ -> Error e
    | [] -> begin
        let by_position field =
          List.sort (fun (a, _) (b, _) -> compare (position a) (position b))
            field
        in
        let per_file_results =
          List.concat_map (fun (_, r) -> r) shard_outcomes
          |> by_position
          |> List.map (fun (name, result) ->
                 let src =
                   match List.assoc_opt name sources with
                   | Some src -> src
                   | None -> assert false  (* shards partition the corpus *)
                 in
                 (name, src, result))
        in
        match resolve ~fail_policy q per_file_results with
        | Error _ as e -> e
        | Ok (rows, per_file, degraded) ->
            let per_shard =
              List.sort
                (fun a b -> compare a.shard b.shard)
                (List.map fst shard_outcomes)
            in
            Ok
              {
                rows;
                per_file;
                per_shard;
                stats = Stdx.Stats.diff ~before ~after;
                from_cache = false;
                cache_superset = None;
                degraded = List.rev !degraded_shards @ degraded;
              }
      end

(* --- streaming execution: the serve daemon's per-client path ------- *)

(* Cached payloads are (file, row) pairs in corpus order; re-group the
   consecutive runs so a cache hit still streams per-file blocks. *)
let rec emit_blocks on_rows = function
  | [] -> ()
  | (file, row) :: rest ->
      let rec take acc = function
        | (f, r) :: tl when String.equal f file -> take (r :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let file_rows, rest = take [ row ] rest in
      on_rows ~file file_rows;
      emit_blocks on_rows rest

let run_streaming ?optimize ?minimize ?force ?plan_mode ?(lazy_phase1 = true)
    ?cache ?timeout_ms
    ?(fail_policy = Fail_fast) ?qctx ?generation ~pool ~on_rows corpus q =
  with_qlog ?qctx ?generation ~kind:"query" corpus q @@ fun () ->
  let key =
    match cache with
    | None -> None
    | Some c ->
        Some (c, Rcache.key ~query:q ~fingerprint:(Rcache.fingerprint corpus))
  in
  match Option.bind key (fun (c, k) -> Rcache.find c k) with
  | Some payload ->
      emit_blocks on_rows payload;
      Ok (cached_outcome payload)
  | None ->
  match
    Option.bind key (fun (c, k) ->
        Option.map
          (fun served -> (c, k, served))
          (Rcache.find_contained c k))
  with
  | Some (c, k, (payload, superset)) ->
      (* same per-file block replay as an exact hit, plus the exact-key
         population so the next occurrence short-circuits *)
      Rcache.add c k payload;
      emit_blocks on_rows payload;
      Ok (cached_outcome ~superset payload)
  | None ->
      let before = Stdx.Stats.snapshot () in
      let sources = Oqf.Corpus.sources corpus in
      (* one task per file — finer than the shard-per-worker batch
         path on purpose: file k's rows go to the client as soon as
         its own task resolves, while later files are still scanning
         on other workers.  The shared pool's FIFO queue is what
         arbitrates between concurrent clients. *)
      let handles =
        List.map
          (fun (name, src) ->
            let task () =
              Stdx.Retry.io ~site:"pool.task" (fun () ->
                  Stdx.Fault.hit "pool.task";
                  Oqf.Execute.run ?optimize ?minimize ?force ?plan_mode
                    ~lazy_phase1 src q)
            in
            (name, src, Pool.submit ?timeout_ms pool task))
          sources
      in
      let exception Abort of string in
      let breaker_key name = "source:" ^ name in
      let rows = ref [] in
      let per_file = ref [] in
      let degraded = ref [] in
      let note d = degraded := d :: !degraded in
      let emit name file_rows =
        if file_rows <> [] then begin
          rows :=
            List.rev_append (List.map (fun r -> (name, r)) file_rows) !rows;
          on_rows ~file:name file_rows
        end
      in
      (* await in corpus order; the recovery ladder per file mirrors
         [resolve], but rows stream as each file settles *)
      (try
         List.iter
           (fun (name, (src : Oqf.Execute.source), h) ->
             let result =
               match Pool.await h with
               | Ok (Ok o) -> Ok o
               | Ok (Error e) -> Error e
               | Error e -> Error e (* task death or deadline expiry *)
             in
             match result with
             | Ok (o : Oqf.Execute.outcome) ->
                 Stdx.Retry.Breaker.success (breaker_key name);
                 emit name o.Oqf.Execute.rows;
                 per_file := (name, o) :: !per_file
             | Error e -> begin
                 match fail_policy with
                 | Fail_fast ->
                     raise (Abort (Printf.sprintf "%s: %s" name e))
                 | Partial ->
                     Obs.Metrics.incr shard_quarantined;
                     note (Oqf.Degrade.make ~file:name Oqf.Degrade.Excluded e)
                 | Degrade ->
                     if
                       Stdx.Retry.Breaker.state (breaker_key name)
                       = Stdx.Retry.Breaker.Open
                     then begin
                       Obs.Metrics.incr shard_quarantined;
                       note
                         (Oqf.Degrade.make ~file:name Oqf.Degrade.Excluded
                            ("circuit open; " ^ e))
                     end
                     else begin
                       match Oqf.Execute.semantic_error src.Oqf.Execute.view q with
                       | Some se ->
                           raise (Abort (Printf.sprintf "%s: %s" name se))
                       | None -> begin
                           match Oqf.Execute.run_naive ~file:name src q with
                           | Ok nrows ->
                               Stdx.Retry.Breaker.success (breaker_key name);
                               emit name nrows;
                               note
                                 (Oqf.Degrade.make ~file:name
                                    Oqf.Degrade.Naive_fallback e)
                           | Error ne ->
                               Stdx.Retry.Breaker.failure (breaker_key name);
                               Obs.Metrics.incr shard_quarantined;
                               note
                                 (Oqf.Degrade.make ~file:name
                                    Oqf.Degrade.Excluded (e ^ "; " ^ ne))
                         end
                     end
               end)
           handles;
         let after = Stdx.Stats.snapshot () in
         let outcome =
           {
             rows = List.rev !rows;
             per_file = List.rev !per_file;
             per_shard = [];
             stats = Stdx.Stats.diff ~before ~after;
             from_cache = false;
             cache_superset = None;
             degraded = List.rev !degraded;
           }
         in
         (match key with
         | Some (c, k) when outcome.degraded = [] ->
             Rcache.add c k outcome.rows
         | _ -> ());
         Ok outcome
       with Abort e -> Error e)

let run_batch ?optimize ?minimize ?force ?plan_mode ?jobs ?cache ?fail_policy
    ?(workload = "") corpus queries =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then
    List.map
      (fun q -> (q, Error (Printf.sprintf "jobs must be at least 1 (got %d)" jobs)))
      queries
  else
    Pool.with_pool ~jobs @@ fun pool ->
    (* A duplicate of an in-flight query waits for the first occurrence
       before probing the cache, so intra-batch duplicates hit
       deterministically instead of racing the original's insert.  The
       wait cannot deadlock: the queue is FIFO, so the first occurrence
       is dequeued (and its handle eventually completed) strictly
       before any task that waits on it starts. *)
    let fingerprint = lazy (Rcache.fingerprint corpus) in
    let seen = Hashtbl.create 8 in
    let handles =
      List.map
        (fun q ->
          let key =
            match cache with
            | None -> None
            | Some _ ->
                Some (Rcache.key ~query:q ~fingerprint:(Lazy.force fingerprint))
          in
          let first = Option.bind key (Hashtbl.find_opt seen) in
          let h =
            Pool.submit pool (fun () ->
                Option.iter (fun first -> ignore (Pool.await first)) first;
                let qctx =
                  (* one trace id per batched query, minted at task start *)
                  match Obs.Qlog.installed () with
                  | Some _ ->
                      Some
                        {
                          Obs.Qlog.trace_id = Obs.Qlog.gen_trace_id ();
                          workload;
                        }
                  | None -> None
                in
                run_one ?optimize ?minimize ?force ?plan_mode ?cache
                  ?fail_policy ?qctx corpus q)
          in
          (match (key, first) with
          | Some k, None -> Hashtbl.replace seen k h
          | _ -> ());
          (q, h))
        queries
    in
    List.map
      (fun (q, h) ->
        let result =
          match Pool.await h with
          | Ok (Ok outcome) -> Ok outcome
          | Ok (Error e) -> Error e
          | Error e -> Error e  (* the task itself died *)
        in
        (q, result))
      handles

let pp_shard_report ppf r =
  Format.fprintf ppf "shard %d: %d files, %d KB, %.2f ms" r.shard
    (List.length r.files) (r.weight_bytes / 1024) r.elapsed_ms
