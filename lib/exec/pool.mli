(** A reusable pool of domain workers.

    A pool owns a fixed set of [Domain.t] workers feeding from one
    bounded work queue.  Tasks are closures; {!submit} returns a handle
    whose {!await} blocks until the task has run.  A task may carry a
    deadline: the worker arms {!Obs.Deadline} around it, the
    region-algebra evaluator polls it once per operator, and an expiry
    surfaces as an [Error] on the handle — the worker survives and
    takes the next task.

    Shutdown is graceful: already-queued tasks are drained and their
    handles completed before the workers exit.  All operations are
    safe to call from any domain except {!await} from inside a pool
    task of the same pool (the worker would wait on itself).

    Failure containment: a task's handle is completed no matter how
    the task exits (exception capture runs under [Fun.protect]), a
    worker survives an exception that escapes a task closure (counted
    in [exec.pool.task_escapes]), and {!shutdown} joins every domain
    even when one died abnormally ([exec.pool.worker_deaths]) — no
    failure mode leaves {!await} blocked forever. *)

type t

val create : ?queue_capacity:int -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains ([jobs >= 1], else
    [Invalid_argument]).  [queue_capacity] (default 256) bounds the
    number of queued-but-unstarted tasks; a full queue makes {!submit}
    block until a worker takes something. *)

val jobs : t -> int

type 'a handle
(** The pending result of one submitted task. *)

val submit : ?timeout_ms:float -> t -> (unit -> 'a) -> 'a handle
(** Enqueue a task.  With [timeout_ms] the worker runs it under
    {!Obs.Deadline.with_timeout_ms}; expiry (or any other exception)
    is captured in the handle rather than killing the worker.  Raises
    [Invalid_argument] if the pool is shut down. *)

val await : 'a handle -> ('a, string) result
(** Block until the task has run.  [Error] carries the exception
    message ("task timed out after <n> ms" for a deadline expiry). *)

val run_all : ?timeout_ms:float -> t -> (unit -> 'a) list -> ('a, string) result list
(** Submit every thunk, then await them in order. *)

val shutdown : t -> unit
(** Drain the queue, complete every outstanding handle, join the
    workers.  Idempotent; subsequent {!submit}s raise. *)

val with_pool :
  ?queue_capacity:int -> jobs:int -> (t -> 'a) -> 'a
(** [create], run the body, [shutdown] (also on exceptions). *)
