let cache_hits = Obs.Metrics.counter "exec.rcache.hits"
let cache_misses = Obs.Metrics.counter "exec.rcache.misses"
let cache_evictions = Obs.Metrics.counter "exec.rcache.evictions"
let cache_containment_hits = Obs.Metrics.counter "exec.rcache.containment_hits"

type payload = (string * Odb.Query_eval.row) list

type entry = {
  payload : payload;
  query : Odb.Query.t;
  fingerprint : string;
  mutable stamp : int;
}

type t = {
  capacity : int;
  containment : bool;
  table : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable containment_hits : int;
}

type key = { skey : string; query : Odb.Query.t; fingerprint : string }

let create ?(capacity = 128) ?(containment = true) () =
  if capacity < 1 then invalid_arg "Exec.Rcache.create: capacity must be at least 1";
  {
    capacity;
    containment;
    table = Hashtbl.create 32;
    lock = Mutex.create ();
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    containment_hits = 0;
  }

let key ~query ~fingerprint =
  (* the canonical rendering normalizes whitespace and parenthesization *)
  { skey = Odb.Query.to_string query ^ "\x00" ^ fingerprint; query; fingerprint }

let fingerprint corpus =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, src) ->
      let text = src.Oqf.Execute.text in
      Buffer.add_string buf name;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int (Pat.Text.length text));
      Buffer.add_char buf ':';
      Buffer.add_string buf (Digest.to_hex (Digest.string (Pat.Text.unsafe_contents text)));
      Buffer.add_char buf ';')
    (Oqf.Corpus.sources corpus);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key.skey with
  | Some e ->
      e.stamp <- tick t;
      t.hits <- t.hits + 1;
      Obs.Metrics.incr cache_hits;
      if Obs.Trace.enabled () then Obs.Trace.instant "rcache.hit";
      Some e.payload
  | None ->
      t.misses <- t.misses + 1;
      Obs.Metrics.incr cache_misses;
      if Obs.Trace.enabled () then Obs.Trace.instant "rcache.miss";
      None

let find_contained t key =
  if not t.containment then None
  else begin
    locked t @@ fun () ->
    (* every same-corpus entry whose query subsumes this one can serve
       it; prefer the smallest superset payload (least filtering work)
       and break ties on the key for determinism *)
    let best =
      Hashtbl.fold
        (fun skey (e : entry) acc ->
          if skey = key.skey || e.fingerprint <> key.fingerprint then acc
          else begin
            match Oqf.Subsume.subsumes key.query ~by:e.query with
            | None -> acc
            | Some residual -> begin
                let size = List.length e.payload in
                match acc with
                | Some (_, _, best_size, best_skey)
                  when best_size < size
                       || (best_size = size && best_skey <= skey) ->
                    acc
                | _ -> Some (e, residual, size, skey)
              end
          end)
        t.table None
    in
    match best with
    | None -> None
    | Some (e, residual, _, _) ->
        e.stamp <- tick t;
        t.containment_hits <- t.containment_hits + 1;
        Obs.Metrics.incr cache_containment_hits;
        if Obs.Trace.enabled () then
          Obs.Trace.instant "rcache.containment_hit"
            ~attrs:[ ("superset", Obs.Trace.Str (Odb.Query.to_string e.query)) ];
        Some
          ( Oqf.Subsume.filter_rows key.query ~residual e.payload,
            Odb.Query.to_string e.query )
  end

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.stamp <= e.stamp -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      Obs.Metrics.incr cache_evictions

let add t key payload =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.table key.skey) && Hashtbl.length t.table >= t.capacity
  then evict_lru t;
  Hashtbl.replace t.table key.skey
    {
      payload;
      query = key.query;
      fingerprint = key.fingerprint;
      stamp = tick t;
    }

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  containment_hits : int;
  entries : int;
}

let stats t =
  locked t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    containment_hits = t.containment_hits;
    entries = Hashtbl.length t.table;
  }

let pp_stats ppf s =
  Format.fprintf ppf "hits=%d misses=%d evictions=%d containment=%d entries=%d"
    s.hits s.misses s.evictions s.containment_hits s.entries
