(** Partitioning a corpus into balanced shards.

    The PAT algebra is set-at-a-time over region sets, and regions
    from distinct files never overlap, so a corpus query decomposes
    into independent per-file evaluations whose results merge by
    concatenation (the set-operator merge — union, intersection,
    difference — distributes over the file partition; see DESIGN.md).
    The only scheduling question is balance: files differ wildly in
    size, so shards are balanced by indexed-text bytes with a greedy
    longest-processing-time assignment. *)

type 'a t = {
  id : int;  (** dense shard index, 0-based *)
  items : 'a list;  (** in descending weight order *)
  weight : int;  (** summed item weights *)
}

val by_weight : shards:int -> weight:('a -> int) -> 'a list -> 'a t list
(** Greedy LPT: items in descending weight (ties broken by input
    order) each go to the currently lightest shard.  Returns at most
    [shards] shards, without empty ones; deterministic.  Raises
    [Invalid_argument] when [shards < 1]. *)

val source_weight : Oqf.Execute.source -> int
(** The balance measure of one corpus member: its indexed-text bytes
    plus a per-indexed-region surcharge, so a small but densely indexed
    file weighs what its phase-1 work suggests. *)

val of_corpus :
  shards:int -> Oqf.Corpus.t -> (string * Oqf.Execute.source) t list
(** Partition a corpus's (file, source) pairs by {!source_weight}. *)
