(** Parallel corpus execution.

    [run_parallel] is the multicore twin of {!Oqf.Corpus.run}: it
    partitions the corpus into weight-balanced shards ({!Shard}),
    evaluates each shard on a {!Pool} worker with the existing
    two-phase executor, and merges the per-file results back into
    corpus order — so its rows are {e identical} to the sequential
    run's (qcheck-verified in the test suite).  [run_one] is the
    sequential path with the same cache handling; [run_batch] fans a
    query list out over the pool, one query per task, sharing one
    result cache. *)

type shard_report = {
  shard : int;
  files : string list;
  weight_bytes : int;  (** summed indexed-text bytes of the shard *)
  elapsed_ms : float;
}

type outcome = {
  rows : (string * Odb.Query_eval.row) list;
      (** answer rows tagged with their file, in corpus order *)
  per_file : (string * Oqf.Execute.outcome) list;
      (** corpus order; empty when served from the cache *)
  per_shard : shard_report list;
      (** shard timings; empty when sequential or cached *)
  stats : Stdx.Stats.t;
      (** work across the whole run.  Under concurrency the global
          counters interleave, so per-file stats inside [per_file] may
          include neighbouring shards' work; this field diffs around
          the whole fan-out and stays exact. *)
  from_cache : bool;
}

val default_jobs : unit -> int
(** The [OQF_JOBS] environment variable when it parses as a positive
    integer, else 1. *)

val run_parallel :
  ?optimize:bool ->
  ?force:bool ->
  ?jobs:int ->
  ?cache:Rcache.t ->
  ?timeout_ms:float ->
  Oqf.Corpus.t ->
  Odb.Query.t ->
  (outcome, string) result
(** [jobs] defaults to {!default_jobs}; the pool gets
    [min jobs (number of non-empty shards)] workers.  [timeout_ms]
    bounds each shard task (expiry fails the query with a timeout
    message).  [force] reaches {!Oqf.Execute.run}: execute despite
    error-severity static-analysis findings.  With [cache], a hit skips evaluation entirely and a
    successful run populates the cache.  Errors name the failing file
    — deterministically the earliest one in corpus order.  [jobs < 1]
    is rejected as an error. *)

val run_one :
  ?optimize:bool ->
  ?force:bool ->
  ?cache:Rcache.t ->
  Oqf.Corpus.t ->
  Odb.Query.t ->
  (outcome, string) result
(** Sequential {!Oqf.Corpus.run} behind the same cache protocol —
    the per-task body of {!run_batch}. *)

val run_batch :
  ?optimize:bool ->
  ?force:bool ->
  ?jobs:int ->
  ?cache:Rcache.t ->
  Oqf.Corpus.t ->
  Odb.Query.t list ->
  (Odb.Query.t * (outcome, string) result) list
(** Run every query through a [jobs]-worker pool (inter-query
    parallelism; each query evaluates sequentially within its task),
    returning results in input order. *)

val pp_shard_report : Format.formatter -> shard_report -> unit
