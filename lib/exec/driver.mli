(** Parallel corpus execution.

    [run_parallel] is the multicore twin of {!Oqf.Corpus.run}: it
    partitions the corpus into weight-balanced shards ({!Shard}),
    evaluates each shard on a {!Pool} worker with the existing
    two-phase executor, and merges the per-file results back into
    corpus order — so its rows are {e identical} to the sequential
    run's (qcheck-verified in the test suite).  [run_one] is the
    sequential path with the same cache handling; [run_batch] fans a
    query list out over the pool, one query per task, sharing one
    result cache. *)

type shard_report = {
  shard : int;
  files : string list;
  weight_bytes : int;  (** summed indexed-text bytes of the shard *)
  elapsed_ms : float;
}

type fail_policy =
  | Fail_fast
      (** any failure fails the query, naming the earliest failing
          file in corpus order (the historical behaviour) *)
  | Partial
      (** failed files are excluded; the outcome carries a
          {!Oqf.Degrade} report saying which and why *)
  | Degrade
      (** per-file recovery ladder before giving up: the failed shard
          is re-evaluated on the coordinator, a still-failing file
          falls back to a naive scan of its raw bytes
          ({!Oqf.Execute.run_naive}), and only a file with no
          remaining path to its data is excluded.  A per-source
          circuit breaker ({!Stdx.Retry.Breaker}) stops a flapping
          file from burning the retry budget on every query.  Rows
          are byte-identical to a fault-free run whenever every file
          still has some path to its data. *)

val fail_policy_of_string : string -> (fail_policy, string) result
(** ["fail-fast"], ["partial"] or ["degrade"]. *)

val fail_policy_to_string : fail_policy -> string

type outcome = {
  rows : (string * Odb.Query_eval.row) list;
      (** answer rows tagged with their file, in corpus order *)
  per_file : (string * Oqf.Execute.outcome) list;
      (** corpus order; empty when served from the cache.  Only files
          answered from their index appear — naive-fallback files are
          in [rows] and [degraded] instead. *)
  per_shard : shard_report list;
      (** shard timings; empty when sequential or cached *)
  stats : Stdx.Stats.t;
      (** work across the whole run.  Under concurrency the global
          counters interleave, so per-file stats inside [per_file] may
          include neighbouring shards' work; this field diffs around
          the whole fan-out and stays exact. *)
  from_cache : bool;
  cache_superset : string option;
      (** [Some q] when the result was served by filtering the cached
          rows of superset query [q] (canonical text) instead of an
          exact cache entry or a fresh evaluation; the qlog record
          carries it as an [rcache.containment] event *)
  degraded : Oqf.Degrade.t list;
      (** every recovery action taken, in corpus order (shard-level
          retries first); [[]] for a clean run.  A degraded outcome is
          never written to the result cache. *)
}

val default_jobs : unit -> int
(** The [OQF_JOBS] environment variable when it parses as a positive
    integer, else 1. *)

val run_parallel :
  ?optimize:bool ->
  ?minimize:bool ->
  ?force:bool ->
  ?plan_mode:Oqf_cost.Planner.mode ->
  ?jobs:int ->
  ?cache:Rcache.t ->
  ?timeout_ms:float ->
  ?fail_policy:fail_policy ->
  ?qctx:Obs.Qlog.ctx ->
  ?generation:int ->
  Oqf.Corpus.t ->
  Odb.Query.t ->
  (outcome, string) result
(** [jobs] defaults to {!default_jobs}; the pool gets
    [min jobs (number of non-empty shards)] workers.  [timeout_ms]
    bounds each shard task (expiry fails the query with a timeout
    message).  [force] and [plan_mode] reach {!Oqf.Execute.run}:
    execute despite error-severity static-analysis findings / select
    the rule-based or cost-based planner.  With [cache], a hit skips evaluation entirely, a resident
    {e superset} entry answers by filtering its rows
    ({!Rcache.find_contained} — byte-identical, recorded in
    [cache_superset]), and a successful non-degraded run populates the
    cache.  [fail_policy]
    (default {!Fail_fast}) decides what a failure does; under
    [Fail_fast] errors name the failing file — deterministically the
    earliest one in corpus order.  A query-level defect (validation
    failure, unknown class) fails the query under every policy: it
    would fail identically on every file, and degrading it away would
    silently return nothing.  [jobs < 1] is rejected as an error. *)

val run_one :
  ?optimize:bool ->
  ?minimize:bool ->
  ?force:bool ->
  ?plan_mode:Oqf_cost.Planner.mode ->
  ?cache:Rcache.t ->
  ?fail_policy:fail_policy ->
  ?qctx:Obs.Qlog.ctx ->
  ?generation:int ->
  Oqf.Corpus.t ->
  Odb.Query.t ->
  (outcome, string) result
(** Sequential {!Oqf.Corpus.run} behind the same cache protocol —
    the per-task body of {!run_batch}.  [fail_policy] as in
    {!run_parallel} (minus the shard-retry rung — there are no
    shards).

    [qctx] (here and on every driver entry point): when present and a
    query log is installed ({!Obs.Qlog.install}), the run appends
    exactly one qlog record — whole-query latency, row count, cache
    hit, shard count, outcome, and the degradation/retry/fault events
    observed during the run — under [qctx]'s trace id, and observes
    the whole-query latency in the [exec.query_ms{workload}]
    histogram.  The per-file {!Oqf.Execute.run} calls underneath never
    receive a [qctx], so a driven query logs once, not once per
    file.

    [generation] (here and on the other qlog-writing entry points):
    the catalog generation the corpus was pinned at, recorded in the
    qlog record's [gen] field — omitted when absent (static
    corpus). *)

val run_streaming :
  ?optimize:bool ->
  ?minimize:bool ->
  ?force:bool ->
  ?plan_mode:Oqf_cost.Planner.mode ->
  ?lazy_phase1:bool ->
  ?cache:Rcache.t ->
  ?timeout_ms:float ->
  ?fail_policy:fail_policy ->
  ?qctx:Obs.Qlog.ctx ->
  ?generation:int ->
  pool:Pool.t ->
  on_rows:(file:string -> Odb.Query_eval.row list -> unit) ->
  Oqf.Corpus.t ->
  Odb.Query.t ->
  (outcome, string) result
(** The serve daemon's per-request path: submit one task per corpus
    file to a {e shared} long-lived [pool] (so concurrent requests
    interleave at file granularity instead of monopolising workers),
    then await the handles in corpus order, calling [on_rows] with
    each file's rows as soon as that file settles — the client streams
    file [k]'s answers while later files are still scanning.
    [on_rows] runs on the caller's thread and is never called with an
    empty row list.  Phase 1 defaults to the pull-based
    {!Ralg.Lazy_eval} ([lazy_phase1], default [true]).

    The returned outcome's [rows] are identical to {!run_parallel}'s
    for the same corpus and query (qcheck-verified).  The cache
    protocol matches {!run_parallel}, and a hit replays the payload
    through [on_rows] in per-file blocks.  [timeout_ms] bounds each
    file task individually.  [fail_policy] applies the same per-file
    ladder as {!run_parallel}; note that under [Fail_fast] an error
    can arrive {e after} rows have already been streamed — the wire
    protocol surfaces this as an error event terminating the row
    stream. *)

val run_batch :
  ?optimize:bool ->
  ?minimize:bool ->
  ?force:bool ->
  ?plan_mode:Oqf_cost.Planner.mode ->
  ?jobs:int ->
  ?cache:Rcache.t ->
  ?fail_policy:fail_policy ->
  ?workload:string ->
  Oqf.Corpus.t ->
  Odb.Query.t list ->
  (Odb.Query.t * (outcome, string) result) list
(** Run every query through a [jobs]-worker pool (inter-query
    parallelism; each query evaluates sequentially within its task),
    returning results in input order.  With [cache], a query repeated
    within the batch waits for its first occurrence before probing, so
    duplicates hit deterministically rather than racing the original's
    insert.  When a query log is installed, each batched query gets
    its own freshly minted trace id and one qlog record labelled
    [workload]. *)

val pp_shard_report : Format.formatter -> shard_report -> unit
