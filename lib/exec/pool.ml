(* Fixed-size domain pool over one bounded queue: Mutex + two
   Conditions ([not_empty] wakes workers, [not_full] wakes blocked
   submitters).  Tasks are pre-packed [unit -> unit] closures that
   write their own handle, so the queue needs no existential. *)

let tasks_completed = Obs.Metrics.counter "exec.pool.tasks_completed"
let tasks_failed = Obs.Metrics.counter "exec.pool.tasks_failed"
let tasks_timed_out = Obs.Metrics.counter "exec.pool.tasks_timed_out"
let task_escapes = Obs.Metrics.counter "exec.pool.task_escapes"
let worker_deaths = Obs.Metrics.counter "exec.pool.worker_deaths"
let queue_depth = Obs.Metrics.histogram "exec.pool.queue_depth"

type t = {
  n_jobs : int;
  capacity : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

type 'a state = Pending | Done of ('a, string) result

type 'a handle = {
  h_lock : Mutex.t;
  h_done : Condition.t;
  mutable state : 'a state;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let jobs t = t.n_jobs

let worker t index =
  let rec loop () =
    let task =
      locked t.lock (fun () ->
          while Queue.is_empty t.queue && not t.closing do
            Condition.wait t.not_empty t.lock
          done;
          if Queue.is_empty t.queue then None  (* closing and drained *)
          else begin
            let task = Queue.pop t.queue in
            Condition.signal t.not_full;
            Some task
          end)
    in
    match task with
    | None -> ()
    | Some task ->
        (* A task closure normally captures its own failures into its
           handle; if one still lets an exception escape, the worker
           must survive it — a dead worker would strand every queued
           task and hang the awaiting callers. *)
        (try
           if Obs.Trace.enabled () then
             Obs.Trace.with_span "exec.task"
               ~attrs:(fun () -> [ ("worker", Obs.Trace.Int index) ])
               task
           else task ()
         with _ -> Obs.Metrics.incr task_escapes);
        loop ()
  in
  loop ()

let create ?(queue_capacity = 256) ~jobs () =
  if jobs < 1 then invalid_arg "Exec.Pool.create: jobs must be at least 1";
  if queue_capacity < 1 then
    invalid_arg "Exec.Pool.create: queue capacity must be at least 1";
  let t =
    {
      n_jobs = jobs;
      capacity = queue_capacity;
      queue = Queue.create ();
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      closing = false;
      workers = [];
    }
  in
  t.workers <- List.init jobs (fun i -> Domain.spawn (fun () -> worker t i));
  t

let complete h result =
  locked h.h_lock (fun () ->
      h.state <- Done result;
      Condition.broadcast h.h_done)

let submit ?timeout_ms t f =
  let h = { h_lock = Mutex.create (); h_done = Condition.create (); state = Pending } in
  let run () =
    (* The handle is completed no matter how this closure exits — even
       an exception from the metrics/trace plumbing cannot leave an
       awaiting caller blocked forever. *)
    let result = ref (Error "task abandoned by its worker") in
    Fun.protect
      ~finally:(fun () -> complete h !result)
      (fun () ->
        result :=
          (match
             match timeout_ms with
             | None -> f ()
             | Some ms -> Obs.Deadline.with_timeout_ms ms f
           with
          | v ->
              Obs.Metrics.incr tasks_completed;
              Ok v
          | exception Obs.Deadline.Expired budget ->
              Obs.Metrics.incr tasks_timed_out;
              Error (Printf.sprintf "task timed out after %.0f ms" budget)
          | exception e ->
              Obs.Metrics.incr tasks_failed;
              Error (Printexc.to_string e)))
  in
  locked t.lock (fun () ->
      if t.closing then invalid_arg "Exec.Pool.submit: pool is shut down";
      while Queue.length t.queue >= t.capacity && not t.closing do
        Condition.wait t.not_full t.lock
      done;
      if t.closing then invalid_arg "Exec.Pool.submit: pool is shut down";
      Queue.push run t.queue;
      Obs.Metrics.observe queue_depth (float_of_int (Queue.length t.queue));
      Condition.signal t.not_empty);
  h

let await h =
  locked h.h_lock (fun () ->
      let rec wait () =
        match h.state with
        | Pending ->
            Condition.wait h.h_done h.h_lock;
            wait ()
        | Done r -> r
      in
      wait ())

let run_all ?timeout_ms t thunks =
  List.map await (List.map (fun f -> submit ?timeout_ms t f) thunks)

let shutdown t =
  let workers =
    locked t.lock (fun () ->
        t.closing <- true;
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full;
        let ws = t.workers in
        t.workers <- [];
        ws)
  in
  (* Join every domain even if one died abnormally: shutdown must not
     leak the remaining workers or re-raise mid-join. *)
  List.iter
    (fun d ->
      try Domain.join d with _ -> Obs.Metrics.incr worker_deaths)
    workers

let with_pool ?queue_capacity ~jobs f =
  let t = create ?queue_capacity ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
