let all =
  [
    ("bibtex", Fschema.Bibtex_schema.view);
    ("log", Fschema.Log_schema.view);
    ("sgml", Fschema.Sgml_schema.view);
    ("mbox", Fschema.Mbox_schema.view);
  ]

let find name = List.assoc_opt name all
let names = List.map fst all

(* Views are toplevel values referenced both here and by their schema
   modules, so physical equality identifies the built-in schemas; a
   hand-assembled view is simply anonymous. *)
let name_of_view view =
  List.find_map (fun (name, v) -> if v == view then Some name else None) all

let find_result name =
  match find name with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "unknown schema %s (expected %s)" name
           (String.concat "|" names))
