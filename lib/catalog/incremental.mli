(** Incremental index maintenance for append-only sources.

    The paper's motivating file system (§2) contains files that only
    grow — logs, mail folders.  When the old contents are an unchanged
    prefix of the new file, the indices need not be rebuilt: only the
    appended tail is tokenized and parsed, the word index is extended
    ({!Pat.Word_index.extend}) and each named region set is unioned
    with the tail's regions. *)

val append_shape : Fschema.Grammar.t -> (string * string) option
(** [Some (header, element)] when the grammar's root rule is the
    literal [header] followed by [element*] with no separator — the
    shape under which appending whole elements leaves old regions
    untouched.  [None] otherwise (such schemas always rebuild). *)

val extend_instance :
  Fschema.View.t ->
  old_instance:Pat.Instance.t ->
  old_len:int ->
  Pat.Text.t ->
  (Pat.Instance.t, string) result
(** [extend_instance view ~old_instance ~old_len new_text] extends an
    instance over the first [old_len] bytes to all of [new_text]
    (whose prefix of length [old_len] must equal the old text; the
    caller checks this with the fingerprint).  The indexed names are
    the old instance's.  Fails — and the caller falls back to a full
    rebuild — when the schema is not append-only or the tail does not
    parse as a run of elements. *)

val verify_against_rig :
  Fschema.View.t -> Pat.Instance.t -> (unit, string) result
(** Check the extended instance against the RIG of its indexed names
    (Definition 3.1).  Quadratic in the number of regions — meant for
    tests and paranoid refreshes, not the hot path. *)
