(* Incremental maintenance for append-only sources.

   A schema is append-only when its root rule is a literal header
   followed by a starred element with no separator (the log and mbox
   schemas): appending whole elements to the file leaves every old
   region in place.  The appended tail is then parsed on its own — the
   header literal is prepended so the root rule applies, and the
   resulting element regions are shifted back to file offsets — the
   word index is extended rather than rebuilt, and the old region sets
   are unioned with the tail's. *)

let append_shape grammar =
  match Fschema.Grammar.rules_of grammar (Fschema.Grammar.root grammar) with
  | [ Fschema.Grammar.Seq
        [
          Fschema.Grammar.Lit header;
          Fschema.Grammar.Star { nonterm; separator = None };
        ] ] ->
      Some (header, nonterm)
  | _ -> None

let shift_region k (r : Pat.Region.t) =
  Pat.Region.make ~start:(r.start + k) ~stop:(r.stop + k)

let extend_instance view ~old_instance ~old_len new_text =
  let grammar = view.Fschema.View.grammar in
  match append_shape grammar with
  | None ->
      Error
        (Printf.sprintf "schema rooted at %s is not append-only"
           (Fschema.Grammar.root grammar))
  | Some (header, _element) ->
      let new_len = Pat.Text.length new_text in
      if new_len < old_len then Error "file shrank"
      else begin
        let tail = Pat.Text.sub new_text ~pos:old_len ~len:(new_len - old_len) in
        let synthetic = Pat.Text.of_string (header ^ tail) in
        match Fschema.Parser_engine.parse grammar synthetic with
        | Error e ->
            Error
              ("appended tail does not parse: "
              ^ Fschema.Parser_engine.describe_error synthetic e)
        | Ok tree ->
            (* synthetic offset p >= |header| is file offset
               p - |header| + old_len *)
            let shift = old_len - String.length header in
            let keep = Pat.Instance.names old_instance in
            let tail_regions =
              List.filter_map
                (fun (symbol, (r : Pat.Region.t)) ->
                  if r.start >= String.length header && List.mem symbol keep
                  then Some (symbol, shift_region shift r)
                  else None)
                (Fschema.Builder.regions_of_tree tree)
            in
            let bindings =
              List.map
                (fun name ->
                  let added =
                    Pat.Region_set.of_list
                      (List.filter_map
                         (fun (sym, r) -> if sym = name then Some r else None)
                         tail_regions)
                  in
                  ( name,
                    Pat.Region_set.union
                      (Pat.Instance.find old_instance name)
                      added ))
                keep
            in
            let word_index =
              Pat.Word_index.extend
                (Pat.Instance.word_index old_instance)
                new_text ~old_len
            in
            Ok (Pat.Instance.create_with_word_index new_text word_index bindings)
      end

let verify_against_rig view instance =
  let keep = Pat.Instance.names instance in
  let rig =
    Fschema.Rig_of_grammar.for_index view.Fschema.View.grammar ~keep
  in
  match Pat.Instance.satisfies_rig instance ~edges:(Ralg.Rig.edges rig) with
  | None -> Ok ()
  | Some (a, b) ->
      Error
        (Printf.sprintf
           "incremental result violates the RIG: %s directly includes %s \
            without an edge"
           a b)
