type entry = { instance : Pat.Instance.t; cost : int; mutable stamp : int }

(* Internally locked: with watch-mode ingest, a background writer
   domain inserts rebuilt instances while reader threads look up
   pinned-snapshot instances concurrently.  The critical sections are
   hashtable bookkeeping only — never index loading — so one mutex is
   cheap. *)
type t = {
  lock : Mutex.t;
  budget : int;
  table : (string, entry) Hashtbl.t;
  mutable used : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Resident footprint estimate: the text bytes, one word per suffix-array
   slot, and three words per region (start, stop, array slot).  The point
   is a stable relative measure for the budget, not byte-exactness. *)
let cost_of_instance instance =
  let word = 8 in
  Pat.Text.length (Pat.Instance.text instance)
  + (word * Pat.Word_index.size (Pat.Instance.word_index instance))
  + (3 * word * Pat.Instance.total_regions instance)

let create ~budget_bytes =
  {
    lock = Mutex.create ();
    budget = max budget_bytes 0;
    table = Hashtbl.create 16;
    used = 0;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let count t = with_lock t (fun () -> Hashtbl.length t.table)
let used_bytes t = with_lock t (fun () -> t.used)
let budget_bytes t = t.budget

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  let hit =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e ->
            e.stamp <- tick t;
            t.hits <- t.hits + 1;
            Some e.instance
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  (match hit with
  | Some _ ->
      Stdx.Stats.(incr cache_hits);
      if Obs.Trace.enabled () then
        Obs.Trace.instant "cache.hit" ~attrs:[ ("key", Obs.Trace.Str key) ]
  | None ->
      Stdx.Stats.(incr cache_misses);
      if Obs.Trace.enabled () then
        Obs.Trace.instant "cache.miss" ~attrs:[ ("key", Obs.Trace.Str key) ]);
  hit

let remove_locked t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.table key;
      t.used <- t.used - e.cost

let remove t key = with_lock t (fun () -> remove_locked t key)

let evict_lru_locked t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.stamp <= e.stamp -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> None
  | Some (key, _) ->
      remove_locked t key;
      t.evictions <- t.evictions + 1;
      Some key

let add t key instance =
  let cost = cost_of_instance instance in
  let evicted =
    with_lock t (fun () ->
        remove_locked t key;
        (* an instance larger than the whole budget is not cached at all *)
        if cost > t.budget then []
        else begin
          let evicted = ref [] in
          let continue = ref true in
          while t.used + cost > t.budget && !continue do
            match evict_lru_locked t with
            | Some victim -> evicted := victim :: !evicted
            | None -> continue := false
          done;
          Hashtbl.replace t.table key { instance; cost; stamp = tick t };
          t.used <- t.used + cost;
          List.rev !evicted
        end)
  in
  List.iter
    (fun victim ->
      Stdx.Stats.(incr cache_evictions);
      if Obs.Trace.enabled () then
        Obs.Trace.instant "cache.evict"
          ~attrs:[ ("key", Obs.Trace.Str victim) ])
    evicted

type stats = { hits : int; misses : int; evictions : int }

let stats (t : t) =
  with_lock t (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions })

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits=%d misses=%d evictions=%d" s.hits s.misses
    s.evictions
