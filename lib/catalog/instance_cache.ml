type entry = { instance : Pat.Instance.t; cost : int; mutable stamp : int }

type t = {
  budget : int;
  table : (string, entry) Hashtbl.t;
  mutable used : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* Resident footprint estimate: the text bytes, one word per suffix-array
   slot, and three words per region (start, stop, array slot).  The point
   is a stable relative measure for the budget, not byte-exactness. *)
let cost_of_instance instance =
  let word = 8 in
  Pat.Text.length (Pat.Instance.text instance)
  + (word * Pat.Word_index.size (Pat.Instance.word_index instance))
  + (3 * word * Pat.Instance.total_regions instance)

let create ~budget_bytes =
  {
    budget = max budget_bytes 0;
    table = Hashtbl.create 16;
    used = 0;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let count t = Hashtbl.length t.table
let used_bytes t = t.used
let budget_bytes t = t.budget

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.stamp <- tick t;
      t.hits <- t.hits + 1;
      Stdx.Stats.(incr cache_hits);
      if Obs.Trace.enabled () then
        Obs.Trace.instant "cache.hit" ~attrs:[ ("key", Obs.Trace.Str key) ];
      Some e.instance
  | None ->
      t.misses <- t.misses + 1;
      Stdx.Stats.(incr cache_misses);
      if Obs.Trace.enabled () then
        Obs.Trace.instant "cache.miss" ~attrs:[ ("key", Obs.Trace.Str key) ];
      None

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.table key;
      t.used <- t.used - e.cost

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.stamp <= e.stamp -> acc
        | _ -> Some (key, e))
      t.table None
  in
  match victim with
  | None -> false
  | Some (key, _) ->
      remove t key;
      t.evictions <- t.evictions + 1;
      Stdx.Stats.(incr cache_evictions);
      if Obs.Trace.enabled () then
        Obs.Trace.instant "cache.evict" ~attrs:[ ("key", Obs.Trace.Str key) ];
      true

let add t key instance =
  remove t key;
  let cost = cost_of_instance instance in
  (* an instance larger than the whole budget is not cached at all *)
  if cost <= t.budget then begin
    while t.used + cost > t.budget && evict_lru t do
      ()
    done;
    Hashtbl.replace t.table key { instance; cost; stamp = tick t };
    t.used <- t.used + cost
  end

type stats = { hits : int; misses : int; evictions : int }

let stats (t : t) = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits=%d misses=%d evictions=%d" s.hits s.misses
    s.evictions
