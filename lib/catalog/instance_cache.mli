(** A bounded LRU cache of loaded index instances.

    Repeated queries against the same catalog entry should not reload
    (and re-derive the word index of) the persisted file each time.  The
    cache holds whole instances under a configurable memory budget,
    evicting the least recently used entry when the budget is exceeded.
    Hit/miss/eviction counts are kept per cache and mirrored into the
    ambient {!Stdx.Stats.global} counters, so query outcomes report
    cache traffic alongside the paper's work quantities.

    The cache is internally locked: watch-mode ingest inserts rebuilt
    instances from a background domain while reader threads serve
    pinned snapshots, so every operation is safe to call
    concurrently. *)

type t

val create : budget_bytes:int -> t
(** A cache that keeps at most [budget_bytes] worth of instances (as
    estimated by {!cost_of_instance}). *)

val find : t -> string -> Pat.Instance.t option
(** Lookup by key, recording a hit (and refreshing recency) or a miss. *)

val add : t -> string -> Pat.Instance.t -> unit
(** Insert, evicting least-recently-used entries until the budget
    holds.  An instance costing more than the whole budget is simply
    not cached.  Replaces any previous entry under the same key. *)

val remove : t -> string -> unit
(** Drop one entry (e.g. after its source file changed).  Not counted
    as an eviction. *)

val count : t -> int
val used_bytes : t -> int
val budget_bytes : t -> int

val cost_of_instance : Pat.Instance.t -> int
(** Estimated resident bytes: text + suffix array + regions. *)

type stats = { hits : int; misses : int; evictions : int }

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
