(** Watch-mode ingest: a polling watcher for live corpora.

    The north-star workload is a corpus that grows {e while} queries
    stream — tail a log, query continuously.  A watcher turns the
    catalog's explicit-refresh model into continuous ingest: each
    {!scan} stats every entry ({!Catalog.possibly_stale} — mtime/size
    only, the seam where an inotify event source would plug in),
    refreshes the entries that changed (committing new generations
    that pinned readers never observe mid-query), and retires
    unreferenced generations.

    Robustness: {!start} wraps every scan in {!Stdx.Retry.io} at site
    [watch.scan] (retry with backoff; an exhausted budget is counted
    in [watch.errors] and the watcher keeps running), and each source
    has a circuit breaker ({!Stdx.Retry.Breaker}, key
    [watch:<source>]) so a persistently failing file is skipped
    rather than re-attempted at full cost every pass — probed again
    every few scans so a healed source gets back in.

    Metrics: [watch.scans], [watch.refreshes], [watch.errors], plus
    the catalog's own [catalog.generation] gauge.  When a query log
    is installed, every scan that refreshed or failed something
    appends one record of kind ["watch"]. *)

type event =
  | Refreshed of string * Catalog.refresh
      (** a source was re-indexed (incrementally or rebuilt) *)
  | Failed of string * string  (** refresh failed: (source, reason) *)
  | Skipped of string  (** breaker open; source not attempted *)

type report = {
  scanned : int;  (** entries examined *)
  refreshed : int;  (** entries whose index actually changed *)
  failed : int;
  skipped : int;  (** skipped because their breaker is open *)
  retired : string list;  (** catalog-relative paths the reaper removed *)
  generation : int;  (** current generation after the scan *)
}

val scan :
  ?lock:Mutex.t ->
  ?on_event:(event -> unit) ->
  ?probe_open:bool ->
  Catalog.t ->
  report
(** One synchronous pass.  [lock] (the serve daemon's catalog lock) is
    held around each mutating refresh and the retirement sweep — not
    the whole pass — so concurrent readers only ever wait for one
    commit.  [probe_open] attempts sources whose breaker is open
    (default [false]).  [on_event] fires per entry, in catalogue
    order. *)

type t
(** A running background watcher. *)

val start :
  ?interval_ms:float ->
  ?lock:Mutex.t ->
  ?on_event:(event -> unit) ->
  Catalog.t ->
  t
(** Spawn a domain running {!scan} every [interval_ms] (default 500)
    until {!stop}.  Scans retry transient failures with backoff and
    never kill the watcher; open breakers are probed every few scans.
    [on_event] runs on the watcher domain. *)

val stop : t -> unit
(** Signal the watcher and join its domain (returns after the
    in-flight scan, if any, completes). *)
