(* A catalog is a directory:

     <dir>/CATALOG                 the current manifest (text, one block
                                   per entry, generation-stamped)
     <dir>/GEN                     generation pointer ("oqf-gen N")
     <dir>/generations/MANIFEST.gN immutable image of generation N
     <dir>/indices/*.idx           persisted instances (Pat.Index_store)

   The manifest records, per source file: the schema name, the indexed
   region names, a content fingerprint (MD5 + length) of the source as
   of the last build, the index format version, and the index file
   name.  Refresh fingerprints the source and rebuilds only what is
   new or stale; appended-to sources of append-only schemas are
   maintained incrementally.

   Every committed mutation produces a new, monotonically numbered
   generation: index files written by rebuilds and extensions carry the
   generation in their name and are never overwritten, so a reader that
   pinned generation G (see {!pin}) keeps reading exactly G's bytes
   while the writer commits G+1..G+k.  Unreferenced generations are
   retired by {!retire_unreferenced}, which is safe to kill at any
   point: deletion candidates come only from retired generation
   manifests, and any file still referenced by the current entries or a
   surviving generation manifest is spared. *)

let manifest_name = "CATALOG"
let manifest_magic = "oqf-catalog 1"
let indices_subdir = "indices"
let generations_subdir = "generations"
let gen_pointer_name = "GEN"
let gen_magic = "oqf-gen"

type entry = {
  source : string;
  schema : string;
  index_names : string list;
  length : int;
  digest : string;  (* hex MD5 of the source contents at build time *)
  version : int;    (* index format version the entry was written with *)
  index_file : string;  (* relative to the catalog directory *)
  stats : (string * int * int) list;
      (* per region name: (name, region count, match-point count),
         captured at build time; [] for entries written before the
         field existed *)
  depths : (string * int array) list;
      (* per region name: histogram of nesting depths (index d counts
         the regions lying under exactly d enclosing indexed regions;
         the last bucket absorbs deeper nesting), captured at build
         time; [] for entries written before the field existed *)
}

(* Concurrency contract: one writer, N readers.  [entries] and
   [generation] are read and replaced together under [gen_lock]; the
   writer never mutates a published entry list in place, it installs a
   fresh one at commit.  [pins] maps generation -> refcount and is
   touched only under [gen_lock]. *)
type t = {
  dir : string;
  mutable entries : entry list;  (* in add order *)
  mutable generation : int;
  gen_lock : Mutex.t;
  pins : (int, int) Hashtbl.t;
  cache : Instance_cache.t;
  mutable warnings : string list;  (* torn-manifest recovery notes *)
}

let dir t = t.dir
let entries t = t.entries
let cache t = t.cache
let recovery_warnings t = t.warnings
let generation t = t.generation

let catalog_healed = Obs.Metrics.counter "catalog.healed"
let catalog_quarantined = Obs.Metrics.counter "catalog.quarantined"
let catalog_recovered = Obs.Metrics.counter "catalog.recovered"
let catalog_generation = Obs.Metrics.counter "catalog.generation"
let catalog_commits = Obs.Metrics.counter "catalog.commits"
let catalog_retired = Obs.Metrics.counter "catalog.retired"
let snapshot_pinned = Obs.Metrics.counter "snapshot.pinned"
let find t source = List.find_opt (fun e -> e.source = source) t.entries

let default_budget = 64 * 1024 * 1024

(* ---------------- manifest serialisation ---------------- *)

let entry_to_lines e =
  [
    "entry";
    "source " ^ e.source;
    "schema " ^ e.schema;
    "index " ^ String.concat "," e.index_names;
    "length " ^ string_of_int e.length;
    "digest " ^ e.digest;
    "version " ^ string_of_int e.version;
    "file " ^ e.index_file;
  ]
  @ List.map
      (fun (name, regions, mps) ->
        Printf.sprintf "rstat %s %d %d" name regions mps)
      e.stats
  @ List.map
      (fun (name, hist) ->
        Printf.sprintf "rdepth %s %s" name
          (String.concat " "
             (List.map string_of_int (Array.to_list hist))))
      e.depths
  @ [ "end" ]

let manifest_image ~generation entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (manifest_magic ^ "\n");
  Buffer.add_string buf (Printf.sprintf "generation %d\n" generation);
  List.iter
    (fun e ->
      List.iter
        (fun line ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')
        (entry_to_lines e))
    entries;
  Buffer.contents buf

(* Crash-safe: the new image is written to a temp file, forced to disk
   with fsync, and renamed over the old file.  A crash at any point
   leaves either the old file or the new one — never a torn mix. *)
let write_atomic ~site path content =
  Stdx.Retry.io ~site @@ fun () ->
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc content;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  (* the crash window the rename protects: tmp is durable, the swap has
     not happened yet *)
  Stdx.Fault.hit site;
  Sys.rename tmp path

let manifest_path dir = Filename.concat dir manifest_name
let gen_pointer_path dir = Filename.concat dir gen_pointer_name
let generations_dir dir = Filename.concat dir generations_subdir

let gen_manifest_rel g =
  Filename.concat generations_subdir (Printf.sprintf "MANIFEST.g%d" g)

let gen_manifest_path t g = Filename.concat t.dir (gen_manifest_rel g)

let ensure_layout dir =
  List.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    [ Filename.concat dir indices_subdir; generations_dir dir ]

let write_pointer dir g =
  write_atomic ~site:"gen.commit" (gen_pointer_path dir)
    (Printf.sprintf "%s %d\n" gen_magic g)

(* The pointer is advisory — the CATALOG manifest remains the single
   source of truth for content; the pointer only guards generation
   numbering monotonicity across a crash between the manifest swap and
   the pointer move.  Reading it takes no retry site: any damage is
   salvaged at open. *)
let read_pointer dir =
  let path = gen_pointer_path dir in
  if not (Sys.file_exists path) then `Missing
  else begin
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> input_line ic)
    with
    | exception _ -> `Damaged
    | line -> begin
        match String.split_on_char ' ' (String.trim line) with
        | [ magic; g ] when magic = gen_magic -> begin
            match int_of_string_opt g with
            | Some g when g >= 0 -> `Gen g
            | _ -> `Damaged
          end
        | _ -> `Damaged
      end
  end

(* Rewrite the current manifest and pointer at the current generation —
   recovery's path (no generation bump, no new immutable image). *)
let write_current t =
  let image = manifest_image ~generation:t.generation t.entries in
  write_atomic ~site:"catalog.write" (manifest_path t.dir) image;
  write_pointer t.dir t.generation

let field name line =
  let prefix = name ^ " " in
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then
    Some
      (String.sub line (String.length prefix)
         (String.length line - String.length prefix))
  else None

(* Lenient by design: a damaged manifest (torn tail from a crash on a
   filesystem without atomic rename, hand-editing, bit rot) keeps its
   complete leading entries and drops everything from the first bad
   line on, reporting why.  Only a wrong magic line is a hard error —
   that is not our file. *)
let parse_manifest path lines =
  let generation = ref None in
  let salvage acc reason = Ok (List.rev acc, !generation, Some reason) in
  let rec entries acc = function
    | [] -> Ok (List.rev acc, !generation, None)
    | "entry" :: rest -> block [] rest acc
    | "" :: rest -> entries acc rest
    | line :: rest when field "generation" line <> None -> begin
        match Option.bind (field "generation" line) int_of_string_opt with
        | Some g when g >= 0 ->
            generation := Some g;
            entries acc rest
        | _ -> salvage acc "malformed generation line"
      end
    | line :: _ ->
        salvage acc (Printf.sprintf "unexpected manifest line %S" line)
  and block fields rest acc =
    match rest with
    | "end" :: rest -> begin
        let get name = List.find_map (field name) (List.rev fields) in
        (* optional per-name statistics; absent in manifests written
           before the field existed, and skipped (not fatal) when
           malformed so older/newer builds can read each other *)
        let stats =
          List.filter_map
            (fun line ->
              match field "rstat" line with
              | None -> None
              | Some rest -> begin
                  match String.split_on_char ' ' rest with
                  | [ name; regions; mps ] -> begin
                      match
                        (int_of_string_opt regions, int_of_string_opt mps)
                      with
                      | Some r, Some m -> Some (name, r, m)
                      | _ -> None
                    end
                  | _ -> None
                end)
            (List.rev fields)
        in
        (* optional per-name nesting-depth histograms, same
           compatibility contract as rstat *)
        let depths =
          List.filter_map
            (fun line ->
              match field "rdepth" line with
              | None -> None
              | Some rest -> begin
                  match String.split_on_char ' ' rest with
                  | name :: (_ :: _ as counts) -> begin
                      match
                        List.map int_of_string_opt counts
                        |> List.fold_left
                             (fun acc c ->
                               match (acc, c) with
                               | Some acc, Some c -> Some (c :: acc)
                               | _ -> None)
                             (Some [])
                      with
                      | Some rev -> Some (name, Array.of_list (List.rev rev))
                      | None -> None
                    end
                  | _ -> None
                end)
            (List.rev fields)
        in
        match
          ( get "source", get "schema", get "index", get "length",
            get "digest", get "version", get "file" )
        with
        | ( Some source, Some schema, Some index, Some length, Some digest,
            Some version, Some index_file ) -> begin
            match (int_of_string_opt length, int_of_string_opt version) with
            | Some length, Some version ->
                entries
                  ({
                     source;
                     schema;
                     index_names =
                       List.filter
                         (fun s -> s <> "")
                         (String.split_on_char ',' index);
                     length;
                     digest;
                     version;
                     index_file;
                     stats;
                     depths;
                   }
                  :: acc)
                  rest
            | _ ->
                salvage acc
                  (Printf.sprintf "entry for %s has a malformed number" source)
          end
        | _ -> salvage acc "entry block with missing fields"
      end
    | line :: rest -> block (line :: fields) rest acc
    | [] -> salvage acc "unterminated entry block"
  in
  match lines with
  | magic :: rest when magic = manifest_magic -> entries [] rest
  | _ -> Error (path ^ ": not an oqf catalog manifest (bad first line)")

let read_lines path =
  Stdx.Retry.io ~site:"catalog.read" @@ fun () ->
  Stdx.Fault.hit "catalog.read";
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* ---------------- generations: listing and retirement ---------------- *)

let list_generations t =
  match Sys.readdir (generations_dir t.dir) with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             let prefix = "MANIFEST.g" in
             if String.length f > String.length prefix
                && String.sub f 0 (String.length prefix) = prefix
             then
               int_of_string_opt
                 (String.sub f (String.length prefix)
                    (String.length f - String.length prefix))
             else None)
      |> List.sort compare

(* The index files a generation's immutable manifest references; [] for
   an unreadable image (its files then fall to the orphan sweep of
   [repair] rather than being deleted on someone else's say-so). *)
let files_of_generation t g =
  let path = gen_manifest_path t g in
  match parse_manifest path (read_lines path) with
  | exception _ -> []
  | Error _ -> []
  | Ok (entries, _, _) -> List.map (fun e -> e.index_file) entries

let pinned_generations t =
  Mutex.lock t.gen_lock;
  let pins = Hashtbl.fold (fun g n acc -> (g, n) :: acc) t.pins [] in
  Mutex.unlock t.gen_lock;
  List.sort compare pins

(* Retire every generation older than the current one that no snapshot
   pins: delete the index files only it references, then its manifest.
   Crash-safe by construction — deletion candidates come only from the
   retired manifest's own file list, and anything referenced by the
   current entries or by a manifest that survives this pass is spared.
   A kill at any point leaves extra files, never missing ones; the next
   pass (or [repair]) finishes the job.  Safe against concurrent pins:
   a reader can only pin the current generation, and [dead] excludes
   it, so no generation in [dead] can gain a pin mid-pass. *)
let retire_unreferenced t =
  Mutex.lock t.gen_lock;
  let current = t.generation in
  let pinned = Hashtbl.fold (fun g _ acc -> g :: acc) t.pins [] in
  Mutex.unlock t.gen_lock;
  let gens = list_generations t in
  let dead =
    List.filter (fun g -> g < current && not (List.mem g pinned)) gens
  in
  if dead = [] then []
  else begin
    let kept = List.filter (fun g -> not (List.mem g dead)) gens in
    let referenced =
      List.map (fun e -> e.index_file) t.entries
      @ List.concat_map (files_of_generation t) kept
    in
    let removed = ref [] in
    List.iter
      (fun g ->
        try
          Stdx.Fault.hit "gen.retire";
          List.iter
            (fun rel ->
              if not (List.mem rel referenced) then begin
                match Sys.remove (Filename.concat t.dir rel) with
                | () -> removed := rel :: !removed
                | exception Sys_error _ -> ()
              end)
            (files_of_generation t g);
          (try Sys.remove (gen_manifest_path t g) with Sys_error _ -> ());
          removed := gen_manifest_rel g :: !removed;
          Obs.Metrics.incr catalog_retired;
          if Obs.Trace.enabled () then
            Obs.Trace.instant "gen.retire"
              ~attrs:[ ("generation", Obs.Trace.Int g) ]
        with
        | Stdx.Fault.Injected _ | Sys_error _ ->
            (* a faulted retirement is not an error: the generation
               stays on disk and the next pass picks it up *)
            ())
      dead;
    List.rev !removed
  end

(* Commit a new entry list as the next generation:

     1. write generations/MANIFEST.g<next>   (durable immutable image)
     2. rename it over CATALOG               (the authoritative swap)
     3. move the GEN pointer

   [gen.commit] fires in the 1->2 and 2->3 crash windows (the
   [catalog.write] site keeps guarding step 2 as it always has).  A
   crash after 1 leaves a stray future image repair collapses; a crash
   after 2 leaves a stale pointer open_dir salvages.  Only after all
   three does the new state become visible to readers — installed
   atomically under [gen_lock] so a concurrent [pin] sees either the
   old generation with the old entries or the new with the new. *)
let commit t entries' =
  Obs.Trace.with_span "gen.commit"
    ~attrs:(fun () -> [ ("generation", Obs.Trace.Int (t.generation + 1)) ])
  @@ fun () ->
  ensure_layout t.dir;
  let next = t.generation + 1 in
  let image = manifest_image ~generation:next entries' in
  write_atomic ~site:"gen.commit" (gen_manifest_path t next) image;
  write_atomic ~site:"catalog.write" (manifest_path t.dir) image;
  write_pointer t.dir next;
  Mutex.lock t.gen_lock;
  t.entries <- entries';
  t.generation <- next;
  Mutex.unlock t.gen_lock;
  Obs.Metrics.set catalog_generation next;
  Obs.Metrics.incr catalog_commits;
  ignore (retire_unreferenced t : string list)

(* ---------------- opening ---------------- *)

let make ~dir ~entries ~generation ~budget_bytes =
  {
    dir;
    entries;
    generation;
    gen_lock = Mutex.create ();
    pins = Hashtbl.create 8;
    cache = Instance_cache.create ~budget_bytes;
    warnings = [];
  }

let init dir =
  if Sys.file_exists (manifest_path dir) then
    Error (dir ^ " already holds a catalog")
  else begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    if not (Sys.is_directory dir) then Error (dir ^ " is not a directory")
    else begin
      let t = make ~dir ~entries:[] ~generation:0 ~budget_bytes:default_budget in
      ensure_layout dir;
      let image = manifest_image ~generation:0 [] in
      write_atomic ~site:"gen.commit" (gen_manifest_path t 0) image;
      write_atomic ~site:"catalog.write" (manifest_path dir) image;
      write_pointer dir 0;
      Ok t
    end
  end

let open_dir ?(budget_bytes = default_budget) dir =
  let path = manifest_path dir in
  if not (Sys.file_exists path) then
    Error (dir ^ " holds no catalog (run catalog init first)")
  else begin
    match parse_manifest path (read_lines path) with
    | Error e -> Error e
    | Ok (entries, mgen, recovered) ->
        let has_gen_line = mgen <> None in
        let mgen = Option.value mgen ~default:0 in
        let t = make ~dir ~entries ~generation:mgen ~budget_bytes in
        let warn w = t.warnings <- t.warnings @ [ w ] in
        (* the pointer only guards numbering monotonicity; the manifest
           stays authoritative for content.  Disagreement means a crash
           landed between the manifest swap and the pointer move (or
           the pointer was damaged) — adopt the higher number and
           rewrite the pointer. *)
        let pointer_damage =
          match read_pointer dir with
          | `Gen g when g = t.generation -> None
          | `Gen g when g > t.generation ->
              t.generation <- g;
              Some
                (Printf.sprintf
                   "generation pointer ahead of manifest (%d > %d); adopted \
                    %d as the numbering floor"
                   g mgen g)
          | `Gen g ->
              Some
                (Printf.sprintf "stale generation pointer (%d, manifest at %d)"
                   g t.generation)
          | `Missing when (not has_gen_line) && t.generation = 0 ->
              None (* legacy pre-generation catalog: silent upgrade *)
          | `Missing -> Some "generation pointer missing"
          | `Damaged -> Some "generation pointer unreadable"
        in
        (match recovered with
        | None -> begin
            match pointer_damage with
            | None -> ()
            | Some reason ->
                Obs.Metrics.incr catalog_recovered;
                warn (Printf.sprintf "%s; rewrote it" reason);
                write_pointer dir t.generation
          end
        | Some reason ->
            Obs.Metrics.incr catalog_recovered;
            warn
              (Printf.sprintf
                 "recovered torn manifest (%s); kept %d entries and rewrote it"
                 reason (List.length entries));
            (match pointer_damage with
            | None -> ()
            | Some reason ->
                Obs.Metrics.incr catalog_recovered;
                warn (Printf.sprintf "%s; rewrote it" reason));
            (* persist the recovered image so the next open is clean *)
            write_current t);
        Obs.Metrics.set catalog_generation t.generation;
        Ok t
  end

(* ---------------- snapshots ---------------- *)

type snapshot = { s_gen : int; s_entries : entry list; s_cat : t }

let total_pins t = Hashtbl.fold (fun _ n acc -> acc + n) t.pins 0

let pin t =
  Mutex.lock t.gen_lock;
  let g = t.generation and entries = t.entries in
  Hashtbl.replace t.pins g
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins g));
  let total = total_pins t in
  Mutex.unlock t.gen_lock;
  Obs.Metrics.set snapshot_pinned total;
  if Obs.Trace.enabled () then
    Obs.Trace.instant "snapshot.pin"
      ~attrs:[ ("generation", Obs.Trace.Int g) ];
  { s_gen = g; s_entries = entries; s_cat = t }

let release s =
  let t = s.s_cat in
  Mutex.lock t.gen_lock;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.pins s.s_gen) in
  if n <= 1 then Hashtbl.remove t.pins s.s_gen
  else Hashtbl.replace t.pins s.s_gen (n - 1);
  let total = total_pins t in
  let behind = s.s_gen < t.generation in
  Mutex.unlock t.gen_lock;
  Obs.Metrics.set snapshot_pinned total;
  if Obs.Trace.enabled () then
    Obs.Trace.instant "snapshot.release"
      ~attrs:[ ("generation", Obs.Trace.Int s.s_gen) ];
  (* dropping the last pin of a superseded generation is what makes it
     retirable — collect eagerly rather than waiting for a commit *)
  if behind && n <= 1 then ignore (retire_unreferenced t : string list)

let with_snapshot t f =
  let s = pin t in
  Fun.protect ~finally:(fun () -> release s) (fun () -> f s)

let snapshot_generation s = s.s_gen
let snapshot_entries s = s.s_entries

let snapshot_find s source =
  List.find_opt (fun e -> e.source = source) s.s_entries

(* ---------------- fingerprints and staleness ---------------- *)

let fingerprint text =
  Digest.to_hex (Digest.string (Pat.Text.unsafe_contents text))

let prefix_fingerprint text len =
  Digest.to_hex (Digest.subbytes (Bytes.unsafe_of_string (Pat.Text.unsafe_contents text)) 0 len)

type staleness =
  | Fresh
  | Source_missing
  | Index_missing
  | Index_unreadable of string
  | Appended of { old_len : int; new_len : int }
  | Changed

let index_path t e = Filename.concat t.dir e.index_file

let orphan_index_files t =
  let dir = Filename.concat t.dir indices_subdir in
  let referenced =
    List.map (fun e -> e.index_file) t.entries
    @ List.concat_map (files_of_generation t) (list_generations t)
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter_map (fun f ->
             let rel = Filename.concat indices_subdir f in
             if List.mem rel referenced then None else Some rel)
      |> List.sort compare

(* The cheap pre-check a long-lived server runs per request: two
   [stat] calls, no reads, no hashing.  [false] means provably not
   worth a refresh under the recorded metadata — the source still has
   the recorded length and is older than its index.  [true] means the
   full {!staleness} fingerprint (which reads and hashes the file)
   could find something, so the caller should refresh.  The one lie
   this can tell is a same-length in-place edit with a backdated
   mtime; the full fingerprint path still catches that on the next
   explicit refresh. *)
let possibly_stale t e =
  match Unix.stat e.source with
  | exception Unix.Unix_error _ -> true (* source missing/unreadable *)
  | src ->
      if src.Unix.st_size <> e.length then true
      else if e.version <> Pat.Index_store.format_version then true
      else begin
        match Unix.stat (index_path t e) with
        | exception Unix.Unix_error _ -> true (* index missing *)
        | idx -> src.Unix.st_mtime > idx.Unix.st_mtime
      end

let staleness t e =
  if not (Sys.file_exists e.source) then Source_missing
  else begin
    let text = Pat.Text.of_file e.source in
    let n = Pat.Text.length text in
    let index_state () =
      let path = index_path t e in
      if not (Sys.file_exists path) then Index_missing
      else if e.version <> Pat.Index_store.format_version then
        Index_unreadable
          (Printf.sprintf "index format version %d, expected %d" e.version
             Pat.Index_store.format_version)
      else begin
        match Pat.Index_store.verify ~path with
        | Ok () -> Fresh
        | Error err -> Index_unreadable (Pat.Index_store.error_message err)
      end
    in
    if n = e.length then
      if fingerprint text = e.digest then index_state () else Changed
    else if n > e.length && prefix_fingerprint text e.length = e.digest then
      Appended { old_len = e.length; new_len = n }
    else Changed
  end

let status t = List.map (fun e -> (e, staleness t e)) t.entries

let pp_staleness ppf = function
  | Fresh -> Format.pp_print_string ppf "fresh"
  | Source_missing -> Format.pp_print_string ppf "source missing"
  | Index_missing -> Format.pp_print_string ppf "index missing"
  | Index_unreadable reason -> Format.fprintf ppf "stale (%s)" reason
  | Appended { old_len; new_len } ->
      Format.fprintf ppf "appended (+%d bytes)" (new_len - old_len)
  | Changed -> Format.pp_print_string ppf "changed"

(* ---------------- building and refreshing ---------------- *)

(* Per-name region and match-point counts, recorded in the manifest at
   build time so [oqf catalog stats] answers without loading any index.
   A match point is a word start inside a region's span — the unit pat
   expressions match at — so the counts say how much searchable content
   each region name covers, not just how many regions it has. *)
let instance_stats instance =
  let starts = Pat.Tokenizer.word_starts (Pat.Instance.text instance) in
  let cmp = (compare : int -> int -> int) in
  let points (r : Pat.Region.t) =
    Stdx.Sorted_array.lower_bound ~cmp starts r.stop
    - Stdx.Sorted_array.lower_bound ~cmp starts r.start
  in
  List.map
    (fun name ->
      let rs = Pat.Instance.find instance name in
      let mps = Pat.Region_set.fold (fun acc r -> acc + points r) 0 rs in
      (name, Pat.Region_set.cardinal rs, mps))
    (Pat.Instance.names instance)

(* Per-name nesting-depth histograms: how many regions of each name lie
   under 0, 1, 2, … enclosing indexed regions.  The cost model uses the
   overlap of these histograms to estimate how often a direct-inclusion
   probe can succeed at all.  One stack sweep over the universe — region
   order is start ascending, stop descending, so every enclosing region
   is visited before the regions it contains. *)
let depth_buckets = 8

let instance_depths instance =
  let module RM = Map.Make (Pat.Region) in
  let depth_of = ref RM.empty in
  let stack = ref [] in
  Pat.Region_set.iter
    (fun r ->
      let rec unwind = function
        | top :: rest when not (Pat.Region.includes top r) -> unwind rest
        | s -> s
      in
      stack := unwind !stack;
      let d = min (List.length !stack) (depth_buckets - 1) in
      depth_of := RM.add r d !depth_of;
      stack := r :: !stack)
    (Pat.Instance.universe instance);
  List.map
    (fun name ->
      let hist = Array.make depth_buckets 0 in
      Pat.Region_set.iter
        (fun r ->
          match RM.find_opt r !depth_of with
          | Some d ->
              (* a region's own span sits on the stack when we look it
                 up during the sweep, so universe depth already counts
                 only the strictly enclosing spans *)
              hist.(d) <- hist.(d) + 1
          | None -> ())
        (Pat.Instance.find instance name);
      (* trim trailing empty buckets so flat instances stay compact *)
      let last = ref 0 in
      Array.iteri (fun i c -> if c > 0 then last := i) hist;
      (name, Array.sub hist 0 (!last + 1)))
    (Pat.Instance.names instance)

let store_entry t ~source ~schema ~index_names ~text ~index_file instance =
  Pat.Index_store.save ~path:(Filename.concat t.dir index_file) instance;
  let e =
    {
      source;
      schema;
      index_names;
      length = Pat.Text.length text;
      digest = fingerprint text;
      version = Pat.Index_store.format_version;
      index_file;
      stats = instance_stats instance;
      depths = instance_depths instance;
    }
  in
  let entries' =
    match find t source with
    | None -> t.entries @ [ e ]
    | Some old ->
        if old.index_file <> index_file then
          Instance_cache.remove t.cache old.index_file;
        List.map (fun o -> if o.source = source then e else o) t.entries
  in
  Instance_cache.add t.cache e.index_file instance;
  commit t entries';
  e

let build_instance view text ~index_names =
  Fschema.View.index_file view text ~keep:index_names

(* Index files are immutable once a generation references them, so a
   rebuild or extension writes under a generation-suffixed name instead
   of overwriting the file a pinned snapshot may still be reading.  The
   first build of a source keeps the plain name (nothing can reference
   it yet). *)
let index_file_for ?gen source =
  let stem = Filename.remove_extension (Filename.basename source) in
  let tag = String.sub (Digest.to_hex (Digest.string source)) 0 12 in
  let suffix = match gen with None | Some 0 -> "" | Some g -> Printf.sprintf "-g%d" g in
  Filename.concat indices_subdir (Printf.sprintf "%s-%s%s.idx" stem tag suffix)

let add t ~schema ?index source =
  match Schemas.find_result schema with
  | Error e -> Error e
  | Ok view -> begin
      match find t source with
      | Some e ->
          Error
            (Printf.sprintf "%s is already catalogued (schema %s)" e.source
               e.schema)
      | None ->
          if not (Sys.file_exists source) then Error (source ^ ": no such file")
          else begin
            let indexable =
              Fschema.Grammar.indexable view.Fschema.View.grammar
            in
            let index_names =
              match index with
              | Some names -> List.sort_uniq String.compare names
              | None -> indexable
            in
            match
              List.find_opt (fun n -> not (List.mem n indexable)) index_names
            with
            | Some bad ->
                Error
                  (Printf.sprintf "%s is not an indexable region name of %s"
                     bad schema)
            | None ->
            let text = Pat.Text.of_file source in
            match build_instance view text ~index_names with
            | Error e -> Error (source ^ ": " ^ e)
            | Ok instance ->
                let index_file =
                  let plain = index_file_for source in
                  (* a leftover file under the plain name (dropped and
                     re-added source) may still be pinned by an old
                     generation — never overwrite it *)
                  if Sys.file_exists (Filename.concat t.dir plain) then
                    index_file_for ~gen:(t.generation + 1) source
                  else plain
                in
                Ok
                  (store_entry t ~source ~schema ~index_names ~text
                     ~index_file instance)
          end
    end

type refresh = Unchanged | Extended of { added_bytes : int } | Rebuilt of string

(* Rebuild an entry's instance from its source file, persisting the
   result.  The shared bottom of refresh-rebuilds and heals. *)
let rebuild_instance t e =
  match Schemas.find_result e.schema with
  | Error msg -> Error msg
  | Ok view -> begin
      match Pat.Text.of_file e.source with
      | exception Sys_error msg -> Error msg
      | text -> begin
          match build_instance view text ~index_names:e.index_names with
          | Error msg -> Error (e.source ^ ": " ^ msg)
          | Ok instance ->
              let (_ : entry) =
                store_entry t ~source:e.source ~schema:e.schema
                  ~index_names:e.index_names ~text
                  ~index_file:(index_file_for ~gen:(t.generation + 1) e.source)
                  instance
              in
              Ok instance
        end
    end

(* Self-healing load: a missing/corrupt/outdated index is transparently
   rebuilt from its source while serving the request.  Only when the
   source is gone too is there genuinely no path to the data. *)
let load_persisted t e =
  match Instance_cache.find t.cache e.index_file with
  | Some instance -> Ok instance
  | None -> begin
      match Pat.Index_store.load_result ~path:(index_path t e) with
      | Ok instance ->
          Instance_cache.add t.cache e.index_file instance;
          Ok instance
      | Error err -> begin
          let msg = Pat.Index_store.error_message err in
          if not (Sys.file_exists e.source) then
            Error (msg ^ "; source file is missing, cannot heal")
          else begin
            match rebuild_instance t e with
            | Ok instance ->
                Obs.Metrics.incr catalog_healed;
                if Obs.Trace.enabled () then
                  Obs.Trace.instant "catalog.heal"
                    ~attrs:
                      [
                        ("source", Obs.Trace.Str e.source);
                        ("reason", Obs.Trace.Str msg);
                      ];
                Ok instance
            | Error heal_msg -> Error (msg ^ "; heal failed: " ^ heal_msg)
          end
        end
    end

(* A snapshot load never heals or commits: a pinned generation's bytes
   are immutable, and rebuilding from a since-changed source could not
   reproduce them anyway.  The cache is keyed by index file name —
   unique per generation — so snapshot and current loads share it
   without aliasing. *)
let snapshot_load s source =
  match snapshot_find s source with
  | None ->
      Error
        (Printf.sprintf "%s is not in snapshot generation %d" source s.s_gen)
  | Some e -> begin
      let t = s.s_cat in
      match Instance_cache.find t.cache e.index_file with
      | Some instance -> Ok instance
      | None -> begin
          match
            Pat.Index_store.load_result
              ~path:(Filename.concat t.dir e.index_file)
          with
          | Ok instance ->
              Instance_cache.add t.cache e.index_file instance;
              Ok instance
          | Error err -> Error (Pat.Index_store.error_message err)
        end
    end

let rebuild t e ~reason =
  Result.map (fun (_ : Pat.Instance.t) -> Rebuilt reason) (rebuild_instance t e)

let extend t e ~old_len ~verify_rig =
  match Schemas.find_result e.schema with
  | Error msg -> Error msg
  | Ok view -> begin
      let new_text = Pat.Text.of_file e.source in
      let attempt =
        match load_persisted t e with
        | Error msg -> Error msg
        | Ok old_instance ->
            Result.bind
              (Incremental.extend_instance view ~old_instance ~old_len new_text)
              (fun instance ->
                if verify_rig then
                  Result.map
                    (fun () -> instance)
                    (Incremental.verify_against_rig view instance)
                else Ok instance)
      in
      match attempt with
      | Ok instance ->
          let added_bytes = Pat.Text.length new_text - old_len in
          let (_ : entry) =
            store_entry t ~source:e.source ~schema:e.schema
              ~index_names:e.index_names ~text:new_text
              ~index_file:(index_file_for ~gen:(t.generation + 1) e.source)
              instance
          in
          Ok (Extended { added_bytes })
      | Error why ->
          (* incremental maintenance is an optimisation; any failure
             degrades to the always-correct full rebuild *)
          rebuild t e ~reason:("incremental failed: " ^ why)
    end

let refresh ?(verify_rig = false) t source =
  Obs.Trace.with_span "catalog.refresh"
    ~attrs:(fun () -> [ ("source", Obs.Trace.Str source) ])
  @@ fun () ->
  match find t source with
  | None -> Error (source ^ " is not in the catalog")
  | Some e -> begin
      let healing r =
        Result.map (fun r -> Obs.Metrics.incr catalog_healed; r) r
      in
      match staleness t e with
      | Source_missing -> Error (source ^ ": source file is missing")
      | Fresh -> Ok Unchanged
      | Index_missing -> healing (rebuild t e ~reason:"index file missing")
      | Index_unreadable reason -> healing (rebuild t e ~reason)
      | Changed -> rebuild t e ~reason:"contents changed"
      | Appended { old_len; _ } -> extend t e ~old_len ~verify_rig
    end

(* Per-entry results: one corrupt source must not block refresh of the
   healthy ones, so every entry is attempted and reports its own
   outcome. *)
let refresh_all ?verify_rig t =
  List.map (fun e -> (e.source, refresh ?verify_rig t e.source)) t.entries

(* ---------------- serving instances ---------------- *)

let load t source =
  Obs.Trace.with_span "catalog.load"
    ~attrs:(fun () -> [ ("source", Obs.Trace.Str source) ])
  @@ fun () ->
  match find t source with
  | None -> Error (source ^ " is not in the catalog")
  | Some e -> load_persisted t e

let view_of_entry e = Schemas.find_result e.schema

let pp_refresh ppf = function
  | Unchanged -> Format.pp_print_string ppf "unchanged"
  | Extended { added_bytes } ->
      Format.fprintf ppf "extended incrementally (+%d bytes)" added_bytes
  | Rebuilt reason -> Format.fprintf ppf "rebuilt (%s)" reason

(* ---------------- offline repair ---------------- *)

type repair_action =
  | Healed of string
  | Quarantined of string
  | Removed_orphan
  | Collapsed_generation of int

let drop_entry t e =
  let entries' = List.filter (fun o -> o.source <> e.source) t.entries in
  Instance_cache.remove t.cache e.index_file;
  commit t entries';
  Obs.Metrics.incr catalog_quarantined

(* Collapse every generation image other than the current one — the
   offline complement of {!retire_unreferenced} that also handles
   {e future} strays (a crash between writing MANIFEST.g<next> and
   swapping CATALOG leaves next's image and index files with no
   committed generation referencing them). *)
let collapse_stray_generations t =
  let current = t.generation in
  let pinned = pinned_generations t |> List.map fst in
  let gens = list_generations t in
  let strays =
    List.filter (fun g -> g <> current && not (List.mem g pinned)) gens
  in
  if strays = [] then []
  else begin
    let kept = List.filter (fun g -> not (List.mem g strays)) gens in
    let referenced =
      List.map (fun e -> e.index_file) t.entries
      @ List.concat_map (files_of_generation t) kept
    in
    List.concat_map
      (fun g ->
        let removed =
          List.filter_map
            (fun rel ->
              if List.mem rel referenced then None
              else begin
                match Sys.remove (Filename.concat t.dir rel) with
                | () -> Some (rel, Removed_orphan)
                | exception Sys_error _ -> None
              end)
            (files_of_generation t g)
        in
        (try Sys.remove (gen_manifest_path t g) with Sys_error _ -> ());
        Obs.Metrics.incr catalog_retired;
        removed @ [ (gen_manifest_rel g, Collapsed_generation g) ])
      strays
  end

let repair t =
  let actions = ref [] in
  let note source a = actions := (source, a) :: !actions in
  List.iter
    (fun e ->
      let heal_or_quarantine reason =
        match rebuild_instance t e with
        | Ok (_ : Pat.Instance.t) ->
            Obs.Metrics.incr catalog_healed;
            note e.source (Healed reason)
        | Error msg ->
            drop_entry t e;
            note e.source (Quarantined (reason ^ "; rebuild failed: " ^ msg))
      in
      match staleness t e with
      | Fresh | Appended _ | Changed -> ()  (* refresh's job, not repair's *)
      | Source_missing ->
          drop_entry t e;
          note e.source (Quarantined "source file is missing; entry dropped")
      | Index_missing -> heal_or_quarantine "index file missing"
      | Index_unreadable reason -> heal_or_quarantine reason)
    t.entries;
  (* collapse stray generation images (crashed commits, unreaped
     retirees), then sweep index files nothing references any more *)
  List.iter (fun (key, a) -> note key a) (collapse_stray_generations t);
  List.iter
    (fun rel ->
      (try Sys.remove (Filename.concat t.dir rel) with Sys_error _ -> ());
      note rel Removed_orphan)
    (orphan_index_files t);
  List.rev !actions

let pp_repair_action ppf = function
  | Healed reason -> Format.fprintf ppf "healed (%s)" reason
  | Quarantined reason -> Format.fprintf ppf "quarantined (%s)" reason
  | Removed_orphan -> Format.pp_print_string ppf "removed orphan index file"
  | Collapsed_generation g ->
      Format.fprintf ppf "collapsed stray generation %d" g
