(** A persistent catalog of indexed files.

    The paper's motivating scenario (§2) is a file system of evolving
    semi-structured files: shared bibliographies that members edit,
    logs that only grow.  A catalog is a directory that maps source
    files to persisted indices:

    {v
    <dir>/CATALOG                 current manifest: generation stamp,
                                  then schema, indexed names,
                                  fingerprint, format version and index
                                  file per source
    <dir>/GEN                     generation pointer ("oqf-gen N")
    <dir>/generations/MANIFEST.gN immutable image of generation N
    <dir>/indices/*.idx           persisted instances (Pat.Index_store)
    v}

    {b Staleness rules.}  An entry is fresh when its source file still
    has the recorded length and MD5 fingerprint and its index file
    passes {!Pat.Index_store.verify} at the current format version.  A
    source that {e grew} while its old prefix kept the recorded
    fingerprint is {e appended}: refresh maintains its index
    incrementally (tokenize and parse only the tail — see
    {!Incremental}) instead of rebuilding.  Anything else — edited or
    truncated source, missing/corrupt/outdated index — is rebuilt from
    scratch.

    {b Generations and snapshot isolation.}  Every committed mutation
    (add, refresh, heal, quarantine) produces a new, monotonically
    numbered generation: the manifest is stamped, an immutable image is
    kept under [generations/], and rebuilt or extended indices are
    written under fresh generation-suffixed names — never over a file
    an older generation references.  A reader calls {!pin} to hold the
    generation it started on (refcounted); {!snapshot_load} then reads
    exactly that generation's bytes no matter how many commits land
    concurrently.  Unpinned superseded generations are retired by
    {!retire_unreferenced} (run after every commit and on the last
    {!release} of an old generation); retirement is crash-safe — a kill
    at any point leaves extra files, never missing ones — and
    {!repair} collapses whatever strays a crash left behind.  The
    concurrency contract is one writer plus any number of pinned
    readers.

    Loaded instances are served through a bounded LRU
    {!Instance_cache} keyed by index file name (unique per
    generation), so repeated queries do not reload from disk. *)

type entry = {
  source : string;  (** path of the source file *)
  schema : string;  (** a {!Schemas} name *)
  index_names : string list;  (** region names indexed for this source *)
  length : int;  (** source length at the last (re)build *)
  digest : string;  (** hex MD5 of the source at the last (re)build *)
  version : int;  (** index format version the entry was written with *)
  index_file : string;  (** index path relative to the catalog directory *)
  stats : (string * int * int) list;
      (** per region name: [(name, region count, match-point count)],
          captured when the index was (re)built.  A match point is a
          word start inside a region's span.  Empty for entries
          written by versions that predate the field — manifests with
          and without it read each other cleanly. *)
  depths : (string * int array) list;
      (** per region name: histogram of nesting depths — index [d]
          counts the regions of that name lying under exactly [d]
          strictly-enclosing indexed regions (the last bucket absorbs
          deeper nesting).  Captured at (re)build time; empty for
          entries written before the field existed, with the same
          compatibility contract as [stats]. *)
}

type t

val init : string -> (t, string) result
(** Create an empty catalog in a directory (created if missing), at
    generation 0.  Fails if the directory already holds one. *)

val open_dir : ?budget_bytes:int -> string -> (t, string) result
(** Open an existing catalog.  [budget_bytes] bounds the instance
    cache (default 64 MiB).

    Opening is crash-tolerant: a torn or partially damaged manifest
    (possible on filesystems without atomic rename, or after
    hand-editing) keeps its complete leading entries, drops the
    damaged tail, and is immediately rewritten in repaired form; a
    missing, damaged, or disagreeing generation pointer is rewritten
    from the manifest (adopting the higher number as the numbering
    floor when the pointer is ahead — the signature of a crash between
    the manifest swap and the pointer move).  Every incident is
    reported through {!recovery_warnings} and the [catalog.recovered]
    metric.  A manifest without a generation stamp (written before
    generations existed) opens silently at generation 0.  Only a file
    that is not a catalog manifest at all fails to open. *)

val recovery_warnings : t -> string list
(** Human-readable notes about damage repaired while opening
    (empty for a clean open). *)

val dir : t -> string
val entries : t -> entry list
val find : t -> string -> entry option
val cache : t -> Instance_cache.t

val generation : t -> int
(** The current committed generation number (0 for a fresh or legacy
    catalog). *)

val add :
  t -> schema:string -> ?index:string list -> string -> (entry, string) result
(** Index a source file and record it, committing a new generation.
    [index] defaults to every indexable non-terminal of the schema;
    names outside the grammar are rejected.  Fails if the source is
    already catalogued. *)

(** {2 Snapshots}

    A snapshot is a refcounted pin on the generation current at
    {!pin} time: its entry list is immutable, and the index files it
    references are never overwritten or deleted while the pin is
    held.  The [snapshot.pinned] gauge tracks the total number of
    outstanding pins. *)

type snapshot

val pin : t -> snapshot
(** Pin the current generation.  Must be balanced by {!release}. *)

val release : snapshot -> unit
(** Drop one pin.  Releasing the last pin of a superseded generation
    triggers {!retire_unreferenced}.  Releasing more than once is a
    refcounting bug (the excess release is ignored). *)

val with_snapshot : t -> (snapshot -> 'a) -> 'a
(** [with_snapshot t f] pins, runs [f], and releases (also on
    exception). *)

val snapshot_generation : snapshot -> int
val snapshot_entries : snapshot -> entry list
val snapshot_find : snapshot -> string -> entry option

val snapshot_load : snapshot -> string -> (Pat.Instance.t, string) result
(** The instance of a source as of the pinned generation, through the
    shared LRU cache.  Unlike {!load} this never heals and never
    commits: a pinned generation's bytes are immutable, and a rebuild
    from a since-changed source could not reproduce them.  Fails if
    the source is not in the snapshot or its index file is
    unreadable. *)

val pinned_generations : t -> (int * int) list
(** Outstanding pins as [(generation, refcount)], sorted — the
    observability view behind the [snapshot.pinned] gauge. *)

val list_generations : t -> int list
(** The generation numbers whose manifest images exist on disk,
    sorted ascending.  After retirement only the current generation
    (and any still-pinned ones) remain. *)

val retire_unreferenced : t -> string list
(** Delete every generation image older than the current one that no
    snapshot pins, together with the index files only retired
    generations reference; returns the catalog-relative paths removed.
    Runs automatically after every commit and on the last {!release}
    of an old generation; callable explicitly (the watcher does, per
    scan).  Crash-safe: deletion candidates come only from retired
    generation manifests, anything referenced by the current entries
    or a surviving image is spared, and a kill mid-pass leaves only
    extra files for the next pass (or {!repair}) to finish. *)

type staleness =
  | Fresh
  | Source_missing
  | Index_missing
  | Index_unreadable of string  (** version mismatch, corruption, … *)
  | Appended of { old_len : int; new_len : int }
  | Changed

val staleness : t -> entry -> staleness
(** Fingerprint one source file against its entry. *)

val possibly_stale : t -> entry -> bool
(** A cheap, stat-only pre-check for long-lived processes: [true] when
    the entry {e might} be stale (source or index missing, recorded
    length or index format version differ, or the source is newer than
    its index) and a {!refresh} is worth running; [false] when the
    entry is provably current under the recorded metadata.  Unlike
    {!staleness} this never reads or hashes file contents, so the
    serve daemon can afford it on every request.  A same-length
    in-place edit with a backdated mtime can fool it; an explicit
    refresh still catches that case via the full fingerprint. *)

val status : t -> (entry * staleness) list
val pp_staleness : Format.formatter -> staleness -> unit

val orphan_index_files : t -> string list
(** Files under [<dir>/indices] that neither the current manifest nor
    any surviving generation image references (paths relative to the
    catalog directory, sorted) — debris from crashed rebuilds or
    hand-deleted entries.  [oqf catalog audit] reports them. *)

type refresh = Unchanged | Extended of { added_bytes : int } | Rebuilt of string

val refresh : ?verify_rig:bool -> t -> string -> (refresh, string) result
(** Bring one entry up to date, choosing incremental extension for
    append-only growth and a full rebuild otherwise.  A change commits
    a new generation.  A failed incremental attempt (tail does not
    parse, schema not append-only) silently degrades to a rebuild —
    its reason says why.  With [verify_rig] the extended instance is
    additionally checked against the RIG of its indexed names (slow;
    meant for tests). *)

val refresh_all :
  ?verify_rig:bool -> t -> (string * (refresh, string) result) list
(** {!refresh} every entry, in catalogue order, continuing past
    failures: each entry reports its own outcome, so one corrupt or
    missing source cannot block refresh of the healthy ones. *)

val load : t -> string -> (Pat.Instance.t, string) result
(** The instance of a catalogued source, through the LRU cache.

    Self-healing: when the persisted index is missing, corrupt, or at
    an outdated format version but the source file still exists, the
    index is transparently rebuilt from the source (and re-persisted
    as a new generation) while serving the request — counted by the
    [catalog.healed] metric.  Loading fails only when the index is
    unusable {e and} the source is gone. *)

type repair_action =
  | Healed of string  (** index rebuilt from the source (the reason) *)
  | Quarantined of string
      (** entry dropped from the manifest: its source is gone or its
          rebuild failed (the reason) *)
  | Removed_orphan  (** unreferenced file under [indices/] deleted *)
  | Collapsed_generation of int
      (** stray generation image deleted: a crashed commit's future
          image, or a superseded generation the reaper never got to *)

val repair : t -> (string * repair_action) list
(** Apply the self-healing logic offline to every entry: rebuild
    missing/corrupt indices, drop entries whose source is gone, then
    collapse stray generation images and sweep orphan index files.
    Returns what was done, keyed by source path (or catalog-relative
    file path for orphans and collapsed images), in catalogue order.
    Entries that are merely stale ([Changed]/[Appended]) are left for
    {!refresh}.  Persists the repaired manifest. *)

val pp_repair_action : Format.formatter -> repair_action -> unit

val view_of_entry : entry -> (Fschema.View.t, string) result

val pp_refresh : Format.formatter -> refresh -> unit
