(** The built-in structuring schemas, by name.

    Catalog entries record the schema of a source file as a string; this
    registry resolves those names back to views, and is shared with the
    CLI so both agree on the spelling. *)

val all : (string * Fschema.View.t) list
val names : string list
val find : string -> Fschema.View.t option
val find_result : string -> (Fschema.View.t, string) result
(** [Error] names the unknown schema and lists the known ones. *)

val name_of_view : Fschema.View.t -> string option
(** The registered name of a built-in view (decided by physical
    equality), or [None] for a hand-assembled one.  The executor uses
    this to label its per-query histograms with the workload. *)
