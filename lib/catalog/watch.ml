(* Polling watcher for live corpora.  One scan stats every entry
   (mtime/size — the inotify-ready seam: an event source would simply
   mark entries dirty instead of polling), refreshes what changed, and
   retires unreferenced generations.  [start] runs scans in a
   background domain with retry/backoff ({!Stdx.Retry.io} around the
   whole scan) so the watcher survives transient I/O failure, and a
   per-source circuit breaker so one flapping file cannot burn the
   retry budget on every pass. *)

type event =
  | Refreshed of string * Catalog.refresh
  | Failed of string * string
  | Skipped of string

type report = {
  scanned : int;
  refreshed : int;
  failed : int;
  skipped : int;
  retired : string list;
  generation : int;
}

let scans_c = Obs.Metrics.counter "watch.scans"
let refreshes_c = Obs.Metrics.counter "watch.refreshes"
let errors_c = Obs.Metrics.counter "watch.errors"

let breaker_key source = "watch:" ^ source

(* An open breaker would otherwise skip its source forever (the
   breaker has no timer); probing it every few scans gives a healed
   source a way back in without letting it flap every pass. *)
let probe_period = 8

let locked lock f =
  match lock with
  | None -> f ()
  | Some m ->
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let scan ?lock ?on_event ?(probe_open = false) cat =
  Obs.Trace.with_span "watch.scan"
    ~attrs:(fun () ->
      [ ("generation", Obs.Trace.Int (Catalog.generation cat)) ])
  @@ fun () ->
  Stdx.Fault.hit "watch.scan";
  let emit ev = match on_event with None -> () | Some f -> f ev in
  let refreshed = ref 0 and failed = ref 0 and skipped = ref 0 in
  let entries = Catalog.entries cat in
  List.iter
    (fun (e : Catalog.entry) ->
      if Catalog.possibly_stale cat e then begin
        let key = breaker_key e.source in
        if Stdx.Retry.Breaker.state key = Stdx.Retry.Breaker.Open
           && not probe_open
        then begin
          incr skipped;
          emit (Skipped e.source)
        end
        else begin
          match locked lock (fun () -> Catalog.refresh cat e.source) with
          | Ok Catalog.Unchanged -> Stdx.Retry.Breaker.success key
          | Ok r ->
              Stdx.Retry.Breaker.success key;
              incr refreshed;
              Obs.Metrics.incr refreshes_c;
              emit (Refreshed (e.source, r))
          | Error msg ->
              Stdx.Retry.Breaker.failure key;
              incr failed;
              emit (Failed (e.source, msg))
        end
      end)
    entries;
  let retired = locked lock (fun () -> Catalog.retire_unreferenced cat) in
  Obs.Metrics.incr scans_c;
  {
    scanned = List.length entries;
    refreshed = !refreshed;
    failed = !failed;
    skipped = !skipped;
    retired;
    generation = Catalog.generation cat;
  }

(* One qlog record per scan that changed something, so ingest activity
   lands in the same durable stream as the queries it races. *)
let log_scan ~t0 (r : report) =
  match Obs.Qlog.installed () with
  | None -> ()
  | Some log ->
      if r.refreshed > 0 || r.failed > 0 then begin
        let ctx =
          { Obs.Qlog.trace_id = Obs.Qlog.gen_trace_id (); workload = "watch" }
        in
        Obs.Qlog.append log
          (Obs.Qlog.make ~ctx ~workload_default:"watch" ~schema:"" ~kind:"watch"
             ~query:
               (Printf.sprintf "scan refreshed=%d failed=%d retired=%d"
                  r.refreshed r.failed (List.length r.retired))
             ~latency_ms:(Obs.Trace.now_ms () -. t0)
             ~rows:r.refreshed ~cached:false ~shards:0
             ~outcome:(if r.failed > 0 then "degraded" else "ok")
             ~generation:r.generation ())
      end

type t = {
  stop_flag : bool Atomic.t;
  domain : unit Domain.t;
}

let start ?(interval_ms = 500.) ?lock ?on_event cat =
  let stop_flag = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        let scans = ref 0 in
        (* sleep in short slices so [stop] stays responsive at long
           intervals *)
        let idle () =
          let deadline = Unix.gettimeofday () +. (interval_ms /. 1000.) in
          let rec go () =
            if not (Atomic.get stop_flag) then begin
              let left = deadline -. Unix.gettimeofday () in
              if left > 0. then begin
                Unix.sleepf (Float.min 0.05 left);
                go ()
              end
            end
          in
          go ()
        in
        while not (Atomic.get stop_flag) do
          incr scans;
          let probe_open = !scans mod probe_period = 0 in
          let t0 = Obs.Trace.now_ms () in
          (try
             let r =
               Stdx.Retry.io ~site:"watch.scan" (fun () ->
                   scan ?lock ?on_event ~probe_open cat)
             in
             log_scan ~t0 r
           with _ ->
             (* an exhausted retry budget must not kill the watcher:
                count it and try again next tick *)
             Obs.Metrics.incr errors_c);
          idle ()
        done)
  in
  { stop_flag; domain }

let stop w =
  Atomic.set w.stop_flag true;
  Domain.join w.domain
