type mode = Rules | Cost_based

let mode_of_string = function
  | "rules" -> Ok Rules
  | "cost" -> Ok Cost_based
  | s -> Error (Printf.sprintf "unknown plan mode %S (expected rules|cost)" s)

let mode_to_string = function Rules -> "rules" | Cost_based -> "cost"

type decision = {
  chosen : Ralg.Expr.t;
  rewrites : Ralg.Optimizer.rewrite list;
  tag : string;
  est : Model.est;
  considered : int;
}

(* All variants of [e] obtained by swapping the operands of up to
   [max_sites] commutative set operations (∪/∩ — swap-sound because
   region sets are sets: same denotation, same canonical row order).
   Exponential in sites, so both the site count and the produced list
   are capped. *)
let swap_variants ?(max_sites = 3) ?(max_variants = 8) e =
  let open Ralg.Expr in
  let sites = ref 0 in
  (* returns every version of [e] reachable by independent swaps *)
  let rec go e =
    match e with
    | Name _ -> [ e ]
    | Select (s, inner) -> List.map (fun i -> Select (s, i)) (go inner)
    | Innermost inner -> List.map (fun i -> Innermost i) (go inner)
    | Outermost inner -> List.map (fun i -> Outermost i) (go inner)
    | Chain (a, op, b) ->
        List.concat_map
          (fun a -> List.map (fun b -> Chain (a, op, b)) (go b))
          (go a)
    | Chain_strict (a, op, b) ->
        List.concat_map
          (fun a -> List.map (fun b -> Chain_strict (a, op, b)) (go b))
          (go a)
    | At_depth (n, a, b) ->
        List.concat_map
          (fun a -> List.map (fun b -> At_depth (n, a, b)) (go b))
          (go a)
    | Setop (((Union | Inter) as op), a, b) ->
        let swap_here = !sites < max_sites in
        if swap_here then incr sites;
        List.concat_map
          (fun a ->
            List.concat_map
              (fun b ->
                if swap_here then [ Setop (op, a, b); Setop (op, b, a) ]
                else [ Setop (op, a, b) ])
              (go b))
          (go a)
    | Setop (Diff, a, b) ->
        List.concat_map
          (fun a -> List.map (fun b -> Setop (Diff, a, b)) (go b))
          (go a)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take max_variants (go e)

let choose ~stats ~rig e =
  let rules, rewrites = Ralg.Optimizer.optimize_logged rig e in
  let candidates =
    (* candidate, its Prop 3.5 rewrites, provenance tag — rules first
       so ties keep today's behaviour *)
    [ (rules, rewrites, "rules") ]
    @ (if Ralg.Expr.equal e rules then [] else [ (e, [], "original") ])
    @ List.filter_map
        (fun v ->
          if Ralg.Expr.equal v rules then None
          else Some (v, rewrites, "operand-swap"))
        (swap_variants rules)
  in
  let scored =
    List.map (fun (c, rws, tag) -> (c, rws, tag, Model.estimate stats c)) candidates
  in
  let best =
    List.fold_left
      (fun acc (c, rws, tag, est) ->
        match acc with
        | Some (_, _, _, b) when b.Model.cost <= est.Model.cost -> acc
        | _ -> Some (c, rws, tag, est))
      None scored
  in
  match best with
  | Some (chosen, rewrites, tag, est) ->
      { chosen; rewrites; tag; est; considered = List.length scored }
  | None -> assert false
