(** Cardinality and cost estimation over region expressions.

    Every estimate is a triple: [rows], the expected result
    cardinality under the independence assumptions documented in
    {!Stats}; [upper], a hard bound that holds whenever the leaf
    cardinalities are exact (every operator of the algebra returns a
    subset of one operand, or at most the sum for unions — so the
    bound composes structurally); and [cost], a scalar in the same
    units as {!Ralg.Cost.weighted} (lower is better).  All three are
    clamped finite and non-negative regardless of input. *)

type est = {
  rows : float;  (** expected result cardinality *)
  upper : float;
      (** hard cardinality bound, sound when leaf cardinalities are
          exact (e.g. statistics taken from the instance being
          queried) *)
  cost : float;  (** estimated evaluation cost, lower is better *)
}

val estimate : Stats.t -> Ralg.Expr.t -> est
(** Estimate one (sub)expression.  Total over the tree; call on a
    subexpression to get that node's own subtree estimate. *)

val rows : Stats.t -> Ralg.Expr.t -> float
(** [(estimate stats e).rows] — the shape {!Ralg.Annot.pp} wants for
    estimated-vs-actual display. *)

val legacy : Stats.t -> Ralg.Expr.t -> Ralg.Cost.t
(** The same estimate shaped as the PR 4 heuristic record: operator
    counts exactly as {!Ralg.Cost.estimate} counts them, [weighted]
    replaced by this model's [cost].  This is what [oqf check
    --cost-threshold] consumes in cost mode, so the checker and the
    planner can never disagree about a query's estimated cost. *)

val materialize_cost : Stats.t -> rows:float -> float
(** Cost of phase-2 materializing [rows] candidate regions of an exact
    plan (extent slicing per candidate, no re-filtering). *)

val refilter_cost : Stats.t -> Ralg.Expr.t -> rows:float -> float
(** Cost of phase-2 parsing and re-filtering [rows] {e uncovered}
    candidates of [e] (§6.2): each candidate is sliced and parsed
    whole, priced at the average region size of the expression's
    dominant name.  Always at least {!materialize_cost}. *)

val scan_cost : Stats.t -> float
(** Cost of answering from a whole-file parse instead of any index —
    the naive-eval fallback the advisor prices un-indexed queries at.
    Linear in the covered bytes; when bytes are unknown the universe
    cardinality implies the corpus size instead. *)
