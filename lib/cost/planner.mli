(** Cost-based plan selection over Prop 3.5-equivalent variants.

    The rule-based optimizer (paper §3.2) rewrites toward the unique
    "most efficient version" of each chain — cardinality-blind.  The
    cost-based mode instead {e enumerates} expressions that are
    set-equivalent by construction — the Prop 3.5 rewrite output, the
    original, and operand-order variants of commutative set operations
    — and picks the one the {!Model} prices cheapest.  Every candidate
    denotes the same region set, so results are byte-identical
    whichever wins; only the work differs. *)

type mode = Rules | Cost_based

val mode_of_string : string -> (mode, string) result
(** ["rules"] or ["cost"]. *)

val mode_to_string : mode -> string

type decision = {
  chosen : Ralg.Expr.t;
  rewrites : Ralg.Optimizer.rewrite list;
      (** Prop 3.5 rewrites in effect in the chosen expression ([]
          when the un-rewritten original won) *)
  tag : string;
      (** which candidate won: ["rules"], ["original"], or
          ["operand-swap"] *)
  est : Model.est;  (** the winner's estimate *)
  considered : int;  (** candidates enumerated *)
}

val choose :
  stats:Stats.t -> rig:Ralg.Rig.t -> Ralg.Expr.t -> decision
(** Enumerate, estimate, pick.  Ties prefer the rules choice, so cost
    mode degenerates to rules mode exactly when statistics are
    uninformative.  Bumps the optimizer rewrite counters once (like
    rules-mode optimization) but prices silently. *)
