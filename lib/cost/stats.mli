(** Corpus statistics feeding the cost model.

    One value summarizes what the planner may assume about the data:
    per-region-name cardinalities, match-point densities and
    nesting-depth histograms.  The numbers come either from a live
    {!Pat.Instance.t} (single-file planning inside [Oqf.Execute]) or
    from the catalog manifest's [rstat]/[rdepth] lines (advisor replay,
    where no index is loaded at all).  Names absent from the table fall
    back to a uniform default so estimates stay finite on partial or
    legacy statistics. *)

type name_stats = {
  regions : int;  (** cardinality of the name's region set *)
  match_points : int;
      (** word starts inside the name's regions; 0 when unknown *)
  depth_hist : int array;
      (** nesting-depth histogram (index [d] counts regions under
          exactly [d] strictly-enclosing indexed regions); [||] when
          unknown *)
}

type t

val default_card : int
(** Cardinality assumed for names with no recorded statistics (1000,
    matching {!Ralg.Cost.estimate}'s default). *)

val uniform : ?card:int -> unit -> t
(** No statistics at all: every name gets [card] regions (default
    {!default_card}), no densities, no depth histograms.  The estimator
    degrades to the PR 4 heuristic on this. *)

val of_instance : Pat.Instance.t -> t
(** Cheap per-name cardinalities plus depth histograms from a loaded
    instance (one universe sweep; no word-index scan, so match-point
    densities are left unknown). *)

val of_entries : Oqf_catalog.Catalog.entry list -> t
(** Merge the build-time statistics of catalog entries: cardinalities
    and match points sum across files; depth histograms add
    bucket-wise.  Entries written before [rstat]/[rdepth] existed
    contribute nothing and the names fall back to the default. *)

val names : t -> string list
(** Names with recorded statistics, sorted. *)

val find : t -> string -> name_stats option
(** Recorded statistics for a name, if any. *)

val card : t -> string -> float
(** Estimated cardinality of a region name; [default_card] when
    unrecorded, never negative. *)

val universe : t -> float
(** Total indexed regions across all recorded names (>= 1). *)

val text_bytes : t -> float
(** Total source bytes the statistics cover; 0 when unknown.  Scales
    the cost of parsing a file instead of using its index. *)

val word_selectivity : t -> string -> float
(** Estimated fraction of the name's regions kept by a word selection,
    in [1/regions, 1].  Derived from match-point density — a region
    spanning [m] match points survives [σ_w] with probability
    [min 1 (m/W)] under independent word placement, where [W] is the
    corpus vocabulary proxy — and clamped; 0.1 when density is
    unknown (the PR 4 heuristic). *)

val depth_overlap : t -> outer:string -> inner:string -> float
(** Fraction of [outer]-region/[inner]-region pairs whose nesting
    depths differ by exactly one — the histogram-overlap estimate of
    how often a direct-inclusion probe can succeed, in [0.05, 1].
    1 when either histogram is unknown (conservative). *)

val pp : Format.formatter -> t -> unit
