type item = {
  query : string;
  schema : string;
  workload : string;
  count : int;
  total_ms : float;
}

type var_access = [ `Index of Ralg.Expr.t * bool | `Scan | `Empty ]

type compile =
  index:string list -> schema:string -> string -> (var_access list, string) result

type recommendation = {
  action : [ `Add | `Drop ];
  name : string;
  predicted_ms : float;
  queries : int;
  detail : string;
}

(* Model cost of answering one query under one index set: each
   variable either runs its region expression (index work + phase-2
   materialization of the candidates) or falls back to a whole-file
   parse. *)
let query_cost ~stats ~compile ~index item =
  match compile ~index ~schema:item.schema item.query with
  | Error _ -> None
  | Ok accesses ->
      Some
        (List.fold_left
           (fun acc -> function
             | `Empty -> acc
             | `Scan -> acc +. Model.scan_cost stats
             | `Index (e, covered) ->
                 let est = Model.estimate stats e in
                 let phase2 =
                   if covered then
                     Model.materialize_cost stats ~rows:est.Model.rows
                   else Model.refilter_cost stats e ~rows:est.Model.rows
                 in
                 acc +. est.Model.cost +. phase2)
           0.0 accesses)
  | exception _ -> None

let names_used ~compile ~index ~indexable item =
  (* which indexable names does this query's best-case compilation
     mention?  Compile against everything it could ever use. *)
  let all = List.sort_uniq compare (index @ indexable) in
  match compile ~index:all ~schema:item.schema item.query with
  | Ok accesses ->
      List.concat_map
        (function `Index (e, _) -> Ralg.Expr.names e | `Scan | `Empty -> [])
        accesses
  | Error _ | (exception _) -> []

let advise ~stats ~compile ~index ?indexable items =
  let indexable =
    match indexable with
    | Some ns -> ns
    | None -> List.sort_uniq compare (Stats.names stats @ index)
  in
  let base =
    List.filter_map
      (fun it ->
        match query_cost ~stats ~compile ~index it with
        | Some c when c > 0.0 -> Some (it, c)
        | _ -> None)
      items
  in
  let additions =
    List.filter_map
      (fun name ->
        if List.mem name index then None
        else
          let index' = List.sort_uniq compare (name :: index) in
          let saved_ms, affected =
            List.fold_left
              (fun (ms, n) (it, cur) ->
                match query_cost ~stats ~compile ~index:index' it with
                | Some c when c < cur ->
                    (ms +. (it.total_ms *. (1.0 -. (c /. cur))), n + 1)
                | _ -> (ms, n))
              (0.0, 0) base
          in
          if affected = 0 || saved_ms <= 0.0 then None
          else
            Some
              {
                action = `Add;
                name;
                predicted_ms = saved_ms;
                queries = affected;
                detail =
                  Printf.sprintf
                    "indexing %s speeds up %d quer%s (predicted %.2fms saved \
                     over the replayed workload)"
                    name affected
                    (if affected = 1 then "y" else "ies")
                    saved_ms;
              })
      indexable
  in
  let used =
    List.concat_map (fun (it, _) -> names_used ~compile ~index ~indexable it) base
    |> List.sort_uniq compare
  in
  let drops =
    List.filter_map
      (fun name ->
        if List.mem name used then None
        else
          Some
            {
              action = `Drop;
              name;
              predicted_ms = 0.0;
              queries = 0;
              detail =
                Printf.sprintf
                  "no replayed query reads %s — dropping it saves index \
                   maintenance at no latency cost"
                  name;
            })
      index
  in
  List.sort
    (fun a b -> Float.compare b.predicted_ms a.predicted_ms)
    additions
  @ drops
