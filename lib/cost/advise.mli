(** Workload-driven index advisor.

    Replays an aggregated query log ({!Obs.Qstats} output) against the
    cost model twice per candidate change — once under the current
    index set, once under the changed one — and recommends the index
    additions whose predicted latency saving is largest, plus drops of
    indexed names the workload never benefits from.

    The advisor never loads an index or touches source files: query
    compilation is injected (a callback the CLI builds from
    [Oqf.Compile]) and data statistics come from the catalog manifest,
    so advice over a large corpus costs milliseconds. *)

type item = {
  query : string;  (** query text to replay *)
  schema : string;  (** schema the query ran against *)
  workload : string;
  count : int;  (** observed executions *)
  total_ms : float;  (** observed total latency *)
}

type var_access =
  [ `Index of Ralg.Expr.t * bool
    (** answered from the index via this region expression; the flag
        is coverage — [true] when the expression computes the answer
        exactly (§6.3), [false] when it is a candidate superset whose
        survivors must be parsed and re-filtered (§6.2) *)
  | `Scan  (** no usable index — whole-file parse *)
  | `Empty  (** statically empty *) ]

type compile = index:string list -> schema:string -> string -> (var_access list, string) result
(** [compile ~index ~schema q] compiles query text [q] against the
    given indexed-name set, returning how each query variable would be
    answered, or [Error] for unparseable/incompatible queries (the
    advisor skips those). *)

type recommendation = {
  action : [ `Add | `Drop ];
  name : string;  (** region name to index or drop *)
  predicted_ms : float;
      (** predicted workload latency saving ([`Add]); 0 for [`Drop] —
          dropping saves index maintenance, not query latency *)
  queries : int;  (** distinct workload queries affected *)
  detail : string;  (** one-line human rationale *)
}

val advise :
  stats:Stats.t ->
  compile:compile ->
  index:string list ->
  ?indexable:string list ->
  item list ->
  recommendation list
(** [index] is the currently-indexed name set; [indexable] the full
    candidate set (defaults to the names with recorded statistics plus
    [index]).  Additions come first, sorted by predicted saving
    descending; then drops of names no replayed query uses. *)
