type est = { rows : float; upper : float; cost : float }

(* Everything the estimator returns passes through here: finite,
   non-negative, bounded — a NaN or infinity from a degenerate input
   must never reach plan comparison. *)
let ceiling = 1e15
let clamp x = if Float.is_nan x then 0.0 else Float.min ceiling (Float.max 0.0 x)
let log2 x = if x < 2.0 then 1.0 else log x /. log 2.0

(* The dominant region name of an operand, for statistics lookup on
   non-leaf operands: the first mentioned name (sorted), if any. *)
let dominant e = match Ralg.Expr.names e with [] -> None | n :: _ -> Some n

let rec walk stats e =
  let open Ralg.Expr in
  match e with
  | Name n ->
      let c = Stats.card stats n in
      (* answering a name is one index lookup plus emitting c regions *)
      { rows = c; upper = c; cost = clamp (log2 (Stats.universe stats) +. c) }
  | Select (_, inner) ->
      let i = walk stats inner in
      let sel =
        match dominant inner with
        | Some n -> Stats.word_selectivity stats n
        | None -> 0.1
      in
      {
        rows = clamp (Float.min i.upper (i.rows *. sel));
        upper = i.upper;
        cost = clamp (i.cost +. (i.rows *. log2 (Stats.universe stats)));
      }
  | Setop (Union, a, b) ->
      let ea = walk stats a and eb = walk stats b in
      {
        rows = clamp (Float.min (ea.rows +. eb.rows) (ea.upper +. eb.upper));
        upper = clamp (ea.upper +. eb.upper);
        cost = clamp (ea.cost +. eb.cost +. ea.rows +. eb.rows);
      }
  | Setop (Inter, a, b) ->
      let ea = walk stats a and eb = walk stats b in
      let u = Stats.universe stats in
      (* independence: P(region ∈ A ∩ B) = P(A)·P(B) over the universe *)
      let expected = ea.rows *. eb.rows /. Float.max 1.0 u in
      {
        rows = clamp (Float.min expected (Float.min ea.upper eb.upper));
        upper = clamp (Float.min ea.upper eb.upper);
        cost = clamp (ea.cost +. eb.cost +. ea.rows +. eb.rows);
      }
  | Setop (Diff, a, b) ->
      let ea = walk stats a and eb = walk stats b in
      let u = Stats.universe stats in
      let keep = 1.0 -. Float.min 1.0 (eb.rows /. Float.max 1.0 u) in
      {
        rows = clamp (Float.min ea.upper (ea.rows *. keep));
        upper = ea.upper;
        cost = clamp (ea.cost +. eb.cost +. ea.rows +. eb.rows);
      }
  | Chain (a, op, b) | Chain_strict (a, op, b) ->
      let ea = walk stats a and eb = walk stats b in
      let u = Stats.universe stats in
      let join = (ea.rows +. eb.rows) *. log2 (Float.max ea.rows eb.rows) in
      if Ralg.Expr.is_direct op then
        (* a direct probe can only succeed when the two operands sit
           one nesting level apart — scale the hit rate (and the
           per-candidate universe probing) by the depth-histogram
           overlap *)
        let overlap =
          match (dominant a, dominant b) with
          | Some outer, Some inner -> (
              match op with
              | Directly_including -> Stats.depth_overlap stats ~outer ~inner
              | Directly_included -> Stats.depth_overlap stats ~outer:inner ~inner:outer
              | _ -> 1.0)
          | _ -> 1.0
        in
        let probe =
          ea.rows *. Float.max 1.0 (u /. Float.max 1.0 ea.rows) *. overlap
        in
        {
          rows = clamp (Float.min ea.upper (Float.min ea.rows eb.rows *. overlap));
          upper = ea.upper;
          cost = clamp (ea.cost +. eb.cost +. join +. probe);
        }
      else
        {
          rows = clamp (Float.min ea.upper (Float.min ea.rows eb.rows));
          upper = ea.upper;
          cost = clamp (ea.cost +. eb.cost +. join);
        }
  | Innermost inner | Outermost inner ->
      let i = walk stats inner in
      {
        rows = clamp (Float.min i.upper (i.rows /. 2.0));
        upper = i.upper;
        cost = clamp (i.cost +. (i.rows *. log2 i.rows));
      }
  | At_depth (_, a, b) ->
      let ea = walk stats a and eb = walk stats b in
      let u = Stats.universe stats in
      {
        rows = clamp (Float.min ea.upper (Float.min ea.rows eb.rows /. 2.0));
        upper = ea.upper;
        cost =
          clamp
            (ea.cost +. eb.cost
            +. ((ea.rows +. eb.rows) *. log2 (Float.max ea.rows eb.rows))
            +. (ea.rows *. u));
      }

let estimate stats e =
  let r = walk stats e in
  { rows = clamp r.rows; upper = clamp r.upper; cost = clamp r.cost }

let rows stats e = (estimate stats e).rows

(* Operator counts exactly as Ralg.Cost.walk buckets them; only the
   scalar changes model. *)
let legacy stats e =
  let open Ralg.Expr in
  let rec count (acc : Ralg.Cost.t) e =
    match e with
    | Name _ -> acc
    | Select (_, inner) -> count { acc with selections = acc.selections + 1 } inner
    | Setop (_, a, b) -> count (count { acc with set_ops = acc.set_ops + 1 } a) b
    | Innermost inner | Outermost inner ->
        count { acc with set_ops = acc.set_ops + 1 } inner
    | Chain (a, op, b) | Chain_strict (a, op, b) ->
        let acc =
          if is_direct op then { acc with direct_ops = acc.direct_ops + 1 }
          else { acc with simple_ops = acc.simple_ops + 1 }
        in
        count (count acc a) b
    | At_depth (_, a, b) ->
        count (count { acc with direct_ops = acc.direct_ops + 1 } a) b
  in
  let counts =
    count
      {
        simple_ops = 0;
        direct_ops = 0;
        set_ops = 0;
        selections = 0;
        weighted = 0.0;
      }
      e
  in
  { counts with weighted = (estimate stats e).cost }

(* Phase 2 slices each candidate's extent out of the text and re-parses
   it; the constant prices one region's slice+parse relative to index
   work. *)
let materialize_cost _stats ~rows = clamp (rows *. 32.0)

(* An uncovered candidate set (§6.2) must be sliced, parsed and
   re-filtered whole: price each surviving candidate at its average
   region size (bytes over the dominant name's cardinality), never
   below the exact-plan materialization. *)
let refilter_cost stats e ~rows =
  let card =
    match dominant e with
    | Some n -> Stats.card stats n
    | None -> Stats.universe stats
  in
  let bytes = Stats.text_bytes stats in
  let per_region =
    if bytes <= 0.0 then 256.0 else Float.max 64.0 (bytes /. Float.max 1.0 card)
  in
  clamp (rows *. per_region)

(* Whole-file parse: linear in the bytes the statistics cover.  When
   bytes are unknown (uniform statistics) the universe cardinality
   implies a corpus size instead, and a hard floor keeps scanning
   priced above indexed access even on empty statistics. *)
let scan_cost stats =
  let implied = Stats.universe stats *. 64.0 in
  clamp
    (Float.max 4096.0 (Float.max (Stats.text_bytes stats *. 2.0) implied))
