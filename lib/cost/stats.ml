type name_stats = {
  regions : int;
  match_points : int;
  depth_hist : int array;
}

module SM = Map.Make (String)

type t = {
  table : name_stats SM.t;
  default : int;  (* cardinality for unrecorded names *)
  bytes : int;  (* total source bytes covered, 0 unknown *)
}

let default_card = 1000

let uniform ?(card = default_card) () =
  { table = SM.empty; default = max 1 card; bytes = 0 }

let build_of_instance inst =
  (* One universe sweep assigns every region its nesting depth; the
     per-name histograms then just bucket the name's own regions.
     Mirrors Catalog.instance_depths, but from a live instance. *)
  let module RM = Map.Make (Pat.Region) in
  let buckets = 8 in
  let depth_of = ref RM.empty in
  let stack = ref [] in
  Pat.Region_set.iter
    (fun r ->
      let rec unwind = function
        | top :: rest when not (Pat.Region.includes top r) -> unwind rest
        | s -> s
      in
      stack := unwind !stack;
      depth_of := RM.add r (min (List.length !stack) (buckets - 1)) !depth_of;
      stack := r :: !stack)
    (Pat.Instance.universe inst);
  let table =
    List.fold_left
      (fun table name ->
        let rs = Pat.Instance.find inst name in
        let hist = Array.make buckets 0 in
        Pat.Region_set.iter
          (fun r ->
            match RM.find_opt r !depth_of with
            | Some d -> hist.(d) <- hist.(d) + 1
            | None -> ())
          rs;
        (* trim trailing zero buckets, matching the catalog's stored
           shape so live and persisted histograms compare equal *)
        let last = ref 0 in
        Array.iteri (fun i c -> if c > 0 then last := i) hist;
        SM.add name
          {
            regions = Pat.Region_set.cardinal rs;
            match_points = 0;
            depth_hist = Array.sub hist 0 (!last + 1);
          }
          table)
      SM.empty (Pat.Instance.names inst)
  in
  {
    table;
    default = default_card;
    bytes = Pat.Text.length (Pat.Instance.text inst);
  }

(* The sweep above is linear in the universe, which would make it the
   dominant cost of planning a small query; instances are immutable
   once built, so statistics are memoized per instance.  The key is
   physical identity, weak so a dropped instance releases its
   statistics; the lock makes the table safe under the multi-domain
   driver. *)
module Memo = Ephemeron.K1.Make (struct
  type t = Pat.Instance.t

  let equal = ( == )
  let hash i = Hashtbl.hash (Pat.Text.length (Pat.Instance.text i))
end)

let memo = Memo.create 16
let memo_lock = Mutex.create ()

let of_instance inst =
  Mutex.protect memo_lock (fun () ->
      match Memo.find_opt memo inst with
      | Some t -> t
      | None ->
          let t = build_of_instance inst in
          Memo.add memo inst t;
          t)

let of_entries entries =
  let add_hist a b =
    let n = max (Array.length a) (Array.length b) in
    Array.init n (fun i ->
        (if i < Array.length a then a.(i) else 0)
        + if i < Array.length b then b.(i) else 0)
  in
  let table =
    List.fold_left
      (fun table (e : Oqf_catalog.Catalog.entry) ->
        let table =
          List.fold_left
            (fun table (name, regions, mps) ->
              let prev =
                Option.value (SM.find_opt name table)
                  ~default:{ regions = 0; match_points = 0; depth_hist = [||] }
              in
              SM.add name
                {
                  prev with
                  regions = prev.regions + regions;
                  match_points = prev.match_points + mps;
                }
                table)
            table e.stats
        in
        List.fold_left
          (fun table (name, hist) ->
            let prev =
              Option.value (SM.find_opt name table)
                ~default:{ regions = 0; match_points = 0; depth_hist = [||] }
            in
            SM.add name
              { prev with depth_hist = add_hist prev.depth_hist hist }
              table)
          table e.depths)
      SM.empty entries
  in
  {
    table;
    default = default_card;
    bytes =
      List.fold_left (fun acc (e : Oqf_catalog.Catalog.entry) -> acc + e.length) 0 entries;
  }

let names t = List.map fst (SM.bindings t.table)
let find t name = SM.find_opt name t.table

let card t name =
  match SM.find_opt name t.table with
  | Some s -> float_of_int (max 0 s.regions)
  | None -> float_of_int t.default

let universe t =
  let total =
    SM.fold (fun _ s acc -> acc + max 0 s.regions) t.table 0
  in
  if total > 0 then float_of_int total else float_of_int t.default

let text_bytes t = float_of_int t.bytes

(* Independence assumption: word occurrences land uniformly on match
   points, so a region's chance of containing a given query word grows
   with how many words it holds.  The proxy for a word's reach is the
   corpus-average words-per-region: a name whose regions carry an
   average share of the text matches a typical word with probability
   ~1, while a name holding a single token per region is highly
   selective.  Both sides of the ratio are per-region densities, so
   the estimate is scale-free — growing the corpus leaves it fixed,
   and estimated match counts scale linearly with cardinality the way
   real word-index hits do. *)
let word_selectivity t name =
  match SM.find_opt name t.table with
  | Some s when s.match_points > 0 && s.regions > 0 ->
      let total_mps =
        SM.fold (fun _ x acc -> acc + x.match_points) t.table 0
      in
      let total_regions =
        SM.fold (fun _ x acc -> acc + max 0 x.regions) t.table 0
      in
      let avg_words =
        Float.max 1.0
          (float_of_int total_mps /. float_of_int (max 1 total_regions))
      in
      let per_region =
        float_of_int s.match_points /. float_of_int s.regions
      in
      let sel = per_region /. avg_words in
      Float.min 1.0 (Float.max (1.0 /. float_of_int s.regions) sel)
  | _ -> 0.1

(* Independence assumption: outer/inner region pairs combine depths at
   random, so the chance a random pair sits exactly one level apart is
   Σ_d P(outer at d) · P(inner at d+1).  The truth is correlated (an
   inner region's depth depends on which outer region holds it), so we
   clamp below at 0.05 rather than letting a skewed histogram predict
   impossibility, and return the conservative 1 when either histogram
   is missing. *)
let depth_overlap t ~outer ~inner =
  match (SM.find_opt outer t.table, SM.find_opt inner t.table) with
  | Some a, Some b
    when Array.length a.depth_hist > 0 && Array.length b.depth_hist > 0 ->
      let total h = float_of_int (max 1 (Array.fold_left ( + ) 0 h)) in
      let ta = total a.depth_hist and tb = total b.depth_hist in
      let p = ref 0.0 in
      Array.iteri
        (fun d ca ->
          if d + 1 < Array.length b.depth_hist then
            p :=
              !p
              +. float_of_int ca /. ta
                 *. (float_of_int b.depth_hist.(d + 1) /. tb))
        a.depth_hist;
      Float.min 1.0 (Float.max 0.05 !p)
  | _ -> 1.0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  SM.iter
    (fun name s ->
      Format.fprintf ppf "%s: %d regions, %d match points, depths [%s]@,"
        name s.regions s.match_points
        (String.concat ";"
           (Array.to_list (Array.map string_of_int s.depth_hist))))
    t.table;
  Format.fprintf ppf "universe=%.0f bytes=%d@]" (universe t) t.bytes
