let max_value_len = 128

let sanitize s =
  if s = "" then "_"
  else begin
    let n = min (String.length s) max_value_len in
    String.init n (fun i ->
        match s.[i] with c when Char.code c < 0x20 -> '_' | c -> c)
  end

let is_key_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '.' -> true
  | _ -> false

let sanitize_key s =
  if s = "" then "_"
  else begin
    let buf = Buffer.create (String.length s) in
    let last_sub = ref false in
    String.iter
      (fun c ->
        if is_key_char c then begin
          Buffer.add_char buf c;
          last_sub := false
        end
        else if not !last_sub then begin
          Buffer.add_char buf '_';
          last_sub := true
        end)
      s;
    Buffer.contents buf
  end

let escape_value s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render name labels =
  match labels with
  | [] -> name
  | labels ->
      let labels =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (List.map (fun (k, v) -> (sanitize_key k, sanitize v)) labels)
      in
      Printf.sprintf "%s{%s}" name
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_value v))
              labels))

(* Parse one label pair at [i] (just past '{' or ','), returning the
   pair and the index just past it.  Values are either "..." with
   exposition escapes, or (legacy) raw up to the next ',' or '}'. *)
let parse name =
  let n = String.length name in
  match String.index_opt name '{' with
  | None -> (name, [])
  | Some lb when n > 0 && name.[n - 1] = '}' -> begin
      let base = String.sub name 0 lb in
      let exception Malformed in
      let pairs = ref [] in
      let rec pair i =
        (* key *)
        let rec key_end j =
          if j >= n then raise Malformed
          else if name.[j] = '=' then j
          else key_end (j + 1)
        in
        let eq = key_end i in
        let key = String.sub name i (eq - i) in
        if key = "" then raise Malformed;
        let vstart = eq + 1 in
        if vstart < n && name.[vstart] = '"' then begin
          (* quoted, with escapes *)
          let buf = Buffer.create 16 in
          let rec go j =
            if j >= n then raise Malformed
            else
              match name.[j] with
              | '"' -> j + 1
              | '\\' when j + 1 < n ->
                  (match name.[j + 1] with
                  | 'n' -> Buffer.add_char buf '\n'
                  | c -> Buffer.add_char buf c);
                  go (j + 2)
              | c ->
                  Buffer.add_char buf c;
                  go (j + 1)
          in
          let after = go (vstart + 1) in
          pairs := (key, Buffer.contents buf) :: !pairs;
          next after
        end
        else begin
          (* legacy unquoted: runs to ',' or the closing '}' *)
          let rec val_end j =
            if j >= n - 1 then n - 1
            else if name.[j] = ',' then j
            else val_end (j + 1)
          in
          let ve = val_end vstart in
          pairs := (key, String.sub name vstart (ve - vstart)) :: !pairs;
          next ve
        end
      and next j =
        if j = n - 1 then ()
        else if j < n && name.[j] = ',' then pair (j + 1)
        else raise Malformed
      in
      match if lb + 1 = n - 1 then () else pair (lb + 1) with
      | () -> (base, List.rev !pairs)
      | exception Malformed -> (name, [])
    end
  | Some _ -> (name, [])
