type node = {
  name : string;
  start_ms : float;
  stop_ms : float;
  attrs : Trace.attrs;
  events : (string * float * Trace.attrs) list;
  children : node list;
}

let duration_ms n = n.stop_ms -. n.start_ms

(* ------------------------------------------------------------------ *)
(* memory: reconstruct the span forest from the event stream *)

type partial = {
  p_name : string;
  p_start : float;
  p_parent : int;
  mutable p_stop : float;
  mutable p_attrs : Trace.attrs;
  mutable p_events : (string * float * Trace.attrs) list;  (* reversed *)
  mutable p_children : int list;  (* reversed *)
}

let memory () =
  let spans : (int, partial) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  let root_events = ref [] in
  let emit = function
    | Trace.Begin { id; parent; name; ts } ->
        Hashtbl.replace spans id
          {
            p_name = name;
            p_start = ts;
            p_parent = parent;
            p_stop = ts;
            p_attrs = [];
            p_events = [];
            p_children = [];
          };
        if parent = 0 then roots := id :: !roots
        else begin
          match Hashtbl.find_opt spans parent with
          | Some p -> p.p_children <- id :: p.p_children
          | None -> roots := id :: !roots
        end
    | Trace.End { id; ts; attrs; _ } -> begin
        match Hashtbl.find_opt spans id with
        | Some p ->
            p.p_stop <- ts;
            p.p_attrs <- attrs
        | None -> ()
      end
    | Trace.Instant { name; parent; ts; attrs } -> begin
        match Hashtbl.find_opt spans parent with
        | Some p -> p.p_events <- (name, ts, attrs) :: p.p_events
        | None -> root_events := (name, ts, attrs) :: !root_events
      end
  in
  let rec build id =
    let p = Hashtbl.find spans id in
    {
      name = p.p_name;
      start_ms = p.p_start;
      stop_ms = p.p_stop;
      attrs = p.p_attrs;
      events = List.rev p.p_events;
      children = List.rev_map build p.p_children;
    }
  in
  let forest () = List.rev_map build !roots in
  ({ Trace.emit; flush = (fun () -> ()) }, forest)

(* ------------------------------------------------------------------ *)
(* rendering *)

let pp_value ppf = function
  | Trace.Str s -> Format.fprintf ppf "%s" s
  | Trace.Int i -> Format.fprintf ppf "%d" i
  | Trace.Float f -> Format.fprintf ppf "%g" f
  | Trace.Bool b -> Format.fprintf ppf "%b" b

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Format.fprintf ppf " {%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           (fun ppf (k, v) -> Format.fprintf ppf "%s=%a" k pp_value v))
        attrs

let pp_node ?(show_times = true) ppf root =
  let rec go indent n =
    Format.fprintf ppf "%s%s" indent n.name;
    if show_times then Format.fprintf ppf " (%.3f ms)" (duration_ms n);
    pp_attrs ppf n.attrs;
    Format.fprintf ppf "@.";
    List.iter
      (fun (name, _, attrs) ->
        Format.fprintf ppf "%s  * %s%a@." indent name pp_attrs attrs)
      n.events;
    List.iter (go (indent ^ "  ")) n.children
  in
  go "" root

let pretty ppf =
  let mem, forest = memory () in
  {
    Trace.emit = mem.Trace.emit;
    flush = (fun () -> List.iter (pp_node ppf) (forest ()));
  }

(* ------------------------------------------------------------------ *)
(* JSON helpers *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_value = function
  | Trace.Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Printf.sprintf "%g" f
  | Trace.Bool b -> string_of_bool b

let json_attrs attrs =
  String.concat ","
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v))
       attrs)

(* ------------------------------------------------------------------ *)
(* jsonl *)

let jsonl oc =
  let line ev id parent name ts attrs =
    Printf.fprintf oc
      "{\"ev\":\"%s\",\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"ts_ms\":%.3f,\"attrs\":{%s}}\n"
      ev id parent (json_escape name) ts (json_attrs attrs)
  in
  let emit = function
    | Trace.Begin { id; parent; name; ts } -> line "begin" id parent name ts []
    | Trace.End { id; name; ts; attrs } -> line "end" id 0 name ts attrs
    | Trace.Instant { name; parent; ts; attrs } ->
        line "instant" 0 parent name ts attrs
  in
  { Trace.emit; flush = (fun () -> flush oc) }

(* ------------------------------------------------------------------ *)
(* chrome trace_event: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU *)

let chrome oc =
  let first = ref true in
  output_string oc "[\n";
  let record ~ph ~name ~ts ?(extra = "") () =
    if !first then first := false else output_string oc ",\n";
    Printf.fprintf oc
      "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.1f,\"pid\":1,\"tid\":1%s}"
      (json_escape name) ph (ts *. 1000.0) extra
  in
  let args attrs =
    if attrs = [] then "" else Printf.sprintf ",\"args\":{%s}" (json_attrs attrs)
  in
  let emit = function
    | Trace.Begin { name; ts; _ } -> record ~ph:"B" ~name ~ts ()
    | Trace.End { name; ts; attrs; _ } ->
        record ~ph:"E" ~name ~ts ~extra:(args attrs) ()
    | Trace.Instant { name; ts; attrs; _ } ->
        record ~ph:"i" ~name ~ts ~extra:(",\"s\":\"t\"" ^ args attrs) ()
  in
  let flush () =
    output_string oc "\n]\n";
    flush oc
  in
  { Trace.emit; flush }
