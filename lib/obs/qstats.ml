type workload = {
  name : string;
  count : int;
  errors : int;
  degraded : int;
  cached : int;
  slow : int;
  retries : int;
  faults : int;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  total_ms : float;
}

type query = {
  text : string;
  workload : string;
  schema : string;
  count : int;
  total_ms : float;
  max_ms : float;
  cached : int;
}

type t = {
  records : int;
  skipped : int;
  files : string list;
  workloads : workload list;
  by_count : query list;
  by_total_ms : query list;
}

(* nearest-rank percentile over a sorted array *)
let rank sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

type wl_acc = {
  mutable w_count : int;
  mutable w_errors : int;
  mutable w_degraded : int;
  mutable w_cached : int;
  mutable w_slow : int;
  mutable w_retries : int;
  mutable w_faults : int;
  mutable w_lat : float list;
}

type q_acc = {
  mutable q_schema : string;
  mutable q_count : int;
  mutable q_total : float;
  mutable q_max : float;
  mutable q_cached : int;
  mutable q_wl : string;
}

let of_files ?(top = 10) ?slow_ms files =
  let wls : (string, wl_acc) Hashtbl.t = Hashtbl.create 8 in
  let qs : (string, q_acc) Hashtbl.t = Hashtbl.create 64 in
  let records = ref 0 in
  let skipped = ref 0 in
  let consume () (r : Qlog.record) =
    incr records;
    let wl =
      match Hashtbl.find_opt wls r.Qlog.workload with
      | Some a -> a
      | None ->
          let a =
            {
              w_count = 0;
              w_errors = 0;
              w_degraded = 0;
              w_cached = 0;
              w_slow = 0;
              w_retries = 0;
              w_faults = 0;
              w_lat = [];
            }
          in
          Hashtbl.add wls r.Qlog.workload a;
          a
    in
    wl.w_count <- wl.w_count + 1;
    if r.Qlog.outcome = "error" then wl.w_errors <- wl.w_errors + 1;
    if r.Qlog.outcome = "degraded" then wl.w_degraded <- wl.w_degraded + 1;
    if r.Qlog.cached then wl.w_cached <- wl.w_cached + 1;
    (match slow_ms with
    | Some thresh when r.Qlog.latency_ms >= thresh -> wl.w_slow <- wl.w_slow + 1
    | _ -> ());
    wl.w_retries <- wl.w_retries + r.Qlog.retries;
    wl.w_faults <- wl.w_faults + r.Qlog.faults;
    wl.w_lat <- r.Qlog.latency_ms :: wl.w_lat;
    let qa =
      match Hashtbl.find_opt qs r.Qlog.query with
      | Some a -> a
      | None ->
          let a =
            {
              q_schema = r.Qlog.schema;
              q_count = 0;
              q_total = 0.;
              q_max = 0.;
              q_cached = 0;
              q_wl = r.Qlog.workload;
            }
          in
          Hashtbl.add qs r.Qlog.query a;
          a
    in
    qa.q_count <- qa.q_count + 1;
    qa.q_total <- qa.q_total +. r.Qlog.latency_ms;
    if r.Qlog.latency_ms > qa.q_max then qa.q_max <- r.Qlog.latency_ms;
    if r.Qlog.cached then qa.q_cached <- qa.q_cached + 1
  in
  let rec load = function
    | [] -> Ok ()
    | f :: rest -> (
        match Qlog.fold f ~init:() ~f:consume with
        | Ok ((), sk) ->
            skipped := !skipped + sk;
            load rest
        | Error e -> Error (Printf.sprintf "%s: %s" f e))
  in
  match load files with
  | Error e -> Error e
  | Ok () ->
      let workloads =
        Hashtbl.fold
          (fun name a acc ->
            let sorted = Array.of_list a.w_lat in
            Array.sort compare sorted;
            {
              name;
              count = a.w_count;
              errors = a.w_errors;
              degraded = a.w_degraded;
              cached = a.w_cached;
              slow = a.w_slow;
              retries = a.w_retries;
              faults = a.w_faults;
              p50 = rank sorted 0.50;
              p95 = rank sorted 0.95;
              p99 = rank sorted 0.99;
              max = (if Array.length sorted = 0 then 0. else sorted.(Array.length sorted - 1));
              total_ms = Array.fold_left ( +. ) 0. sorted;
            }
            :: acc)
          wls []
        |> List.sort (fun a b -> String.compare a.name b.name)
      in
      let queries =
        Hashtbl.fold
          (fun text a acc ->
            {
              text;
              workload = a.q_wl;
              schema = a.q_schema;
              count = a.q_count;
              total_ms = a.q_total;
              max_ms = a.q_max;
              cached = a.q_cached;
            }
            :: acc)
          qs []
      in
      let take n l =
        let rec go n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: r -> x :: go (n - 1) r
        in
        go n l
      in
      let by_count =
        List.sort
          (fun a b ->
            match compare b.count a.count with
            | 0 -> String.compare a.text b.text
            | c -> c)
          queries
        |> take top
      in
      let by_total_ms =
        List.sort
          (fun a b ->
            match compare b.total_ms a.total_ms with
            | 0 -> String.compare a.text b.text
            | c -> c)
          queries
        |> take top
      in
      Ok
        {
          records = !records;
          skipped = !skipped;
          files;
          workloads;
          by_count;
          by_total_ms;
        }

let to_json t =
  let open Jsonx in
  let query_j (q : query) =
    Obj
      [
        ("query", Str q.text);
        ("workload", Str q.workload);
        ("schema", Str q.schema);
        ("count", Num (float_of_int q.count));
        ("total_ms", Num q.total_ms);
        ("max_ms", Num q.max_ms);
        ("cached", Num (float_of_int q.cached));
      ]
  in
  Obj
    [
      ("records", Num (float_of_int t.records));
      ("skipped", Num (float_of_int t.skipped));
      ("files", Arr (List.map (fun f -> Str f) t.files));
      ( "workloads",
        Arr
          (List.map
             (fun (w : workload) ->
               Obj
                 [
                   ("workload", Str w.name);
                   ("count", Num (float_of_int w.count));
                   ("errors", Num (float_of_int w.errors));
                   ("degraded", Num (float_of_int w.degraded));
                   ("cached", Num (float_of_int w.cached));
                   ("slow", Num (float_of_int w.slow));
                   ("retries", Num (float_of_int w.retries));
                   ("faults", Num (float_of_int w.faults));
                   ("p50_ms", Num w.p50);
                   ("p95_ms", Num w.p95);
                   ("p99_ms", Num w.p99);
                   ("max_ms", Num w.max);
                   ("total_ms", Num w.total_ms);
                 ])
             t.workloads) );
      ("top_by_count", Arr (List.map query_j t.by_count));
      ("top_by_total_ms", Arr (List.map query_j t.by_total_ms));
    ]

let pp ppf t =
  let hit_rate c n = if n = 0 then 0. else 100. *. float_of_int c /. float_of_int n in
  Format.fprintf ppf "qlog: %d records (%d skipped) from %d file%s@."
    t.records t.skipped (List.length t.files)
    (if List.length t.files = 1 then "" else "s");
  Format.fprintf ppf "@.workloads:@.";
  Format.fprintf ppf "  %-16s %8s %8s %8s %8s %9s %9s %9s %7s@." "workload"
    "count" "errors" "degraded" "slow" "p50(ms)" "p95(ms)" "p99(ms)" "cache%";
  List.iter
    (fun (w : workload) ->
      Format.fprintf ppf "  %-16s %8d %8d %8d %8d %9.2f %9.2f %9.2f %6.1f%%@."
        w.name w.count w.errors w.degraded w.slow w.p50 w.p95 w.p99
        (hit_rate w.cached w.count))
    t.workloads;
  let top title sel l =
    Format.fprintf ppf "@.%s:@." title;
    List.iter
      (fun (q : query) ->
        Format.fprintf ppf "  %8s  %s@." (sel q)
          (if String.length q.text > 72 then String.sub q.text 0 69 ^ "..."
           else q.text))
      l
  in
  top "top queries by frequency"
    (fun q -> Printf.sprintf "%dx" q.count)
    t.by_count;
  top "top queries by total latency"
    (fun q -> Printf.sprintf "%.1fms" q.total_ms)
    t.by_total_ms;
  let retries = List.fold_left (fun a (w : workload) -> a + w.retries) 0 t.workloads in
  let faults = List.fold_left (fun a (w : workload) -> a + w.faults) 0 t.workloads in
  if retries > 0 || faults > 0 then
    Format.fprintf ppf "@.resilience: %d retries, %d injected faults observed@."
      retries faults
