(** Workload aggregation over a query log — the replay input for the
    future cost-based [oqf advise].

    [oqf stats] folds one or more qlog files (current segment plus
    rotated ones) into the per-workload latency distribution, the
    top-N queries by frequency and by total latency, and cache-hit /
    degradation / fault trends.  Percentiles are nearest-rank over the
    full recorded population, so they are directly comparable with the
    live daemon's [/metrics] histogram quantiles for the same
    workload. *)

type workload = {
  name : string;
  count : int;
  errors : int;
  degraded : int;
  cached : int;
  slow : int;
  retries : int;
  faults : int;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  total_ms : float;
}

type query = {
  text : string;  (** normalized query text *)
  workload : string;  (** the (single or dominant) workload label *)
  schema : string;
      (** the schema the query ran against (first observed record's) —
          what the cost-based advisor replays the query with *)
  count : int;
  total_ms : float;
  max_ms : float;
  cached : int;
}

type t = {
  records : int;
  skipped : int;  (** unparseable lines across all inputs *)
  files : string list;
  workloads : workload list;  (** sorted by name *)
  by_count : query list;  (** top-N, most frequent first *)
  by_total_ms : query list;  (** top-N, most total latency first *)
}

val of_files : ?top:int -> ?slow_ms:float -> string list -> (t, string) result
(** Aggregate the given qlog files (in order).  [top] bounds both
    top-N lists (default 10).  [slow_ms] recomputes the slow count at
    a threshold of your choosing; when absent, records are counted
    slow only if the producing process flagged them (not recorded in
    the line format, so 0 without a threshold).  [Error] if any file
    is unreadable. *)

val to_json : t -> Jsonx.t
val pp : Format.formatter -> t -> unit
