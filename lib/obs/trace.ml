type value = Str of string | Int of int | Float of float | Bool of bool
type attrs = (string * value) list

type event =
  | Begin of { id : int; parent : int; name : string; ts : float }
  | End of { id : int; name : string; ts : float; attrs : attrs }
  | Instant of { name : string; parent : int; ts : float; attrs : attrs }

type sink = { emit : event -> unit; flush : unit -> unit }

let current : sink option ref = ref None

(* Sinks write to channels and keep internal buffers, so concurrent
   domains must not interleave inside [emit]/[flush]. *)
let emit_lock = Mutex.create ()

let emit_locked s ev =
  Mutex.lock emit_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock emit_lock) (fun () -> s.emit ev)

(* ids of the open spans, innermost first; 0 is the virtual root.  Span
   nesting is a property of one thread of execution, so each domain
   (each Exec pool worker) keeps its own stack — a worker's spans root
   at 0 rather than under whatever the main domain happens to have
   open. *)
let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key
let next_id = Atomic.make 0

let enabled () = match !current with None -> false | Some _ -> true
let sink () = !current

let now_ms () = Int64.to_float (Monotonic_clock.now ()) /. 1e6

let flush () =
  match !current with
  | None -> ()
  | Some s ->
      Mutex.lock emit_lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock emit_lock) (fun () -> s.flush ())

let set_sink s =
  flush ();
  current := s;
  stack () := []

type span = { id : int; name : string }

let null = { id = 0; name = "" }

let parent_id () = match !(stack ()) with [] -> 0 | p :: _ -> p

let begin_span ?(attrs = []) name =
  match !current with
  | None -> null
  | Some s ->
      let id = Atomic.fetch_and_add next_id 1 + 1 in
      emit_locked s (Begin { id; parent = parent_id (); name; ts = now_ms () });
      (* begin-attrs are rare; fold them into an instant so sinks need
         no merge logic *)
      if attrs <> [] then
        emit_locked s
          (Instant { name = name ^ ".args"; parent = id; ts = now_ms (); attrs });
      let st = stack () in
      st := id :: !st;
      { id; name }

let end_span ?(attrs = []) span =
  if span.id <> 0 then begin
    match !current with
    | None -> ()
    | Some s ->
        (* pop to (and including) this span, closing any descendants a
           non-local exit left open *)
        let rec pop = function
          | [] -> []
          | id :: rest ->
              if id = span.id then rest
              else begin
                emit_locked s
                  (End { id; name = "(abandoned)"; ts = now_ms (); attrs = [] });
                pop rest
              end
        in
        let st = stack () in
        st := pop !st;
        emit_locked s (End { id = span.id; name = span.name; ts = now_ms (); attrs })
  end

let with_span ?attrs name f =
  match !current with
  | None -> f ()
  | Some _ ->
      let span = begin_span name in
      Fun.protect
        ~finally:(fun () ->
          let attrs = match attrs with None -> [] | Some g -> g () in
          end_span ~attrs span)
        f

let instant ?(attrs = []) name =
  match !current with
  | None -> ()
  | Some s ->
      emit_locked s (Instant { name; parent = parent_id (); ts = now_ms (); attrs })
