(** Prometheus text exposition of the {!Metrics} registry.

    The registry interns labelled metrics by their canonical rendered
    name ([query.latency_ms{workload="bibtex"}]); exposition splits
    that name back apart with {!Label.parse}, maps dots to underscores
    (Prometheus metric names admit [[a-zA-Z0-9_:]] only) and prefixes
    everything with [oqf_].  Counters are exposed as gauges (several
    registry counters are levels, e.g. [serve.active], so the
    monotonic [counter] contract would be a lie); histograms as
    summaries — [quantile="0.5"/"0.95"/"0.99"] series plus [_sum],
    [_count] and a non-standard [_max] gauge. *)

val render : unit -> string
(** The full registry in exposition text format (one trailing
    newline), families sorted by name, [# TYPE] comment per family. *)

val validate : string -> (unit, string) result
(** Structural check of an exposition page: every line is a comment or
    [name{labels} value] with a well-formed name, quoted/escaped label
    values and a float value.  [Error] names the first offending line.
    Used by tests and [oqf metrics scrape --validate] so CI can gate
    the live daemon's output without a real Prometheus parser. *)
