(** Per-domain evaluation deadlines.

    The Exec worker pool gives each task an optional deadline; the
    region-algebra evaluator polls {!check} once per operator
    application so a runaway expression aborts close to its budget
    instead of holding a worker forever.  The armed deadline lives in
    domain-local storage, so concurrent tasks on different workers
    cannot see each other's budgets.

    Granularity: a single operator application (one inclusion join,
    one selection) runs to completion — the poll sits between
    operators, not inside their loops — so an expiry is detected at
    the next operator boundary. *)

exception Expired of float
(** Raised by {!check} (and thus out of the evaluator) when the armed
    deadline has passed; carries the task's budget in milliseconds. *)

val with_timeout_ms : float -> (unit -> 'a) -> 'a
(** [with_timeout_ms ms f] runs [f] with a deadline [ms] milliseconds
    from now on this domain's monotonic clock, restoring the previous
    deadline (if any) afterwards.  Nested timeouts keep the earlier of
    the two deadlines.  [ms <= 0] expires on the first {!check}. *)

val check : unit -> unit
(** Raise {!Expired} if this domain has an armed deadline that has
    passed; return immediately otherwise.  Safe to call at any
    frequency — the disarmed path is one domain-local load. *)

val armed : unit -> bool
(** Whether a deadline is currently armed on this domain. *)
