(** A process-wide metrics registry: named counters and histograms.

    The registry is the single home of the engine's quantitative
    self-description.  {!Stdx.Stats} publishes the paper's work
    quantities ([engine.*]) through it, the optimizer records applied
    rewrites ([optimizer.*]), and the executor feeds latency and size
    histograms ([query.*]).  Registration is create-or-get by name, so
    a metric can be declared where it is incremented and read anywhere
    else by the same name. *)

type counter
(** A monotonically adjustable integer cell, registered by name. *)

val counter : string -> counter
(** [counter name] returns the registered counter called [name],
    creating it at zero on first use.  The same name always yields the
    same cell. *)

val incr : counter -> unit
(** Add one. *)

val add_to : counter -> int -> unit
(** Add an arbitrary amount (hot paths add batch sizes). *)

val value : counter -> int
(** Current value. *)

val set : counter -> int -> unit
(** Overwrite the value (used by resets; not for hot paths). *)

val counter_name : counter -> string

val find_counter : string -> counter option
(** Look a counter up without creating it. *)

type histogram
(** A series of float observations summarised by rank statistics. *)

val histogram : string -> histogram
(** Create-or-get, like {!counter}. *)

val observe : histogram -> float -> unit
(** Record one observation (a latency in milliseconds, a size in
    bytes, …). *)

type summary = {
  count : int;
  sum : float;
  p50 : float;  (** median, nearest-rank *)
  p95 : float;  (** 95th percentile, nearest-rank *)
  p99 : float;  (** 99th percentile, nearest-rank — tail latency under
                    sustained serving load (the serve daemon's SLO
                    quantile) *)
  max : float;
}

val summarize : histogram -> summary option
(** [None] until the histogram has at least one observation. *)

val histogram_name : histogram -> string

val counters : unit -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

val histograms : unit -> (string * summary) list
(** Every registered histogram that has observations, sorted by
    name. *)

val dump : Format.formatter -> unit -> unit
(** Render every counter and histogram summary, one per line, sorted
    by name — the registry's human-readable state. *)

val reset_all : unit -> unit
(** Zero every counter and drop every histogram's observations.  Meant
    for tests and benchmark harness isolation. *)
