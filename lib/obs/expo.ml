let prom_name base =
  let s = Label.sanitize_key base in
  "oqf_" ^ String.map (fun c -> if c = '.' then '_' else c) s

let render_labels labels =
  match labels with
  | [] -> ""
  | labels ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "%s=\"%s\"" (Label.sanitize_key k)
                  (Label.escape_value v))
              labels))

let fnum f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(* Group a list of (full registered name, payload) by prom family name
   so the # TYPE comment appears once per family. *)
let group_by_family items =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, payload) ->
      let base, labels = Label.parse name in
      let fam = prom_name base in
      (match Hashtbl.find_opt tbl fam with
      | None ->
          order := fam :: !order;
          Hashtbl.add tbl fam [ (labels, payload) ]
      | Some prev -> Hashtbl.replace tbl fam ((labels, payload) :: prev)))
    items;
  List.rev_map (fun fam -> (fam, List.rev (Hashtbl.find tbl fam))) !order
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let render () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (fam, series) ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" fam);
      List.iter
        (fun (labels, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" fam (render_labels labels) v))
        series)
    (group_by_family (Metrics.counters ()));
  List.iter
    (fun (fam, series) ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" fam);
      List.iter
        (fun (labels, (s : Metrics.summary)) ->
          let q quant v =
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" fam
                 (render_labels (labels @ [ ("quantile", quant) ]))
                 (fnum v))
          in
          q "0.5" s.Metrics.p50;
          q "0.95" s.Metrics.p95;
          q "0.99" s.Metrics.p99;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" fam (render_labels labels)
               (fnum s.Metrics.sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" fam (render_labels labels)
               s.Metrics.count);
          Buffer.add_string buf
            (Printf.sprintf "%s_max%s %s\n" fam (render_labels labels)
               (fnum s.Metrics.max)))
        series)
    (group_by_family (Metrics.histograms ()));
  Buffer.contents buf

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let validate_line line =
  let n = String.length line in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if n = 0 then Ok ()
  else if line.[0] = '#' then Ok ()
  else begin
    (* name *)
    if not (is_name_start line.[0]) then fail "bad metric name start"
    else begin
      let i = ref 1 in
      while !i < n && is_name_char line.[!i] do incr i done;
      (* optional label block *)
      let labels_ok =
        if !i < n && line.[!i] = '{' then begin
          incr i;
          let ok = ref true in
          let done_ = ref false in
          while (not !done_) && !ok && !i < n do
            if line.[!i] = '}' then begin
              incr i;
              done_ := true
            end
            else begin
              (* key *)
              if not (is_name_start line.[!i]) then ok := false
              else begin
                while !i < n && is_name_char line.[!i] do incr i done;
                if !i + 1 >= n || line.[!i] <> '=' || line.[!i + 1] <> '"'
                then ok := false
                else begin
                  i := !i + 2;
                  let closed = ref false in
                  while (not !closed) && !i < n do
                    if line.[!i] = '\\' then i := !i + 2
                    else if line.[!i] = '"' then begin
                      closed := true;
                      incr i
                    end
                    else incr i
                  done;
                  if not !closed then ok := false
                  else if !i < n && line.[!i] = ',' then incr i
                  else if !i < n && line.[!i] = '}' then ()
                  else ok := false
                end
              end
            end
          done;
          !ok && !done_
        end
        else true
      in
      if not labels_ok then fail "malformed label block"
      else if !i >= n || line.[!i] <> ' ' then fail "missing value separator"
      else begin
        let v = String.sub line (!i + 1) (n - !i - 1) in
        match float_of_string_opt (String.trim v) with
        | Some _ -> Ok ()
        | None -> fail "unparseable value %S" v
      end
    end
  end

let validate text =
  let lines = String.split_on_char '\n' text in
  let rec go ln = function
    | [] -> Ok ()
    | line :: rest -> (
        match validate_line line with
        | Ok () -> go (ln + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s: %s" ln e line))
  in
  go 1 lines
