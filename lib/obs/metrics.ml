type counter = { c_name : string; count : int Atomic.t }

type histogram = {
  h_name : string;
  mutable values : float array;  (* observations, first [len] slots live *)
  mutable len : int;
}

type item = Counter of counter | Histogram of histogram

(* The registry proper.  Counters are atomic cells so concurrent
   domains (the Exec worker pool) never lose increments; structural
   mutation — create-or-get interning, histogram observation, dumps —
   is serialized by [lock].  Holding a counter handle and bumping it
   stays lock-free, so the hot path is an uncontended fetch-and-add. *)
let registry : (string, item) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg (Printf.sprintf "Obs.Metrics.counter: %s is a histogram" name)
  | None ->
      let c = { c_name = name; count = Atomic.make 0 } in
      Hashtbl.replace registry name (Counter c);
      c

let[@inline] incr c = Atomic.incr c.count
let[@inline] add_to c n = ignore (Atomic.fetch_and_add c.count n)
let[@inline] value c = Atomic.get c.count
let set c n = Atomic.set c.count n
let counter_name c = c.c_name

let find_counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> Some c
  | _ -> None

let histogram name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg (Printf.sprintf "Obs.Metrics.histogram: %s is a counter" name)
  | None ->
      let h = { h_name = name; values = Array.make 16 0.0; len = 0 } in
      Hashtbl.replace registry name (Histogram h);
      h

let observe h x =
  locked @@ fun () ->
  if h.len = Array.length h.values then begin
    let bigger = Array.make (2 * h.len) 0.0 in
    Array.blit h.values 0 bigger 0 h.len;
    h.values <- bigger
  end;
  h.values.(h.len) <- x;
  h.len <- h.len + 1

type summary = {
  count : int;
  sum : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

(* Nearest-rank percentile on a sorted copy of the observations. *)
let summarize_unlocked h =
  if h.len = 0 then None
  else begin
    let sorted = Array.sub h.values 0 h.len in
    Array.sort Float.compare sorted;
    let n = h.len in
    let rank q = min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)) in
    Some
      {
        count = n;
        sum = Array.fold_left ( +. ) 0.0 sorted;
        p50 = sorted.(rank 0.5);
        p95 = sorted.(rank 0.95);
        p99 = sorted.(rank 0.99);
        max = sorted.(n - 1);
      }
  end

let summarize h = locked @@ fun () -> summarize_unlocked h
let histogram_name h = h.h_name

let sorted_items () =
  let all =
    locked @@ fun () ->
    Hashtbl.fold (fun name item acc -> (name, item) :: acc) registry []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let counters () =
  List.filter_map
    (function name, Counter c -> Some (name, Atomic.get c.count) | _ -> None)
    (sorted_items ())

let histograms () =
  List.filter_map
    (function
      | name, Histogram h -> Option.map (fun s -> (name, s)) (summarize h)
      | _ -> None)
    (sorted_items ())

let dump ppf () =
  List.iter
    (fun (name, item) ->
      match item with
      | Counter c -> Format.fprintf ppf "%s = %d@." name (Atomic.get c.count)
      | Histogram h -> begin
          match summarize h with
          | None -> Format.fprintf ppf "%s = (no observations)@." name
          | Some s ->
              Format.fprintf ppf
                "%s = count=%d sum=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f@."
                name s.count s.sum s.p50 s.p95 s.p99 s.max
        end)
    (sorted_items ())

let reset_all () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ item ->
      match item with
      | Counter c -> Atomic.set c.count 0
      | Histogram h -> h.len <- 0)
    registry
