(** Hierarchical execution tracing.

    A trace is a stream of events — span begins/ends and instant
    events — timestamped with a monotonic clock and threaded with
    parent ids so the thread of execution can be reconstructed into a
    tree.  Events flow to the installed {!sink} (see {!Sink} for the
    pretty-printer, JSON-lines and Chrome [trace_event] sinks).

    Tracing is off unless a sink is installed.  Every entry point
    checks {!enabled} first and returns immediately when it is false:
    a disabled instrumentation site costs one load and branch, no
    allocation — verified by bench O1. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attrs = (string * value) list
(** Attributes attached to a span end or an instant event. *)

type event =
  | Begin of { id : int; parent : int; name : string; ts : float }
      (** span opened; [parent = 0] for roots; [ts] in milliseconds on
          the monotonic clock *)
  | End of { id : int; name : string; ts : float; attrs : attrs }
      (** span closed, with its accumulated attributes *)
  | Instant of { name : string; parent : int; ts : float; attrs : attrs }
      (** a point event inside the current span *)

type sink = { emit : event -> unit; flush : unit -> unit }

val set_sink : sink option -> unit
(** Install or remove the sink.  Installing flushes and replaces any
    previous sink and resets the open-span stack. *)

val sink : unit -> sink option

val enabled : unit -> bool
(** [true] iff a sink is installed. *)

val now_ms : unit -> float
(** Monotonic clock reading in milliseconds (arbitrary epoch). *)

type span
(** An open span handle.  When tracing is disabled, handles are the
    shared {!null} and all operations on them are no-ops. *)

val null : span

val begin_span : ?attrs:attrs -> string -> span
(** Open a span nested under the innermost open span. *)

val end_span : ?attrs:attrs -> span -> unit
(** Close the span (and any unclosed descendants), emitting [attrs]. *)

val with_span : ?attrs:(unit -> attrs) -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span.  [attrs] is evaluated
    only when tracing is enabled, after [f] returns — so attribute
    computation is free when disabled.  Exception-safe. *)

val instant : ?attrs:attrs -> string -> unit
(** Emit a point event under the innermost open span. *)

val flush : unit -> unit
(** Flush the installed sink, if any. *)
