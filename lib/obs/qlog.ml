type ctx = { trace_id : string; workload : string }

let trace_seq = Atomic.make 0

let gen_trace_id () =
  let n = Atomic.fetch_and_add trace_seq 1 in
  let t = Unix.gettimeofday () in
  Printf.sprintf "q%x-%x-%d"
    (int_of_float (t *. 1e3) land 0xffffffff)
    (Unix.getpid () land 0xffff)
    n

type record = {
  ts : float;
  trace_id : string;
  workload : string;
  schema : string;
  kind : string;
  query : string;
  latency_ms : float;
  rows : int;
  cached : bool;
  shards : int;
  outcome : string;
  error : string option;
  events : (string * string) list;
  retries : int;
  faults : int;
  candidates : int;
  est_cost : float;
  generation : int;
}

let make ~(ctx : ctx) ~workload_default ~schema ~kind ~query ~latency_ms ~rows ~cached
    ~shards ~outcome ?error ?(events = []) ?(retries = 0) ?(faults = 0)
    ?(candidates = 0) ?(est_cost = 0.) ?(generation = 0) () =
  let workload =
    if ctx.workload <> "" then ctx.workload else workload_default
  in
  {
    ts = Unix.gettimeofday ();
    trace_id = ctx.trace_id;
    workload = Label.sanitize workload;
    schema = Label.sanitize schema;
    kind;
    query;
    latency_ms;
    rows;
    cached;
    shards;
    outcome;
    error;
    events;
    retries;
    faults;
    candidates;
    est_cost;
    generation;
  }

let record_to_json r =
  let open Jsonx in
  let base =
    [
      ("ts", Num r.ts);
      ("trace", Str r.trace_id);
      ("workload", Str r.workload);
      ("schema", Str r.schema);
      ("kind", Str r.kind);
      ("query", Str r.query);
      ("ms", Num r.latency_ms);
      ("rows", Num (float_of_int r.rows));
      ("cached", Bool r.cached);
      ("shards", Num (float_of_int r.shards));
      ("outcome", Str r.outcome);
    ]
  in
  let base =
    match r.error with None -> base | Some e -> base @ [ ("error", Str e) ]
  in
  let base =
    match r.events with
    | [] -> base
    | evs ->
        base
        @ [
            ( "events",
              Arr
                (List.map
                   (fun (a, d) -> Obj [ ("action", Str a); ("detail", Str d) ])
                   evs) );
          ]
  in
  let base = if r.retries > 0 then base @ [ ("retries", Num (float_of_int r.retries)) ] else base in
  let base = if r.faults > 0 then base @ [ ("faults", Num (float_of_int r.faults)) ] else base in
  (* cost-model feedback: phase-1 candidate cardinality actually seen
     and the planner's estimated cost — the advisor's calibration
     signal.  Omitted at zero, so logs written before the fields
     existed and rules-mode logs read back identically. *)
  let base =
    if r.candidates > 0 then
      base @ [ ("candidates", Num (float_of_int r.candidates)) ]
    else base
  in
  let base =
    if r.est_cost > 0. then base @ [ ("est_cost", Num r.est_cost) ] else base
  in
  (* the catalog generation the query read (watch-mode ingest); 0 =
     unknown/static, omitted for compatibility both ways *)
  let base =
    if r.generation > 0 then
      base @ [ ("gen", Num (float_of_int r.generation)) ]
    else base
  in
  Obj base

let record_of_json j =
  let open Jsonx in
  let num_i k d = match member k j with Some (Num f) -> int_of_float f | _ -> d in
  let num_f k d = match member k j with Some (Num f) -> f | _ -> d in
  let str_d k d = match member k j with Some (Str s) -> s | _ -> d in
  match (member "trace" j, member "query" j, member "ms" j) with
  | Some (Str trace_id), Some (Str query), Some (Num latency_ms) ->
      Some
        {
          ts = num_f "ts" 0.;
          trace_id;
          workload = str_d "workload" "default";
          schema = str_d "schema" "";
          kind = str_d "kind" "query";
          query;
          latency_ms;
          rows = num_i "rows" 0;
          cached = (match member "cached" j with Some (Bool b) -> b | _ -> false);
          shards = num_i "shards" 0;
          outcome = str_d "outcome" "ok";
          error = (match member "error" j with Some (Str e) -> Some e | _ -> None);
          events =
            (match member "events" j with
            | Some (Arr evs) ->
                List.filter_map
                  (fun ev ->
                    match (member "action" ev, member "detail" ev) with
                    | Some (Str a), Some (Str d) -> Some (a, d)
                    | Some (Str a), None -> Some (a, "")
                    | _ -> None)
                  evs
            | _ -> []);
          retries = num_i "retries" 0;
          faults = num_i "faults" 0;
          candidates = num_i "candidates" 0;
          est_cost = num_f "est_cost" 0.;
          generation = num_i "gen" 0;
        }
  | _ -> None

(* Counters describing the log's own health; they live in the shared
   registry so /metrics exposes telemetry about the telemetry. *)
let records_c = Metrics.counter "qlog.records"
let rotations_c = Metrics.counter "qlog.rotations"
let dropped_c = Metrics.counter "qlog.dropped"
let slow_c = Metrics.counter "qlog.slow"

type t = {
  path : string;
  max_bytes : int;
  keep : int;
  slow_ms : float option;
  io_hook : string -> unit;
  lock : Mutex.t;
  mutable oc : out_channel option;
  mutable size : int;
  mutable slow_oc : out_channel option;
  mutable closed : bool;
}

let path t = t.path
let slow_path t = t.path ^ ".slow"

let open_out_append p =
  open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 p

let open_log ?(max_bytes = 64 * 1024 * 1024) ?(keep = 3) ?slow_ms
    ?(io_hook = fun _ -> ()) p =
  match
    let oc = open_out_append p in
    let size = (Unix.fstat (Unix.descr_of_out_channel oc)).Unix.st_size in
    {
      path = p;
      max_bytes = max max_bytes 4096;
      keep = max keep 1;
      slow_ms;
      io_hook;
      lock = Mutex.create ();
      oc = Some oc;
      size;
      slow_oc = None;
      closed = false;
    }
  with
  | t -> Ok t
  | exception Sys_error e -> Error e
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let fsync_oc oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with _ -> ()

(* Shift path.(keep-1) -> path.keep … path -> path.1 and reopen.  The
   outgoing segment is flushed and fsynced before the (atomic) rename,
   so a crash anywhere in the shift loses no whole record. *)
let rotate t =
  t.io_hook "qlog.rotate";
  (match t.oc with
  | Some oc ->
      fsync_oc oc;
      close_out_noerr oc
  | None -> ());
  t.oc <- None;
  let seg i = Printf.sprintf "%s.%d" t.path i in
  (try Sys.remove (seg t.keep) with Sys_error _ -> ());
  for i = t.keep - 1 downto 1 do
    try Sys.rename (seg i) (seg (i + 1)) with Sys_error _ -> ()
  done;
  (try Sys.rename t.path (seg 1) with Sys_error _ -> ());
  let oc = open_out_append t.path in
  t.oc <- Some oc;
  t.size <- 0;
  Metrics.incr rotations_c

(* Transient I/O failures (fault injection, EINTR-ish conditions) are
   retried a few times before a record is dropped — telemetry masks
   transients like every other I/O site does, but without Stdx.Retry
   (obs sits below stdx).  The hook fires before the write, so a
   hook-injected failure retries cleanly; a genuine mid-line failure
   can at worst leave one torn line, which readers skip. *)
let attempts = 3

let rec persevere n f =
  try f () with e -> if n >= attempts then raise e else persevere (n + 1) f

let append t r =
  Mutex.lock t.lock;
  (try
     if not t.closed then begin
       let line = Jsonx.to_string (record_to_json r) ^ "\n" in
       if t.size + String.length line > t.max_bytes && t.size > 0 then
         persevere 1 (fun () -> rotate t);
       persevere 1 (fun () ->
           t.io_hook "qlog.write";
           match t.oc with
           | None -> raise Exit
           | Some oc ->
               output_string oc line;
               flush oc);
       t.size <- t.size + String.length line;
       Metrics.incr records_c;
       match t.slow_ms with
       | Some thresh when r.latency_ms >= thresh ->
           Metrics.incr slow_c;
           Trace.instant "slow_query"
             ~attrs:
               [ ("trace_id", Trace.Str r.trace_id); ("ms", Trace.Float r.latency_ms) ];
           let soc =
             match t.slow_oc with
             | Some soc -> soc
             | None ->
                 let soc = open_out_append (slow_path t) in
                 t.slow_oc <- Some soc;
                 soc
           in
           output_string soc (Jsonx.to_string (record_to_json r) ^ "\n");
           flush soc
       | _ -> ()
     end
   with _ -> Metrics.incr dropped_c);
  Mutex.unlock t.lock

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    (match t.oc with
    | Some oc ->
        fsync_oc oc;
        close_out_noerr oc
    | None -> ());
    t.oc <- None;
    (match t.slow_oc with
    | Some soc ->
        fsync_oc soc;
        close_out_noerr soc
    | None -> ());
    t.slow_oc <- None
  end;
  Mutex.unlock t.lock

let global : t option ref = ref None
let install o = global := o
let installed () = !global

let fold p ~init ~f =
  match open_in p with
  | exception Sys_error e -> Error e
  | ic ->
      let acc = ref init in
      let skipped = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Jsonx.parse line with
             | Ok j -> (
                 match record_of_json j with
                 | Some r -> acc := f !acc r
                 | None -> incr skipped)
             | Error _ -> incr skipped
         done
       with End_of_file -> ());
      close_in_noerr ic;
      Ok (!acc, !skipped)
