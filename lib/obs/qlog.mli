(** The durable query log.

    In-process spans and metrics die with the process; the decisions
    they should inform — what to index, why a production query was
    slow — outlive it.  The query log is the durable record: one JSON
    line per executed query (ndjson), appended to a file that rotates
    by size, written by every execution path (CLI one-shots, the batch
    driver, the serve daemon) when a log is installed via [--qlog] or
    [OQF_QLOG].

    Durability model: a record is a single buffered write flushed to
    the OS before {!append} returns, so a process crash loses nothing
    already appended; rotation renames the closed segment (atomic on
    POSIX) before opening a fresh one.  A crash mid-write can leave at
    most one torn final line, which readers ({!fold}) skip and count
    rather than propagate.  Telemetry must never fail the query: an
    append that keeps failing drops the record and bumps
    [qlog.dropped] instead of raising.

    A {e slow-query log} rides along: records whose latency reaches
    the configured threshold are also appended to [<path>.slow], so
    the pathological tail is greppable without replaying the full
    log.  The shared [trace_id] field is what correlates a qlog
    record, its trace spans and its slow-log entry. *)

type ctx = { trace_id : string; workload : string }
(** Per-query correlation context, threaded through the executors. *)

val gen_trace_id : unit -> string
(** A fresh process-unique trace id (time + pid + counter). *)

type record = {
  ts : float;  (** wall-clock seconds since the epoch *)
  trace_id : string;
  workload : string;
  schema : string;
  kind : string;  (** ["query"] or ["rexpr"] *)
  query : string;  (** normalized query text *)
  latency_ms : float;
  rows : int;
  cached : bool;
  shards : int;  (** parallel shards (0 = unsharded path) *)
  outcome : string;  (** ["ok"], ["degraded"] or ["error"] *)
  error : string option;
  events : (string * string) list;
      (** recovery events: [(action, detail)] per degraded file *)
  retries : int;  (** retry attempts observed during the run *)
  faults : int;  (** injected faults observed during the run *)
  candidates : int;
      (** phase-1 candidate regions actually evaluated (0 = not
          recorded) — the cost model's actual-cardinality feedback *)
  est_cost : float;
      (** the planner's estimated cost for the executed plan (0 = not
          recorded; only the cost-based planner fills it) *)
  generation : int;
      (** the catalog generation the query's pinned snapshot read
          (0 = not recorded — static corpus or pre-generation log) *)
}

val make :
  ctx:ctx ->
  workload_default:string ->
  schema:string ->
  kind:string ->
  query:string ->
  latency_ms:float ->
  rows:int ->
  cached:bool ->
  shards:int ->
  outcome:string ->
  ?error:string ->
  ?events:(string * string) list ->
  ?retries:int ->
  ?faults:int ->
  ?candidates:int ->
  ?est_cost:float ->
  ?generation:int ->
  unit ->
  record
(** Build a record stamped with the current wall clock.  The workload
    label is [ctx.workload] if non-empty, else [workload_default];
    both it and [schema] pass through {!Label.sanitize}. *)

type t

val open_log :
  ?max_bytes:int ->
  ?keep:int ->
  ?slow_ms:float ->
  ?io_hook:(string -> unit) ->
  string ->
  (t, string) result
(** Open (appending) or create the log at a path.  [max_bytes]
    (default 64 MiB) bounds a segment: an append that would cross it
    first rotates [path -> path.1 -> ... -> path.keep] (default
    [keep = 3]; the oldest segment is deleted).  [slow_ms] arms the
    slow-query log.  [io_hook] is called with a site name
    ([qlog.write], [qlog.rotate]) before each I/O — the seam where
    {!Stdx.Fault} injection plugs in without a dependency cycle. *)

val path : t -> string
val slow_path : t -> string

val append : t -> record -> unit
(** Append one record.  Never raises; a failed write drops the record
    and bumps the [qlog.dropped] counter.  Thread-safe. *)

val close : t -> unit
(** Flush, fsync and close (idempotent). *)

val install : t option -> unit
(** Set the process-wide log written by the executors.  Installing
    does not close the previous log. *)

val installed : unit -> t option

val record_to_json : record -> Jsonx.t
val record_of_json : Jsonx.t -> record option

val fold : string -> init:'a -> f:('a -> record -> 'a) -> ('a * int, string) result
(** Replay a log file: [f] is applied to every parseable record in
    order; the second result is the number of skipped lines (torn
    tail, corruption, foreign garbage).  [Error] only when the file
    cannot be read at all. *)
