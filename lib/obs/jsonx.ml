type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    (* encode a code point as UTF-8; surrogate pairs are not
       recombined — each half encodes separately, which round-trips
       our own printer (it never emits surrogates) *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' -> advance (); add_utf8 buf (hex4 ())
           | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (string_body ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let pair () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            (k, v)
          in
          let items = ref [ pair () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := pair () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "json: %s at byte %d" msg at)

(* --- accessors ----------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let bool = function Bool b -> Some b | _ -> None
