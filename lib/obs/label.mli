(** Metric and workload label hygiene.

    Label values arrive from the outside world — workload names on the
    CLI, schema names in requests — and end up embedded in textual
    formats with structural characters of their own: the metric
    registry's canonical [name{key="value"}] names, the Prometheus
    exposition format, and the query-log's JSON lines.  This module is
    the single definition of how a hostile value (embedded quotes,
    commas, newlines, control bytes) is neutralised, so every sink
    renders the same value the same way and every parser can round-trip
    it. *)

val sanitize : string -> string
(** Canonical form of a label {e value}: control characters (including
    newlines and tabs) become ['_'], and the result is truncated to 128
    bytes.  Quotes, commas and backslashes are kept — escaping them is
    the renderer's job, not the value's.  The empty string sanitizes to
    ["_"] so a label never vanishes. *)

val sanitize_key : string -> string
(** Canonical form of a label {e key} or metric name fragment: runs of
    characters outside [[A-Za-z0-9_.]] collapse to ['_'].  Keys are
    identifiers, so unlike values they lose punctuation entirely. *)

val escape_value : string -> string
(** Escape a (sanitized) value for embedding between double quotes in
    the canonical name and Prometheus exposition: backslash, double
    quote and newline gain a backslash — the exposition-format escape
    set. *)

val render : string -> (string * string) list -> string
(** [render name labels] is the canonical registered-metric name:
    [name] when [labels] is empty, else [name] followed by the sorted
    [{key="value",...}] block (quotes balanced per pair), with keys
    sanitized, values sanitized and escaped.  Equal
    label sets render equally, so the rendered name is a stable
    interning key for {!Metrics}. *)

val parse : string -> string * (string * string) list
(** Split a registered-metric name back into base name and labels.
    Accepts both the quoted canonical form produced by {!render} and
    the legacy unquoted [name{key=value}] form; a name with no (or
    malformed) label block parses as itself with no labels. *)
