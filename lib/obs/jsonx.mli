(** A minimal JSON value type with a parser and printer.

    The serve wire protocol is newline-delimited JSON; the repo takes
    no external JSON dependency, so this is the whole story: a
    recursive-descent parser over a string (one protocol line at a
    time — lines are bounded by {!Protocol.max_line}, so recursion
    depth is bounded too) and a printer that emits no newlines, which
    is what makes one-value-per-line framing sound. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse exactly one JSON value (surrounding whitespace allowed);
    trailing garbage is an error.  Errors carry a byte offset. *)

val to_string : t -> string
(** Compact, single-line.  Integral floats print without a decimal
    point ([Num 3.] is ["3"]); strings escape control characters,
    backslash and quote, and pass other bytes through verbatim. *)

val escape : string -> string
(** The string-literal body escaping used by {!to_string}, without the
    surrounding quotes. *)

(** Accessors for pulling fields out of a parsed request; all return
    [None] on a type mismatch or missing member. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val bool : t -> bool option
