exception Expired of float

(* (absolute monotonic deadline in ms, original budget in ms) *)
type armed_state = (float * float) option

let key : armed_state ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let cell () = Domain.DLS.get key

let with_timeout_ms ms f =
  let cell = cell () in
  let previous = !cell in
  let proposed = Trace.now_ms () +. ms in
  let armed =
    match previous with
    | Some (d, b) when d <= proposed -> Some (d, b)  (* nested: keep earlier *)
    | _ -> Some (proposed, ms)
  in
  cell := armed;
  Fun.protect ~finally:(fun () -> cell := previous) f

let check () =
  match !(cell ()) with
  | None -> ()
  | Some (deadline, budget) ->
      if Trace.now_ms () > deadline then raise (Expired budget)

let armed () = !(cell ()) <> None
