(** Trace sinks: where {!Trace} events go.

    - {!memory} collects events and reconstructs the span tree;
    - {!pretty} renders that tree to a formatter on flush;
    - {!jsonl} streams one JSON object per event line;
    - {!chrome} writes the Chrome [trace_event] array format, loadable
      in [chrome://tracing] or Perfetto. *)

type node = {
  name : string;
  start_ms : float;
  stop_ms : float;  (** equals [start_ms] while the span is open *)
  attrs : Trace.attrs;
  events : (string * float * Trace.attrs) list;  (** instants, in order *)
  children : node list;  (** in order of opening *)
}

val duration_ms : node -> float

val memory : unit -> Trace.sink * (unit -> node list)
(** An in-memory collector.  The second component returns the roots of
    the reconstructed span forest (call it after the traced work;
    flushing is a no-op). *)

val pp_node : ?show_times:bool -> Format.formatter -> node -> unit
(** Indented tree rendering; [show_times] (default [true]) includes
    durations, disable it for deterministic output. *)

val pretty : Format.formatter -> Trace.sink
(** Collects like {!memory} and prints the forest on [flush]. *)

val jsonl : out_channel -> Trace.sink
(** One JSON object per line:
    [{"ev":"begin"|"end"|"instant","id":…,"parent":…,"name":…,"ts_ms":…,
      "attrs":{…}}].  [flush] flushes the channel but does not close
    it. *)

val chrome : out_channel -> Trace.sink
(** Chrome [trace_event] JSON: an array of [B]/[E]/[i] phase records
    with microsecond timestamps.  [flush] closes the array and flushes
    the channel (call it exactly once, at the end). *)
