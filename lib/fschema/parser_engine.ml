type error = { position : int; expected : string }

let pp_error ppf e =
  Format.fprintf ppf "parse failure at byte %d: expected %s" e.position
    e.expected

let describe_error text e =
  let s = Pat.Text.unsafe_contents text in
  let n = String.length s in
  let pos = min (max e.position 0) n in
  (* locate the line containing [pos] *)
  let line_start =
    match String.rindex_from_opt s (max 0 (pos - 1)) '\n' with
    | Some i -> i + 1
    | None -> 0
  in
  let line_stop =
    match String.index_from_opt s (min pos (n - 1)) '\n' with
    | Some i -> i
    | None -> n
    | exception Invalid_argument _ -> n
  in
  let line_no =
    let count = ref 1 in
    String.iteri (fun i c -> if i < pos && c = '\n' then incr count) s;
    !count
  in
  let col = pos - line_start in
  let snippet =
    if line_stop > line_start then String.sub s line_start (line_stop - line_start)
    else ""
  in
  Printf.sprintf "parse failure at line %d, column %d: expected %s\n  %s\n  %s^"
    line_no (col + 1) e.expected snippet
    (String.make col ' ')

type ctx = {
  s : string;
  limit : int;
  grammar : Grammar.t;
  mutable best_pos : int;
  mutable best_expected : string;
}

let fail ctx pos expected =
  if pos >= ctx.best_pos then begin
    ctx.best_pos <- pos;
    ctx.best_expected <- expected
  end;
  None

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_ws ctx pos =
  let rec go p = if p < ctx.limit && is_ws ctx.s.[p] then go (p + 1) else p in
  go pos

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

(* Returns (span_start, span_stop) of the literal, or records failure. *)
let parse_lit ctx pos lit =
  let p = skip_ws ctx pos in
  let m = String.length lit in
  if p + m <= ctx.limit && String.sub ctx.s p m = lit then Some (p, p + m)
  else fail ctx p (Printf.sprintf "%S" lit)

let parse_token ctx pos spec =
  let p = skip_ws ctx pos in
  match spec with
  | Grammar.Word ->
      let rec stop q =
        if q < ctx.limit && is_word_char ctx.s.[q] then stop (q + 1) else q
      in
      let q = stop p in
      if q > p then Some ((p, q), q) else fail ctx p "a word"
  | Grammar.Until stops ->
      let rec scan q =
        if q < ctx.limit && not (List.mem ctx.s.[q] stops) then scan (q + 1)
        else q
      in
      let q = scan p in
      (* trim trailing whitespace from the token span *)
      let rec trim q = if q > p && is_ws ctx.s.[q - 1] then trim (q - 1) else q in
      let q' = trim q in
      if q' > p then Some ((p, q'), q) else fail ctx p "text content"

let rec parse_nonterm ctx name pos =
  let rec try_alts = function
    | [] -> fail ctx pos ("non-terminal " ^ name)
    | rhs :: rest -> begin
        match parse_rhs ctx name rhs pos with
        | Some _ as ok -> ok
        | None -> try_alts rest
      end
  in
  match Grammar.rules_of ctx.grammar name with
  | [] -> fail ctx pos ("defined non-terminal " ^ name)
  | alts -> try_alts alts

and parse_rhs ctx name rhs pos =
  match rhs with
  | Grammar.Token spec -> begin
      match parse_token ctx pos spec with
      | Some ((a, b), next) ->
          Some
            ( { Parse_tree.symbol = name; start = a; stop = b; content = Leaf },
              next )
      | None -> None
    end
  | Grammar.Seq items -> begin
      let lo = ref None and hi = ref None in
      let touch a b =
        (match !lo with None -> lo := Some a | Some _ -> ());
        hi := Some b
      in
      let rec go items pos acc =
        match items with
        | [] -> Some (List.rev acc, pos)
        | Grammar.Lit lit :: rest -> begin
            match parse_lit ctx pos lit with
            | Some (a, b) ->
                touch a b;
                go rest b acc
            | None -> None
          end
        | Grammar.Tok spec :: rest -> begin
            match parse_token ctx pos spec with
            | Some ((a, b), next) ->
                touch a b;
                go rest next (Parse_tree.Text (a, b) :: acc)
            | None -> None
          end
        | Grammar.Nonterm n :: rest -> begin
            match parse_nonterm ctx n pos with
            | Some (node, next) ->
                touch node.Parse_tree.start node.Parse_tree.stop;
                go rest next (Parse_tree.Child node :: acc)
            | None -> None
          end
        | Grammar.Star { nonterm; separator } :: rest -> begin
            let rec elems acc pos =
              match parse_nonterm ctx nonterm pos with
              | None -> (List.rev acc, pos)
              | Some (node, next) -> begin
                  touch node.Parse_tree.start node.Parse_tree.stop;
                  match separator with
                  | None -> elems (node :: acc) next
                  | Some sep -> begin
                      match parse_lit ctx next sep with
                      | Some (_, after_sep) -> begin
                          (* the separator commits only if another
                             element follows *)
                          match parse_nonterm ctx nonterm after_sep with
                          | Some (node2, next2) ->
                              touch node2.Parse_tree.start node2.Parse_tree.stop;
                              continue_with (node2 :: node :: acc) next2
                          | None -> (List.rev (node :: acc), next)
                        end
                      | None -> (List.rev (node :: acc), next)
                    end
                end
            and continue_with acc pos =
              match separator with
              | None -> elems acc pos
              | Some sep -> begin
                  match parse_lit ctx pos sep with
                  | Some (_, after_sep) -> begin
                      match parse_nonterm ctx nonterm after_sep with
                      | Some (node, next) ->
                          touch node.Parse_tree.start node.Parse_tree.stop;
                          continue_with (node :: acc) next
                      | None -> (List.rev acc, pos)
                    end
                  | None -> (List.rev acc, pos)
                end
            in
            let children, next = elems [] pos in
            go rest next (Parse_tree.Children (nonterm, children) :: acc)
          end
      in
      match go items pos [] with
      | None -> None
      | Some (branches, next) -> begin
          match (!lo, !hi) with
          | Some a, Some b ->
              Some
                ( {
                    Parse_tree.symbol = name;
                    start = a;
                    stop = b;
                    content = Branch branches;
                  },
                  next )
          | _ ->
              (* all items were empty repetitions: a zero-width node *)
              let p = skip_ws ctx pos in
              Some
                ( {
                    Parse_tree.symbol = name;
                    start = p;
                    stop = p;
                    content = Branch branches;
                  },
                  next )
        end
    end

let run grammar text ~symbol ~start ~stop =
  let ctx =
    {
      s = Pat.Text.unsafe_contents text;
      limit = stop;
      grammar;
      best_pos = start;
      best_expected = "input";
    }
  in
  match parse_nonterm ctx symbol start with
  | Some (node, next) ->
      let next = skip_ws ctx next in
      if next = stop then begin
        Stdx.Stats.(add_to bytes_parsed (stop - start));
        Ok node
      end
      else if ctx.best_pos > next then
        (* a longer parse was attempted and failed deeper in the input:
           that position explains the leftover better *)
        Error { position = ctx.best_pos; expected = ctx.best_expected }
      else Error { position = next; expected = "end of region" }
  | None -> Error { position = ctx.best_pos; expected = ctx.best_expected }

let parse grammar text =
  run grammar text ~symbol:(Grammar.root grammar) ~start:0
    ~stop:(Pat.Text.length text)

let parse_at grammar text ~symbol ~start ~stop = run grammar text ~symbol ~start ~stop
