type t = (string, Value.t list ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let insert t ~class_name v =
  Stdx.Stats.(incr objects_built);
  match Hashtbl.find_opt t class_name with
  | Some cell -> cell := v :: !cell
  | None -> Hashtbl.replace t class_name (ref [ v ])

let insert_all t ~class_name vs = List.iter (fun v -> insert t ~class_name v) vs

let extent t class_name =
  match Hashtbl.find_opt t class_name with
  | Some cell -> List.rev !cell
  | None -> []

let classes t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let cardinal t class_name = List.length (extent t class_name)

let total_objects t =
  Hashtbl.fold (fun _ cell acc -> acc + List.length !cell) t 0

let clear t = Hashtbl.reset t
