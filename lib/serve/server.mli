(** The [oqf serve] daemon.

    A long-lived process that opens the catalog {e once}, keeps its
    instance cache and the shared result cache warm, and serves the
    {!Protocol} over a Unix-domain socket (and optionally a minimal
    HTTP endpoint).  Per request:

    + {b admission} — a slot is acquired from {!Admission}; a full
      queue answers the typed [overloaded] event immediately;
    + {b staleness} — every catalog entry of the request's schema is
      re-checked with the stat-only {!Oqf_catalog.Catalog.possibly_stale}
      and refreshed when it might have changed, so a daemon never
      serves a stale instance cache (the [serve.catalog_reloads]
      counter says how often this fires).  With [watch] the background
      watcher ({!Oqf_catalog.Watch}) does the refreshing instead and
      requests skip the per-request stat pass entirely;
    + {b snapshot pin} — the request pins the current catalog
      generation ({!Oqf_catalog.Catalog.pin}) and evaluates purely
      against that immutable snapshot, releasing the pin when its last
      row has been streamed.  A refresh committed mid-request (by
      another request or the watcher) lands in a {e new} generation
      with distinct index files, so in-flight queries never observe a
      half-refreshed corpus — each answer is consistent with exactly
      one generation, recorded in its qlog record's [gen] field;
    + {b analysis gate} — the query is parsed and statically checked
      ({!Oqf.Check}); parse failures and error-severity findings
      answer a [diagnostics] event (same JSON shape as
      [oqf check --format json]) instead of killing the connection,
      and [force] overrides the gate like [--force] does;
    + {b lazy streaming evaluation} — {!Exec.Driver.run_streaming}
      submits one task per file to the shared worker pool (phase 1
      runs the pull-based {!Ralg.Lazy_eval}) and each file's rows go
      to the client as soon as that file settles, while later files
      are still scanning.

    Shutdown (SIGINT/SIGTERM under {!run}, {!request_shutdown} from
    code) drains: no new requests are admitted, in-flight requests
    finish (bounded by [drain_ms] — stragglers are cut off), sinks are
    flushed, the pool is joined and the socket unlinked.  Requests
    that complete during the drain count in [serve.drained].

    Metrics: [serve.requests], [serve.admitted], [serve.rejected],
    [serve.active], [serve.queue_depth], [serve.connections],
    [serve.drained], [serve.catalog_reloads] and the
    [serve.request_latency_ms] histogram (p50/p95/p99). *)

type config = {
  socket_path : string;
  http_port : int option;  (** also serve HTTP on localhost:port *)
  catalog_dir : string;
  jobs : int;  (** worker domains in the shared pool *)
  max_active : int;  (** concurrently executing requests *)
  max_queue : int;  (** admission queue bound; 0 = reject when busy *)
  default_timeout_ms : float option;
      (** per-file deadline applied when a request carries none *)
  default_fail_policy : Exec.Driver.fail_policy;
      (** applied when a request carries none *)
  drain_ms : float;  (** shutdown grace for in-flight requests *)
  watch : bool;
      (** run a background {!Oqf_catalog.Watch} ingesting source
          changes continuously; requests skip the per-request
          staleness pass *)
  watch_interval_ms : float;  (** watcher poll interval *)
}

val default_config : catalog_dir:string -> socket_path:string -> config
(** jobs 2, max_active 8, max_queue 16, no default timeout,
    fail-policy degrade, drain 2000 ms, no HTTP, no watcher
    (500 ms interval when enabled). *)

type t

val start : config -> (t, string) result
(** Open the catalog, bind the socket(s), spawn the accept loop and
    return.  Fails if the catalog cannot be opened or the socket
    cannot be bound (a stale socket file from a dead daemon is
    replaced). *)

val request_shutdown : t -> unit
(** Begin the drain; idempotent.  Returns immediately. *)

val wait : t -> unit
(** Block until the daemon has fully shut down (accept loop exited,
    connections drained, pool joined, socket unlinked). *)

val run : config -> (unit, string) result
(** [start], install SIGINT/SIGTERM handlers that call
    {!request_shutdown}, then {!wait}.  The CLI's entry point. *)
