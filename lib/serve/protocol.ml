let max_line = 65536

type query_req = {
  schema : string;
  text : string;
  timeout_ms : float option;
  fail_policy : Exec.Driver.fail_policy option;
  force : bool;
}

type request =
  | Query of query_req
  | Rexpr of query_req
  | Ping
  | Stats
  | Shutdown

type response =
  | Row of { id : int; file : string; values : string list }
  | Region of { id : int; file : string; start : int; stop : int }
  | Done of {
      id : int;
      rows : int;
      cached : bool;
      degraded : (string * string * string) list;
    }
  | Diagnostics of { id : int; diagnostics : Jsonx.t list }
  | Overloaded of { id : int; active : int; queued : int }
  | Failed of { id : int; message : string }
  | Pong of { id : int }
  | Stats_reply of { id : int; payload : Jsonx.t }
  | Bye of { id : int }

(* --- requests ------------------------------------------------------ *)

let parse_request line =
  match Jsonx.parse line with
  | Error e -> Error (0, e)
  | Ok json -> (
      let id =
        match Option.bind (Jsonx.member "id" json) Jsonx.num with
        | Some f -> int_of_float f
        | None -> 0
      in
      let fail id fmt = Printf.ksprintf (fun m -> Error (id, m)) fmt in
      let query_req ~text_key =
        match
          ( Option.bind (Jsonx.member "schema" json) Jsonx.str,
            Option.bind (Jsonx.member text_key json) Jsonx.str )
        with
        | None, _ -> fail id "missing string member \"schema\""
        | _, None -> fail id "missing string member %S" text_key
        | Some schema, Some text -> (
            let timeout_ms =
              Option.bind (Jsonx.member "timeout_ms" json) Jsonx.num
            in
            let force =
              Option.value ~default:false
                (Option.bind (Jsonx.member "force" json) Jsonx.bool)
            in
            match Option.bind (Jsonx.member "fail_policy" json) Jsonx.str with
            | None -> Ok { schema; text; timeout_ms; fail_policy = None; force }
            | Some p -> (
                match Exec.Driver.fail_policy_of_string p with
                | Ok fp ->
                    Ok { schema; text; timeout_ms; fail_policy = Some fp; force }
                | Error e -> fail id "%s" e))
      in
      match Option.bind (Jsonx.member "op" json) Jsonx.str with
      | None -> fail id "missing string member \"op\""
      | Some "ping" -> Ok (id, Ping)
      | Some "stats" -> Ok (id, Stats)
      | Some "shutdown" -> Ok (id, Shutdown)
      | Some "query" -> (
          match query_req ~text_key:"q" with
          | Ok q -> Ok (id, Query q)
          | Error e -> Error e)
      | Some "rexpr" -> (
          match query_req ~text_key:"expr" with
          | Ok q -> Ok (id, Rexpr q)
          | Error e -> Error e)
      | Some op -> fail id "unknown op %S" op)

let render_request id req =
  let base op = [ ("id", Jsonx.Num (float_of_int id)); ("op", Jsonx.Str op) ] in
  let query op text_key (q : query_req) =
    base op
    @ [ ("schema", Jsonx.Str q.schema); (text_key, Jsonx.Str q.text) ]
    @ (match q.timeout_ms with
      | Some t -> [ ("timeout_ms", Jsonx.Num t) ]
      | None -> [])
    @ (match q.fail_policy with
      | Some fp ->
          [ ("fail_policy", Jsonx.Str (Exec.Driver.fail_policy_to_string fp)) ]
      | None -> [])
    @ if q.force then [ ("force", Jsonx.Bool true) ] else []
  in
  Jsonx.to_string
    (Jsonx.Obj
       (match req with
       | Ping -> base "ping"
       | Stats -> base "stats"
       | Shutdown -> base "shutdown"
       | Query q -> query "query" "q" q
       | Rexpr q -> query "rexpr" "expr" q))

(* --- responses ----------------------------------------------------- *)

let render_response resp =
  let obj id ev rest =
    Jsonx.Obj
      (("id", Jsonx.Num (float_of_int id)) :: ("ev", Jsonx.Str ev) :: rest)
  in
  Jsonx.to_string
    (match resp with
    | Row { id; file; values } ->
        obj id "row"
          [
            ("file", Jsonx.Str file);
            ("values", Jsonx.Arr (List.map (fun v -> Jsonx.Str v) values));
          ]
    | Region { id; file; start; stop } ->
        obj id "region"
          [
            ("file", Jsonx.Str file);
            ("start", Jsonx.Num (float_of_int start));
            ("stop", Jsonx.Num (float_of_int stop));
          ]
    | Done { id; rows; cached; degraded } ->
        obj id "done"
          [
            ("rows", Jsonx.Num (float_of_int rows));
            ("cached", Jsonx.Bool cached);
            ( "degraded",
              Jsonx.Arr
                (List.map
                   (fun (file, action, detail) ->
                     Jsonx.Obj
                       [
                         ("file", Jsonx.Str file);
                         ("action", Jsonx.Str action);
                         ("detail", Jsonx.Str detail);
                       ])
                   degraded) );
          ]
    | Diagnostics { id; diagnostics } ->
        obj id "diagnostics" [ ("diagnostics", Jsonx.Arr diagnostics) ]
    | Overloaded { id; active; queued } ->
        obj id "overloaded"
          [
            ("active", Jsonx.Num (float_of_int active));
            ("queued", Jsonx.Num (float_of_int queued));
          ]
    | Failed { id; message } -> obj id "error" [ ("message", Jsonx.Str message) ]
    | Pong { id } -> obj id "pong" []
    | Stats_reply { id; payload } -> obj id "stats" [ ("payload", payload) ]
    | Bye { id } -> obj id "bye" [])

let parse_response line =
  match Jsonx.parse line with
  | Error e -> Error e
  | Ok json -> (
      let id =
        match Option.bind (Jsonx.member "id" json) Jsonx.num with
        | Some f -> int_of_float f
        | None -> 0
      in
      let str_member k =
        match Option.bind (Jsonx.member k json) Jsonx.str with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "missing string member %S" k)
      in
      let int_member k =
        match Option.bind (Jsonx.member k json) Jsonx.num with
        | Some f -> Ok (int_of_float f)
        | None -> Error (Printf.sprintf "missing number member %S" k)
      in
      let ( let* ) = Result.bind in
      match Option.bind (Jsonx.member "ev" json) Jsonx.str with
      | None -> Error "missing string member \"ev\""
      | Some "row" ->
          let* file = str_member "file" in
          let values =
            match Jsonx.member "values" json with
            | Some (Jsonx.Arr vs) -> List.filter_map Jsonx.str vs
            | _ -> []
          in
          Ok (Row { id; file; values })
      | Some "region" ->
          let* file = str_member "file" in
          let* start = int_member "start" in
          let* stop = int_member "stop" in
          Ok (Region { id; file; start; stop })
      | Some "done" ->
          let* rows = int_member "rows" in
          let cached =
            Option.value ~default:false
              (Option.bind (Jsonx.member "cached" json) Jsonx.bool)
          in
          let degraded =
            match Jsonx.member "degraded" json with
            | Some (Jsonx.Arr ds) ->
                List.filter_map
                  (fun d ->
                    match
                      ( Option.bind (Jsonx.member "file" d) Jsonx.str,
                        Option.bind (Jsonx.member "action" d) Jsonx.str,
                        Option.bind (Jsonx.member "detail" d) Jsonx.str )
                    with
                    | Some f, Some a, Some det -> Some (f, a, det)
                    | _ -> None)
                  ds
            | _ -> []
          in
          Ok (Done { id; rows; cached; degraded })
      | Some "diagnostics" ->
          let diagnostics =
            match Jsonx.member "diagnostics" json with
            | Some (Jsonx.Arr ds) -> ds
            | _ -> []
          in
          Ok (Diagnostics { id; diagnostics })
      | Some "overloaded" ->
          let* active = int_member "active" in
          let* queued = int_member "queued" in
          Ok (Overloaded { id; active; queued })
      | Some "error" ->
          let* message = str_member "message" in
          Ok (Failed { id; message })
      | Some "pong" -> Ok (Pong { id })
      | Some "stats" ->
          let payload =
            Option.value ~default:Jsonx.Null (Jsonx.member "payload" json)
          in
          Ok (Stats_reply { id; payload })
      | Some "bye" -> Ok (Bye { id })
      | Some ev -> Error (Printf.sprintf "unknown event %S" ev))

(* --- bounded line framing ------------------------------------------ *)

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable buf : Buffer.t;
  mutable pending : string;  (** bytes read past the last newline *)
  mutable eof : bool;
}

let reader fd =
  {
    fd;
    chunk = Bytes.create 4096;
    buf = Buffer.create 256;
    pending = "";
    eof = false;
  }

let read_line t =
  let result = ref None in
  (* consume [s], appending to the current line until its newline;
     stash the rest in [pending] *)
  let feed s =
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.add_substring t.buf s 0 i;
        t.pending <- String.sub s (i + 1) (String.length s - i - 1);
        let line = Buffer.contents t.buf in
        Buffer.clear t.buf;
        if String.length line > max_line then result := Some `Overflow
        else result := Some (`Line line)
    | None ->
        (* no newline yet: grow the line, but give up buffering once
           past the cap — keep only a sentinel length so the eventual
           newline still reports overflow without holding the bytes *)
        if Buffer.length t.buf <= max_line then Buffer.add_string t.buf s
        else begin
          Buffer.clear t.buf;
          Buffer.add_string t.buf (String.make (max_line + 1) ' ')
        end
  in
  (if t.pending <> "" then begin
     let s = t.pending in
     t.pending <- "";
     feed s
   end);
  while !result = None && not t.eof do
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0
    | (exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)) ->
        t.eof <- true;
        if Buffer.length t.buf > 0 then begin
          (* final unterminated line *)
          let line = Buffer.contents t.buf in
          Buffer.clear t.buf;
          if String.length line > max_line then result := Some `Overflow
          else result := Some (`Line line)
        end
        else result := Some `Eof
    | len -> feed (Bytes.sub_string t.chunk 0 len)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  match !result with None -> `Eof | Some r -> r
