let max_line = 65536

type query_req = {
  schema : string;
  text : string;
  timeout_ms : float option;
  fail_policy : Exec.Driver.fail_policy option;
  force : bool;
  workload : string;
}

type request =
  | Query of query_req
  | Rexpr of query_req
  | Ping
  | Stats
  | Shutdown

type response =
  | Row of { id : int; file : string; values : string list }
  | Region of { id : int; file : string; start : int; stop : int }
  | Done of {
      id : int;
      rows : int;
      cached : bool;
      degraded : (string * string * string) list;
      trace : string;  (** the request's trace id; [""] when unknown *)
    }
  | Diagnostics of { id : int; diagnostics : Obs.Jsonx.t list }
  | Overloaded of { id : int; active : int; queued : int }
  | Failed of { id : int; message : string }
  | Pong of { id : int }
  | Stats_reply of { id : int; payload : Obs.Jsonx.t }
  | Bye of { id : int }

(* --- requests ------------------------------------------------------ *)

let parse_request line =
  match Obs.Jsonx.parse line with
  | Error e -> Error (0, e)
  | Ok json -> (
      let id =
        match Option.bind (Obs.Jsonx.member "id" json) Obs.Jsonx.num with
        | Some f -> int_of_float f
        | None -> 0
      in
      let fail id fmt = Printf.ksprintf (fun m -> Error (id, m)) fmt in
      let query_req ~text_key =
        match
          ( Option.bind (Obs.Jsonx.member "schema" json) Obs.Jsonx.str,
            Option.bind (Obs.Jsonx.member text_key json) Obs.Jsonx.str )
        with
        | None, _ -> fail id "missing string member \"schema\""
        | _, None -> fail id "missing string member %S" text_key
        | Some schema, Some text -> (
            let timeout_ms =
              Option.bind (Obs.Jsonx.member "timeout_ms" json) Obs.Jsonx.num
            in
            let force =
              Option.value ~default:false
                (Option.bind (Obs.Jsonx.member "force" json) Obs.Jsonx.bool)
            in
            let workload =
              Option.value ~default:""
                (Option.bind (Obs.Jsonx.member "workload" json) Obs.Jsonx.str)
            in
            match Option.bind (Obs.Jsonx.member "fail_policy" json) Obs.Jsonx.str with
            | None ->
                Ok { schema; text; timeout_ms; fail_policy = None; force; workload }
            | Some p -> (
                match Exec.Driver.fail_policy_of_string p with
                | Ok fp ->
                    Ok
                      {
                        schema;
                        text;
                        timeout_ms;
                        fail_policy = Some fp;
                        force;
                        workload;
                      }
                | Error e -> fail id "%s" e))
      in
      match Option.bind (Obs.Jsonx.member "op" json) Obs.Jsonx.str with
      | None -> fail id "missing string member \"op\""
      | Some "ping" -> Ok (id, Ping)
      | Some "stats" -> Ok (id, Stats)
      | Some "shutdown" -> Ok (id, Shutdown)
      | Some "query" -> (
          match query_req ~text_key:"q" with
          | Ok q -> Ok (id, Query q)
          | Error e -> Error e)
      | Some "rexpr" -> (
          match query_req ~text_key:"expr" with
          | Ok q -> Ok (id, Rexpr q)
          | Error e -> Error e)
      | Some op -> fail id "unknown op %S" op)

let render_request id req =
  let base op = [ ("id", Obs.Jsonx.Num (float_of_int id)); ("op", Obs.Jsonx.Str op) ] in
  let query op text_key (q : query_req) =
    base op
    @ [ ("schema", Obs.Jsonx.Str q.schema); (text_key, Obs.Jsonx.Str q.text) ]
    @ (match q.timeout_ms with
      | Some t -> [ ("timeout_ms", Obs.Jsonx.Num t) ]
      | None -> [])
    @ (match q.fail_policy with
      | Some fp ->
          [ ("fail_policy", Obs.Jsonx.Str (Exec.Driver.fail_policy_to_string fp)) ]
      | None -> [])
    @ (if q.force then [ ("force", Obs.Jsonx.Bool true) ] else [])
    @ if q.workload <> "" then [ ("workload", Obs.Jsonx.Str q.workload) ] else []
  in
  Obs.Jsonx.to_string
    (Obs.Jsonx.Obj
       (match req with
       | Ping -> base "ping"
       | Stats -> base "stats"
       | Shutdown -> base "shutdown"
       | Query q -> query "query" "q" q
       | Rexpr q -> query "rexpr" "expr" q))

(* --- responses ----------------------------------------------------- *)

let render_response resp =
  let obj id ev rest =
    Obs.Jsonx.Obj
      (("id", Obs.Jsonx.Num (float_of_int id)) :: ("ev", Obs.Jsonx.Str ev) :: rest)
  in
  Obs.Jsonx.to_string
    (match resp with
    | Row { id; file; values } ->
        obj id "row"
          [
            ("file", Obs.Jsonx.Str file);
            ("values", Obs.Jsonx.Arr (List.map (fun v -> Obs.Jsonx.Str v) values));
          ]
    | Region { id; file; start; stop } ->
        obj id "region"
          [
            ("file", Obs.Jsonx.Str file);
            ("start", Obs.Jsonx.Num (float_of_int start));
            ("stop", Obs.Jsonx.Num (float_of_int stop));
          ]
    | Done { id; rows; cached; degraded; trace } ->
        obj id "done"
          [
            ("rows", Obs.Jsonx.Num (float_of_int rows));
            ("cached", Obs.Jsonx.Bool cached);
            ("trace", Obs.Jsonx.Str trace);
            ( "degraded",
              Obs.Jsonx.Arr
                (List.map
                   (fun (file, action, detail) ->
                     Obs.Jsonx.Obj
                       [
                         ("file", Obs.Jsonx.Str file);
                         ("action", Obs.Jsonx.Str action);
                         ("detail", Obs.Jsonx.Str detail);
                       ])
                   degraded) );
          ]
    | Diagnostics { id; diagnostics } ->
        obj id "diagnostics" [ ("diagnostics", Obs.Jsonx.Arr diagnostics) ]
    | Overloaded { id; active; queued } ->
        obj id "overloaded"
          [
            ("active", Obs.Jsonx.Num (float_of_int active));
            ("queued", Obs.Jsonx.Num (float_of_int queued));
          ]
    | Failed { id; message } -> obj id "error" [ ("message", Obs.Jsonx.Str message) ]
    | Pong { id } -> obj id "pong" []
    | Stats_reply { id; payload } -> obj id "stats" [ ("payload", payload) ]
    | Bye { id } -> obj id "bye" [])

let parse_response line =
  match Obs.Jsonx.parse line with
  | Error e -> Error e
  | Ok json -> (
      let id =
        match Option.bind (Obs.Jsonx.member "id" json) Obs.Jsonx.num with
        | Some f -> int_of_float f
        | None -> 0
      in
      let str_member k =
        match Option.bind (Obs.Jsonx.member k json) Obs.Jsonx.str with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "missing string member %S" k)
      in
      let int_member k =
        match Option.bind (Obs.Jsonx.member k json) Obs.Jsonx.num with
        | Some f -> Ok (int_of_float f)
        | None -> Error (Printf.sprintf "missing number member %S" k)
      in
      let ( let* ) = Result.bind in
      match Option.bind (Obs.Jsonx.member "ev" json) Obs.Jsonx.str with
      | None -> Error "missing string member \"ev\""
      | Some "row" ->
          let* file = str_member "file" in
          let values =
            match Obs.Jsonx.member "values" json with
            | Some (Obs.Jsonx.Arr vs) -> List.filter_map Obs.Jsonx.str vs
            | _ -> []
          in
          Ok (Row { id; file; values })
      | Some "region" ->
          let* file = str_member "file" in
          let* start = int_member "start" in
          let* stop = int_member "stop" in
          Ok (Region { id; file; start; stop })
      | Some "done" ->
          let* rows = int_member "rows" in
          let cached =
            Option.value ~default:false
              (Option.bind (Obs.Jsonx.member "cached" json) Obs.Jsonx.bool)
          in
          let degraded =
            match Obs.Jsonx.member "degraded" json with
            | Some (Obs.Jsonx.Arr ds) ->
                List.filter_map
                  (fun d ->
                    match
                      ( Option.bind (Obs.Jsonx.member "file" d) Obs.Jsonx.str,
                        Option.bind (Obs.Jsonx.member "action" d) Obs.Jsonx.str,
                        Option.bind (Obs.Jsonx.member "detail" d) Obs.Jsonx.str )
                    with
                    | Some f, Some a, Some det -> Some (f, a, det)
                    | _ -> None)
                  ds
            | _ -> []
          in
          let trace =
            Option.value ~default:""
              (Option.bind (Obs.Jsonx.member "trace" json) Obs.Jsonx.str)
          in
          Ok (Done { id; rows; cached; degraded; trace })
      | Some "diagnostics" ->
          let diagnostics =
            match Obs.Jsonx.member "diagnostics" json with
            | Some (Obs.Jsonx.Arr ds) -> ds
            | _ -> []
          in
          Ok (Diagnostics { id; diagnostics })
      | Some "overloaded" ->
          let* active = int_member "active" in
          let* queued = int_member "queued" in
          Ok (Overloaded { id; active; queued })
      | Some "error" ->
          let* message = str_member "message" in
          Ok (Failed { id; message })
      | Some "pong" -> Ok (Pong { id })
      | Some "stats" ->
          let payload =
            Option.value ~default:Obs.Jsonx.Null (Obs.Jsonx.member "payload" json)
          in
          Ok (Stats_reply { id; payload })
      | Some "bye" -> Ok (Bye { id })
      | Some ev -> Error (Printf.sprintf "unknown event %S" ev))

(* --- bounded line framing ------------------------------------------ *)

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable buf : Buffer.t;
  mutable pending : string;  (** bytes read past the last newline *)
  mutable eof : bool;
}

let reader fd =
  {
    fd;
    chunk = Bytes.create 4096;
    buf = Buffer.create 256;
    pending = "";
    eof = false;
  }

let read_line t =
  let result = ref None in
  (* consume [s], appending to the current line until its newline;
     stash the rest in [pending] *)
  let feed s =
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.add_substring t.buf s 0 i;
        t.pending <- String.sub s (i + 1) (String.length s - i - 1);
        let line = Buffer.contents t.buf in
        Buffer.clear t.buf;
        if String.length line > max_line then result := Some `Overflow
        else result := Some (`Line line)
    | None ->
        (* no newline yet: grow the line, but give up buffering once
           past the cap — keep only a sentinel length so the eventual
           newline still reports overflow without holding the bytes *)
        if Buffer.length t.buf <= max_line then Buffer.add_string t.buf s
        else begin
          Buffer.clear t.buf;
          Buffer.add_string t.buf (String.make (max_line + 1) ' ')
        end
  in
  (if t.pending <> "" then begin
     let s = t.pending in
     t.pending <- "";
     feed s
   end);
  while !result = None && not t.eof do
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0
    | (exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)) ->
        t.eof <- true;
        if Buffer.length t.buf > 0 then begin
          (* final unterminated line *)
          let line = Buffer.contents t.buf in
          Buffer.clear t.buf;
          if String.length line > max_line then result := Some `Overflow
          else result := Some (`Line line)
        end
        else result := Some `Eof
    | len -> feed (Bytes.sub_string t.chunk 0 len)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  match !result with None -> `Eof | Some r -> r
