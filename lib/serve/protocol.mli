(** The serve wire protocol: newline-delimited JSON over a stream.

    Each request is one JSON object on one line; each response event
    is one JSON object on one line.  A query's answer is a stream —
    zero or more [row] (or [region]) events followed by exactly one
    terminal event ([done], [diagnostics], [error] or [overloaded]) —
    so a client reads until it sees a terminal event for its id.

    {b Requests}

    {v
    {"id":1,"op":"ping"}
    {"id":2,"op":"query","schema":"bibtex","q":"select ...",
     "timeout_ms":2000,"fail_policy":"degrade","force":false}
    {"id":3,"op":"rexpr","schema":"bibtex","expr":"Entry > [author]"}
    {"id":4,"op":"stats"}
    {"id":5,"op":"shutdown"}
    v}

    {b Responses} (the [ev] member discriminates)

    {v
    {"id":2,"ev":"row","file":"a.bib","values":["..."]}
    {"id":3,"ev":"region","file":"a.bib","start":10,"stop":42}
    {"id":2,"ev":"done","rows":7,"cached":false,"trace":"c1-r2","degraded":[...]}
    {"id":2,"ev":"diagnostics","diagnostics":[{...OQF codes...}]}
    {"id":2,"ev":"overloaded","active":8,"queued":16}
    {"id":2,"ev":"error","message":"..."}
    {"id":1,"ev":"pong"}   {"id":4,"ev":"stats","payload":{...}}
    {"id":5,"ev":"bye"}
    v}

    Under fail-fast an [error] event can follow [row] events already
    streamed for the same id; the error terminates the stream and the
    rows must be considered partial. *)

val max_line : int
(** Longest accepted request line in bytes (65536).  A longer line is
    discarded up to its newline and answered with an [error] event;
    the connection survives. *)

type query_req = {
  schema : string;
  text : string;  (** the query (or region expression) source text *)
  timeout_ms : float option;
  fail_policy : Exec.Driver.fail_policy option;  (** [None]: server default *)
  force : bool;  (** execute despite error-severity analysis findings *)
  workload : string;
      (** optional client-chosen workload label for the daemon's query
          log and per-workload metrics; [""] defaults to the schema *)
}

type request =
  | Query of query_req
  | Rexpr of query_req
  | Ping
  | Stats
  | Shutdown

type response =
  | Row of { id : int; file : string; values : string list }
  | Region of { id : int; file : string; start : int; stop : int }
  | Done of {
      id : int;
      rows : int;
      cached : bool;
      degraded : (string * string * string) list;
          (** (file, action, detail) per {!Oqf.Degrade} entry *)
      trace : string;
          (** the trace id the daemon assigned this request — the same
              id its spans, qlog record and slow-query entry carry, so
              a client can quote it when reporting a slow query.  [""]
              from daemons predating the field. *)
    }
  | Diagnostics of { id : int; diagnostics : Obs.Jsonx.t list }
  | Overloaded of { id : int; active : int; queued : int }
  | Failed of { id : int; message : string }
  | Pong of { id : int }
  | Stats_reply of { id : int; payload : Obs.Jsonx.t }
  | Bye of { id : int }

val parse_request : string -> (int * request, int * string) result
(** Parse one request line.  Errors carry the request id when the
    line parsed far enough to reveal one (0 otherwise) so the error
    event can still be correlated. *)

val render_request : int -> request -> string
(** One line, no trailing newline (the client's encoder). *)

val render_response : response -> string
(** One line, no trailing newline. *)

val parse_response : string -> (response, string) result
(** The client's decoder. *)

(** Bounded line framing over a file descriptor.  [`Overflow] means a
    line exceeded {!max_line}: the reader consumed and discarded it
    through its newline, and the next call reads the next line. *)

type reader

val reader : Unix.file_descr -> reader
val read_line : reader -> [ `Line of string | `Overflow | `Eof ]
