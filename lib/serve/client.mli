(** A blocking client for the {!Protocol} over a Unix-domain socket.

    [oqf client] and the serve tests/benchmarks use this; it owns the
    id counter for one connection and knows which events terminate a
    request's stream. *)

type conn

val connect : ?wait_ms:float -> string -> (conn, string) result
(** Connect to a daemon's socket.  [wait_ms] (default 0) retries the
    connection for that long before giving up — covers the race of a
    client racing a daemon that is still binding its socket. *)

val close : conn -> unit

val is_terminal : Protocol.response -> bool
(** [done], [diagnostics], [overloaded], [error], [pong], [stats] and
    [bye] end a request's event stream; [row]/[region] do not. *)

val stream :
  conn ->
  Protocol.request ->
  on_event:(Protocol.response -> unit) ->
  (Protocol.response, string) result
(** Send one request and deliver every response event to [on_event]
    as it arrives (first rows arrive while the daemon is still
    scanning later files).  Returns the terminal event.  [Error] is a
    transport or decode failure, not a server-reported one. *)

val request : conn -> Protocol.request -> (Protocol.response list, string) result
(** {!stream} collecting all events, terminal last. *)

val http_get :
  ?host:string -> port:int -> string -> (int * string, string) result
(** [http_get ~port path] performs one blocking [GET] against the
    daemon's HTTP facade and returns [(status code, body)].  This is
    what [oqf metrics scrape] (and the CI serve-suite) uses to read
    [/metrics] without depending on an external HTTP client. *)
