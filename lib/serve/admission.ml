type t = {
  max_active : int;
  max_queue : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable active : int;
  mutable queued : int;
  mutable closed : bool;
}

let admitted = Obs.Metrics.counter "serve.admitted"
let rejected = Obs.Metrics.counter "serve.rejected"
let active_gauge = Obs.Metrics.counter "serve.active"
let queue_gauge = Obs.Metrics.counter "serve.queue_depth"

let gauges t =
  Obs.Metrics.set active_gauge t.active;
  Obs.Metrics.set queue_gauge t.queued

let make ~max_active ~max_queue =
  {
    max_active = max 1 max_active;
    max_queue = max 0 max_queue;
    mutex = Mutex.create ();
    cond = Condition.create ();
    active = 0;
    queued = 0;
    closed = false;
  }

let acquire t =
  Mutex.lock t.mutex;
  let result =
    if t.closed then `Closed
    else if t.active < t.max_active then begin
      t.active <- t.active + 1;
      `Admitted
    end
    else if t.queued >= t.max_queue then `Overloaded (t.active, t.queued)
    else begin
      t.queued <- t.queued + 1;
      gauges t;
      let rec wait () =
        Condition.wait t.cond t.mutex;
        if t.closed then begin
          t.queued <- t.queued - 1;
          `Closed
        end
        else if t.active < t.max_active then begin
          t.queued <- t.queued - 1;
          t.active <- t.active + 1;
          `Admitted
        end
        else wait ()
      in
      wait ()
    end
  in
  (match result with
  | `Admitted -> Obs.Metrics.incr admitted
  | `Overloaded _ -> Obs.Metrics.incr rejected
  | `Closed -> ());
  gauges t;
  Mutex.unlock t.mutex;
  result

let release t =
  Mutex.lock t.mutex;
  t.active <- max 0 (t.active - 1);
  gauges t;
  Condition.signal t.cond;
  Mutex.unlock t.mutex

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let active t =
  Mutex.lock t.mutex;
  let v = t.active in
  Mutex.unlock t.mutex;
  v

let queued t =
  Mutex.lock t.mutex;
  let v = t.queued in
  Mutex.unlock t.mutex;
  v
