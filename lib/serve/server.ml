module Catalog = Oqf_catalog.Catalog

type config = {
  socket_path : string;
  http_port : int option;
  catalog_dir : string;
  jobs : int;
  max_active : int;
  max_queue : int;
  default_timeout_ms : float option;
  default_fail_policy : Exec.Driver.fail_policy;
  drain_ms : float;
  watch : bool;
  watch_interval_ms : float;
}

let default_config ~catalog_dir ~socket_path =
  {
    socket_path;
    http_port = None;
    catalog_dir;
    jobs = 2;
    max_active = 8;
    max_queue = 16;
    default_timeout_ms = None;
    default_fail_policy = Exec.Driver.Degrade;
    drain_ms = 2000.;
    watch = false;
    watch_interval_ms = 500.;
  }

type t = {
  config : config;
  catalog : Catalog.t;
  catalog_lock : Mutex.t;
  corpora : (string, int * Oqf.Corpus.t) Hashtbl.t;
      (** per schema: (generation it was built at, corpus) *)
  mutable watcher : Oqf_catalog.Watch.t option;
  pool : Exec.Pool.t;
  rcache : Exec.Rcache.t;
  adm : Admission.t;
  listen_fd : Unix.file_descr;
  http_fd : Unix.file_descr option;
  shutting_down : bool Atomic.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable next_conn : int;
  mutable conn_threads : Thread.t list;
  mutable accept_threads : Thread.t list;
  done_signal : Mutex.t * Condition.t;
  mutable finished : bool;
}

let requests_c = Obs.Metrics.counter "serve.requests"
let connections_c = Obs.Metrics.counter "serve.connections"
let drained_c = Obs.Metrics.counter "serve.drained"
let reloads_c = Obs.Metrics.counter "serve.catalog_reloads"
let latency_h = Obs.Metrics.histogram "serve.request_latency_ms"

(* --- plumbing ------------------------------------------------------ *)

exception Closed_connection

let write_line fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
          raise Closed_connection
  in
  go 0

let send fd resp = write_line fd (Protocol.render_response resp)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- per-request catalog snapshot ---------------------------------- *)

(* Serve a pinned snapshot plus the corpus built from it.

   Without [--watch], every request first stat-checks the entries of
   its schema under the catalog lock and refreshes the ones that might
   have changed (one [stat] per entry per request in the steady
   state).  With [--watch] the background watcher does that instead
   and the request skips straight to pinning.

   Either way the request then pins the current generation and serves
   a corpus built purely from that snapshot.  The pin is what closes
   the old staleness race: a refresh committed by a later request (or
   the watcher) produces a *new* generation whose index files are
   distinct on disk, while this request keeps reading the byte-stable
   files of the generation it pinned.  The corpus cache is keyed by
   the generation it was built at, so concurrent requests on the same
   generation share one corpus and a new generation rebuilds it once.

   The caller must [Catalog.release] the returned snapshot when the
   request is done streaming. *)
let corpus_for t schema =
  let snap =
    with_lock t.catalog_lock @@ fun () ->
    if not t.config.watch then
      List.iter
        (fun (e : Catalog.entry) ->
          if
            String.equal e.schema schema
            && Catalog.possibly_stale t.catalog e
          then
            match Catalog.refresh t.catalog e.source with
            | Ok Catalog.Unchanged -> ()
            | Ok _ -> Obs.Metrics.incr reloads_c
            | Error _ ->
                (* leave it; corpus building degrades or reports it *)
                ())
        (Catalog.entries t.catalog);
    Catalog.pin t.catalog
  in
  let gen = Catalog.snapshot_generation snap in
  let cached =
    with_lock t.catalog_lock @@ fun () ->
    match Hashtbl.find_opt t.corpora schema with
    | Some (g, corpus) when g = gen -> Some corpus
    | _ -> None
  in
  match cached with
  | Some corpus -> Ok (snap, corpus)
  | None -> (
      match Oqf.Corpus.of_snapshot snap ~schema with
      | Ok (corpus, _notes) ->
          with_lock t.catalog_lock (fun () ->
              Hashtbl.replace t.corpora schema (gen, corpus));
          Ok (snap, corpus)
      | Error e ->
          Catalog.release snap;
          Error e)

(* --- request handlers ---------------------------------------------- *)

let diagnostics_payload ds =
  List.map
    (fun d ->
      match Obs.Jsonx.parse (Analysis.Diagnostic.to_json d) with
      | Ok j -> j
      | Error _ -> Obs.Jsonx.Str (Analysis.Diagnostic.to_string d))
    ds

let parse_diagnostic pp e =
  [
    Analysis.Diagnostic.make ~code:"OQF000" ~severity:Analysis.Diagnostic.Error
      (Format.asprintf "%a" pp e);
  ]

let degraded_triples ds =
  List.map
    (fun (d : Oqf.Degrade.t) ->
      (d.file, Oqf.Degrade.action_to_string d.action, d.detail))
    ds

(* The request's correlation context: the daemon-assigned trace id
   (one per request, [c<conn>-r<id>] on the socket, [h<conn>-r<id>] on
   the HTTP facade) plus the client's workload label.  The same id is
   attached to the request span, the qlog record, the slow-query entry
   and the terminal [done] event — one grep correlates all four. *)
let qctx ~trace (q : Protocol.query_req) =
  { Obs.Qlog.trace_id = trace; workload = q.workload }

let handle_query t fd id ~trace (q : Protocol.query_req) =
  let timeout_ms =
    match q.timeout_ms with
    | Some _ as s -> s
    | None -> t.config.default_timeout_ms
  in
  let fail_policy =
    Option.value ~default:t.config.default_fail_policy q.fail_policy
  in
  match corpus_for t q.schema with
  | Error e -> send fd (Protocol.Failed { id; message = e })
  | Ok (snap, corpus) -> (
      Fun.protect ~finally:(fun () -> Catalog.release snap) @@ fun () ->
      let generation = Catalog.snapshot_generation snap in
      match Odb.Query_parser.parse q.text with
      | Error e ->
          send fd
            (Protocol.Diagnostics
               {
                 id;
                 diagnostics =
                   diagnostics_payload
                     (parse_diagnostic Odb.Query_parser.pp_error e);
               })
      | Ok query -> (
          let sources = Oqf.Corpus.sources corpus in
          let gate =
            match sources with
            | [] -> []
            | (_, (src : Oqf.Execute.source)) :: _ ->
                (Oqf.Check.query ~text:q.text src.env
                   ~query_rig:src.query_rig query)
                  .Oqf.Check.diagnostics
          in
          if Analysis.Diagnostic.has_errors gate && not q.force then
            send fd
              (Protocol.Diagnostics
                 { id; diagnostics = diagnostics_payload gate })
          else
            let on_rows ~file rows =
              List.iter
                (fun row ->
                  send fd
                    (Protocol.Row
                       {
                         id;
                         file;
                         values = List.map Odb.Value.to_display_string row;
                       }))
                rows
            in
            match
              Exec.Driver.run_streaming ~force:q.force ~cache:t.rcache
                ?timeout_ms ~fail_policy ~qctx:(qctx ~trace q) ~generation
                ~pool:t.pool ~on_rows corpus query
            with
            | Ok outcome ->
                send fd
                  (Protocol.Done
                     {
                       id;
                       rows = List.length outcome.Exec.Driver.rows;
                       cached = outcome.Exec.Driver.from_cache;
                       degraded =
                         degraded_triples outcome.Exec.Driver.degraded;
                       trace;
                     })
            | Error e -> send fd (Protocol.Failed { id; message = e })))

let handle_rexpr t fd id ~trace (q : Protocol.query_req) =
  let timeout_ms =
    match q.timeout_ms with
    | Some _ as s -> s
    | None -> t.config.default_timeout_ms
  in
  (* rexpr bypasses the driver, so it logs its own qlog record *)
  let t0 = Obs.Trace.now_ms () in
  match corpus_for t q.schema with
  | Error e -> send fd (Protocol.Failed { id; message = e })
  | Ok (snap, corpus) -> (
      Fun.protect ~finally:(fun () -> Catalog.release snap) @@ fun () ->
      let generation = Catalog.snapshot_generation snap in
      let qlog ~rows ~outcome ?error () =
        match Obs.Qlog.installed () with
        | None -> ()
        | Some log ->
            Obs.Qlog.append log
              (Obs.Qlog.make ~ctx:(qctx ~trace q) ~workload_default:q.schema
                 ~schema:q.schema ~kind:"rexpr" ~query:q.text
                 ~latency_ms:(Obs.Trace.now_ms () -. t0)
                 ~rows ~cached:false ~shards:0 ~outcome ~generation ?error ())
      in
      match Ralg.Expr_parser.parse q.text with
      | Error e ->
          send fd
            (Protocol.Diagnostics
               {
                 id;
                 diagnostics =
                   diagnostics_payload
                     (parse_diagnostic Ralg.Expr_parser.pp_error e);
               })
      | Ok expr -> (
          (* connection threads share the main domain, so
             [Obs.Deadline] (domain-local) cannot arbitrate between
             them — each pulled region checks the wall clock
             instead *)
          let deadline =
            Option.map (fun ms -> Obs.Trace.now_ms () +. ms) timeout_ms
          in
          let exception Timed_out in
          let count = ref 0 in
          match
            List.iter
              (fun (file, (src : Oqf.Execute.source)) ->
                Seq.iter
                  (fun (r : Pat.Region.t) ->
                    (match deadline with
                    | Some d when Obs.Trace.now_ms () > d -> raise Timed_out
                    | _ -> ());
                    incr count;
                    send fd
                      (Protocol.Region
                         { id; file; start = r.start; stop = r.stop }))
                  (Ralg.Lazy_eval.eval src.instance expr))
              (Oqf.Corpus.sources corpus)
          with
          | () ->
              qlog ~rows:!count ~outcome:"ok" ();
              send fd
                (Protocol.Done
                   { id; rows = !count; cached = false; degraded = []; trace })
          | exception Timed_out ->
              let message =
                Printf.sprintf "request timed out after %g ms"
                  (Option.value ~default:0. timeout_ms)
              in
              qlog ~rows:!count ~outcome:"error" ~error:message ();
              send fd (Protocol.Failed { id; message })
          | exception Ralg.Eval.Unknown_region name ->
              let message = "unknown region name " ^ name in
              qlog ~rows:!count ~outcome:"error" ~error:message ();
              send fd (Protocol.Failed { id; message })))

let stats_payload () =
  let counters = Obs.Metrics.counters () in
  let histograms = Obs.Metrics.histograms () in
  Obs.Jsonx.Obj
    [
      ( "counters",
        Obs.Jsonx.Obj
          (List.map
             (fun (n, v) -> (n, Obs.Jsonx.Num (float_of_int v)))
             counters) );
      ( "histograms",
        Obs.Jsonx.Obj
          (List.map
             (fun (n, (s : Obs.Metrics.summary)) ->
               ( n,
                 Obs.Jsonx.Obj
                   [
                     ("count", Obs.Jsonx.Num (float_of_int s.count));
                     ("p50", Obs.Jsonx.Num s.p50);
                     ("p95", Obs.Jsonx.Num s.p95);
                     ("p99", Obs.Jsonx.Num s.p99);
                     ("max", Obs.Jsonx.Num s.max);
                   ] ))
             histograms) );
    ]

(* Run [body] under an admission slot, observing request latency; the
   caller streams its own response events. *)
let admitted t fd id ~trace body =
  match Admission.acquire t.adm with
  | `Overloaded (active, queued) ->
      send fd (Protocol.Overloaded { id; active; queued })
  | `Closed ->
      send fd (Protocol.Failed { id; message = "server is shutting down" })
  | `Admitted ->
      Fun.protect
        ~finally:(fun () ->
          Admission.release t.adm;
          if Atomic.get t.shutting_down then Obs.Metrics.incr drained_c)
        (fun () ->
          Obs.Metrics.incr requests_c;
          let t0 = Obs.Trace.now_ms () in
          Obs.Trace.with_span "serve.request"
            ~attrs:(fun () -> [ ("trace_id", Obs.Trace.Str trace) ])
            body;
          Obs.Metrics.observe latency_h (Obs.Trace.now_ms () -. t0))

let handle_request t fd ~conn id req =
  let trace = Printf.sprintf "%s-r%d" conn id in
  match req with
  | Protocol.Ping ->
      send fd (Protocol.Pong { id });
      `Continue
  | Protocol.Stats ->
      send fd (Protocol.Stats_reply { id; payload = stats_payload () });
      `Continue
  | Protocol.Shutdown ->
      send fd (Protocol.Bye { id });
      `Shutdown
  | Protocol.Query q ->
      admitted t fd id ~trace (fun () -> handle_query t fd id ~trace q);
      `Continue
  | Protocol.Rexpr q ->
      admitted t fd id ~trace (fun () -> handle_rexpr t fd id ~trace q);
      `Continue

(* --- connection loops ---------------------------------------------- *)

let initiate_shutdown t =
  if not (Atomic.exchange t.shutting_down true) then begin
    Printf.printf "oqf serve: shutdown requested; draining\n%!";
    Admission.close t.adm
  end

let serve_connection t ~conn fd =
  let conn = Printf.sprintf "c%d" conn in
  let reader = Protocol.reader fd in
  let rec loop () =
    if Atomic.get t.shutting_down then ()
    else
      match Protocol.read_line reader with
      | `Eof -> ()
      | `Overflow ->
          send fd
            (Protocol.Failed
               {
                 id = 0;
                 message =
                   Printf.sprintf "request line exceeds %d bytes"
                     Protocol.max_line;
               });
          loop ()
      | `Line "" -> loop ()
      | `Line line -> (
          match Protocol.parse_request line with
          | Error (id, message) ->
              send fd (Protocol.Failed { id; message });
              loop ()
          | Ok (id, req) -> (
              match handle_request t fd ~conn id req with
              | `Continue -> loop ()
              | `Shutdown -> initiate_shutdown t))
  in
  try loop () with Closed_connection -> ()

(* --- a minimal HTTP facade ----------------------------------------- *)

let http_headers_end = "\r\n\r\n"

(* first occurrence of [sub] in [s], naive scan *)
let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let read_http_request fd =
  (* read head + body; bounded like the line protocol *)
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 2048 in
  let rec head () =
    let s = Buffer.contents buf in
    match find_sub s http_headers_end with
    | Some i -> Some (String.sub s 0 i, String.sub s (i + 4) (String.length s - i - 4))
    | None ->
        if Buffer.length buf > Protocol.max_line then None
        else begin
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              head ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> head ()
        end
  in
  match head () with
  | None -> None
  | Some (head, partial_body) -> (
      match String.split_on_char ' ' (List.hd (String.split_on_char '\r' head)) with
      | meth :: path :: _ ->
          let content_length =
            List.fold_left
              (fun acc line ->
                match String.index_opt line ':' with
                | Some i
                  when String.lowercase_ascii (String.sub line 0 i)
                       = "content-length" -> (
                    let v =
                      String.trim
                        (String.sub line (i + 1) (String.length line - i - 1))
                    in
                    match int_of_string_opt v with Some n -> n | None -> acc)
                | _ -> acc)
              0
              (String.split_on_char '\n' head)
          in
          let body = Buffer.create (max 16 content_length) in
          Buffer.add_string body partial_body;
          let rec fill () =
            if Buffer.length body < content_length then begin
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes body chunk 0 n;
                  fill ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
            end
          in
          fill ();
          Some (meth, path, Buffer.contents body)
      | _ -> None)

let http_respond fd status content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nConnection: close\r\n\r\n" status
      content_type
  in
  let all = head ^ body in
  let b = Bytes.of_string all in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

let serve_http_connection t ~conn fd =
  match read_http_request fd with
  | None -> http_respond fd "400 Bad Request" "text/plain" "bad request\n"
  | Some ("GET", "/health", _) -> http_respond fd "200 OK" "text/plain" "ok\n"
  | Some ("GET", "/metrics", _) ->
      (* Prometheus text exposition of the whole registry *)
      http_respond fd "200 OK" "text/plain; version=0.0.4" (Obs.Expo.render ())
  | Some ("POST", _, body) -> (
      match Protocol.parse_request (String.trim body) with
      | Error (_, msg) ->
          http_respond fd "400 Bad Request" "text/plain" (msg ^ "\n")
      | Ok (id, req) -> (
          (* stream the same ndjson events as the socket protocol;
             connection close delimits the stream *)
          match req with
          | Protocol.Query _ | Protocol.Rexpr _ | Protocol.Ping
          | Protocol.Stats -> (
              match Admission.acquire t.adm with
              | `Overloaded (active, queued) ->
                  http_respond fd "503 Service Unavailable"
                    "application/x-ndjson"
                    (Protocol.render_response
                       (Protocol.Overloaded { id; active; queued })
                    ^ "\n")
              | `Closed ->
                  http_respond fd "503 Service Unavailable" "text/plain"
                    "shutting down\n"
              | `Admitted ->
                  Fun.protect
                    ~finally:(fun () ->
                      Admission.release t.adm;
                      if Atomic.get t.shutting_down then
                        Obs.Metrics.incr drained_c)
                    (fun () ->
                      Obs.Metrics.incr requests_c;
                      let t0 = Obs.Trace.now_ms () in
                      http_respond fd "200 OK" "application/x-ndjson" "";
                      let trace = Printf.sprintf "h%d-r%d" conn id in
                      (try
                         match req with
                         | Protocol.Query q -> handle_query t fd id ~trace q
                         | Protocol.Rexpr q -> handle_rexpr t fd id ~trace q
                         | Protocol.Ping -> send fd (Protocol.Pong { id })
                         | Protocol.Stats ->
                             send fd
                               (Protocol.Stats_reply
                                  { id; payload = stats_payload () })
                         | _ -> ()
                       with Closed_connection -> ());
                      Obs.Metrics.observe latency_h
                        (Obs.Trace.now_ms () -. t0)))
          | Protocol.Shutdown ->
              http_respond fd "200 OK" "application/x-ndjson"
                (Protocol.render_response (Protocol.Bye { id }) ^ "\n");
              initiate_shutdown t))
  | Some _ ->
      http_respond fd "405 Method Not Allowed" "text/plain"
        "method not allowed\n"

(* --- lifecycle ----------------------------------------------------- *)

let register_conn t fd =
  with_lock t.conns_lock @@ fun () ->
  let id = t.next_conn in
  t.next_conn <- id + 1;
  Hashtbl.replace t.conns id fd;
  id

let unregister_conn t id =
  with_lock t.conns_lock @@ fun () ->
  (match Hashtbl.find_opt t.conns id with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Hashtbl.remove t.conns id

let accept_loop t listen_fd handler =
  let rec loop () =
    if Atomic.get t.shutting_down then ()
    else begin
      (match Unix.select [ listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept listen_fd with
          | fd, _ ->
              Obs.Metrics.incr connections_c;
              let cid = register_conn t fd in
              let th =
                Thread.create
                  (fun () ->
                    Fun.protect
                      ~finally:(fun () -> unregister_conn t cid)
                      (fun () -> handler t ~conn:cid fd))
                  ()
              in
              with_lock t.conns_lock (fun () ->
                  t.conn_threads <- th :: t.conn_threads)
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ());
      loop ()
    end
  in
  loop ()

let bind_unix_socket path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64
  with
  | () -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message err))

let bind_http_socket port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  match
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 64
  with
  | () -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind 127.0.0.1:%d: %s" port
           (Unix.error_message err))

let start config =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  match Catalog.open_dir config.catalog_dir with
  | Error e -> Error (Printf.sprintf "cannot open catalog: %s" e)
  | Ok catalog -> (
      match bind_unix_socket config.socket_path with
      | Error e -> Error e
      | Ok listen_fd -> (
          let http =
            match config.http_port with
            | None -> Ok None
            | Some port -> Result.map Option.some (bind_http_socket port)
          in
          match http with
          | Error e ->
              (try Unix.close listen_fd with Unix.Unix_error _ -> ());
              Error e
          | Ok http_fd ->
              let t =
                {
                  config;
                  catalog;
                  catalog_lock = Mutex.create ();
                  corpora = Hashtbl.create 4;
                  watcher = None;
                  pool =
                    Exec.Pool.create ~jobs:(max 1 config.jobs) ();
                  rcache = Exec.Rcache.create ();
                  adm =
                    Admission.make ~max_active:config.max_active
                      ~max_queue:config.max_queue;
                  listen_fd;
                  http_fd;
                  shutting_down = Atomic.make false;
                  conns = Hashtbl.create 16;
                  conns_lock = Mutex.create ();
                  next_conn = 0;
                  conn_threads = [];
                  accept_threads = [];
                  done_signal = (Mutex.create (), Condition.create ());
                  finished = false;
                }
              in
              let threads =
                Thread.create (fun () -> accept_loop t listen_fd serve_connection) ()
                ::
                (match http_fd with
                | Some fd ->
                    [
                      Thread.create
                        (fun () -> accept_loop t fd serve_http_connection)
                        ();
                    ]
                | None -> [])
              in
              t.accept_threads <- threads;
              if config.watch then begin
                t.watcher <-
                  Some
                    (Oqf_catalog.Watch.start
                       ~interval_ms:config.watch_interval_ms
                       ~lock:t.catalog_lock catalog);
                Printf.printf "oqf serve: watching catalog (every %gms)\n%!"
                  config.watch_interval_ms
              end;
              Printf.printf "oqf serve: listening on %s\n%!"
                config.socket_path;
              (match config.http_port with
              | Some port ->
                  Printf.printf "oqf serve: http on 127.0.0.1:%d\n%!" port
              | None -> ());
              Ok t))

let request_shutdown t = initiate_shutdown t

let wait t =
  (* Block until shutdown is requested, then drain and tear down.
     Multiple callers are fine: the first does the teardown, the rest
     wait on [done_signal]. *)
  let m, c = t.done_signal in
  while not (Atomic.get t.shutting_down) do
    Thread.delay 0.05
  done;
  Mutex.lock m;
  if t.finished then begin
    Mutex.unlock m;
    ()
  end
  else begin
    Mutex.unlock m;
    List.iter Thread.join t.accept_threads;
    (* drain in-flight requests, bounded *)
    let deadline = Obs.Trace.now_ms () +. t.config.drain_ms in
    while Admission.active t.adm > 0 && Obs.Trace.now_ms () < deadline do
      Thread.delay 0.01
    done;
    (* cut off every connection; readers see EOF/EBADF and exit *)
    with_lock t.conns_lock (fun () ->
        Hashtbl.iter
          (fun _ fd ->
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ());
            try Unix.close fd with Unix.Unix_error _ -> ())
          t.conns;
        Hashtbl.reset t.conns);
    List.iter Thread.join t.conn_threads;
    (match t.watcher with
    | Some w ->
        Oqf_catalog.Watch.stop w;
        t.watcher <- None
    | None -> ());
    Exec.Pool.shutdown t.pool;
    (match Obs.Trace.sink () with Some s -> s.Obs.Trace.flush () | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.http_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    (try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ());
    Printf.printf "oqf serve: drained; bye\n%!";
    Mutex.lock m;
    t.finished <- true;
    Condition.broadcast c;
    Mutex.unlock m
  end;
  Mutex.lock m;
  while not t.finished do
    Condition.wait c m
  done;
  Mutex.unlock m

let run config =
  match start config with
  | Error _ as e -> e
  | Ok t ->
      let on_signal _ = request_shutdown t in
      (try
         Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
         Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
       with Invalid_argument _ -> ());
      wait t;
      Ok ()
