type conn = {
  fd : Unix.file_descr;
  reader : Protocol.reader;
  mutable next_id : int;
}

let connect ?(wait_ms = 0.) path =
  let deadline = Obs.Trace.now_ms () +. wait_ms in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; reader = Protocol.reader fd; next_id = 0 }
    | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Obs.Trace.now_ms () < deadline then begin
          Thread.delay 0.02;
          attempt ()
        end
        else
          Error
            (Printf.sprintf "cannot connect to %s: %s" path
               (Unix.error_message err))
  in
  attempt ()

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let is_terminal = function
  | Protocol.Row _ | Protocol.Region _ -> false
  | Protocol.Done _ | Protocol.Diagnostics _ | Protocol.Overloaded _
  | Protocol.Failed _ | Protocol.Pong _ | Protocol.Stats_reply _
  | Protocol.Bye _ ->
      true

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let stream c req ~on_event =
  c.next_id <- c.next_id + 1;
  let id = c.next_id in
  match write_all c.fd (Protocol.render_request id req ^ "\n") with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message err))
  | () ->
      let rec next () =
        match Protocol.read_line c.reader with
        | `Eof -> Error "connection closed by server"
        | `Overflow -> Error "oversized response line"
        | `Line "" -> next ()
        | `Line line -> (
            match Protocol.parse_response line with
            | Error e -> Error (Printf.sprintf "bad response: %s (%s)" e line)
            | Ok ev ->
                on_event ev;
                if is_terminal ev then Ok ev else next ())
      in
      next ()

let request c req =
  let events = ref [] in
  match stream c req ~on_event:(fun ev -> events := ev :: !events) with
  | Ok _ -> Ok (List.rev !events)
  | Error _ as e -> e

(* A one-shot HTTP GET against the daemon's facade — enough for
   scraping /metrics and /health without depending on curl. *)
let http_get ?(host = "127.0.0.1") ~port path =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error (Printf.sprintf "cannot resolve %s" host)
  | ai :: _ -> (
      let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
      match
        Unix.connect fd ai.Unix.ai_addr;
        write_all fd
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
             path host);
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        Buffer.contents buf
      with
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "GET %s:%d%s: %s" host port path
               (Unix.error_message err))
      | raw -> (
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (* split head from body at the first blank line *)
          let sep = "\r\n\r\n" in
          let n = String.length raw and m = String.length sep in
          let rec find i =
            if i + m > n then None
            else if String.sub raw i m = sep then Some i
            else find (i + 1)
          in
          match find 0 with
          | None -> Error "malformed HTTP response (no header terminator)"
          | Some i -> (
              let head = String.sub raw 0 i in
              let body = String.sub raw (i + m) (n - i - m) in
              match String.split_on_char ' ' head with
              | _ :: code :: _ -> Ok (int_of_string_opt code |> Option.value ~default:0, body)
              | _ -> Error "malformed HTTP status line")))
