type conn = {
  fd : Unix.file_descr;
  reader : Protocol.reader;
  mutable next_id : int;
}

let connect ?(wait_ms = 0.) path =
  let deadline = Obs.Trace.now_ms () +. wait_ms in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; reader = Protocol.reader fd; next_id = 0 }
    | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Obs.Trace.now_ms () < deadline then begin
          Thread.delay 0.02;
          attempt ()
        end
        else
          Error
            (Printf.sprintf "cannot connect to %s: %s" path
               (Unix.error_message err))
  in
  attempt ()

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let is_terminal = function
  | Protocol.Row _ | Protocol.Region _ -> false
  | Protocol.Done _ | Protocol.Diagnostics _ | Protocol.Overloaded _
  | Protocol.Failed _ | Protocol.Pong _ | Protocol.Stats_reply _
  | Protocol.Bye _ ->
      true

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let stream c req ~on_event =
  c.next_id <- c.next_id + 1;
  let id = c.next_id in
  match write_all c.fd (Protocol.render_request id req ^ "\n") with
  | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message err))
  | () ->
      let rec next () =
        match Protocol.read_line c.reader with
        | `Eof -> Error "connection closed by server"
        | `Overflow -> Error "oversized response line"
        | `Line "" -> next ()
        | `Line line -> (
            match Protocol.parse_response line with
            | Error e -> Error (Printf.sprintf "bad response: %s (%s)" e line)
            | Ok ev ->
                on_event ev;
                if is_terminal ev then Ok ev else next ())
      in
      next ()

let request c req =
  let events = ref [] in
  match stream c req ~on_event:(fun ev -> events := ev :: !events) with
  | Ok _ -> Ok (List.rev !events)
  | Error _ as e -> e
