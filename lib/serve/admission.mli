(** Bounded admission control for concurrent requests.

    A request must {!acquire} a slot before it may touch the pool.  At
    most [max_active] requests run at once; up to [max_queue] more
    wait on a condition variable.  A request arriving with the queue
    full is rejected immediately — the caller answers with the typed
    [overloaded] event instead of blocking or dying — so the daemon
    sheds load predictably under burst.

    Metrics: [serve.admitted] / [serve.rejected] counters and the
    [serve.active] / [serve.queue_depth] gauges. *)

type t

val make : max_active:int -> max_queue:int -> t

val acquire : t -> [ `Admitted | `Overloaded of int * int | `Closed ]
(** Blocks while the queue has room; [`Overloaded (active, queued)]
    when it does not.  [`Closed] after {!close} — the daemon is
    draining and accepts no new work. *)

val release : t -> unit
(** Give the slot back; wakes one queued waiter. *)

val close : t -> unit
(** Reject all future and currently-queued acquisitions. *)

val active : t -> int
val queued : t -> int
