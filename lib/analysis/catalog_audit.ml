module C = Oqf_catalog.Catalog

let entry_diag ((e : C.entry), staleness) =
  let mk ?detail ~severity ~code msg =
    Some (Diagnostic.make ~subject:e.C.source ?detail ~code ~severity msg)
  in
  match staleness with
  | C.Fresh -> None
  | C.Appended { old_len; new_len } ->
      mk ~code:"OQF201" ~severity:Diagnostic.Warning
        ~detail:(Printf.sprintf "%dB -> %dB" old_len new_len)
        "stale index: the source grew append-only since the last build \
         (refresh extends it incrementally)"
  | C.Changed ->
      mk ~code:"OQF201" ~severity:Diagnostic.Warning
        "stale index: the source changed since the last build (refresh \
         rebuilds it)"
  | C.Source_missing ->
      mk ~code:"OQF203" ~severity:Diagnostic.Error
        "orphan manifest entry: the source file is missing (oqf catalog \
         repair drops it)"
  | C.Index_missing ->
      mk ~code:"OQF203" ~severity:Diagnostic.Error
        ~detail:e.C.index_file
        "the persisted index file is missing (oqf catalog repair rebuilds \
         it from the source)"
  | C.Index_unreadable reason ->
      mk ~code:"OQF203" ~severity:Diagnostic.Error ~detail:reason
        "the persisted index file is unreadable (oqf catalog repair \
         rebuilds it from the source)"

let audit catalog =
  let entry_diags = List.filter_map entry_diag (C.status catalog) in
  let orphan_diags =
    List.map
      (fun file ->
        Diagnostic.make ~subject:file ~code:"OQF202"
          ~severity:Diagnostic.Warning
          "orphan index file: no manifest entry references it (oqf catalog \
           repair removes it)")
      (C.orphan_index_files catalog)
  in
  Diagnostic.sort (entry_diags @ orphan_diags)
