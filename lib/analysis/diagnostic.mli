(** Typed diagnostics for the static analyzer.

    Every finding of the query/schema/catalog checkers is one record
    with a stable code, a severity, an optional byte span into the
    checked source text, and a human message plus an optional detail
    (e.g. the rewrite the optimizer would apply).  The same record
    renders as a one-line human message and as a JSON object, so
    [oqf check --format json] is machine-consumable by CI gates.

    Severity policy:
    - {e error}: the input is wrong or can only ever produce the empty
      answer (Proposition 3.3) — execution is refused unless forced;
    - {e warning}: the input is suspicious (a dead union arm, an
      unreachable pair, a stale index) but running it is not unsound;
    - {e hint}: purely informational (a rewrite the optimizer applies
      anyway, a non-natural schema construct). *)

type severity = Error | Warning | Hint

type span = { start : int; stop : int }
(** Byte offsets into the checked text, half-open: [\[start, stop)]. *)

type t = {
  code : string;  (** stable, e.g. ["OQF001"] *)
  severity : severity;
  span : span option;
  subject : string option;
      (** what the diagnostic is about: a variable, a file, a
          non-terminal — prefixes the rendered message *)
  message : string;
  detail : string option;
      (** machine-actionable precision: the witness pair, the rewrite,
          the cost figure *)
}

val make :
  ?span:span ->
  ?subject:string ->
  ?detail:string ->
  code:string ->
  severity:severity ->
  string ->
  t

val with_subject : string -> t -> t
(** Set the subject unless one is already present. *)

val span_of_word : text:string -> string -> span option
(** The first whole-word occurrence of a name in [text] — how the
    checkers anchor a diagnostic about a region name to the query
    text. *)

val severity_rank : severity -> int
(** [Error] ranks 0, [Warning] 1, [Hint] 2. *)

val compare : t -> t -> int
(** Severity first, then code, then span position. *)

val sort : t list -> t list
val errors : t list -> t list
val has_errors : t list -> bool

val count : t list -> int * int * int
(** (errors, warnings, hints). *)

val severity_to_string : severity -> string
val pp_severity : Format.formatter -> severity -> unit

val pp : Format.formatter -> t -> unit
(** One line:
    [severity[code] subject: message — detail (at start..stop)]
    with the optional parts omitted when absent. *)

val to_string : t -> string

val to_json : t -> string
(** One JSON object; [span]/[subject]/[detail] are omitted when
    absent.  Field order is stable. *)

val list_to_json : t list -> string
(** A JSON array, one object per line — the [--format json]
    rendering. *)

val registry : (string * severity * string) list
(** Every stable code with its default severity and a one-line
    description — the table DESIGN §9 documents and
    [oqf check --list-codes] prints.  The OQF3xx family is the
    containment analysis ({!Contain}): 301 subsumed union arm, 302
    redundant conjunct, 303 empty-by-containment difference, 304
    cross-query batch subsumption, 305 minimizable expression. *)
