module Expr = Ralg.Expr

type verdict = Contained | Unknown

let verdict_to_string = function
  | Contained -> "contained"
  | Unknown -> "unknown"

(* a ⊃d b filters with [includes ∧ ¬blocked], a ⊃ b with [includes]
   alone (Naive_eval §3.1), so the direct form implies the simple one
   on every instance — no RIG fact needed. *)
let op_implies o1 o2 =
  o1 = o2
  ||
  match (o1, o2) with
  | Expr.Directly_including, Expr.Including -> true
  | Expr.Directly_included, Expr.Included -> true
  | _ -> false

let is_prefix ~prefix w =
  String.length prefix <= String.length w
  && String.sub w 0 (String.length prefix) = prefix

(* σ₁ ⊑ σ₂ as region filters.  Exact occurrences start at a match
   point (a word-boundary occurrence with an end boundary), and match
   points are prefix points of every prefix of the word; a region of
   length |w| has length ≥ |p| for any prefix p.  Containment
   selections relate only to themselves. *)
let sel_implies s1 s2 =
  s1 = s2
  ||
  match (s1, s2) with
  | Expr.Exactly_word w, Expr.Contains_word w' -> String.equal w w'
  | Expr.Exactly_word w, Expr.Prefix_word p
  | Expr.Prefix_word w, Expr.Prefix_word p ->
      is_prefix ~prefix:p w
  | _ -> false

let known rig e = List.for_all (Ralg.Rig.mem rig) (Expr.names e)

(* The recursive core: [go a b] is true only if a ⊑ b on every
   conforming instance.  Every recursive call strictly decreases
   [size a + size b], so the search terminates without fuel. *)
let rec go rig a b =
  Expr.equal a b
  || Ralg.Trivial.check rig a
  || (match a with
     | Expr.Setop (Expr.Union, c, d) -> go rig c b && go rig d b
     | _ -> false)
  || (match b with
     | Expr.Setop (Expr.Inter, c, d) -> go rig a c && go rig a d
     | Expr.Setop (Expr.Union, c, d) -> go rig a c || go rig a d
     | _ -> false)
  || left_weaken rig a b
  || congruence rig a b

(* Strip one filtering layer off [a]: each of these operators answers
   a subset of its (left) operand, so [strip a ⊑ b] gives [a ⊑ b]. *)
and left_weaken rig a b =
  match a with
  | Expr.Select (_, a')
  | Expr.Innermost a'
  | Expr.Outermost a'
  | Expr.Chain (a', _, _)
  | Expr.Chain_strict (a', _, _)
  | Expr.At_depth (_, a', _) ->
      go rig a' b
  | Expr.Setop (Expr.Inter, c, d) -> go rig c b || go rig d b
  | Expr.Setop (Expr.Diff, c, _) -> go rig c b
  | _ -> false

(* Monotonicity: chains and At_depth test witnesses against the fixed
   universe context, so both operands are covariant; difference is
   covariant left, contravariant right.  Innermost/Outermost are not
   monotone (adding regions can demote a minimal one), so they only
   relate at equivalent operands. *)
and congruence rig a b =
  match (a, b) with
  | Expr.Select (s1, a'), Expr.Select (s2, b') ->
      sel_implies s1 s2 && go rig a' b'
  | Expr.Chain (a1, o1, b1), Expr.Chain (a2, o2, b2)
  | Expr.Chain_strict (a1, o1, b1), Expr.Chain (a2, o2, b2)
  | Expr.Chain_strict (a1, o1, b1), Expr.Chain_strict (a2, o2, b2) ->
      op_implies o1 o2 && go rig a1 a2 && go rig b1 b2
  | Expr.At_depth (n1, a1, b1), Expr.At_depth (n2, a2, b2) ->
      n1 = n2 && go rig a1 a2 && go rig b1 b2
  | Expr.At_depth (_, a1, b1), Expr.Chain (a2, Expr.Including, b2) ->
      (* a depth-n witness is in particular an included witness *)
      go rig a1 a2 && go rig b1 b2
  | Expr.At_depth (0, a1, b1), Expr.Chain (a2, Expr.Directly_including, b2)
  | ( Expr.Chain (a1, Expr.Directly_including, b1),
      Expr.At_depth (0, a2, b2) ) ->
      (* depth 0 = no universe region strictly between = not blocked:
         the two operators filter with the same witness condition *)
      go rig a1 a2 && go rig b1 b2
  | Expr.Setop (Expr.Diff, a1, b1), Expr.Setop (Expr.Diff, a2, b2) ->
      go rig a1 a2 && go rig b2 b1
  | Expr.Innermost a', Expr.Innermost b' | Expr.Outermost a', Expr.Outermost b'
    ->
      go rig a' b' && go rig b' a'
  | _ -> false

let leq rig a b =
  if not (known rig a && known rig b) then Unknown
  else if
    go rig a b
    (* Prop 3.5 laws: the optimizer's normal form is semantics-
       preserving on conforming instances, so RIG-conditional
       equivalences (weakened ⊃d, shortened chains) reduce to
       syntactic coincidence after normalization. *)
    || go rig (Ralg.Optimizer.optimize rig a) (Ralg.Optimizer.optimize rig b)
  then Contained
  else Unknown

let equiv rig a b =
  match (leq rig a b, leq rig b a) with
  | Contained, Contained -> Contained
  | _ -> Unknown

let empty rig e =
  known rig e
  &&
  let rec emp e =
    Ralg.Trivial.check rig e
    ||
    match e with
    | Expr.Setop (Expr.Diff, a, b) -> emp a || go rig a b
    | Expr.Setop (Expr.Inter, a, b) -> emp a || emp b
    | Expr.Setop (Expr.Union, a, b) -> emp a && emp b
    | Expr.Select (_, e) | Expr.Innermost e | Expr.Outermost e -> emp e
    | Expr.Chain (a, _, b) | Expr.Chain_strict (a, _, b)
    | Expr.At_depth (_, a, b) ->
        emp a || emp b
    | Expr.Name _ -> false
  in
  emp e

(* ---------------- minimization ---------------- *)

let rec flatten setop e acc =
  match e with
  | Expr.Setop (op, a, b) when op = setop ->
      flatten setop a (flatten setop b acc)
  | e -> e :: acc

let rebuild setop = function
  | [] -> invalid_arg "Contain.rebuild: empty operand list"
  | [ e ] -> e
  | e :: rest ->
      List.fold_left (fun acc x -> Expr.Setop (setop, acc, x)) e rest

(* Keep operands left to right; [redundant kept c] says c may be
   dropped given the kept ones, [superseded c kept] says an already
   kept operand becomes droppable once c is admitted.  First
   occurrences win, so the scan is deterministic and never drops two
   mutually-contained duplicates. *)
let prune ~redundant ~superseded ops =
  let kept =
    List.fold_left
      (fun kept c ->
        if List.exists (fun k -> redundant k c) kept then kept
        else c :: List.filter (fun k -> not (superseded c k)) kept)
      [] ops
  in
  List.rev kept

let minimize rig e =
  if not (known rig e) then e
  else begin
    let contained a b = go rig a b in
    let rec mini e =
      match e with
      | Expr.Name _ -> e
      | Expr.Select (s, e1) ->
          let m1 = mini e1 in
          if m1 == e1 then e else Expr.Select (s, m1)
      | Expr.Innermost e1 ->
          let m1 = mini e1 in
          if m1 == e1 then e else Expr.Innermost m1
      | Expr.Outermost e1 ->
          let m1 = mini e1 in
          if m1 == e1 then e else Expr.Outermost m1
      | Expr.Chain (a, op, b) ->
          let ma = mini a and mb = mini b in
          if ma == a && mb == b then e else Expr.Chain (ma, op, mb)
      | Expr.Chain_strict (a, op, b) ->
          let ma = mini a and mb = mini b in
          if ma == a && mb == b then e else Expr.Chain_strict (ma, op, mb)
      | Expr.At_depth (n, a, b) ->
          let ma = mini a and mb = mini b in
          if ma == a && mb == b then e else Expr.At_depth (n, ma, mb)
      | Expr.Setop (Expr.Diff, a, b) ->
          let ma = mini a and mb = mini b in
          (* a − ∅ = a; the subtrahend is dead weight *)
          if empty rig mb then ma
          else if ma == a && mb == b then e
          else Expr.Setop (Expr.Diff, ma, mb)
      | Expr.Setop (Expr.Inter, _, _) ->
          let orig = flatten Expr.Inter e [] in
          let ops = List.map mini orig in
          (* k ⊑ c ⟹ k ∩ c = k: the weaker conjunct is implied *)
          let kept =
            prune ~redundant:(fun k c -> contained k c)
              ~superseded:(fun c k -> contained c k)
              ops
          in
          if List.length kept = List.length orig && List.for_all2 ( == ) kept orig
          then e
          else rebuild Expr.Inter kept
      | Expr.Setop (Expr.Union, _, _) ->
          let orig = flatten Expr.Union e [] in
          let ops = List.map mini orig in
          (* c ⊑ k ⟹ k ∪ c = k: the subsumed arm contributes nothing *)
          let kept =
            prune ~redundant:(fun k c -> contained c k)
              ~superseded:(fun c k -> contained k c)
              ops
          in
          if List.length kept = List.length orig && List.for_all2 ( == ) kept orig
          then e
          else rebuild Expr.Union kept
    in
    mini e
  end
