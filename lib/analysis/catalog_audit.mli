(** Static audit of a persistent index catalog (codes OQF201–OQF203).

    - OQF201 ({e warning}): an entry's fingerprint is stale — the
      source grew (appended) or changed, so the persisted index
      answers against an old snapshot until refreshed;
    - OQF202 ({e warning}): an index file on disk that no manifest
      entry references — debris from crashed rebuilds;
    - OQF203 ({e error}): an entry that cannot serve queries at all —
      its source or index file is missing, or the index is unreadable
      (corrupt or written by another format version). *)

val audit : Oqf_catalog.Catalog.t -> Diagnostic.t list
(** Fingerprint every entry ({!Oqf_catalog.Catalog.status}) and list
    orphan index files; sorted by severity, subjects are source paths
    (OQF201/203) or index paths (OQF202). *)
