module Expr = Ralg.Expr

let rec trivial_subexprs rig e =
  if Ralg.Trivial.check rig e then [ e ]
  else begin
    match e with
    | Expr.Name _ -> []
    | Expr.Select (_, e1) | Expr.Innermost e1 | Expr.Outermost e1 ->
        trivial_subexprs rig e1
    | Expr.Setop (_, a, b)
    | Expr.Chain (a, _, b)
    | Expr.Chain_strict (a, _, b)
    | Expr.At_depth (_, a, b) ->
        trivial_subexprs rig a @ trivial_subexprs rig b
  end

let family_strength = function
  | Expr.Including -> (Ralg.Chain.Up, Ralg.Chain.Simple)
  | Expr.Directly_including -> (Ralg.Chain.Up, Ralg.Chain.Direct)
  | Expr.Included -> (Ralg.Chain.Down, Ralg.Chain.Simple)
  | Expr.Directly_included -> (Ralg.Chain.Down, Ralg.Chain.Direct)

let rec witness_pair rig e =
  let first_of a b =
    match witness_pair rig a with
    | Some _ as w -> w
    | None -> witness_pair rig b
  in
  match e with
  | Expr.Name _ -> None
  | Expr.Select (_, e1) | Expr.Innermost e1 | Expr.Outermost e1 ->
      witness_pair rig e1
  | Expr.Setop (_, a, b) | Expr.At_depth (_, a, b) -> first_of a b
  | Expr.Chain (a, op, b) | Expr.Chain_strict (a, op, b) -> begin
      match first_of a b with
      | Some _ as w -> w
      | None ->
          let family, strength = family_strength op in
          let lefts = Ralg.Trivial.result_names a
          and rights = Ralg.Trivial.result_names b in
          let all_trivial =
            lefts <> [] && rights <> []
            && List.for_all
                 (fun l ->
                   List.for_all
                     (fun r ->
                       Ralg.Trivial.pair_is_trivial rig ~family ~strength
                         ~left:l ~right:r)
                     rights)
                 lefts
          in
          if all_trivial then Some (List.hd lefts, op, List.hd rights)
          else None
    end

let describe_witness (l, op, r) =
  let family, strength = family_strength op in
  let a, b = match family with Ralg.Chain.Up -> (l, r) | Ralg.Chain.Down -> (r, l) in
  match strength with
  | Ralg.Chain.Direct -> Printf.sprintf "(%s, %s) is not a RIG edge" a b
  | Ralg.Chain.Simple -> Printf.sprintf "no RIG walk from %s to %s" a b

let default_cost_threshold = 50_000.

let check ?text ?cost ?(cost_threshold = default_cost_threshold) rig e =
  let span_of name =
    match text with
    | None -> None
    | Some text -> Diagnostic.span_of_word ~text name
  in
  let unknown =
    List.filter (fun n -> not (Ralg.Rig.mem rig n)) (Expr.names e)
    |> List.map (fun n ->
           Diagnostic.make ?span:(span_of n) ~code:"OQF002"
             ~severity:Diagnostic.Error
             (Printf.sprintf "unknown region name %s w.r.t. the RIG" n))
  in
  let witness_detail scope =
    match witness_pair rig scope with
    | Some w -> Some (describe_witness w)
    | None -> None
  in
  let witness_span scope =
    match witness_pair rig scope with
    | Some (l, _, _) -> span_of l
    | None -> None
  in
  let triviality =
    if Ralg.Trivial.check rig e then
      [
        Diagnostic.make ?span:(witness_span e) ?detail:(witness_detail e)
          ~code:"OQF001" ~severity:Diagnostic.Error
          "trivially empty: the answer is the empty set on every instance \
           satisfying the RIG (Prop 3.3)";
      ]
    else
      List.map
        (fun sub ->
          Diagnostic.make ?span:(witness_span sub)
            ?detail:(witness_detail sub) ~code:"OQF005"
            ~severity:Diagnostic.Warning
            (Printf.sprintf
               "subexpression %s can only be empty on instances conforming \
                to the RIG"
               (Expr.to_string sub)))
        (trivial_subexprs rig e)
  in
  let rewrites =
    let _optimized, rws = Ralg.Optimizer.plan_rewrites rig e in
    let rewrite_diag (rw : Ralg.Optimizer.rewrite) =
      let first_name =
        match String.index_opt rw.Ralg.Optimizer.detail ' ' with
        | Some i -> String.sub rw.Ralg.Optimizer.detail 0 i
        | None -> rw.Ralg.Optimizer.detail
      in
      if rw.Ralg.Optimizer.rule = "weaken-direct" then
        Diagnostic.make ?span:(span_of first_name)
          ~detail:rw.Ralg.Optimizer.detail ~code:"OQF003"
          ~severity:Diagnostic.Hint
          "direct inclusion is weakenable (Prop 3.5a); the optimizer applies \
           this rewrite"
      else
        Diagnostic.make ?span:(span_of first_name)
          ~detail:rw.Ralg.Optimizer.detail ~code:"OQF004"
          ~severity:Diagnostic.Hint
          "inclusion chain is shortenable (Prop 3.5b); the optimizer applies \
           this rewrite"
    in
    List.map rewrite_diag rws
  in
  let containment =
    (* OQF301/302/303 walk the Setop nodes with the containment engine;
       arms Prop 3.3 already proves empty are OQF005's business, so the
       rules below skip them to keep each finding single-voiced. *)
    let nontrivial e = not (Ralg.Trivial.check rig e) in
    let span_of_expr sub =
      match Expr.names sub with n :: _ -> span_of n | [] -> None
    in
    let rec walk e acc =
      let acc =
        match e with
        | Expr.Setop (Expr.Union, a, b) when nontrivial a && nontrivial b ->
            let arm sub sup =
              Diagnostic.make ?span:(span_of_expr sub)
                ~detail:
                  (Printf.sprintf "%s is contained in %s" (Expr.to_string sub)
                     (Expr.to_string sup))
                ~code:"OQF301" ~severity:Diagnostic.Warning
                (Printf.sprintf
                   "subsumed subexpression: union arm %s contributes nothing \
                    on any conforming instance"
                   (Expr.to_string sub))
              :: acc
            in
            if Contain.leq rig a b = Contain.Contained then arm a b
            else if Contain.leq rig b a = Contain.Contained then arm b a
            else acc
        | Expr.Setop (Expr.Inter, a, b) when nontrivial a && nontrivial b ->
            let conjunct redundant stronger =
              Diagnostic.make ?span:(span_of_expr redundant)
                ~detail:
                  (Printf.sprintf "%s is contained in %s"
                     (Expr.to_string stronger) (Expr.to_string redundant))
                ~code:"OQF302" ~severity:Diagnostic.Warning
                (Printf.sprintf
                   "tautological conjunct: intersecting with %s cannot change \
                    the result"
                   (Expr.to_string redundant))
              :: acc
            in
            if Contain.leq rig a b = Contain.Contained then conjunct b a
            else if Contain.leq rig b a = Contain.Contained then conjunct a b
            else acc
        | Expr.Setop (Expr.Diff, a, b)
          when nontrivial a && Contain.leq rig a b = Contain.Contained ->
            Diagnostic.make ?span:(span_of_expr a)
              ~detail:
                (Printf.sprintf "%s is contained in %s" (Expr.to_string a)
                   (Expr.to_string b))
              ~code:"OQF303" ~severity:Diagnostic.Warning
              (Printf.sprintf
                 "empty by containment: every region of %s is removed by %s, \
                  so the difference is empty on every conforming instance"
                 (Expr.to_string a) (Expr.to_string b))
            :: acc
        | _ -> acc
      in
      match e with
      | Expr.Name _ -> acc
      | Expr.Select (_, e1) | Expr.Innermost e1 | Expr.Outermost e1 ->
          walk e1 acc
      | Expr.Setop (_, a, b)
      | Expr.Chain (a, _, b)
      | Expr.Chain_strict (a, _, b)
      | Expr.At_depth (_, a, b) ->
          walk b (walk a acc)
    in
    let minimizable =
      let e' = Contain.minimize rig e in
      if Expr.equal e' e then []
      else
        [
          Diagnostic.make
            ~detail:
              (Printf.sprintf "%s => %s" (Expr.to_string e)
                 (Expr.to_string e'))
            ~code:"OQF305" ~severity:Diagnostic.Hint
            "minimizable: a provably-equivalent smaller expression exists \
             (applied by the planner under --minimize)";
        ]
    in
    List.rev (walk e []) @ minimizable
  in
  let cost_diag =
    let estimate =
      match cost with Some f -> f | None -> fun e -> Ralg.Cost.estimate e
    in
    let c = estimate e in
    if c.Ralg.Cost.direct_ops > 0 && c.Ralg.Cost.weighted > cost_threshold
    then
      [
        Diagnostic.make ~code:"OQF006" ~severity:Diagnostic.Warning
          ~detail:(Format.asprintf "%a" Ralg.Cost.pp c)
          (Printf.sprintf
             "estimated evaluation cost %.0f exceeds threshold %.0f and the \
              expression uses %d direct-inclusion operator(s)"
             c.Ralg.Cost.weighted cost_threshold c.Ralg.Cost.direct_ops);
      ]
    else []
  in
  Diagnostic.sort (unknown @ triviality @ rewrites @ containment @ cost_diag)
