type severity = Error | Warning | Hint

type span = { start : int; stop : int }

type t = {
  code : string;
  severity : severity;
  span : span option;
  subject : string option;
  message : string;
  detail : string option;
}

let make ?span ?subject ?detail ~code ~severity message =
  { code; severity; span; subject; message; detail }

let with_subject subject d =
  match d.subject with Some _ -> d | None -> { d with subject = Some subject }

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let span_of_word ~text word =
  let n = String.length text and m = String.length word in
  let boundary i = i < 0 || i >= n || not (is_word_char text.[i]) in
  let rec go i =
    if i + m > n then None
    else if
      String.sub text i m = word && boundary (i - 1) && boundary (i + m)
    then Some { start = i; stop = i + m }
    else go (i + 1)
  in
  if m = 0 then None else go 0

let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> begin
      match String.compare a.code b.code with
      | 0 ->
          let pos d =
            match d.span with Some s -> s.start | None -> max_int
          in
          Stdlib.compare (pos a) (pos b)
      | c -> c
    end
  | c -> c

let sort ds = List.stable_sort compare ds
let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let count ds =
  List.fold_left
    (fun (e, w, h) d ->
      match d.severity with
      | Error -> (e + 1, w, h)
      | Warning -> (e, w + 1, h)
      | Hint -> (e, w, h + 1))
    (0, 0, 0) ds

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let pp_severity ppf s = Format.pp_print_string ppf (severity_to_string s)

let pp ppf d =
  Format.fprintf ppf "%a[%s]" pp_severity d.severity d.code;
  (match d.subject with
  | Some s -> Format.fprintf ppf " %s:" s
  | None -> ());
  Format.fprintf ppf " %s" d.message;
  (match d.detail with
  | Some detail -> Format.fprintf ppf " -- %s" detail
  | None -> ());
  match d.span with
  | Some { start; stop } -> Format.fprintf ppf " (at %d..%d)" start stop
  | None -> ()

let to_string d = Format.asprintf "%a" pp d

(* Hand-rolled JSON: the toolchain image carries no JSON library, and
   the shapes here are flat. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\"" (json_escape d.code)
       (severity_to_string d.severity));
  (match d.subject with
  | Some s ->
      Buffer.add_string buf (Printf.sprintf ",\"subject\":\"%s\"" (json_escape s))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf ",\"message\":\"%s\"" (json_escape d.message));
  (match d.detail with
  | Some s ->
      Buffer.add_string buf (Printf.sprintf ",\"detail\":\"%s\"" (json_escape s))
  | None -> ());
  (match d.span with
  | Some { start; stop } ->
      Buffer.add_string buf
        (Printf.sprintf ",\"span\":{\"start\":%d,\"stop\":%d}" start stop)
  | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let list_to_json ds =
  match ds with
  | [] -> "[]"
  | ds ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i d ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf ("  " ^ to_json d))
        ds;
      Buffer.add_string buf "\n]";
      Buffer.contents buf

let registry =
  [
    ("OQF000", Error, "query or expression does not parse/compile");
    ("OQF001", Error, "trivially-empty expression under the RIG (Prop 3.3)");
    ("OQF002", Error, "unknown region name w.r.t. the RIG/schema");
    ("OQF003", Hint, "weakenable direct inclusion (Prop 3.5a)");
    ("OQF004", Hint, "shortenable inclusion chain (Prop 3.5b)");
    ("OQF005", Warning, "RIG-unreachable pair: empty on every conforming instance");
    ("OQF006", Warning, "direct-inclusion cost estimate above threshold");
    ("OQF101", Warning, "non-terminal unreachable from the grammar root");
    ("OQF102", Error, "declared RIG inconsistent with the grammar-derived RIG");
    ("OQF103", Hint, "non-natural schema construct");
    ("OQF201", Warning, "catalogued index is stale (source appended/changed)");
    ("OQF202", Warning, "orphan index file not referenced by the manifest");
    ("OQF203", Error, "catalog entry unusable (missing or unreadable file)");
    ("OQF301", Warning, "subsumed subexpression: a union arm is contained in another");
    ("OQF302", Warning, "tautological conjunct: an intersection operand is implied by another");
    ("OQF303", Warning, "empty by containment: a difference provably removes everything");
    ("OQF304", Warning, "batch query subsumed by another query of the same batch");
    ("OQF305", Hint, "minimizable expression: a provably-equivalent smaller form exists");
  ]
