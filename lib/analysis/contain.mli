(** Containment and subsumption analysis over the region algebra.

    [leq rig a b] decides [a ⊑ b]: is [eval a ⊆ eval b] on {e every}
    instance satisfying [rig]?  The procedure is {e sound but not
    complete} — a [Contained] verdict is a theorem (validated against
    {!Ralg.Naive_eval} by the property suite), while [Unknown] carries
    no information.  It never raises and never claims containment for
    expressions mentioning names outside the RIG (mirroring
    {!Ralg.Trivial.check}'s convention: no conforming instance carries
    such names, so nothing useful can be said).

    The decision procedure layers three ingredient kinds:

    - {e lattice rules}: reflexivity; a trivially-empty left side
      (Prop 3.3) is contained in anything; [∪] is the join and [∩] the
      meet ([a ∪ b ⊑ c ⟺ a ⊑ c ∧ b ⊑ c], [a ⊑ b ∩ c ⟺ a ⊑ b ∧ a ⊑ c]);
      filters only shrink ([σ e ⊑ e], [e₁ ▷ e₂ ⊑ e₁], [ι e ⊑ e], …);
    - {e congruences}: every filtering operator is monotone in its
      operands (chains and [At_depth] test witnesses against the fixed
      universe context, so both operands are covariant; difference is
      contravariant on the right); a direct operator implies its simple
      form ([a ⊃d b ⊑ a ⊃ b]); a strict chain implies the non-strict
      one; [σ_exact w ⊑ σ_contains w] and prefix selections weaken to
      prefixes of themselves; [At_depth 0] coincides with [⊃d];
    - {e Prop 3.5 rewrite laws}: both sides are normalized with
      {!Ralg.Optimizer.optimize} (semantics-preserving under the RIG),
      so RIG-conditional equivalences — weakened direct operators,
      shortened chains — collapse to syntactic equality.

    {!minimize} applies the verdicts as equivalence-preserving
    simplifications: a conjunct implied by another is dropped
    ([a ⊑ b ⟹ a ∩ b = a]), a union arm contained in another is
    dropped ([a ⊑ b ⟹ a ∪ b = b]), and a provably-empty subtrahend
    disappears ([b = ∅ ⟹ a − b = a]).  The result evaluates to the
    same region set as the input on every conforming instance
    (property-tested), so planners may substitute it freely. *)

type verdict = Contained | Unknown

val verdict_to_string : verdict -> string

val leq : Ralg.Rig.t -> Ralg.Expr.t -> Ralg.Expr.t -> verdict
(** [leq rig a b = Contained] only if [eval a ⊆ eval b] on every
    instance satisfying [rig]. *)

val equiv : Ralg.Rig.t -> Ralg.Expr.t -> Ralg.Expr.t -> verdict
(** Containment both ways. *)

val empty : Ralg.Rig.t -> Ralg.Expr.t -> bool
(** Containment-aware emptiness: {!Ralg.Trivial.check} extended with
    [a − b = ∅] when [a ⊑ b].  Sound, not complete. *)

val minimize : Ralg.Rig.t -> Ralg.Expr.t -> Ralg.Expr.t
(** Drop provably-redundant conjuncts, subsumed union arms and empty
    subtrahends, bottom-up.  Equivalent to the input on every
    conforming instance; returns the input unchanged (physically equal
    shape) when nothing can be dropped. *)
