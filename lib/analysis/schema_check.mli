(** Static checks on structuring schemas (codes OQF101–OQF103).

    - OQF101 ({e warning}): a defined non-terminal is unreachable from
      the grammar root — its regions can never occur in a parsed file,
      so indexing or querying it is dead weight;
    - OQF102 ({e error}): a user-declared RIG disagrees with the one
      {!Fschema.Rig_of_grammar} derives (§4.2) — missing/extra nodes or
      edges are each reported;
    - OQF103 ({e hint}): a non-natural construct in the §4 sense — a
      pass-through wrapper rule (its value is its single child's) or
      an anonymous [Tok] field (contributes a value but no named
      region, so the index cannot see past it). *)

val check :
  ?declared_rig:Ralg.Rig.t -> Fschema.View.t -> Diagnostic.t list
(** All diagnostics for one view's grammar, sorted by severity.  With
    [declared_rig], additionally run the OQF102 consistency check
    against the derived full RIG. *)
