module G = Fschema.Grammar

let non_literal_items items =
  List.filter
    (function
      | G.Lit _ -> false
      | G.Nonterm _ | G.Star _ | G.Tok _ -> true)
    items

let unreachable_diags grammar rig =
  let root = G.root grammar in
  G.nonterminals grammar
  |> List.filter (fun n -> n <> root && not (Ralg.Rig.reachable rig root n))
  |> List.map (fun n ->
         Diagnostic.make ~subject:n ~code:"OQF101"
           ~severity:Diagnostic.Warning
           "unreachable from the grammar root: no parsed file can contain a \
            region of this name")

let declared_rig_diags ~derived ~declared =
  let module Sset = Set.Make (String) in
  let mk detail msg =
    Diagnostic.make ~detail ~code:"OQF102" ~severity:Diagnostic.Error msg
  in
  let derived_names = Sset.of_list (Ralg.Rig.names derived)
  and declared_names = Sset.of_list (Ralg.Rig.names declared) in
  let missing_nodes =
    Sset.diff derived_names declared_names
    |> Sset.elements
    |> List.map (fun n ->
           mk n "declared RIG is missing a node the grammar derives")
  and extra_nodes =
    Sset.diff declared_names derived_names
    |> Sset.elements
    |> List.map (fun n ->
           mk n "declared RIG has a node the grammar does not define")
  in
  let edge_key (a, b) = a ^ " -> " ^ b in
  let diff_edges xs ys =
    List.filter (fun e -> not (List.mem e ys)) xs
  in
  let missing_edges =
    diff_edges (Ralg.Rig.edges derived) (Ralg.Rig.edges declared)
    |> List.map (fun e ->
           mk (edge_key e)
             "declared RIG is missing an edge the grammar derives \
              (rig_of_grammar, \xc2\xa74.2)")
  and extra_edges =
    diff_edges (Ralg.Rig.edges declared) (Ralg.Rig.edges derived)
    |> List.map (fun e ->
           mk (edge_key e)
             "declared RIG has an edge the grammar does not derive")
  in
  missing_nodes @ extra_nodes @ missing_edges @ extra_edges

let non_natural_diags grammar =
  List.concat_map
    (fun lhs ->
      let rules = G.rules_of grammar lhs in
      let pass_through =
        match rules with
        | [ G.Seq items ] -> begin
            match non_literal_items items with
            | [ G.Nonterm child ] ->
                [
                  Diagnostic.make ~subject:lhs ~detail:("wraps " ^ child)
                    ~code:"OQF103" ~severity:Diagnostic.Hint
                    "pass-through wrapper rule: its database value is its \
                     single child's, so queries usually address the child";
                ]
            | _ -> []
          end
        | _ -> []
      in
      let anonymous_tokens =
        List.concat_map
          (function
            | G.Token _ -> []
            | G.Seq items ->
                List.filter_map
                  (function
                    | G.Tok _ ->
                        Some
                          (Diagnostic.make ~subject:lhs ~code:"OQF103"
                             ~severity:Diagnostic.Hint
                             "anonymous token field: it contributes a value \
                              but no named region, so the index cannot see \
                              past it")
                    | G.Lit _ | G.Nonterm _ | G.Star _ -> None)
                  items)
          rules
      in
      pass_through @ anonymous_tokens)
    (G.nonterminals grammar)

let check ?declared_rig (view : Fschema.View.t) =
  let grammar = view.Fschema.View.grammar in
  let derived = Fschema.Rig_of_grammar.full grammar in
  let declared =
    match declared_rig with
    | None -> []
    | Some declared -> declared_rig_diags ~derived ~declared
  in
  Diagnostic.sort
    (unreachable_diags grammar derived @ declared @ non_natural_diags grammar)
