(** Static checks on region-algebra expressions (codes OQF001–OQF006).

    Everything here is decided on the RIG alone — no file is touched:

    - OQF001 ({e error}): the whole expression is trivially empty under
      Proposition 3.3 — it answers the empty set on {e every} instance
      satisfying the RIG;
    - OQF002 ({e error}): a mentioned region name is not in the RIG;
    - OQF003 ({e hint}): a direct inclusion the optimizer weakens via
      Proposition 3.5 (a), with the rewrite it would apply;
    - OQF004 ({e hint}): a chain the optimizer shortens via
      Proposition 3.5 (b);
    - OQF005 ({e warning}): a proper subexpression (e.g. one union arm)
      is trivially empty while the whole is not — dead weight that can
      only contribute the empty set on conforming instances;
    - OQF006 ({e warning}): the cost estimate exceeds the threshold and
      the expression still carries direct-inclusion operators after
      optimization would run — the expensive case Bille–Gørtz-style
      tree inclusion work warns about.

    The OQF3xx containment family (backed by {!Contain}) is emitted
    here too, for a single expression:

    - OQF301 ({e warning}): a union arm is provably contained in its
      sibling — it contributes nothing on any conforming instance;
    - OQF302 ({e warning}): an intersection operand is implied by the
      other side — intersecting with it cannot change the result;
    - OQF303 ({e warning}): a difference [a − b] with [a ⊑ b] — empty
      on every conforming instance, but not by Prop 3.3 alone;
    - OQF305 ({e hint}): {!Contain.minimize} found a smaller provably
      equivalent expression, printed in the detail as [orig => small].

    (OQF304, cross-query batch subsumption, lives in {!Oqf.Check}
    because it needs the whole [--queries] batch.) *)

val trivial_subexprs : Ralg.Rig.t -> Ralg.Expr.t -> Ralg.Expr.t list
(** The {e maximal} trivially-empty subexpressions: every returned
    node satisfies {!Ralg.Trivial.check} on its own (so each is sound
    to replace by the empty set), and no returned node is inside
    another.  [[e]] itself when the whole expression is trivial. *)

val witness_pair :
  Ralg.Rig.t -> Ralg.Expr.t -> (string * Ralg.Expr.op * string) option
(** A concrete Proposition 3.3 witness inside a trivial expression:
    the first inclusion node whose operand name pairs all fail the RIG
    test, as [(left, op, right)]. *)

val describe_witness : string * Ralg.Expr.op * string -> string
(** ["(A, B) is not a RIG edge"] / ["no RIG walk from A to B"],
    oriented by the operator's family. *)

val default_cost_threshold : float
(** 50,000 weighted units — roughly the paper's four-element direct
    chain on a 1000-regions-per-name instance. *)

val check :
  ?text:string ->
  ?cost:(Ralg.Expr.t -> Ralg.Cost.t) ->
  ?cost_threshold:float ->
  Ralg.Rig.t ->
  Ralg.Expr.t ->
  Diagnostic.t list
(** All diagnostics for one expression, sorted by severity.  [text]
    (the source the expression was parsed from) anchors spans;
    [cost] defaults to {!Ralg.Cost.estimate} with default
    cardinalities. *)
