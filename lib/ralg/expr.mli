(** Region-algebra expressions (paper §3.1).

    The grammar, with [Ri] region names from the index:

    {v
    e ::= Ri | e ∪ e | e ∩ e | e − e | σw(e) | ι(e) | ω(e)
        | e ⊃ e | e ⊂ e | e ⊃d e | e ⊂d e | (e)
    v}

    Chains of inclusion operators are right-grouped, as in the paper:
    [A ⊃ B ⊃ C] parses as [A ⊃ (B ⊃ C)].

    Two selection flavours are provided, both computed from the word
    index without scanning: [Contains_word] keeps regions containing an
    occurrence of the word, and [Exactly_word] keeps regions whose whole
    extent is an occurrence ("a Last_Name region that {e is} the word
    Chang"). *)

type selection =
  | Contains_word of string  (** the region contains an occurrence *)
  | Exactly_word of string  (** the region extent is an occurrence *)
  | Prefix_word of string
      (** the region extent begins with an occurrence — prefix search,
          which the PAT array answers as cheaply as exact search *)

type op =
  | Including  (** [⊃] *)
  | Directly_including  (** [⊃d] *)
  | Included  (** [⊂] *)
  | Directly_included  (** [⊂d] *)

type setop = Union | Inter | Diff

type t =
  | Name of string
  | Select of selection * t
  | Setop of setop * t * t
  | Chain of t * op * t
  | Chain_strict of t * op * t
      (** Like [Chain] but the inclusion witness must be a {e different}
          region.  The paper's operators are non-strict ([R ⊃ R = R]);
          query translation over self-nested names (cyclic RIGs) needs
          the strict form, because a path step always descends at least
          one level.  For operands that cannot share regions the two
          coincide.  Printed [>!], [>d!], [<!], [<d!]. *)
  | Innermost of t
  | Outermost of t
  | At_depth of int * t * t
      (** [At_depth (n, a, b)]: regions of [a] including a region of [b]
          with exactly [n] indexed regions strictly between — the §5.3
          fixed-length path-variable extension. *)

val equal : t -> t -> bool

val names : t -> string list
(** Region names mentioned, sorted, without duplicates. *)

val size : t -> int
(** Number of AST nodes. *)

val count_ops : t -> op -> int
(** Occurrences of a given inclusion operator. *)

val is_direct : op -> bool
val weaken : op -> op
(** [⊃d ↦ ⊃], [⊂d ↦ ⊂]; identity on the simple operators. *)

val pp_selection : Format.formatter -> selection -> unit
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
(** Concrete syntax, re-parsable by {!Expr_parser}: operators are
    rendered [>], [>d], [<], [<d], [|], [&], [-], selections
    [sigma["w"](e)] / [word["w"](e)], [inner(e)], [outer(e)],
    [depth[n](a, b)]. *)

val to_string : t -> string

val node_label : t -> string
(** Rendering of the root operator alone — [>d], [sigma["w"]], a region
    name — for plan annotations and trace span names. *)

(** {2 Convenience constructors} *)

val name : string -> t
val exactly : string -> t -> t
val contains : string -> t -> t
val ( >. ) : t -> t -> t  (** [⊃], right-associative *)

val ( >.. ) : t -> t -> t  (** [⊃d], right-associative *)

val ( <. ) : t -> t -> t  (** [⊂], right-associative *)

val ( <.. ) : t -> t -> t  (** [⊂d], right-associative *)
