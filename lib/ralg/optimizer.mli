(** The optimization algorithm of §3.2 (Theorem 3.6).

    Given a RIG, every inclusion chain has a unique {e most efficient
    version}, obtained by

    + replacing each direct operator [⊃d]/[⊂d] by its simple form when
      Proposition 3.5 (a) licenses it, and
    + repeatedly shortening [Ri ⊃ Rj ⊃ Rk] to [Ri ⊃ Rk] when every walk
      from [Ri] to [Rk] passes through [Rj] (Proposition 3.5 (b)),
      until no rule applies.

    The rewrite system is finite Church–Rosser (shown via Sethi's
    theorem in the paper), so the scan order does not matter.

    Deviations made explicit here:
    - elements carrying a word selection are never removed by the
      shortening step (dropping a [σ] would change the result);
    - the "rightmost region" case of Proposition 3.5 (a) is applied only
      when the rightmost element has no selection or — for [⊃]-family
      chains — a containment selection; an {e exact} selection on a
      cyclic rightmost name distinguishes the direct witness from deeper
      ones, so only the only-walk case is sound there;
    - a pair of equal names is left untouched (the paper's propositions
      implicitly assume distinct names along the chain). *)

val weaken_direct_pair :
  Rig.t ->
  family:Chain.family ->
  left:string ->
  right:string ->
  rightmost:bool ->
  right_selection:Expr.selection option ->
  bool
(** Proposition 3.5 (a): may [left ⊃d right] become [left ⊃ right]? *)

val can_shorten :
  Rig.t -> family:Chain.family -> string -> string -> string -> bool
(** Proposition 3.5 (b): may the middle of [a ⊃ b ⊃ c] be removed
    (ignoring selections, which the caller must check)? *)

val optimize_chain : Rig.t -> Chain.t -> Chain.t
(** The two-step algorithm on one chain. *)

val optimize : Rig.t -> Expr.t -> Expr.t
(** Apply {!optimize_chain} to every maximal inclusion chain inside a
    general region expression; other nodes are rebuilt unchanged. *)

type rewrite = { rule : string; detail : string }
(** One applied rewrite: [rule] is ["weaken-direct"] (Proposition
    3.5 (a)) or ["shorten"] (Proposition 3.5 (b)); [detail] renders the
    rewritten fragment, e.g. ["A >d B => A > B"]. *)

val optimize_logged : Rig.t -> Expr.t -> Expr.t * rewrite list
(** {!optimize}, also returning every rewrite applied, in application
    order.  Each rewrite bumps the [optimizer.weaken_direct] /
    [optimizer.shorten] registry counters and — when tracing is
    enabled — emits an instant trace event carrying the detail. *)

val plan_rewrites : Rig.t -> Expr.t -> Expr.t * rewrite list
(** Exactly {!optimize_logged}'s result with {e no} observability side
    effects: no counters, no trace events.  The static analyzer uses
    this to report the rewrites the optimizer {e would} apply without
    perturbing the metrics of the run that follows. *)
