type selection = Contains_word of string | Exactly_word of string | Prefix_word of string

type op = Including | Directly_including | Included | Directly_included
type setop = Union | Inter | Diff

type t =
  | Name of string
  | Select of selection * t
  | Setop of setop * t * t
  | Chain of t * op * t
  | Chain_strict of t * op * t
  | Innermost of t
  | Outermost of t
  | At_depth of int * t * t

let equal = ( = )

let rec collect_names acc = function
  | Name n -> n :: acc
  | Select (_, e) | Innermost e | Outermost e -> collect_names acc e
  | Setop (_, a, b) | Chain (a, _, b) | Chain_strict (a, _, b)
  | At_depth (_, a, b) ->
      collect_names (collect_names acc a) b

let names e = List.sort_uniq String.compare (collect_names [] e)

let rec size = function
  | Name _ -> 1
  | Select (_, e) | Innermost e | Outermost e -> 1 + size e
  | Setop (_, a, b) | Chain (a, _, b) | Chain_strict (a, _, b)
  | At_depth (_, a, b) ->
      1 + size a + size b

let rec count_ops e op =
  match e with
  | Name _ -> 0
  | Select (_, e) | Innermost e | Outermost e -> count_ops e op
  | Setop (_, a, b) | At_depth (_, a, b) -> count_ops a op + count_ops b op
  | Chain (a, o, b) | Chain_strict (a, o, b) ->
      (if o = op then 1 else 0) + count_ops a op + count_ops b op

let is_direct = function
  | Directly_including | Directly_included -> true
  | Including | Included -> false

let weaken = function
  | Directly_including -> Including
  | Directly_included -> Included
  | (Including | Included) as o -> o

let pp_selection ppf = function
  | Contains_word w -> Format.fprintf ppf "word[%S]" w
  | Exactly_word w -> Format.fprintf ppf "sigma[%S]" w
  | Prefix_word w -> Format.fprintf ppf "prefix[%S]" w

let pp_op ppf op =
  Format.pp_print_string ppf
    (match op with
    | Including -> ">"
    | Directly_including -> ">d"
    | Included -> "<"
    | Directly_included -> "<d")

(* Precedence levels, loosest first: set operators, then chains, then
   prefix forms.  Chains are right-associative. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Name n -> Format.pp_print_string ppf n
  | Select (sel, e) ->
      Format.fprintf ppf "%a(%a)" pp_selection sel (pp_prec 0) e
  | Innermost e -> Format.fprintf ppf "inner(%a)" (pp_prec 0) e
  | Outermost e -> Format.fprintf ppf "outer(%a)" (pp_prec 0) e
  | At_depth (n, a, b) ->
      Format.fprintf ppf "depth[%d](%a, %a)" n (pp_prec 0) a (pp_prec 0) b
  | Setop (op, a, b) ->
      let sym = match op with Union -> "|" | Inter -> "&" | Diff -> "-" in
      paren 0 (fun ppf ->
          Format.fprintf ppf "%a %s %a" (pp_prec 1) a sym (pp_prec 1) b)
  | Chain (a, op, b) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a %a %a" (pp_prec 2) a pp_op op (pp_prec 1) b)
  | Chain_strict (a, op, b) ->
      paren 1 (fun ppf ->
          Format.fprintf ppf "%a %a! %a" (pp_prec 2) a pp_op op (pp_prec 1) b)

let pp = pp_prec 0
let to_string e = Format.asprintf "%a" pp e

let node_label = function
  | Name n -> n
  | Select (sel, _) -> Format.asprintf "%a" pp_selection sel
  | Setop (Union, _, _) -> "|"
  | Setop (Inter, _, _) -> "&"
  | Setop (Diff, _, _) -> "-"
  | Chain (_, op, _) -> Format.asprintf "%a" pp_op op
  | Chain_strict (_, op, _) -> Format.asprintf "%a!" pp_op op
  | Innermost _ -> "inner"
  | Outermost _ -> "outer"
  | At_depth (n, _, _) -> Printf.sprintf "depth[%d]" n

let name n = Name n
let exactly w e = Select (Exactly_word w, e)
let contains w e = Select (Contains_word w, e)
let ( >. ) a b = Chain (a, Including, b)
let ( >.. ) a b = Chain (a, Directly_including, b)
let ( <. ) a b = Chain (a, Included, b)
let ( <.. ) a b = Chain (a, Directly_included, b)
