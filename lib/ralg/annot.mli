(** Per-node actual-cost annotations — EXPLAIN ANALYZE for the PAT
    algebra.

    {!Eval.eval_annotated} mirrors the expression tree with one node
    per operator application, carrying the work that application
    itself performed (counter deltas around the operator, children
    excluded), so the sum of the self quantities over a tree equals
    the {!Stdx.Stats} delta of evaluating the expression. *)

type t = {
  expr : Expr.t;  (** the subexpression rooted here *)
  label : string;  (** operator rendering, e.g. [>d] or [sigma["Chang"]] *)
  out_card : int;  (** regions returned by this node *)
  self_ops : int;  (** index operations by this node itself *)
  self_cmps : int;  (** region comparisons by this node itself *)
  self_lookups : int;  (** word-index searches by this node itself *)
  self_regions : int;  (** regions produced by this node itself *)
  duration_ms : float;
  cached : bool;
      (** shared-subexpression hit: the result was reused, the node did
          no work of its own *)
  children : t list;
}

val total_ops : t -> int
(** Sum of [self_ops] over the subtree. *)

val total_cmps : t -> int
(** Sum of [self_cmps] over the subtree. *)

val total_lookups : t -> int

val node_count : t -> int

val pp :
  ?estimate:(Expr.t -> Cost.t) ->
  ?est_rows:(Expr.t -> float) ->
  ?show_times:bool ->
  Format.formatter ->
  t ->
  unit
(** Indented tree: one line per operator with actual out-cardinality
    and self/subtree work, and — when [estimate] is given — the static
    {!Cost} estimate of the subtree next to the actuals.  [est_rows]
    additionally prints an estimated result cardinality beside each
    node's actual [out=] count (the cost-based planner's
    estimated-vs-actual display).  [show_times] (default [false])
    appends wall-clock durations; leave it off for deterministic
    transcripts. *)
