type t = {
  expr : Expr.t;
  label : string;
  out_card : int;
  self_ops : int;
  self_cmps : int;
  self_lookups : int;
  self_regions : int;
  duration_ms : float;
  cached : bool;
  children : t list;
}

let rec total f n = f n + List.fold_left (fun acc c -> acc + total f c) 0 n.children

let total_ops = total (fun n -> n.self_ops)
let total_cmps = total (fun n -> n.self_cmps)
let total_lookups = total (fun n -> n.self_lookups)
let node_count = total (fun _ -> 1)

let pp ?estimate ?est_rows ?(show_times = false) ppf root =
  let rec go indent n =
    Format.fprintf ppf "%s%s%s  [out=%d" indent n.label
      (if n.cached then " (shared)" else "")
      n.out_card;
    (match est_rows with
    | Some est -> Format.fprintf ppf " est-rows=%.0f" (est n.expr)
    | None -> ());
    Format.fprintf ppf " self: ops=%d cmps=%d" n.self_ops n.self_cmps;
    if n.self_lookups > 0 then Format.fprintf ppf " lookups=%d" n.self_lookups;
    if n.children <> [] then
      Format.fprintf ppf " | subtree: ops=%d cmps=%d" (total_ops n)
        (total_cmps n);
    (match estimate with
    | Some est ->
        Format.fprintf ppf " | est weighted=%.1f" (est n.expr).Cost.weighted
    | None -> ());
    if show_times then Format.fprintf ppf " | %.3f ms" n.duration_ms;
    Format.fprintf ppf "]@.";
    List.iter (go (indent ^ "  ")) n.children
  in
  go "" root
