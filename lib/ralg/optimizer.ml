let graph_for rig = function
  | Chain.Up -> rig
  | Chain.Down -> Rig.reverse rig

type rewrite = { rule : string; detail : string }

let weaken_count = Obs.Metrics.counter "optimizer.weaken_direct"
let shorten_count = Obs.Metrics.counter "optimizer.shorten"

(* [record] only forwards to the caller's note; the observability
   side effects live in [observe] so that [plan_rewrites] can preview
   rewrites without touching counters or the trace. *)
let record note (rw : rewrite) = note rw

let observe (rw : rewrite) =
  Obs.Metrics.incr
    (if rw.rule = "weaken-direct" then weaken_count else shorten_count);
  if Obs.Trace.enabled () then
    Obs.Trace.instant
      ("optimizer." ^ rw.rule)
      ~attrs:[ ("rewrite", Obs.Trace.Str rw.detail) ]

let op_symbol family strength =
  match (family, strength) with
  | Chain.Up, Chain.Simple -> ">"
  | Chain.Up, Chain.Direct -> ">d"
  | Chain.Down, Chain.Simple -> "<"
  | Chain.Down, Chain.Direct -> "<d"

let weaken_direct_pair rig ~family ~left ~right ~rightmost ~right_selection =
  if left = right then false
  else begin
    let g = graph_for rig family in
    if Rig.only_walk_is_edge g left right then true
    else if not rightmost then false
    else begin
      let selection_ok =
        (* only a containment selection survives the rightmost argument
           on the up family: the direct witness inherits containment,
           but not exact or prefix extents *)
        match (family, right_selection) with
        | _, None -> true
        | Chain.Up, Some (Expr.Contains_word _) -> true
        | Chain.Up, Some (Expr.Exactly_word _ | Expr.Prefix_word _) -> false
        | Chain.Down, Some _ -> false
      in
      selection_ok && Rig.all_walks_start_with_edge g left right
    end
  end

let can_shorten rig ~family a b c =
  (* [a = c] would turn a two-step requirement into the vacuous
     [A ⊃ A]: a region includes itself, so the walk argument behind
     Proposition 3.5 (b) needs distinct endpoints. *)
  a <> b && b <> c && a <> c
  &&
  let g = graph_for rig family in
  Rig.separator g ~src:a ~dst:c ~via:b

let optimize_chain_logged rig ~note (chain : Chain.t) =
  let family = chain.family in
  (* Step 1: weaken direct operators where Proposition 3.5 (a) holds. *)
  let elements = Array.of_list chain.elements in
  let strengths = Array.of_list chain.strengths in
  let n_pairs = Array.length strengths in
  for i = 0 to n_pairs - 1 do
    if strengths.(i) = Chain.Direct then begin
      let left = elements.(i).Chain.name
      and right_el = elements.(i + 1) in
      if
        weaken_direct_pair rig ~family ~left ~right:right_el.Chain.name
          ~rightmost:(i = n_pairs - 1)
          ~right_selection:right_el.Chain.selection
      then begin
        strengths.(i) <- Chain.Simple;
        record note
          {
            rule = "weaken-direct";
            detail =
              Printf.sprintf "%s %s %s => %s %s %s" left
                (op_symbol family Chain.Direct)
                right_el.Chain.name left
                (op_symbol family Chain.Simple)
                right_el.Chain.name;
          }
      end
    end
  done;
  (* Step 2: shorten [a ⊃ b ⊃ c] to [a ⊃ c] when b separates a from c,
     repeating to a fixpoint.  Work on lists for easy deletion. *)
  let rec shorten elements strengths =
    let rec scan els ss =
      match (els, ss) with
      | a :: b :: c :: rest_els, s1 :: s2 :: rest_ss
        when s1 = Chain.Simple && s2 = Chain.Simple
             && b.Chain.selection = None
             && can_shorten rig ~family a.Chain.name b.Chain.name
                  c.Chain.name ->
          let op = op_symbol family Chain.Simple in
          record note
            {
              rule = "shorten";
              detail =
                Printf.sprintf "%s %s %s %s %s => %s %s %s" a.Chain.name op
                  b.Chain.name op c.Chain.name a.Chain.name op c.Chain.name;
            };
          Some (a :: c :: rest_els, Chain.Simple :: rest_ss)
      | a :: rest_els, s :: rest_ss -> begin
          match scan rest_els rest_ss with
          | Some (els', ss') -> Some (a :: els', s :: ss')
          | None -> None
        end
      | _ -> None
    in
    match scan elements strengths with
    | Some (els, ss) -> shorten els ss
    | None -> (elements, strengths)
  in
  let elements, strengths =
    shorten (Array.to_list elements) (Array.to_list strengths)
  in
  { chain with elements; strengths }

let optimize_chain rig chain = optimize_chain_logged rig ~note:ignore chain

let rec optimize_noted rig ~note e =
  let optimize rig e = optimize_noted rig ~note e in
  match Chain.of_expr e with
  | Some chain -> Chain.to_expr (optimize_chain_logged rig ~note chain)
  | None -> begin
      match e with
      | Expr.Name _ -> e
      | Expr.Select (sel, e1) -> Expr.Select (sel, optimize rig e1)
      | Expr.Setop (op, a, b) -> Expr.Setop (op, optimize rig a, optimize rig b)
      | Expr.Chain (a, op, b) -> Expr.Chain (optimize rig a, op, optimize rig b)
      | Expr.Chain_strict (a, op, b) ->
          Expr.Chain_strict (optimize rig a, op, optimize rig b)
      | Expr.Innermost e1 -> Expr.Innermost (optimize rig e1)
      | Expr.Outermost e1 -> Expr.Outermost (optimize rig e1)
      | Expr.At_depth (n, a, b) ->
          Expr.At_depth (n, optimize rig a, optimize rig b)
    end

let optimize rig e = optimize_noted rig ~note:ignore e

let optimize_logged rig e =
  let log = ref [] in
  let e' =
    optimize_noted rig
      ~note:(fun rw ->
        observe rw;
        log := rw :: !log)
      e
  in
  (e', List.rev !log)

let plan_rewrites rig e =
  let log = ref [] in
  let e' = optimize_noted rig ~note:(fun rw -> log := rw :: !log) e in
  (e', List.rev !log)
