exception Unknown_region of string

module Rs = Pat.Region_set

(* The plain evaluators below are the hot path: no instrumentation
   beyond the counters maintained inside Pat.Region_set itself.  The
   public [eval]/[eval_shared] dispatch to the annotated variants only
   when a trace sink is installed, so the disabled-tracing cost is one
   load and branch per top-level evaluation. *)

let rec eval_plain inst expr =
  (* one deadline poll per operator application: a pooled task with a
     budget aborts at the next operator boundary (see Obs.Deadline) *)
  Obs.Deadline.check ();
  match expr with
  | Expr.Name n -> begin
      match Pat.Instance.find_opt inst n with
      | Some set -> set
      | None -> raise (Unknown_region n)
    end
  | Expr.Select (Expr.Contains_word w, e) ->
      Pat.Word_index.select_containing (Pat.Instance.word_index inst) w
        (eval_plain inst e)
  | Expr.Select (Expr.Exactly_word w, e) ->
      Pat.Word_index.select_exact (Pat.Instance.word_index inst) w
        (eval_plain inst e)
  | Expr.Select (Expr.Prefix_word w, e) ->
      Pat.Word_index.select_prefix (Pat.Instance.word_index inst) w
        (eval_plain inst e)
  | Expr.Setop (Expr.Union, a, b) ->
      Rs.union (eval_plain inst a) (eval_plain inst b)
  | Expr.Setop (Expr.Inter, a, b) ->
      Rs.inter (eval_plain inst a) (eval_plain inst b)
  | Expr.Setop (Expr.Diff, a, b) ->
      Rs.diff (eval_plain inst a) (eval_plain inst b)
  | Expr.Innermost e -> Rs.innermost (eval_plain inst e)
  | Expr.Outermost e -> Rs.outermost (eval_plain inst e)
  | Expr.Chain (a, op, b) -> begin
      let ra = eval_plain inst a and rb = eval_plain inst b in
      match op with
      | Expr.Including -> Rs.including ra rb
      | Expr.Included -> Rs.included ra rb
      | Expr.Directly_including ->
          Rs.directly_including ~context:(Pat.Instance.universe inst) ra rb
      | Expr.Directly_included ->
          Rs.directly_included ~context:(Pat.Instance.universe inst) ra rb
    end
  | Expr.Chain_strict (a, op, b) -> begin
      let ra = eval_plain inst a and rb = eval_plain inst b in
      match op with
      | Expr.Including -> Rs.including_strict ra rb
      | Expr.Included -> Rs.included_strict ra rb
      | Expr.Directly_including ->
          Rs.directly_including_strict
            ~context:(Pat.Instance.universe inst)
            ra rb
      | Expr.Directly_included ->
          Rs.directly_included_strict
            ~context:(Pat.Instance.universe inst)
            ra rb
    end
  | Expr.At_depth (n, a, b) ->
      Rs.including_at_depth
        ~context:(Pat.Instance.universe inst)
        ~depth:n (eval_plain inst a) (eval_plain inst b)

let eval_shared_plain inst expr =
  let memo : (Expr.t, Rs.t) Hashtbl.t = Hashtbl.create 16 in
  let rec go expr =
    Obs.Deadline.check ();
    match Hashtbl.find_opt memo expr with
    | Some r -> r
    | None ->
        let r =
          match expr with
          | Expr.Name _ -> eval_plain inst expr
          | Expr.Select (Expr.Contains_word w, e) ->
              Pat.Word_index.select_containing
                (Pat.Instance.word_index inst)
                w (go e)
          | Expr.Select (Expr.Exactly_word w, e) ->
              Pat.Word_index.select_exact
                (Pat.Instance.word_index inst)
                w (go e)
          | Expr.Select (Expr.Prefix_word w, e) ->
              Pat.Word_index.select_prefix
                (Pat.Instance.word_index inst)
                w (go e)
          | Expr.Setop (Expr.Union, a, b) -> Rs.union (go a) (go b)
          | Expr.Setop (Expr.Inter, a, b) -> Rs.inter (go a) (go b)
          | Expr.Setop (Expr.Diff, a, b) -> Rs.diff (go a) (go b)
          | Expr.Innermost e -> Rs.innermost (go e)
          | Expr.Outermost e -> Rs.outermost (go e)
          | Expr.Chain (a, op, b) -> begin
              let ra = go a and rb = go b in
              match op with
              | Expr.Including -> Rs.including ra rb
              | Expr.Included -> Rs.included ra rb
              | Expr.Directly_including ->
                  Rs.directly_including
                    ~context:(Pat.Instance.universe inst)
                    ra rb
              | Expr.Directly_included ->
                  Rs.directly_included
                    ~context:(Pat.Instance.universe inst)
                    ra rb
            end
          | Expr.Chain_strict (a, op, b) -> begin
              let ra = go a and rb = go b in
              match op with
              | Expr.Including -> Rs.including_strict ra rb
              | Expr.Included -> Rs.included_strict ra rb
              | Expr.Directly_including ->
                  Rs.directly_including_strict
                    ~context:(Pat.Instance.universe inst)
                    ra rb
              | Expr.Directly_included ->
                  Rs.directly_included_strict
                    ~context:(Pat.Instance.universe inst)
                    ra rb
            end
          | Expr.At_depth (n, a, b) ->
              Rs.including_at_depth
                ~context:(Pat.Instance.universe inst)
                ~depth:n (go a) (go b)
        in
        Hashtbl.replace memo expr r;
        r
  in
  go expr

(* One operator application over already-evaluated children — the unit
   the annotated evaluator measures counter deltas around. *)
let apply inst expr children =
  Obs.Deadline.check ();
  let ctx () = Pat.Instance.universe inst in
  match (expr, children) with
  | Expr.Name n, [] -> begin
      match Pat.Instance.find_opt inst n with
      | Some set -> set
      | None -> raise (Unknown_region n)
    end
  | Expr.Select (Expr.Contains_word w, _), [ r ] ->
      Pat.Word_index.select_containing (Pat.Instance.word_index inst) w r
  | Expr.Select (Expr.Exactly_word w, _), [ r ] ->
      Pat.Word_index.select_exact (Pat.Instance.word_index inst) w r
  | Expr.Select (Expr.Prefix_word w, _), [ r ] ->
      Pat.Word_index.select_prefix (Pat.Instance.word_index inst) w r
  | Expr.Setop (Expr.Union, _, _), [ a; b ] -> Rs.union a b
  | Expr.Setop (Expr.Inter, _, _), [ a; b ] -> Rs.inter a b
  | Expr.Setop (Expr.Diff, _, _), [ a; b ] -> Rs.diff a b
  | Expr.Innermost _, [ r ] -> Rs.innermost r
  | Expr.Outermost _, [ r ] -> Rs.outermost r
  | Expr.Chain (_, op, _), [ a; b ] -> begin
      match op with
      | Expr.Including -> Rs.including a b
      | Expr.Included -> Rs.included a b
      | Expr.Directly_including -> Rs.directly_including ~context:(ctx ()) a b
      | Expr.Directly_included -> Rs.directly_included ~context:(ctx ()) a b
    end
  | Expr.Chain_strict (_, op, _), [ a; b ] -> begin
      match op with
      | Expr.Including -> Rs.including_strict a b
      | Expr.Included -> Rs.included_strict a b
      | Expr.Directly_including ->
          Rs.directly_including_strict ~context:(ctx ()) a b
      | Expr.Directly_included ->
          Rs.directly_included_strict ~context:(ctx ()) a b
    end
  | Expr.At_depth (n, _, _), [ a; b ] ->
      Rs.including_at_depth ~context:(ctx ()) ~depth:n a b
  | _ -> invalid_arg "Eval.apply: operator/operand arity mismatch"

let counters_now () =
  Stdx.Stats.
    ( value index_ops,
      value region_comparisons,
      value word_lookups,
      value regions_produced )

let annotate inst ~memo expr =
  let traced = Obs.Trace.enabled () in
  let rec go expr =
    let hit =
      match memo with Some tbl -> Hashtbl.find_opt tbl expr | None -> None
    in
    match hit with
    | Some r ->
        let node =
          {
            Annot.expr;
            label = Expr.node_label expr;
            out_card = Rs.cardinal r;
            self_ops = 0;
            self_cmps = 0;
            self_lookups = 0;
            self_regions = 0;
            duration_ms = 0.;
            cached = true;
            children = [];
          }
        in
        (r, node)
    | None ->
        let span =
          if traced then Obs.Trace.begin_span ("eval." ^ Expr.node_label expr)
          else Obs.Trace.null
        in
        let children =
          match expr with
          | Expr.Name _ -> []
          | Expr.Select (_, e) | Expr.Innermost e | Expr.Outermost e ->
              [ go e ]
          | Expr.Setop (_, a, b)
          | Expr.Chain (a, _, b)
          | Expr.Chain_strict (a, _, b)
          | Expr.At_depth (_, a, b) ->
              let ra = go a in
              let rb = go b in
              [ ra; rb ]
        in
        let t0 = Obs.Trace.now_ms () in
        let o0, c0, w0, r0 = counters_now () in
        let result = apply inst expr (List.map fst children) in
        let o1, c1, w1, r1 = counters_now () in
        let t1 = Obs.Trace.now_ms () in
        let node =
          {
            Annot.expr;
            label = Expr.node_label expr;
            out_card = Rs.cardinal result;
            self_ops = o1 - o0;
            self_cmps = c1 - c0;
            self_lookups = w1 - w0;
            self_regions = r1 - r0;
            duration_ms = t1 -. t0;
            cached = false;
            children = List.map snd children;
          }
        in
        if traced then
          Obs.Trace.end_span span
            ~attrs:
              [
                ("out", Obs.Trace.Int node.Annot.out_card);
                ("self_ops", Obs.Trace.Int node.Annot.self_ops);
                ("self_cmps", Obs.Trace.Int node.Annot.self_cmps);
              ];
        (match memo with
        | Some tbl -> Hashtbl.replace tbl expr result
        | None -> ());
        (result, node)
  in
  go expr

let eval_annotated inst expr = annotate inst ~memo:None expr

let eval_shared_annotated inst expr =
  annotate inst ~memo:(Some (Hashtbl.create 16)) expr

let eval inst expr =
  if Obs.Trace.enabled () then fst (eval_annotated inst expr)
  else eval_plain inst expr

let eval_shared inst expr =
  if Obs.Trace.enabled () then fst (eval_shared_annotated inst expr)
  else eval_shared_plain inst expr

let direct_including_layered ~context r s =
  let result = ref Rs.empty in
  let layer = ref (Rs.outermost r) in
  let rest = ref (Rs.diff r !layer) in
  let continue_ = ref true in
  while (not (Rs.is_empty !layer)) && !continue_ do
    if Rs.is_empty (Rs.including !layer s) then continue_ := false
    else begin
      (* context regions strictly inside some layer region … *)
      let intermediates = Rs.included_strict context !layer in
      (* … shadow the s-regions strictly inside them *)
      let shadowed = Rs.included_strict s intermediates in
      let visible = Rs.diff s shadowed in
      result := Rs.union !result (Rs.including !layer visible);
      layer := Rs.outermost !rest;
      rest := Rs.diff !rest !layer
    end
  done;
  !result
