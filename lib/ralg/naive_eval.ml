module R = Pat.Region
module Rs = Pat.Region_set

let blocked ctx outer inner =
  List.exists
    (fun u -> R.strictly_includes outer u && R.strictly_includes u inner)
    ctx

let word_positions inst w =
  Array.to_list
    (Pat.Word_index.match_points (Pat.Instance.word_index inst) w)

let prefix_positions inst w =
  Array.to_list
    (Pat.Word_index.prefix_points (Pat.Instance.word_index inst) w)

let rec eval_list inst expr =
  if not (Obs.Trace.enabled ()) then eval_body inst expr
  else begin
    let span = Obs.Trace.begin_span ("naive." ^ Expr.node_label expr) in
    match eval_body inst expr with
    | r ->
        Obs.Trace.end_span span
          ~attrs:[ ("out", Obs.Trace.Int (List.length r)) ];
        r
    | exception e ->
        Obs.Trace.end_span span;
        raise e
  end

and eval_body inst expr =
  match expr with
  | Expr.Name n -> begin
      match Pat.Instance.find_opt inst n with
      | Some set -> Rs.to_list set
      | None -> raise (Eval.Unknown_region n)
    end
  | Expr.Select (Expr.Contains_word w, e) ->
      let ps = word_positions inst w in
      let len = String.length w in
      List.filter
        (fun r ->
          List.exists (fun p -> r.R.start <= p && p + len <= r.R.stop) ps)
        (eval_list inst e)
  | Expr.Select (Expr.Exactly_word w, e) ->
      let ps = word_positions inst w in
      let len = String.length w in
      List.filter
        (fun r -> List.exists (fun p -> r.R.start = p && r.R.stop = p + len) ps)
        (eval_list inst e)
  | Expr.Select (Expr.Prefix_word w, e) ->
      let ps = prefix_positions inst w in
      let len = String.length w in
      List.filter
        (fun r ->
          R.length r >= len && List.exists (fun p -> r.R.start = p) ps)
        (eval_list inst e)
  | Expr.Setop (Expr.Union, a, b) ->
      let la = eval_list inst a and lb = eval_list inst b in
      la @ List.filter (fun r -> not (List.exists (R.equal r) la)) lb
  | Expr.Setop (Expr.Inter, a, b) ->
      let lb = eval_list inst b in
      List.filter (fun r -> List.exists (R.equal r) lb) (eval_list inst a)
  | Expr.Setop (Expr.Diff, a, b) ->
      let lb = eval_list inst b in
      List.filter (fun r -> not (List.exists (R.equal r) lb)) (eval_list inst a)
  | Expr.Innermost e ->
      let l = eval_list inst e in
      List.filter
        (fun r ->
          not
            (List.exists
               (fun r' -> (not (R.equal r r')) && R.includes r r')
               l))
        l
  | Expr.Outermost e ->
      let l = eval_list inst e in
      List.filter
        (fun r ->
          not
            (List.exists
               (fun r' -> (not (R.equal r r')) && R.includes r' r)
               l))
        l
  | Expr.Chain (a, op, b) -> begin
      let la = eval_list inst a and lb = eval_list inst b in
      let ctx = Rs.to_list (Pat.Instance.universe inst) in
      match op with
      | Expr.Including ->
          List.filter (fun r -> List.exists (fun s -> R.includes r s) lb) la
      | Expr.Included ->
          List.filter (fun r -> List.exists (fun s -> R.includes s r) lb) la
      | Expr.Directly_including ->
          List.filter
            (fun r ->
              List.exists
                (fun s -> R.includes r s && not (blocked ctx r s))
                lb)
            la
      | Expr.Directly_included ->
          List.filter
            (fun r ->
              List.exists
                (fun s -> R.includes s r && not (blocked ctx s r))
                lb)
            la
    end
  | Expr.Chain_strict (a, op, b) -> begin
      let la = eval_list inst a and lb = eval_list inst b in
      let ctx = Rs.to_list (Pat.Instance.universe inst) in
      let distinct f r s = (not (R.equal r s)) && f r s in
      match op with
      | Expr.Including ->
          List.filter
            (fun r -> List.exists (fun s -> distinct R.includes r s) lb)
            la
      | Expr.Included ->
          List.filter
            (fun r -> List.exists (fun s -> distinct (Fun.flip R.includes) r s) lb)
            la
      | Expr.Directly_including ->
          List.filter
            (fun r ->
              List.exists
                (fun s ->
                  distinct R.includes r s && not (blocked ctx r s))
                lb)
            la
      | Expr.Directly_included ->
          List.filter
            (fun r ->
              List.exists
                (fun s ->
                  distinct (Fun.flip R.includes) r s && not (blocked ctx s r))
                lb)
            la
    end
  | Expr.At_depth (n, a, b) ->
      let lb = eval_list inst b in
      let ctx = Rs.to_list (Pat.Instance.universe inst) in
      List.filter
        (fun r ->
          List.exists
            (fun s ->
              R.includes r s
              && List.length
                   (List.filter
                      (fun u ->
                        R.strictly_includes r u && R.strictly_includes u s)
                      ctx)
                 = n)
            lb)
        (eval_list inst a)

let eval inst expr = Rs.of_list (eval_list inst expr)
