(** Evaluation of region expressions on a PAT instance. *)

exception Unknown_region of string
(** Raised when an expression mentions a region name the instance does
    not index — with partial indexing this signals that the planner
    referenced a missing index. *)

val eval : Pat.Instance.t -> Expr.t -> Pat.Region_set.t
(** Evaluate with the efficient operators of {!Pat.Region_set}.  Direct
    inclusion is decided against the instance universe.  When a trace
    sink is installed (see {!Obs.Trace}) this routes through
    {!eval_annotated} so every operator application is spanned;
    otherwise it is {!eval_plain}. *)

val eval_shared : Pat.Instance.t -> Expr.t -> Pat.Region_set.t
(** Like {!eval} but common subexpressions are evaluated once (§5.2:
    boolean combinations of selection criteria often share their inner
    chains).  Same result, fewer index operations. *)

val eval_plain : Pat.Instance.t -> Expr.t -> Pat.Region_set.t
(** The uninstrumented evaluator — no per-node dispatch, no trace
    checks beyond the global counters.  Exposed so bench O1 can
    measure the dispatch overhead of {!eval} against it. *)

val eval_shared_plain : Pat.Instance.t -> Expr.t -> Pat.Region_set.t

val eval_annotated : Pat.Instance.t -> Expr.t -> Pat.Region_set.t * Annot.t
(** Evaluate and mirror the expression with a per-node actual-cost
    tree: each {!Annot.t} node carries the counter deltas of its own
    operator application (children excluded), so subtree sums equal
    the {!Stdx.Stats} delta of the whole evaluation.  Emits one trace
    span per node when tracing is enabled. *)

val eval_shared_annotated :
  Pat.Instance.t -> Expr.t -> Pat.Region_set.t * Annot.t
(** {!eval_annotated} with common-subexpression sharing; repeated
    subexpressions appear as [cached] leaf nodes with zero self cost. *)

val direct_including_layered :
  context:Pat.Region_set.t ->
  Pat.Region_set.t ->
  Pat.Region_set.t ->
  Pat.Region_set.t
(** The paper's §3.1 while-program for [⊃d]: iterate over nested layers
    of the left operand (outermost first) and, per layer, discard the
    right-operand regions shadowed by an intermediate context region.
    Given as an illustration of the cost of [⊃d]; correct for laminar
    instances (same-layer regions disjoint), which parse-tree-derived
    region sets always are. *)
