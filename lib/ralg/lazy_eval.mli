(** Pull-based (iterator) evaluation of region expressions.

    The lazy twin of {!Eval}: the same operators, computed as sorted
    [Seq] streams so a consumer sees the first result regions while
    the rest of the expression is still being evaluated.  Streams are
    strictly increasing under {!Pat.Region.compare} — the GC-list
    order — and [to_set (eval inst e)] equals [Eval.eval inst e]
    (qcheck-verified), so the serve daemon can stream rows without
    changing what a query means.

    Union, intersection, difference, the word selections, ι/ω and the
    plain inclusion chains stream in one pass with bounded lookahead.
    Direct inclusion ([⊃d]/[⊂d]) and depth-counted inclusion
    materialize their operands (they are decided against the full
    instance universe) and re-stream the result — laziness at node
    granularity.

    A deadline armed via {!Obs.Deadline} is polled once per pulled
    region, so a streaming request with a budget aborts between rows. *)

type stream = Pat.Region.t Seq.t
(** Regions in {!Pat.Region.compare} order, duplicate-free. *)

val eval : Pat.Instance.t -> Expr.t -> stream
(** Build the iterator tree for an expression.  Region-name lookup
    happens during the call (raising {!Eval.Unknown_region} like the
    materialized evaluator); all other work is deferred to pulls.
    Each pulled region polls {!Obs.Deadline.check} and ticks the
    [ralg.lazy.pulled] counter. *)

val to_set : stream -> Pat.Region_set.t
(** Drain a stream into a materialized region set. *)

val of_set : Pat.Region_set.t -> stream
(** Stream a materialized set in order. *)
