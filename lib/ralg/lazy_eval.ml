(* Pull-based evaluation of region expressions.

   GC-lists are sorted streams by construction (paper §3–§4): every
   operator consumes and produces regions in {!Pat.Region.compare}
   order (start ascending, stop descending).  This module mirrors
   {!Eval} as [Seq]-style iterators so a consumer — the serve daemon's
   streaming encoder — sees the first regions while the rest of the
   stream is still being computed, without ever materializing the
   intermediate GC-lists.

   Streaming invariant: every stream below is strictly increasing under
   [Region.compare], exactly like the arrays of {!Pat.Region_set}, so
   [to_set] of any stream equals the materialized evaluator's result
   set element for element (qcheck-verified in the test suite).

   The order is load-bearing for the one-pass operators:
   - an {e outermost} region is one whose predecessors' running maximum
     stop falls short of its own stop — every region that includes [r]
     precedes [r] in the order (smaller start, or equal start with
     larger stop);
   - dually, every region {e included in} [r] follows it, so innermost
     runs with a bounded pending buffer: an arriving region kills the
     pending regions that include it, and a pending region whose stop
     precedes the arriving start can never contain a future region and
     is safe to emit;
   - inclusion joins keep a window of right-operand regions whose
     starts lie within the current left region.

   Direct inclusion and depth-counted inclusion are the exception: they
   are decided against the instance universe (the paper calls ⊃d
   "significantly more expensive than the simple inclusion operation"),
   and the blocking test needs the full context window between the two
   operands.  Those nodes materialize their operands and re-stream the
   materialized result — laziness at node granularity, exactness
   everywhere. *)

module R = Pat.Region
module Rs = Pat.Region_set

type stream = R.t Seq.t

let of_set set : stream =
  let arr = Rs.to_array set in
  let n = Array.length arr in
  let rec from i () = if i >= n then Seq.Nil else Seq.Cons (arr.(i), from (i + 1)) in
  from 0

let to_set (s : stream) = Rs.of_list (List.of_seq s)

(* ---------------- set-theoretic merges ---------------- *)

(* Node-level merges: each function takes forced [Seq.node]s so no
   thunk is forced twice (pulls carry deadline polls and counters). *)

let rec union_n a b =
  match (a, b) with
  | Seq.Nil, n | n, Seq.Nil -> n
  | Seq.Cons (x, a'), Seq.Cons (y, b') ->
      let c = R.compare x y in
      if c < 0 then Seq.Cons (x, fun () -> union_n (a' ()) b)
      else if c > 0 then Seq.Cons (y, fun () -> union_n a (b' ()))
      else Seq.Cons (x, fun () -> union_n (a' ()) (b' ()))

let rec inter_n a b =
  match (a, b) with
  | Seq.Nil, _ | _, Seq.Nil -> Seq.Nil
  | Seq.Cons (x, a'), Seq.Cons (y, b') ->
      let c = R.compare x y in
      if c < 0 then inter_n (a' ()) b
      else if c > 0 then inter_n a (b' ())
      else Seq.Cons (x, fun () -> inter_n (a' ()) (b' ()))

let rec diff_n a b =
  match (a, b) with
  | Seq.Nil, _ -> Seq.Nil
  | n, Seq.Nil -> n
  | Seq.Cons (x, a'), Seq.Cons (y, b') ->
      let c = R.compare x y in
      if c < 0 then Seq.Cons (x, fun () -> diff_n (a' ()) b)
      else if c > 0 then diff_n a (b' ())
      else diff_n (a' ()) (b' ())

let union a b : stream = fun () -> union_n (a ()) (b ())
let inter a b : stream = fun () -> inter_n (a ()) (b ())
let diff a b : stream = fun () -> diff_n (a ()) (b ())

(* ---------------- word selections ---------------- *)

(* The predicates replicate {!Pat.Region_set.containing_match},
   [matching_exact] and [matching_prefix] verbatim; the match points
   are fetched once, on the first pull. *)

let select_containing wi w (s : stream) : stream =
  let len = String.length w in
  let pos = lazy (Pat.Word_index.match_points wi w) in
  Seq.filter
    (fun (reg : R.t) ->
      let positions = Lazy.force pos in
      let i =
        Stdx.Sorted_array.lower_bound ~cmp:Int.compare positions reg.R.start
      in
      i < Array.length positions && positions.(i) + len <= reg.R.stop)
    s

let select_exact wi w (s : stream) : stream =
  let len = String.length w in
  let pos = lazy (Pat.Word_index.match_points wi w) in
  Seq.filter
    (fun (reg : R.t) ->
      R.length reg = len
      && Stdx.Sorted_array.mem ~cmp:Int.compare (Lazy.force pos) reg.R.start)
    s

let select_prefix wi w (s : stream) : stream =
  let len = String.length w in
  let pos = lazy (Pat.Word_index.prefix_points wi w) in
  Seq.filter
    (fun (reg : R.t) ->
      R.length reg >= len
      && Stdx.Sorted_array.mem ~cmp:Int.compare (Lazy.force pos) reg.R.start)
    s

(* ---------------- ι and ω ---------------- *)

let outermost (s : stream) : stream =
  (* every region including [r] precedes [r], so [r] is outermost iff
     the running maximum stop of its predecessors is below its own *)
  let rec go max_stop node =
    match node with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (r, rest) ->
        if r.R.stop > max_stop then
          Seq.Cons (r, fun () -> go r.R.stop (rest ()))
        else go max_stop (rest ())
  in
  fun () -> go min_int (s ())

let innermost (s : stream) : stream =
  (* pending: regions in stream order whose innermost-ness is still
     undecided.  An arriving region kills every pending region that
     includes it; a pending region whose stop precedes the arriving
     start can no longer contain a future region (future starts only
     grow) and is emitted once it reaches the front. *)
  let rec split_safe acc pending start =
    match pending with
    | (p : R.t) :: rest when p.R.stop < start ->
        split_safe (p :: acc) rest start
    | _ -> (List.rev acc, pending)
  in
  let rec emit ready pending node =
    match ready with
    | r :: rest -> Seq.Cons (r, fun () -> emit rest pending node)
    | [] -> (
        match (node, pending) with
        | Seq.Nil, [] -> Seq.Nil
        | Seq.Nil, _ ->
            (* stream exhausted: nothing can kill the survivors *)
            emit pending [] Seq.Nil
        | _ -> step pending node)
  and step pending node =
    match node with
    | Seq.Nil -> emit pending [] Seq.Nil
    | Seq.Cons (r, rest) ->
        let pending = List.filter (fun p -> not (R.includes p r)) pending in
        let safe, undecided = split_safe [] pending r.R.start in
        emit safe (undecided @ [ r ]) (rest ())
  in
  fun () -> step [] (s ())

(* ---------------- inclusion joins ---------------- *)

let included ~strict (a : stream) (b : stream) : stream =
  (* [r ⊂ s-stream]: a witness has start ≤ r.start, so it was already
     consumed from [b] when [r] arrives.  Two running maxima suffice:
     [m_lt] over witnesses starting strictly before [r], [m_eq] over
     those sharing its start — the strict variant needs the split
     because a same-start witness with the same stop is [r] itself. *)
  let rec go ~cur_start ~m_lt ~m_eq a_node b_node =
    match a_node with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons ((r : R.t), a') ->
        let m_lt, m_eq =
          if r.R.start > cur_start then (max m_lt m_eq, min_int)
          else (m_lt, m_eq)
        in
        let rec pull m_lt m_eq b_node =
          match b_node with
          | Seq.Cons ((s : R.t), b') when s.R.start < r.R.start ->
              pull (max m_lt s.R.stop) m_eq (b' ())
          | Seq.Cons (s, b') when s.R.start = r.R.start ->
              pull m_lt (max m_eq s.R.stop) (b' ())
          | _ -> (m_lt, m_eq, b_node)
        in
        let m_lt, m_eq, b_node = pull m_lt m_eq b_node in
        let keep =
          m_lt >= r.R.stop
          || (if strict then m_eq > r.R.stop else m_eq >= r.R.stop)
        in
        let continue_ () =
          go ~cur_start:r.R.start ~m_lt ~m_eq (a' ()) b_node
        in
        if keep then Seq.Cons (r, continue_) else continue_ ()
  in
  fun () -> go ~cur_start:min_int ~m_lt:min_int ~m_eq:min_int (a ()) (b ())

let including ~strict (a : stream) (b : stream) : stream =
  (* [r ⊃ s-stream]: a witness starts within [r]'s extent.  Keep a
     queue (front, reversed back) of consumed [b]-regions; sortedness
     means pruning the front is enough — if the front starts at or
     after [r.start], so does everything behind it. *)
  let rec go front back a_node b_node =
    match a_node with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons ((r : R.t), a') ->
        let rec prune front back =
          match front with
          | (s : R.t) :: front' when s.R.start < r.R.start -> prune front' back
          | [] when back <> [] -> prune (List.rev back) []
          | _ -> (front, back)
        in
        let front, back = prune front back in
        let rec pull back b_node =
          match b_node with
          | Seq.Cons ((s : R.t), b') when s.R.start <= r.R.stop ->
              if s.R.start < r.R.start then pull back (b' ())
              else pull (s :: back) (b' ())
          | _ -> (back, b_node)
        in
        let back, b_node = pull back b_node in
        let witness (s : R.t) =
          s.R.stop <= r.R.stop && ((not strict) || not (R.equal s r))
        in
        let keep = List.exists witness front || List.exists witness back in
        if keep then Seq.Cons (r, fun () -> go front back (a' ()) b_node)
        else go front back (a' ()) b_node
  in
  fun () -> go [] [] (a ()) (b ())

(* ---------------- materializing nodes ---------------- *)

(* Direct and depth-counted inclusion need the full context window
   between their operands; evaluate through {!Pat.Region_set} and
   re-stream, deferring the materialization to the first pull. *)
let via_set f (a : stream) (b : stream) : stream =
 fun () -> of_set (f (to_set a) (to_set b)) ()

(* ---------------- the evaluator ---------------- *)

let build_select inst sel s =
  let wi = Pat.Instance.word_index inst in
  match sel with
  | Expr.Contains_word w -> select_containing wi w s
  | Expr.Exactly_word w -> select_exact wi w s
  | Expr.Prefix_word w -> select_prefix wi w s

let rec build inst expr : stream =
  match expr with
  | Expr.Name n -> begin
      match Pat.Instance.find_opt inst n with
      | Some set -> of_set set
      | None -> raise (Eval.Unknown_region n)
    end
  | Expr.Select (sel, e) -> build_select inst sel (build inst e)
  | Expr.Setop (Expr.Union, a, b) -> union (build inst a) (build inst b)
  | Expr.Setop (Expr.Inter, a, b) -> inter (build inst a) (build inst b)
  | Expr.Setop (Expr.Diff, a, b) -> diff (build inst a) (build inst b)
  | Expr.Innermost e -> innermost (build inst e)
  | Expr.Outermost e -> outermost (build inst e)
  | Expr.Chain (a, op, b) -> begin
      let sa = build inst a and sb = build inst b in
      match op with
      | Expr.Including -> including ~strict:false sa sb
      | Expr.Included -> included ~strict:false sa sb
      | Expr.Directly_including ->
          via_set
            (Rs.directly_including ~context:(Pat.Instance.universe inst))
            sa sb
      | Expr.Directly_included ->
          via_set
            (Rs.directly_included ~context:(Pat.Instance.universe inst))
            sa sb
    end
  | Expr.Chain_strict (a, op, b) -> begin
      let sa = build inst a and sb = build inst b in
      match op with
      | Expr.Including -> including ~strict:true sa sb
      | Expr.Included -> included ~strict:true sa sb
      | Expr.Directly_including ->
          via_set
            (Rs.directly_including_strict
               ~context:(Pat.Instance.universe inst))
            sa sb
      | Expr.Directly_included ->
          via_set
            (Rs.directly_included_strict
               ~context:(Pat.Instance.universe inst))
            sa sb
    end
  | Expr.At_depth (n, a, b) ->
      via_set
        (Rs.including_at_depth ~context:(Pat.Instance.universe inst) ~depth:n)
        (build inst a) (build inst b)

let pulled = Obs.Metrics.counter "ralg.lazy.pulled"

let eval inst expr : stream =
  let s = build inst expr in
  (* one deadline poll per pulled region: a streaming request with a
     budget aborts between rows rather than between operators *)
  Seq.map
    (fun r ->
      Obs.Deadline.check ();
      Obs.Metrics.incr pulled;
      r)
    s
