(** Trivial-emptiness analysis (Proposition 3.3).

    An inclusion expression is {e trivial} w.r.t. a RIG when its result
    is empty on every instance satisfying the graph:

    - it contains [Ri ⊃d Rj] and [(Ri, Rj)] is not an edge, or
    - it contains [Ri ⊃ Rj] and the graph has no walk from [Ri] to [Rj]

    (and symmetrically for the [⊂] family).  The analysis extends to
    general region expressions: an intersection is trivial when either
    side is, a union when both sides are, and emptiness propagates up
    through selections, [ι]/[ω] and chain heads.

    Pairs of equal names are never reported trivial: [R ⊃ R = R] under
    the non-strict inclusion semantics. *)

val pair_is_trivial :
  Rig.t ->
  family:Chain.family ->
  strength:Chain.strength ->
  left:string ->
  right:string ->
  bool
(** The per-pair test of Proposition 3.3 (oriented by family). *)

val check : Rig.t -> Expr.t -> bool
(** [check rig e] is [true] when [e] is provably empty on every
    instance satisfying [rig] (sound, not complete).  Expressions
    mentioning names outside the graph are never reported trivial. *)

val result_names : Expr.t -> string list
(** Conservative over-approximation of the names the result regions of
    an expression can carry (with duplicates): chains and [At_depth]
    answer regions of their left side, difference of its left side,
    union and intersection of either side.  The per-pair test of
    {!check} quantifies over these. *)
