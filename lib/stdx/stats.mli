(** Execution instrumentation.

    The benchmark harness reports, besides wall-clock time, the *work*
    quantities the paper argues about: bytes of file content scanned or
    parsed, number of index operations, number of region comparisons,
    number of database objects constructed.

    This module is a thin facade over the {!Obs.Metrics} registry: each
    quantity below is a registry counter named [engine.<field>], so the
    same cells are visible both here (as the paper-facing record
    {!type:t}) and through the registry (for dumps, tracing sinks and
    cross-cutting tooling).  Components increment the counters in
    place; harnesses snapshot and diff them. *)

type counter = Obs.Metrics.counter

val bytes_scanned : counter
(** bytes of raw file content read outside the index
    ([engine.bytes_scanned]) *)

val bytes_parsed : counter
(** bytes fed through a structuring-schema parse
    ([engine.bytes_parsed]) *)

val index_ops : counter
(** region-algebra operator applications ([engine.index_ops]) *)

val region_comparisons : counter
(** pairwise region endpoint comparisons
    ([engine.region_comparisons]) *)

val word_lookups : counter
(** word-index (suffix-array) searches ([engine.word_lookups]) *)

val objects_built : counter
(** database objects/tuples materialised ([engine.objects_built]) *)

val regions_produced : counter
(** total regions output by index ops ([engine.regions_produced]) *)

val cache_hits : counter
(** instance-cache lookups served from memory ([engine.cache_hits]) *)

val cache_misses : counter
(** instance-cache lookups that went to disk ([engine.cache_misses]) *)

val cache_evictions : counter
(** instances dropped to stay within the cache budget
    ([engine.cache_evictions]) *)

val incr : counter -> unit
(** Add one (re-exported from {!Obs.Metrics} so counting components
    need no direct [obs] dependency). *)

val add_to : counter -> int -> unit
(** Add a batch amount. *)

val value : counter -> int
(** Current value of the live counter. *)

(** {1 Snapshots} *)

type t = {
  mutable bytes_scanned : int;
  mutable bytes_parsed : int;
  mutable index_ops : int;
  mutable region_comparisons : int;
  mutable word_lookups : int;
  mutable objects_built : int;
  mutable regions_produced : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
}
(** A point-in-time copy of the counters (or a field-wise difference of
    two such copies). *)

val create : unit -> t
(** All-zero snapshot value. *)

val reset : t -> unit
(** Zero every field of a snapshot in place. *)

val reset_counters : unit -> unit
(** Zero the live registry counters (test isolation). *)

val snapshot : unit -> t
(** Copy the current live counter values out of the registry. *)

val diff : before:t -> after:t -> t
(** Field-wise [after - before]. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] field-wise. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering.  Cache counters are appended only
    when at least one of them is non-zero, so cache-less executions
    render exactly as before the cache existed. *)
