(** Execution instrumentation.

    The benchmark harness reports, besides wall-clock time, the *work*
    quantities the paper argues about: bytes of file content scanned or
    parsed, number of index operations, number of region comparisons,
    number of database objects constructed.  Components increment the
    counters of the ambient {!t}; the harness snapshots and diffs them. *)

type t = {
  mutable bytes_scanned : int;
      (** bytes of raw file content read outside the index *)
  mutable bytes_parsed : int;  (** bytes fed through a structuring-schema parse *)
  mutable index_ops : int;  (** region-algebra operator applications *)
  mutable region_comparisons : int;  (** pairwise region endpoint comparisons *)
  mutable word_lookups : int;  (** word-index (suffix-array) searches *)
  mutable objects_built : int;  (** database objects/tuples materialised *)
  mutable regions_produced : int;  (** total regions output by index ops *)
  mutable cache_hits : int;  (** instance-cache lookups served from memory *)
  mutable cache_misses : int;  (** instance-cache lookups that went to disk *)
  mutable cache_evictions : int;
      (** instances dropped to stay within the cache budget *)
}

val create : unit -> t
(** All-zero counters. *)

val reset : t -> unit
(** Zero every counter in place. *)

val global : t
(** The ambient counter set used by default throughout the library. *)

val snapshot : t -> t
(** Immutable copy of the current values. *)

val diff : before:t -> after:t -> t
(** Field-wise [after - before]. *)

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] field-wise. *)

val pp : Format.formatter -> t -> unit
(** Human-readable one-line rendering.  Cache counters are appended only
    when at least one of them is non-zero, so cache-less executions
    render exactly as before the cache existed. *)
