(** Deterministic, seeded fault injection.

    The robustness layer is only testable if failures can be provoked
    on demand and reproduced from a seed.  This module owns that:
    I/O-touching code declares named {e sites} ([catalog.read],
    [catalog.write], [gen.commit], [gen.retire], [watch.scan],
    [index.load], [index.write], [source.read], [pool.task]) by
    calling {!hit} (and {!corrupting} where a payload
    can be damaged), and a fault {e config} — parsed from the
    [OQF_FAULTS] environment variable or the [--inject-faults] CLI
    flag — decides, via a splitmix64 stream, whether each visit
    injects a transient I/O error, a permanent error, payload
    corruption, added latency, or a hard crash.

    With no config installed every site is a single load-and-branch;
    the layer costs nothing in production (verified by bench R1). *)

type kind = Transient | Permanent | Corruption
(** The error taxonomy shared with {!Retry}: [Transient] failures are
    worth retrying, [Permanent] ones are not, [Corruption] means the
    data arrived but is damaged (checksum mismatch — the heal path's
    domain, not the retry path's). *)

val kind_to_string : kind -> string

exception Injected of { site : string; kind : kind }
(** The exception raised by an injecting {!hit}.  Carries its site so
    reports can attribute the failure. *)

type config
(** A parsed fault schedule. *)

val parse : string -> (config, string) result
(** [parse spec] parses a comma-separated schedule.  Directives:
    - [seed:N] — PRNG seed (default 0; equal seeds replay equal
      schedules)
    - [transient:P] / [permanent:P] / [corrupt:P] — per-visit
      injection probabilities in [0,1]
    - [delay:P\@MS] — with probability [P], busy-wait [MS]
      milliseconds
    - [crash:SITE\@N] — exit the process (status 137) on the [N]th
      visit to [SITE]
    - [burst:K] — cap consecutive injections per site at [K], so any
      retry loop with more than [K] attempts is guaranteed to get
      through (makes probabilistic schedules recoverable by
      construction)
    - [only:SITE] — restrict injection to one site *)

val set : config option -> unit
(** Install (or clear) the schedule, resetting per-site counters. *)

val active : unit -> bool
(** Whether a schedule is installed ([OQF_FAULTS] is consulted once,
    lazily, on first use of the module). *)

val describe : config -> string
(** One-line rendering of the schedule, for logs and reports. *)

val hit : string -> unit
(** [hit site] marks one visit to [site].  No-op without a schedule;
    otherwise may spin (latency), raise {!Injected}, or exit the
    process (crash point), per the schedule.  Thread-safe. *)

val corrupting : string -> string -> string
(** [corrupting site payload] returns [payload], possibly with one
    byte flipped when the schedule injects corruption at [site].
    Used on freshly read index images, upstream of checksum
    verification. *)
