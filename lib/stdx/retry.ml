type policy = {
  attempts : int;
  base_delay_ms : float;
  max_delay_ms : float;
}

let default_policy = { attempts = 5; base_delay_ms = 0.2; max_delay_ms = 20.0 }

let lock = Mutex.create ()
let site_policies : (string, policy) Hashtbl.t = Hashtbl.create 8

let set_site_policy site p =
  Mutex.lock lock;
  Hashtbl.replace site_policies site p;
  Mutex.unlock lock

let policy_for site =
  Mutex.lock lock;
  let p =
    try Hashtbl.find site_policies site with Not_found -> default_policy
  in
  Mutex.unlock lock;
  p

let classify_exn = function
  | Fault.Injected { kind; _ } -> kind
  | Sys_error _ -> Fault.Transient
  | _ -> Fault.Permanent

let retry_attempts = Obs.Metrics.counter "retry.attempts"
let retry_exhausted = Obs.Metrics.counter "retry.exhausted"

let spin_ms ms =
  if ms > 0. then begin
    let t0 = Obs.Trace.now_ms () in
    while Obs.Trace.now_ms () -. t0 < ms do
      Domain.cpu_relax ()
    done
  end

let io ?policy ~site f =
  let p = match policy with Some p -> p | None -> policy_for site in
  (* Deterministic per-site jitter stream: backoff schedules are
     reproducible, which the schedule tests rely on. *)
  let rng = lazy (Prng.create (Hashtbl.hash site lxor 0x9e37)) in
  let rec go attempt prev_delay =
    match f () with
    | v -> v
    | exception e -> (
        match classify_exn e with
        | Fault.Transient when attempt < p.attempts ->
            Obs.Metrics.incr retry_attempts;
            if Obs.Trace.enabled () then
              Obs.Trace.instant "retry"
                ~attrs:
                  [
                    ("site", Obs.Trace.Str site);
                    ("attempt", Obs.Trace.Int attempt);
                  ];
            let delay =
              if p.base_delay_ms <= 0. then 0.
              else begin
                let hi = Float.max p.base_delay_ms (prev_delay *. 3.) in
                let span = hi -. p.base_delay_ms in
                let d =
                  if span <= 0. then p.base_delay_ms
                  else p.base_delay_ms +. Prng.float (Lazy.force rng) span
                in
                Float.min p.max_delay_ms d
              end
            in
            spin_ms delay;
            go (attempt + 1) (Float.max delay p.base_delay_ms)
        | Fault.Transient ->
            Obs.Metrics.incr retry_exhausted;
            raise e
        | Fault.Permanent | Fault.Corruption -> raise e)
  in
  go 1 0.

(* Deterministic backoff schedule preview, used by tests to pin the
   decorrelated-jitter shape without sleeping. *)
let backoff_schedule ?(policy = default_policy) site =
  let rng = Prng.create (Hashtbl.hash site lxor 0x9e37) in
  let rec go attempt prev acc =
    if attempt >= policy.attempts then List.rev acc
    else begin
      let delay =
        if policy.base_delay_ms <= 0. then 0.
        else begin
          let hi = Float.max policy.base_delay_ms (prev *. 3.) in
          let span = hi -. policy.base_delay_ms in
          let d =
            if span <= 0. then policy.base_delay_ms
            else policy.base_delay_ms +. Prng.float rng span
          in
          Float.min policy.max_delay_ms d
        end
      in
      go (attempt + 1) (Float.max delay policy.base_delay_ms) (delay :: acc)
    end
  in
  go 1 0. []

module Breaker = struct
  let threshold = 3

  type state = Closed | Open

  let lock = Mutex.create ()
  let failures : (string, int) Hashtbl.t = Hashtbl.create 16
  let opened = Obs.Metrics.counter "breaker.opened"

  (* Per-key open/closed gauge for /metrics: a stuck-open breaker is
     invisible in the [breaker.opened] running count alone.  Touched on
     transitions only, so keys that never trip never mint a series. *)
  let state_gauge key =
    Obs.Metrics.counter (Obs.Label.render "breaker.state" [ ("source", key) ])

  let failure key =
    Mutex.lock lock;
    let n = (try Hashtbl.find failures key with Not_found -> 0) + 1 in
    Hashtbl.replace failures key n;
    if n = threshold then begin
      Obs.Metrics.incr opened;
      Obs.Metrics.set (state_gauge key) 1
    end;
    Mutex.unlock lock

  let success key =
    Mutex.lock lock;
    let was = try Hashtbl.find failures key with Not_found -> 0 in
    Hashtbl.remove failures key;
    if was >= threshold then Obs.Metrics.set (state_gauge key) 0;
    Mutex.unlock lock

  let state key =
    Mutex.lock lock;
    let n = try Hashtbl.find failures key with Not_found -> 0 in
    Mutex.unlock lock;
    if n >= threshold then Open else Closed

  let reset_all () =
    Mutex.lock lock;
    Hashtbl.reset failures;
    Mutex.unlock lock
end
