(** Retry with exponential backoff and decorrelated jitter.

    Every I/O site in the engine ({!Fault} lists them) wraps its raw
    operation in {!io}: transient failures are re-attempted under a
    per-site budget with decorrelated-jitter backoff ([sleep = min
    max_delay (uniform base (3 * previous))], AWS-style), while
    permanent failures and corruption propagate immediately — the
    former because retrying cannot help, the latter because healing
    (rebuild from source) is the right response, not re-reading.

    A per-source {!Breaker} lets callers stop burning retry budget on
    an input that keeps failing: after {!Breaker.threshold}
    consecutive failures the circuit opens and the caller should skip
    the source outright. *)

type policy = {
  attempts : int;  (** total tries, including the first *)
  base_delay_ms : float;
  max_delay_ms : float;
}

val default_policy : policy
(** 5 attempts, 0.2ms base, 20ms cap — generous enough that a
    recoverable fault schedule with [burst] below the budget always
    gets through, cheap enough to be invisible. *)

val set_site_policy : string -> policy -> unit
(** Override the budget for one site (tests mostly). *)

val policy_for : string -> policy

val classify_exn : exn -> Fault.kind
(** The taxonomy decision: [Fault.Injected] carries its own kind,
    [Sys_error] is transient (the OS may succeed on the next try),
    everything else — including {!Obs.Deadline.Expired} — is
    permanent. *)

val io : ?policy:policy -> site:string -> (unit -> 'a) -> 'a
(** [io ~site f] runs [f], retrying transient exceptions with backoff
    until the budget is spent, then re-raises the last failure.
    Retries are counted in the [retry.attempts] metric and, when
    tracing, emitted as [retry] instants attributed to [site]. *)

val backoff_schedule : ?policy:policy -> string -> float list
(** The delays (ms) {!io} would sleep between attempts at [site],
    without sleeping them — pins the decorrelated-jitter shape in
    tests: each delay is within [[base, min max (3 * previous)]] and
    the whole schedule is reproducible. *)

module Breaker : sig
  val threshold : int
  (** Consecutive failures after which a circuit opens (3). *)

  type state = Closed | Open

  val failure : string -> unit
  (** Record one failure; the [threshold]th consecutive one opens the
      circuit, incrementing [breaker.opened] and setting the
      [breaker.state{source="key"}] gauge to 1. *)

  val success : string -> unit
  (** Reset the key's failure count; closing a previously open circuit
      sets its [breaker.state{source="key"}] gauge back to 0.  The
      gauge is touched on transitions only, so keys that never trip
      never appear in /metrics. *)

  val state : string -> state
  val reset_all : unit -> unit
end
