(* The live counters are owned by the Obs.Metrics registry under
   [engine.*] names; this module is the engine-facing facade over
   them.  Keeping each quantity a registry counter means tracing and
   metrics tooling see exactly the cells the paper's work accounting
   increments — no double bookkeeping. *)

type counter = Obs.Metrics.counter

let bytes_scanned = Obs.Metrics.counter "engine.bytes_scanned"
let bytes_parsed = Obs.Metrics.counter "engine.bytes_parsed"
let index_ops = Obs.Metrics.counter "engine.index_ops"
let region_comparisons = Obs.Metrics.counter "engine.region_comparisons"
let word_lookups = Obs.Metrics.counter "engine.word_lookups"
let objects_built = Obs.Metrics.counter "engine.objects_built"
let regions_produced = Obs.Metrics.counter "engine.regions_produced"
let cache_hits = Obs.Metrics.counter "engine.cache_hits"
let cache_misses = Obs.Metrics.counter "engine.cache_misses"
let cache_evictions = Obs.Metrics.counter "engine.cache_evictions"

let incr = Obs.Metrics.incr
let add_to = Obs.Metrics.add_to
let value = Obs.Metrics.value

let all_counters =
  [
    bytes_scanned; bytes_parsed; index_ops; region_comparisons; word_lookups;
    objects_built; regions_produced; cache_hits; cache_misses; cache_evictions;
  ]

let reset_counters () = List.iter (fun c -> Obs.Metrics.set c 0) all_counters

type t = {
  mutable bytes_scanned : int;
  mutable bytes_parsed : int;
  mutable index_ops : int;
  mutable region_comparisons : int;
  mutable word_lookups : int;
  mutable objects_built : int;
  mutable regions_produced : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
}

let create () =
  {
    bytes_scanned = 0;
    bytes_parsed = 0;
    index_ops = 0;
    region_comparisons = 0;
    word_lookups = 0;
    objects_built = 0;
    regions_produced = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
  }

let reset t =
  t.bytes_scanned <- 0;
  t.bytes_parsed <- 0;
  t.index_ops <- 0;
  t.region_comparisons <- 0;
  t.word_lookups <- 0;
  t.objects_built <- 0;
  t.regions_produced <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.cache_evictions <- 0

let snapshot () =
  {
    bytes_scanned = value bytes_scanned;
    bytes_parsed = value bytes_parsed;
    index_ops = value index_ops;
    region_comparisons = value region_comparisons;
    word_lookups = value word_lookups;
    objects_built = value objects_built;
    regions_produced = value regions_produced;
    cache_hits = value cache_hits;
    cache_misses = value cache_misses;
    cache_evictions = value cache_evictions;
  }

let diff ~before ~after =
  {
    bytes_scanned = after.bytes_scanned - before.bytes_scanned;
    bytes_parsed = after.bytes_parsed - before.bytes_parsed;
    index_ops = after.index_ops - before.index_ops;
    region_comparisons = after.region_comparisons - before.region_comparisons;
    word_lookups = after.word_lookups - before.word_lookups;
    objects_built = after.objects_built - before.objects_built;
    regions_produced = after.regions_produced - before.regions_produced;
    cache_hits = after.cache_hits - before.cache_hits;
    cache_misses = after.cache_misses - before.cache_misses;
    cache_evictions = after.cache_evictions - before.cache_evictions;
  }

let add acc x =
  acc.bytes_scanned <- acc.bytes_scanned + x.bytes_scanned;
  acc.bytes_parsed <- acc.bytes_parsed + x.bytes_parsed;
  acc.index_ops <- acc.index_ops + x.index_ops;
  acc.region_comparisons <- acc.region_comparisons + x.region_comparisons;
  acc.word_lookups <- acc.word_lookups + x.word_lookups;
  acc.objects_built <- acc.objects_built + x.objects_built;
  acc.regions_produced <- acc.regions_produced + x.regions_produced;
  acc.cache_hits <- acc.cache_hits + x.cache_hits;
  acc.cache_misses <- acc.cache_misses + x.cache_misses;
  acc.cache_evictions <- acc.cache_evictions + x.cache_evictions

let pp ppf t =
  Format.fprintf ppf
    "scanned=%dB parsed=%dB index_ops=%d cmps=%d lookups=%d objs=%d regions=%d"
    t.bytes_scanned t.bytes_parsed t.index_ops t.region_comparisons
    t.word_lookups t.objects_built t.regions_produced;
  (* cache traffic appears only for cache-backed runs, so the rendering
     of cache-less executions (most tests, the cram transcripts) is
     unchanged *)
  if t.cache_hits <> 0 || t.cache_misses <> 0 || t.cache_evictions <> 0 then
    Format.fprintf ppf " cache=%dh/%dm/%de" t.cache_hits t.cache_misses
      t.cache_evictions
