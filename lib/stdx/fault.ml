type kind = Transient | Permanent | Corruption

let kind_to_string = function
  | Transient -> "transient"
  | Permanent -> "permanent"
  | Corruption -> "corruption"

exception Injected of { site : string; kind : kind }

let () =
  Printexc.register_printer (function
    | Injected { site; kind } ->
        Some
          (Printf.sprintf "injected %s fault at %s" (kind_to_string kind) site)
    | _ -> None)

type config = {
  seed : int;
  transient : float;
  permanent : float;
  corrupt : float;
  delay_p : float;
  delay_ms : float;
  burst : int option;
  only : string option;
  crashes : (string * int) list;
}

let empty =
  {
    seed = 0;
    transient = 0.;
    permanent = 0.;
    corrupt = 0.;
    delay_p = 0.;
    delay_ms = 0.;
    burst = None;
    only = None;
    crashes = [];
  }

let describe c =
  let b = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun s ->
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b s) fmt
  in
  add "seed:%d" c.seed;
  if c.transient > 0. then add "transient:%g" c.transient;
  if c.permanent > 0. then add "permanent:%g" c.permanent;
  if c.corrupt > 0. then add "corrupt:%g" c.corrupt;
  if c.delay_p > 0. then add "delay:%g@%g" c.delay_p c.delay_ms;
  List.iter (fun (site, n) -> add "crash:%s@%d" site n) c.crashes;
  (match c.burst with Some k -> add "burst:%d" k | None -> ());
  (match c.only with Some s -> add "only:%s" s | None -> ());
  Buffer.contents b

let parse spec =
  let ( let* ) = Result.bind in
  let prob name v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | _ -> Error (Printf.sprintf "%s wants a probability in [0,1], got %S" name v)
  in
  let directive acc item =
    let* acc = acc in
    match String.index_opt item ':' with
    | None -> Error (Printf.sprintf "malformed fault directive %S (want KEY:VALUE)" item)
    | Some i ->
        let key = String.sub item 0 i in
        let v = String.sub item (i + 1) (String.length item - i - 1) in
        (match key with
        | "seed" -> (
            match int_of_string_opt v with
            | Some n -> Ok { acc with seed = n }
            | None -> Error (Printf.sprintf "seed wants an integer, got %S" v))
        | "transient" ->
            let* p = prob "transient" v in
            Ok { acc with transient = p }
        | "permanent" ->
            let* p = prob "permanent" v in
            Ok { acc with permanent = p }
        | "corrupt" ->
            let* p = prob "corrupt" v in
            Ok { acc with corrupt = p }
        | "delay" -> (
            match String.index_opt v '@' with
            | None -> Error "delay wants P@MS"
            | Some j ->
                let* p = prob "delay" (String.sub v 0 j) in
                (match
                   float_of_string_opt
                     (String.sub v (j + 1) (String.length v - j - 1))
                 with
                | Some ms when ms >= 0. ->
                    Ok { acc with delay_p = p; delay_ms = ms }
                | _ -> Error "delay wants P@MS with MS >= 0"))
        | "crash" -> (
            match String.index_opt v '@' with
            | None -> Error "crash wants SITE@N"
            | Some j -> (
                let site = String.sub v 0 j in
                match
                  int_of_string_opt
                    (String.sub v (j + 1) (String.length v - j - 1))
                with
                | Some n when n >= 1 && site <> "" ->
                    Ok { acc with crashes = (site, n) :: acc.crashes }
                | _ -> Error "crash wants SITE@N with N >= 1"))
        | "burst" -> (
            match int_of_string_opt v with
            | Some k when k >= 1 -> Ok { acc with burst = Some k }
            | _ -> Error (Printf.sprintf "burst wants an integer >= 1, got %S" v))
        | "only" ->
            if v = "" then Error "only wants a site name"
            else Ok { acc with only = Some v }
        | _ -> Error (Printf.sprintf "unknown fault directive %S" key))
  in
  let items =
    List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec))
  in
  if items = [] then Error "empty fault spec"
  else List.fold_left directive (Ok empty) items

(* Mutable schedule state, shared across domains. *)
type state = {
  config : config;
  rng : Prng.t;
  hits : (string, int) Hashtbl.t;  (* visits per site *)
  consec : (string, int) Hashtbl.t;  (* consecutive injections per site *)
}

let lock = Mutex.create ()
let state : state option ref = ref None
let env_loaded = ref false
let injected = Obs.Metrics.counter "fault.injected"
let crashes = Obs.Metrics.counter "fault.crashes"

let set_locked config =
  state :=
    Option.map
      (fun config ->
        {
          config;
          rng = Prng.create config.seed;
          hits = Hashtbl.create 8;
          consec = Hashtbl.create 8;
        })
      config

let set config =
  Mutex.lock lock;
  env_loaded := true;
  set_locked config;
  Mutex.unlock lock

let ensure () =
  if not !env_loaded then begin
    Mutex.lock lock;
    if not !env_loaded then begin
      env_loaded := true;
      match Sys.getenv_opt "OQF_FAULTS" with
      | None | Some "" -> ()
      | Some spec -> (
          match parse spec with
          | Ok c -> set_locked (Some c)
          | Error e ->
              Printf.eprintf "oqf: warning: ignoring OQF_FAULTS: %s\n%!" e)
    end;
    Mutex.unlock lock
  end

let active () =
  ensure ();
  !state <> None

let bump tbl site =
  let n = (try Hashtbl.find tbl site with Not_found -> 0) + 1 in
  Hashtbl.replace tbl site n;
  n

(* What one visit to [site] should do, decided under the lock so the
   PRNG stream and counters stay coherent across domains. *)
type action = Nothing | Delay of float | Raise of kind | Crash

let decide st site =
  let c = st.config in
  match c.only with
  | Some s when s <> site -> Nothing
  | _ ->
      let n = bump st.hits site in
      if List.exists (fun (s, k) -> s = site && k = n) c.crashes then Crash
      else begin
        let delay =
          c.delay_p > 0. && Prng.float st.rng 1.0 < c.delay_p
        in
        let may_inject =
          match c.burst with
          | None -> true
          | Some b -> (try Hashtbl.find st.consec site with Not_found -> 0) < b
        in
        let fault =
          if may_inject && c.transient > 0. && Prng.float st.rng 1.0 < c.transient
          then Some Transient
          else if
            may_inject && c.permanent > 0. && Prng.float st.rng 1.0 < c.permanent
          then Some Permanent
          else None
        in
        match fault with
        | Some kind ->
            ignore (bump st.consec site);
            Raise kind
        | None ->
            Hashtbl.replace st.consec site 0;
            if delay then Delay c.delay_ms else Nothing
      end

let spin_ms ms =
  if ms > 0. then begin
    let t0 = Obs.Trace.now_ms () in
    while Obs.Trace.now_ms () -. t0 < ms do
      Domain.cpu_relax ()
    done
  end

let hit site =
  ensure ();
  match !state with
  | None -> ()
  | Some _ -> (
      Mutex.lock lock;
      let action =
        match !state with Some st -> decide st site | None -> Nothing
      in
      Mutex.unlock lock;
      match action with
      | Nothing -> ()
      | Delay ms -> spin_ms ms
      | Raise kind ->
          Obs.Metrics.incr injected;
          if Obs.Trace.enabled () then
            Obs.Trace.instant "fault.injected"
              ~attrs:
                [
                  ("site", Obs.Trace.Str site);
                  ("kind", Obs.Trace.Str (kind_to_string kind));
                ];
          raise (Injected { site; kind })
      | Crash ->
          Obs.Metrics.incr crashes;
          Printf.eprintf "oqf: injected crash at %s\n%!" site;
          Stdlib.exit 137)

let corrupting site payload =
  ensure ();
  match !state with
  | None -> payload
  | Some _ ->
      Mutex.lock lock;
      let inject =
        match !state with
        | None -> false
        | Some st -> (
            let c = st.config in
            match c.only with
            | Some s when s <> site -> false
            | _ ->
                let may =
                  match c.burst with
                  | None -> true
                  | Some b ->
                      (try Hashtbl.find st.consec site with Not_found -> 0) < b
                in
                if may && c.corrupt > 0. && Prng.float st.rng 1.0 < c.corrupt
                then begin
                  ignore (bump st.consec site);
                  true
                end
                else begin
                  Hashtbl.replace st.consec site 0;
                  false
                end)
      in
      Mutex.unlock lock;
      if inject && String.length payload > 0 then begin
        Obs.Metrics.incr injected;
        let b = Bytes.of_string payload in
        let i = Bytes.length b / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        Bytes.to_string b
      end
      else payload
