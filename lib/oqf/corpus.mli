(** Querying a collection of files.

    The paper's motivation is the {e file system}: "a multitude of
    bibliographic files … each one of the members of a research group
    keeps several such files" (§2).  A corpus holds one indexed source
    per file and evaluates a query against every file, merging the
    answers — the index work stays proportional to the matches, never
    to the number or size of files.

    Join queries bind their variables within one file at a time (each
    file is one database view); cross-file joins would require a shared
    load and are out of the paper's scope. *)

type t

val make :
  Fschema.View.t ->
  (string * Pat.Text.t) list ->
  index:string list ->
  (t, string) result
(** Index each named file.  Fails on the first file that does not parse
    under the view's grammar, naming it. *)

val make_full :
  Fschema.View.t -> (string * Pat.Text.t) list -> (t, string) result
(** Full indexing for every file. *)

val of_catalog : Oqf_catalog.Catalog.t -> schema:string -> (t, string) result
(** The corpus of every catalogued file of one schema, served from the
    catalog's persisted indices through its instance cache — no
    re-parsing.  The caller decides whether to
    {!Oqf_catalog.Catalog.refresh_all} first; entries are loaded as
    persisted. *)

val of_catalog_robust :
  Oqf_catalog.Catalog.t ->
  schema:string ->
  (t * Degrade.t list, string) result
(** Like {!of_catalog}, but an entry that cannot be served any more —
    its index is dead and {!Oqf_catalog.Catalog.load}'s self-healing
    could not rebuild it — is excluded from the corpus with a
    {!Degrade.Excluded} note instead of failing the whole corpus.
    Fails only for an unknown schema. *)

val of_snapshot :
  Oqf_catalog.Catalog.snapshot ->
  schema:string ->
  (t * Degrade.t list, string) result
(** The corpus of a pinned catalog generation
    ({!Oqf_catalog.Catalog.pin}): every load goes through
    {!Oqf_catalog.Catalog.snapshot_load}, so the rows any query
    computes over it are byte-identical to the pinned generation's
    even while a writer commits newer ones.  Loads are read-only (no
    healing); a file whose pinned index is unreadable is excluded
    with a {!Degrade.Excluded} note.  Fails only for an unknown
    schema. *)

val of_sources : (string * Execute.source) list -> t
(** Wrap already-built sources (e.g. a single file the CLI just
    indexed) without re-indexing anything. *)

val files : t -> string list
val source : t -> string -> Execute.source option

val sources : t -> (string * Execute.source) list
(** Every (file, source) pair in corpus order — the unit the Exec
    sharding layer partitions across domains. *)

type outcome = {
  rows : (string * Odb.Query_eval.row) list;
      (** each answer row tagged with the file it came from *)
  per_file : (string * Execute.outcome) list;
  stats : Stdx.Stats.t;  (** summed query-time work *)
}

val run :
  ?optimize:bool ->
  ?minimize:bool ->
  ?force:bool ->
  ?plan_mode:Oqf_cost.Planner.mode ->
  t ->
  Odb.Query.t ->
  (outcome, string) result
(** [force] and [plan_mode] are passed to {!Execute.run}: execute
    despite error-severity static-analysis findings / select the
    rule-based or cost-based planner. *)
