type origin = Memory | Disk

type source = {
  view : Fschema.View.t;
  text : Pat.Text.t;
  instance : Pat.Instance.t;
  env : Compile.env;
  query_rig : Ralg.Rig.t;
  origin : origin;
}

let make_source ?(origin = Memory) view text ~index =
  match Fschema.View.index_file view text ~keep:index with
  | Error e -> Error e
  | Ok instance ->
      let env = Compile.env view ~index in
      Ok
        {
          view;
          text;
          instance;
          env;
          query_rig = Ralg.Rig.partial env.Compile.full_rig ~keep:index;
          origin;
        }

let make_source_full view text =
  make_source view text
    ~index:(Fschema.Grammar.indexable view.Fschema.View.grammar)

let source_of_instance ?(origin = Memory) view instance =
  let index = Pat.Instance.names instance in
  let env = Compile.env view ~index in
  {
    view;
    text = Pat.Instance.text instance;
    instance;
    env;
    query_rig = Ralg.Rig.partial env.Compile.full_rig ~keep:index;
    origin;
  }

type outcome = {
  rows : Odb.Query_eval.row list;
  plan : Plan.t;
  diagnostics : Analysis.Diagnostic.t list;
  evaluated : (string * Ralg.Expr.t) list;
  candidates_count : int;
  answers_count : int;
  join_assisted : bool;
  stats : Stdx.Stats.t;
  rewrites : Ralg.Optimizer.rewrite list;
  annotations : (string * Ralg.Annot.t) list;
  plan_mode : Oqf_cost.Planner.mode;
  decisions : (string * Oqf_cost.Planner.decision) list;
  est_cost : float;
}

let query_latency_ms = Obs.Metrics.histogram "query.latency_ms"
let query_answers = Obs.Metrics.histogram "query.answers"
let query_candidates = Obs.Metrics.histogram "query.candidates"

(* The unlabelled histograms above are kept as aliases (dashboards and
   the O1/obs cram expectations read them); runs against a built-in
   schema additionally record under a workload-labelled name so
   --metrics can tell corpora apart.  Labelled handles are interned per
   workload — create-or-get in the registry is mutex-protected, but
   there is no need to pay it per query. *)
let labelled_histograms =
  let table : (string, Obs.Metrics.histogram * Obs.Metrics.histogram * Obs.Metrics.histogram) Hashtbl.t =
    Hashtbl.create 8
  in
  let lock = Mutex.create () in
  fun workload ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match Hashtbl.find_opt table workload with
        | Some hs -> hs
        | None ->
            let h suffix =
              Obs.Metrics.histogram
                (Obs.Label.render ("query." ^ suffix) [ ("workload", workload) ])
            in
            let hs = (h "latency_ms", h "answers", h "candidates") in
            Hashtbl.replace table workload hs;
            hs)

let observe_query ?workload ~view ~latency_ms ~answers ~candidates () =
  let obs (lat_h, ans_h, cand_h) =
    Obs.Metrics.observe lat_h latency_ms;
    Obs.Metrics.observe ans_h (float_of_int answers);
    Obs.Metrics.observe cand_h (float_of_int candidates)
  in
  obs (query_latency_ms, query_answers, query_candidates);
  match
    match workload with
    | Some w when w <> "" -> Some w
    | _ -> Oqf_catalog.Schemas.name_of_view view
  with
  | Some workload -> obs (labelled_histograms workload)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* §5.2 join assist.

   For a top-level conjunct [v1.p1 = v2.p2], use the region index to
   project the regions of both paths out of the current candidate
   sets, read their texts, intersect the two string sets, and climb
   back from the matching regions to shrink both candidate sets.  The
   result is still a superset of the true answers (the intersection of
   supersets contains the intersection of the true value sets), so the
   phase-2 re-filter stays correct. *)

module Join_assist = struct
  module Sset = Set.Make (String)

  let conjuncts pred =
    let rec go acc = function
      | Odb.Query.And (a, b) -> go (go acc a) b
      | p -> p :: acc
    in
    go [] pred

  (* Final-attribute regions of [path] within [cands], by descending
     the indexed attribute chain with strict ⊂d (strictness matters for
     self-nested names; elsewhere it coincides with ⊂d). *)
  let project src ~attrs ~cands =
    let context = Pat.Instance.universe src.instance in
    List.fold_left
      (fun acc attr ->
        Pat.Region_set.directly_included_strict ~context
          (Pat.Instance.find src.instance attr)
          acc)
      cands attrs

  (* Climb from matching final regions back to candidate roots with
     strict ⊃d. *)
  let climb src ~attrs ~cands ~finals =
    let context = Pat.Instance.universe src.instance in
    match List.rev attrs with
    | [] -> cands
    | _final :: above ->
        (* [finals] are already regions of the last attribute *)
        let inner =
          List.fold_left
            (fun acc attr ->
              Pat.Region_set.directly_including_strict ~context
                (Pat.Instance.find src.instance attr)
                acc)
            finals above
        in
        Pat.Region_set.directly_including_strict ~context cands inner

  let side_info src bindings (rp : Odb.Query.rooted_path) =
    match List.assoc_opt rp.Odb.Query.var bindings with
    | Some (vp, `Regions cands) -> begin
        match
          Compile.indexed_path_attrs src.env ~root:vp.Plan.root
            rp.Odb.Query.path
        with
        | Some attrs -> Some (rp.Odb.Query.var, attrs, cands)
        | None -> None
      end
    | _ -> None

  (* Returns refined (var, region set) pairs for the conjunct, if the
     assist applies. *)
  let refine src bindings a b =
    match (side_info src bindings a, side_info src bindings b) with
    | Some (va, attrs_a, cands_a), Some (vb, attrs_b, cands_b) ->
        let finals_a = project src ~attrs:attrs_a ~cands:cands_a in
        let finals_b = project src ~attrs:attrs_b ~cands:cands_b in
        let texts regions =
          List.map
            (fun r -> (Pat.Region.text src.text r, r))
            (Pat.Region_set.to_list regions)
        in
        let ta = texts finals_a and tb = texts finals_b in
        let words l = Sset.of_list (List.map fst l) in
        let matched = Sset.inter (words ta) (words tb) in
        let keep l =
          Pat.Region_set.of_list
            (List.filter_map
               (fun (w, r) -> if Sset.mem w matched then Some r else None)
               l)
        in
        let refined_a =
          climb src ~attrs:attrs_a ~cands:cands_a ~finals:(keep ta)
        in
        let refined_b =
          climb src ~attrs:attrs_b ~cands:cands_b ~finals:(keep tb)
        in
        Some [ (va, refined_a); (vb, refined_b) ]
    | _ -> None

  (* Apply every applicable Eq_paths conjunct. *)
  let apply src (q : Odb.Query.t) bindings =
    let assisted = ref false in
    let bindings = ref bindings in
    List.iter
      (function
        | Odb.Query.Eq_paths (a, b) when a.Odb.Query.var <> b.Odb.Query.var
          -> begin
            match refine src !bindings a b with
            | Some updates ->
                assisted := true;
                bindings :=
                  List.map
                    (fun (var, (vp, c)) ->
                      match List.assoc_opt var updates with
                      | Some rs when c <> `Full_scan -> (var, (vp, `Regions rs))
                      | _ -> (var, (vp, c)))
                    !bindings
            | None -> ()
          end
        | _ -> ())
      (conjuncts q.Odb.Query.where);
    (!bindings, !assisted)
end

(* §6.2's query pushing, object-construction side: the conjuncts of the
   WHERE clause that mention only one variable can be tested on each
   candidate object as soon as it is parsed, so objects that fail them
   are never loaded into the scratch database. *)
let single_var_filter (q : Odb.Query.t) var =
  let conjuncts = Join_assist.conjuncts q.Odb.Query.where in
  let mine =
    List.filter
      (fun p ->
        match Odb.Query.pred_vars p with
        | [] -> false
        | vars -> List.for_all (String.equal var) vars)
      conjuncts
  in
  match mine with
  | [] -> fun _ -> true
  | preds ->
      fun v ->
        List.for_all (fun p -> Odb.Query_eval.matches [ (var, v) ] p) preds

(* Parse one candidate region as an occurrence of [symbol]. *)
let materialize_region src ~symbol (r : Pat.Region.t) =
  let parse () =
    match
      Fschema.Parser_engine.parse_at src.view.Fschema.View.grammar src.text
        ~symbol ~start:r.start ~stop:r.stop
    with
    | Ok tree -> Ok (Fschema.Builder.value_of_tree src.text tree)
    | Error e ->
        Error
          (Format.asprintf "candidate region %a of %s does not parse: %a"
             Pat.Region.pp r symbol Fschema.Parser_engine.pp_error e)
  in
  if not (Obs.Trace.enabled ()) then parse ()
  else begin
    let b0 = Stdx.Stats.(value bytes_parsed) in
    let span = Obs.Trace.begin_span "phase2.parse" in
    let res = parse () in
    Obs.Trace.end_span span
      ~attrs:
        [
          ("symbol", Obs.Trace.Str symbol);
          ("start", Obs.Trace.Int r.start);
          ("stop", Obs.Trace.Int r.stop);
          ("bytes_parsed", Obs.Trace.Int (Stdx.Stats.(value bytes_parsed) - b0));
          ("ok", Obs.Trace.Bool (Result.is_ok res));
        ];
    res
  end

let run ?(optimize = true) ?minimize ?(join_assist = true) ?(explain = false)
    ?(force = false) ?(lazy_phase1 = false)
    ?(plan_mode = Oqf_cost.Planner.Rules) ?qctx src (q : Odb.Query.t) =
  let minimize =
    match minimize with
    | Some m -> m
    | None -> plan_mode = Oqf_cost.Planner.Cost_based
  in
  let before = Stdx.Stats.snapshot () in
  (* per-name statistics for the cost-based planner, built once per
     run and only when that mode is on *)
  let cost_stats = lazy (Oqf_cost.Stats.of_instance src.instance) in
  let t0 = Obs.Trace.now_ms () in
  let root =
    if Obs.Trace.enabled () then Obs.Trace.begin_span "query.run"
    else Obs.Trace.null
  in
  let schema_name =
    Option.value (Oqf_catalog.Schemas.name_of_view src.view) ~default:""
  in
  let qlog_finish latency_ms result =
    (* Only executions handed an explicit correlation context log here:
       the driver logs one record per driven query itself, so its
       per-file calls must not produce a second record each. *)
    match (qctx, Obs.Qlog.installed ()) with
    | Some ctx, Some log ->
        let record ~rows ~outcome ?error ?candidates ?est_cost () =
          Obs.Qlog.append log
            (Obs.Qlog.make ~ctx ~workload_default:schema_name
               ~schema:schema_name ~kind:"query"
               ~query:(Odb.Query.to_string q) ~latency_ms ~rows ~cached:false
               ~shards:0 ~outcome ?error ?candidates ?est_cost ())
        in
        (match result with
        | Ok o ->
            record ~rows:o.answers_count ~outcome:"ok"
              ~candidates:o.candidates_count ~est_cost:o.est_cost ()
        | Error e -> record ~rows:0 ~outcome:"error" ~error:e ())
    | _ -> ()
  in
  let finish result =
    let latency_ms = Obs.Trace.now_ms () -. t0 in
    qlog_finish latency_ms result;
    (match result with
    | Ok o ->
        observe_query
          ?workload:(Option.map (fun (c : Obs.Qlog.ctx) -> c.workload) qctx)
          ~view:src.view ~latency_ms ~answers:o.answers_count
          ~candidates:o.candidates_count ();
        if Obs.Trace.enabled () then
          Obs.Trace.end_span root
            ~attrs:
              [
                ("answers", Obs.Trace.Int o.answers_count);
                ("candidates", Obs.Trace.Int o.candidates_count);
                ("join_assisted", Obs.Trace.Bool o.join_assisted);
              ]
    | Error e ->
        Obs.Metrics.observe query_latency_ms latency_ms;
        if Obs.Trace.enabled () then
          Obs.Trace.end_span root ~attrs:[ ("error", Obs.Trace.Str e) ]);
    result
  in
  finish
  @@
  match Obs.Trace.with_span "query.compile" (fun () -> Compile.compile src.env q) with
  | Error e -> Error e
  | Ok plan ->
      let diagnostics =
        Obs.Trace.with_span "query.analyze" @@ fun () ->
        (* in cost mode the checker prices expressions with the same
           model the planner minimizes, so OQF006 and plan selection
           can never disagree about a query's estimated cost *)
        let cost =
          match plan_mode with
          | Oqf_cost.Planner.Rules -> Ralg.Cost.of_instance src.instance
          | Oqf_cost.Planner.Cost_based ->
              Oqf_cost.Model.legacy (Lazy.force cost_stats)
        in
        Check.plan_diagnostics ~text:(Odb.Query.to_string q) ~cost src.env
          ~query_rig:src.query_rig plan
      in
      if (not force) && Analysis.Diagnostic.has_errors diagnostics then
        Error (Check.refusal diagnostics)
      else begin
      let rewrites = ref [] in
      let annots = ref [] in
      let decisions = ref [] in
      let maybe_optimize ~label e =
        (* containment-based minimization runs before planning: dropped
           conjuncts never reach the plan enumerator, and the rewrite
           log records the substitution like any other rule *)
        let e =
          if not minimize then e
          else begin
            let e' = Analysis.Contain.minimize src.query_rig e in
            if not (Ralg.Expr.equal e' e) then
              rewrites :=
                !rewrites
                @ [
                    {
                      Ralg.Optimizer.rule = "minimize";
                      detail =
                        Printf.sprintf "%s => %s" (Ralg.Expr.to_string e)
                          (Ralg.Expr.to_string e');
                    };
                  ];
            e'
          end
        in
        if not optimize then e
        else
          match plan_mode with
          | Oqf_cost.Planner.Rules ->
              let e', rws = Ralg.Optimizer.optimize_logged src.query_rig e in
              rewrites := !rewrites @ rws;
              e'
          | Oqf_cost.Planner.Cost_based ->
              let d =
                Oqf_cost.Planner.choose ~stats:(Lazy.force cost_stats)
                  ~rig:src.query_rig e
              in
              rewrites := !rewrites @ d.Oqf_cost.Planner.rewrites;
              decisions := (label, d) :: !decisions;
              d.Oqf_cost.Planner.chosen
      in
      let eval_candidates label e =
        if explain then begin
          let r, a = Ralg.Eval.eval_shared_annotated src.instance e in
          annots := (label, a) :: !annots;
          r
        end
        else if lazy_phase1 then
          (* the serve daemon's pull-based path; byte-identical to
             eval_shared (qcheck), minus subexpression sharing *)
          Ralg.Lazy_eval.to_set (Ralg.Lazy_eval.eval src.instance e)
        else Ralg.Eval.eval_shared src.instance e
      in
      let exception Fail of string in
      try
        (* phase 1: candidate regions per variable *)
        let evaluated = ref [] in
        let candidates =
          Obs.Trace.with_span "query.phase1" @@ fun () ->
          List.map
            (fun (vp : Plan.var_plan) ->
              match vp.Plan.candidates with
              | Plan.Empty -> (vp, `Regions Pat.Region_set.empty)
              | Plan.All -> (vp, `Full_scan)
              | Plan.Expr e ->
                  let e =
                    if Ralg.Trivial.check src.query_rig e then begin
                      evaluated := (vp.Plan.var, e) :: !evaluated;
                      None
                    end
                    else begin
                      let e = maybe_optimize ~label:vp.Plan.var e in
                      evaluated := (vp.Plan.var, e) :: !evaluated;
                      Some e
                    end
                  in
                  let regions =
                    match e with
                    | None -> Pat.Region_set.empty
                    | Some e ->
                        Obs.Trace.with_span
                          ("phase1." ^ vp.Plan.var)
                          (fun () -> eval_candidates vp.Plan.var e)
                  in
                  (vp, `Regions regions))
            plan.Plan.var_plans
        in
        (* §5.2 index-assisted join refinement *)
        let candidates, join_assisted =
          if not join_assist then (candidates, false)
          else begin
            Obs.Trace.with_span "query.join_assist" @@ fun () ->
            let bindings =
              List.map
                (fun ((vp : Plan.var_plan), c) -> (vp.Plan.var, (vp, c)))
                candidates
            in
            let bindings, assisted = Join_assist.apply src q bindings in
            (List.map snd bindings, assisted)
          end
        in
        let candidates_count =
          List.fold_left
            (fun acc (_, c) ->
              match c with
              | `Regions rs -> acc + Pat.Region_set.cardinal rs
              | `Full_scan -> acc)
            0 candidates
        in
        (* index-only projection fast path *)
        let all_projections =
          plan.Plan.select_plans <> []
          && List.for_all
               (function Plan.Project_regions _ -> true | _ -> false)
               plan.Plan.select_plans
          && List.length plan.Plan.select_plans = 1
        in
        let rows =
          Obs.Trace.with_span "query.phase2" @@ fun () ->
          if plan.Plan.exact && all_projections then begin
            match plan.Plan.select_plans with
            | [ Plan.Project_regions e ] ->
                let e = maybe_optimize ~label:"<select>" e in
                evaluated := ("<select>", e) :: !evaluated;
                let regions = eval_candidates "<select>" e in
                List.sort_uniq (List.compare Odb.Value.compare)
                  (List.map
                     (fun r -> [ Odb.Value.Str (Pat.Region.text src.text r) ])
                     (Pat.Region_set.to_list regions))
            | _ -> assert false
          end
          else begin
            (* phase 2: materialise candidates into a scratch database,
               pushing single-variable conjuncts into the load (§6.2).
               Each variable gets its own scratch extent: two variables
               over the same class have different candidate sets, and
               sharing one extent would cross-contaminate them. *)
            let scratch_class (vp : Plan.var_plan) =
              vp.Plan.class_name ^ "/" ^ vp.Plan.var
            in
            let db = Odb.Database.create () in
            List.iter
              (fun ((vp : Plan.var_plan), c) ->
                let keep =
                  if plan.Plan.exact then fun _ -> true
                  else single_var_filter q vp.Plan.var
                in
                match c with
                | `Regions rs ->
                    Pat.Region_set.iter
                      (fun r ->
                        match
                          materialize_region src ~symbol:vp.Plan.root r
                        with
                        | Ok v ->
                            if keep v then
                              Odb.Database.insert db
                                ~class_name:(scratch_class vp) v
                        | Error e -> raise (Fail e))
                      rs
                | `Full_scan -> begin
                    (* no index support: parse the whole file *)
                    match Fschema.View.load_file src.view src.text with
                    | Ok full ->
                        Odb.Database.insert_all db
                          ~class_name:(scratch_class vp)
                          (Odb.Database.extent full vp.Plan.class_name)
                    | Error e -> raise (Fail e)
                  end)
              candidates;
            let residual_query =
              {
                q with
                Odb.Query.from_ =
                  List.map
                    (fun (_, v) ->
                      let vp =
                        List.find
                          (fun ((vp : Plan.var_plan), _) -> vp.Plan.var = v)
                          candidates
                        |> fst
                      in
                      (scratch_class vp, v))
                    q.Odb.Query.from_;
                where =
                  (if plan.Plan.exact then Odb.Query.True else q.Odb.Query.where);
              }
            in
            Odb.Query_eval.eval db residual_query
          end
        in
        let after = Stdx.Stats.snapshot () in
        Ok
          {
            rows;
            plan;
            diagnostics;
            evaluated = List.rev !evaluated;
            candidates_count;
            answers_count = List.length rows;
            join_assisted;
            stats = Stdx.Stats.diff ~before ~after;
            rewrites = !rewrites;
            annotations = List.rev !annots;
            plan_mode;
            decisions = List.rev !decisions;
            est_cost =
              List.fold_left
                (fun acc (_, (d : Oqf_cost.Planner.decision)) ->
                  acc +. d.est.Oqf_cost.Model.cost)
                0.0 !decisions;
          }
      with Fail e -> Error e
    end

(* A query-level defect: the query would fail identically on every
   file, so degradation must surface it instead of excluding files. *)
let semantic_error view (q : Odb.Query.t) =
  let unknown =
    List.find_map
      (fun (cls, _) ->
        match Fschema.View.class_nonterm view cls with
        | None -> Some cls
        | Some _ -> None)
      q.Odb.Query.from_
  in
  match (Odb.Query.validate q, unknown) with
  | Error e, _ -> Some e
  | Ok (), Some cls -> Some ("unknown class: " ^ cls)
  | Ok (), None -> None

let run_baseline view text q =
  let before = Stdx.Stats.snapshot () in
  (* mirror the planner's validation: the baseline must reject a query
     it cannot answer, not return an empty extent with exit 0 *)
  match semantic_error view q with
  | Some e -> Error e
  | None -> begin
      match Fschema.View.load_file view text with
      | Error e -> Error e
      | Ok db ->
          let rows = Odb.Query_eval.eval db q in
          let after = Stdx.Stats.snapshot () in
          Ok (rows, Stdx.Stats.diff ~before ~after)
    end

let fallback_naive = Obs.Metrics.counter "fallback.naive"

(* The §3.1 degradation fallback: answer from the raw file, no index.
   Disk-backed sources are re-read (their in-memory text came from a
   possibly-damaged index); a source that cannot be read any more has
   no remaining path to its data. *)
let run_naive ~file src q =
  let text =
    match src.origin with
    | Memory -> Ok src.text
    | Disk ->
        if not (Sys.file_exists file) then
          Error (file ^ ": source file is unreadable")
        else begin
          match Pat.Text.of_file file with
          | text -> Ok text
          | exception Sys_error e -> Error e
          | exception Stdx.Fault.Injected _ ->
              Error (file ^ ": source file is unreadable")
        end
  in
  match text with
  | Error _ as e -> e
  | Ok text -> begin
      match run_baseline src.view text q with
      | Error _ as e -> e
      | Ok (rows, _stats) ->
          Obs.Metrics.incr fallback_naive;
          if Obs.Trace.enabled () then
            Obs.Trace.instant "fallback.naive"
              ~attrs:[ ("file", Obs.Trace.Str file) ];
          Ok rows
    end
