let pp ?(show_times = false) ~source ppf (o : Execute.outcome) =
  let estimate = Ralg.Cost.of_instance source.Execute.instance in
  Format.fprintf ppf "%a@." Plan.pp o.Execute.plan;
  (* before [rewrites:] — the obs cram slices the output from that
     line on, and must stay byte-identical *)
  (match o.Execute.diagnostics with
  | [] -> Format.fprintf ppf "diagnostics: (none)@."
  | ds ->
      Format.fprintf ppf "diagnostics:@.";
      List.iter
        (fun d -> Format.fprintf ppf "  %a@." Analysis.Diagnostic.pp d)
        ds);
  (match o.Execute.rewrites with
  | [] -> Format.fprintf ppf "rewrites: (none)@."
  | rws ->
      Format.fprintf ppf "rewrites:@.";
      List.iter
        (fun (rw : Ralg.Optimizer.rewrite) ->
          Format.fprintf ppf "  %s: %s@." rw.Ralg.Optimizer.rule
            rw.Ralg.Optimizer.detail)
        rws);
  (match o.Execute.annotations with
  | [] -> ()
  | annots ->
      Format.fprintf ppf "analyze:@.";
      List.iter
        (fun (label, annot) ->
          Format.fprintf ppf "  %s: %s@." label
            (Ralg.Expr.to_string annot.Ralg.Annot.expr);
          let body = Format.asprintf "%a" (Ralg.Annot.pp ~estimate ~show_times) annot in
          String.split_on_char '\n' body
          |> List.iter (fun line ->
                 if line <> "" then Format.fprintf ppf "    %s@." line))
        annots;
      let sum f =
        List.fold_left (fun acc (_, a) -> acc + f a) 0 annots
      in
      Format.fprintf ppf "  analyzed totals: ops=%d cmps=%d lookups=%d@."
        (sum Ralg.Annot.total_ops) (sum Ralg.Annot.total_cmps)
        (sum Ralg.Annot.total_lookups));
  Format.fprintf ppf "candidates: %d  answers: %d%s@." o.Execute.candidates_count
    o.Execute.answers_count
    (if o.Execute.join_assisted then "  (join-assisted)" else "");
  Format.fprintf ppf "stats: %a@." Stdx.Stats.pp o.Execute.stats
