let pp ?(show_times = false) ~source ppf (o : Execute.outcome) =
  let estimate = Ralg.Cost.of_instance source.Execute.instance in
  (* cost mode prices with the statistics model and shows estimated
     rows beside each node's actuals; rules mode keeps the PR 2 output
     byte-identical (the obs cram pins it) *)
  let cost_based = o.Execute.plan_mode = Oqf_cost.Planner.Cost_based in
  let estimate, est_rows =
    if cost_based then begin
      let stats = Oqf_cost.Stats.of_instance source.Execute.instance in
      ( (fun e -> Oqf_cost.Model.legacy stats e),
        Some (fun e -> Oqf_cost.Model.rows stats e) )
    end
    else (estimate, None)
  in
  Format.fprintf ppf "%a@." Plan.pp o.Execute.plan;
  (* before [rewrites:] — the obs cram slices the output from that
     line on, and must stay byte-identical *)
  (match o.Execute.diagnostics with
  | [] -> Format.fprintf ppf "diagnostics: (none)@."
  | ds ->
      Format.fprintf ppf "diagnostics:@.";
      List.iter
        (fun d -> Format.fprintf ppf "  %a@." Analysis.Diagnostic.pp d)
        ds);
  (match o.Execute.rewrites with
  | [] -> Format.fprintf ppf "rewrites: (none)@."
  | rws ->
      Format.fprintf ppf "rewrites:@.";
      List.iter
        (fun (rw : Ralg.Optimizer.rewrite) ->
          Format.fprintf ppf "  %s: %s@." rw.Ralg.Optimizer.rule
            rw.Ralg.Optimizer.detail)
        rws);
  (match o.Execute.decisions with
  | [] -> if cost_based then Format.fprintf ppf "cost plan: (no choices)@."
  | ds ->
      Format.fprintf ppf "cost plan:@.";
      List.iter
        (fun (label, (d : Oqf_cost.Planner.decision)) ->
          Format.fprintf ppf
            "  %s: %s (considered %d, est cost %.1f, est rows %.0f)@." label
            d.tag d.considered d.est.Oqf_cost.Model.cost
            d.est.Oqf_cost.Model.rows)
        ds);
  (match o.Execute.annotations with
  | [] -> ()
  | annots ->
      Format.fprintf ppf "analyze:@.";
      List.iter
        (fun (label, annot) ->
          Format.fprintf ppf "  %s: %s@." label
            (Ralg.Expr.to_string annot.Ralg.Annot.expr);
          let body =
            Format.asprintf "%a"
              (Ralg.Annot.pp ~estimate ?est_rows ~show_times)
              annot
          in
          String.split_on_char '\n' body
          |> List.iter (fun line ->
                 if line <> "" then Format.fprintf ppf "    %s@." line))
        annots;
      let sum f =
        List.fold_left (fun acc (_, a) -> acc + f a) 0 annots
      in
      Format.fprintf ppf "  analyzed totals: ops=%d cmps=%d lookups=%d@."
        (sum Ralg.Annot.total_ops) (sum Ralg.Annot.total_cmps)
        (sum Ralg.Annot.total_lookups));
  Format.fprintf ppf "candidates: %d  answers: %d%s@." o.Execute.candidates_count
    o.Execute.answers_count
    (if o.Execute.join_assisted then "  (join-assisted)" else "");
  Format.fprintf ppf "stats: %a@." Stdx.Stats.pp o.Execute.stats
