(** Structured degradation reports.

    When execution under [--fail-policy partial|degrade] cannot serve
    a file from its index, each recovery step that fired is recorded
    as one entry: the shard was re-evaluated after a task failure, the
    file fell back to a §3.1 naive scan ({!Execute.run_naive}), or it
    was excluded because no path to its data remained.  Reports ride
    on {!Exec.Driver} outcomes and render under [--explain] and on
    stderr, so degraded results are never silently incomplete. *)

type action =
  | Shard_retried
      (** the whole shard failed as a task (worker death, timeout,
          injected fault) and was re-evaluated on the coordinator *)
  | Naive_fallback
      (** indexed evaluation failed; answered by parsing the raw file *)
  | Excluded
      (** no index and no readable source — the file is not in the
          result *)

type t = { file : string; action : action; detail : string }

val make : file:string -> action -> string -> t
val action_to_string : action -> string
val pp : Format.formatter -> t -> unit

val pp_report : Format.formatter -> t list -> unit
(** The [degraded:] block (nothing for an empty list). *)

val to_json : t -> string
val list_to_json : t list -> string

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal (shared with the
    CLI's other hand-rolled JSON emitters). *)
