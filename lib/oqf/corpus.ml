type t = { sources : (string * Execute.source) list }

let make view files ~index =
  let rec go acc = function
    | [] -> Ok { sources = List.rev acc }
    | (name, text) :: rest -> begin
        match Execute.make_source view text ~index with
        | Ok src -> go ((name, src) :: acc) rest
        | Error e -> Error (Printf.sprintf "%s: %s" name e)
      end
  in
  go [] files

let make_full view files =
  make view files
    ~index:(Fschema.Grammar.indexable view.Fschema.View.grammar)

let of_catalog catalog ~schema =
  match Oqf_catalog.Schemas.find_result schema with
  | Error e -> Error e
  | Ok view ->
      let rec go acc = function
        | [] -> Ok { sources = List.rev acc }
        | (e : Oqf_catalog.Catalog.entry) :: rest ->
            if e.Oqf_catalog.Catalog.schema <> schema then go acc rest
            else begin
              match Oqf_catalog.Catalog.load catalog e.source with
              | Error msg -> Error (Printf.sprintf "%s: %s" e.source msg)
              | Ok instance ->
                  go
                    (( e.source,
                       Execute.source_of_instance ~origin:Execute.Disk view
                         instance )
                    :: acc)
                    rest
            end
      in
      go [] (Oqf_catalog.Catalog.entries catalog)

(* Like [of_catalog], but an entry that cannot be served any more
   (index dead, source gone — Catalog.load already tried to heal) is
   excluded with a degradation note instead of failing the corpus. *)
let of_catalog_robust catalog ~schema =
  match Oqf_catalog.Schemas.find_result schema with
  | Error e -> Error e
  | Ok view ->
      let sources, degraded =
        List.fold_left
          (fun (srcs, degs) (e : Oqf_catalog.Catalog.entry) ->
            if e.Oqf_catalog.Catalog.schema <> schema then (srcs, degs)
            else begin
              match Oqf_catalog.Catalog.load catalog e.source with
              | Ok instance ->
                  ( ( e.source,
                      Execute.source_of_instance ~origin:Execute.Disk view
                        instance )
                    :: srcs,
                    degs )
              | Error msg ->
                  ( srcs,
                    Degrade.make ~file:e.source Degrade.Excluded msg :: degs )
            end)
          ([], [])
          (Oqf_catalog.Catalog.entries catalog)
      in
      Ok ({ sources = List.rev sources }, List.rev degraded)

(* The snapshot analogue of [of_catalog_robust]: every load goes
   through the pinned generation, read-only — no healing, no commits —
   so the corpus is byte-identical to the generation the caller
   pinned, no matter what the writer does meanwhile.  An unreadable
   index (the snapshot outlived a crashed disk, say) excludes its file
   with a degradation note. *)
let of_snapshot snapshot ~schema =
  match Oqf_catalog.Schemas.find_result schema with
  | Error e -> Error e
  | Ok view ->
      let sources, degraded =
        List.fold_left
          (fun (srcs, degs) (e : Oqf_catalog.Catalog.entry) ->
            if e.Oqf_catalog.Catalog.schema <> schema then (srcs, degs)
            else begin
              match Oqf_catalog.Catalog.snapshot_load snapshot e.source with
              | Ok instance ->
                  ( ( e.source,
                      Execute.source_of_instance ~origin:Execute.Disk view
                        instance )
                    :: srcs,
                    degs )
              | Error msg ->
                  ( srcs,
                    Degrade.make ~file:e.source Degrade.Excluded msg :: degs )
            end)
          ([], [])
          (Oqf_catalog.Catalog.snapshot_entries snapshot)
      in
      Ok ({ sources = List.rev sources }, List.rev degraded)

let of_sources sources = { sources }
let files t = List.map fst t.sources
let source t name = List.assoc_opt name t.sources
let sources t = t.sources

type outcome = {
  rows : (string * Odb.Query_eval.row) list;
  per_file : (string * Execute.outcome) list;
  stats : Stdx.Stats.t;
}

let run ?optimize ?minimize ?force ?plan_mode t q =
  let rec go rows per_file stats = function
    | [] ->
        Ok { rows = List.rev rows; per_file = List.rev per_file; stats }
    | (name, src) :: rest -> begin
        match Execute.run ?optimize ?minimize ?force ?plan_mode src q with
        | Error e -> Error (Printf.sprintf "%s: %s" name e)
        | Ok r ->
            Stdx.Stats.add stats r.Execute.stats;
            go
              (List.rev_append
                 (List.map (fun row -> (name, row)) r.Execute.rows)
                 rows)
              ((name, r) :: per_file)
              stats rest
      end
  in
  go [] [] (Stdx.Stats.create ()) t.sources
