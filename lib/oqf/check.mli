(** Static analysis of whole queries against a view (the [oqf check]
    engine).

    Two layers on top of {!Analysis.Expr_check}:

    - {e path-level}: every rooted path in SELECT/WHERE is walked over
      the {e full} RIG with the planner's own step test
      ({!Compile.step_possible}), reporting unknown attributes
      (OQF002, warning here — the planner degrades them to wildcards)
      and impossible steps (OQF005: the query can only be empty on
      files conforming to the schema);
    - {e plan-level}: each variable's candidate expression is checked
      against the query RIG (OQF001/003/004/006), and a [Plan.Empty]
      candidate set is reported as OQF001 — the compiler already
      proved the query empty.

    {!Execute.run} runs {!plan_diagnostics} before phase 1 and refuses
    error-severity findings unless forced. *)

type checked = {
  plan : Plan.t option;  (** [None] when the query failed to compile *)
  diagnostics : Analysis.Diagnostic.t list;
}

val plan_diagnostics :
  ?text:string ->
  ?cost:(Ralg.Expr.t -> Ralg.Cost.t) ->
  ?cost_threshold:float ->
  Compile.env ->
  query_rig:Ralg.Rig.t ->
  Plan.t ->
  Analysis.Diagnostic.t list
(** Diagnose a compiled plan: path-level walks over [env]'s full RIG
    plus per-variable expression checks against [query_rig].  [text]
    is the query's source text (spans); [cost] defaults to
    {!Ralg.Cost.estimate} with default cardinalities — pass
    [Ralg.Cost.of_instance] applied to an instance for true
    cardinalities.  Sorted by severity, deduplicated. *)

val query :
  ?text:string ->
  ?cost:(Ralg.Expr.t -> Ralg.Cost.t) ->
  ?cost_threshold:float ->
  Compile.env ->
  query_rig:Ralg.Rig.t ->
  Odb.Query.t ->
  checked
(** Compile then {!plan_diagnostics}.  A compile failure becomes one
    diagnostic: OQF002 for an unknown class, OQF000 otherwise. *)

val cross_query :
  (string * Odb.Query.t) list -> Analysis.Diagnostic.t list
(** The batch-level pass behind [oqf check --queries]: one OQF304
    warning per query whose answer {!Subsume.subsumes} proves
    recoverable from another query of the same batch (the labels —
    e.g. ["query 3"] — become diagnostic subjects, the superset query
    the detail).  Mutually-subsuming duplicates flag only the later
    occurrence, so one representative always stays clean. *)

val refusal : Analysis.Diagnostic.t list -> string
(** The error message {!Execute.run} returns when error-severity
    diagnostics block an unforced run: a summary line plus one
    indented line per error. *)
