(** Query-level subsumption: answering one query by filtering another
    query's cached result.

    [subsumes q ~by] decides whether [q]'s answer can be recovered
    {e exactly} from [by]'s answer on {e every} database: same SELECT
    items (rows have the same shape), same FROM bindings (the same
    binding space is enumerated), and [by]'s WHERE conjuncts are a
    sub-multiset of [q]'s — so [q] only filters further.  The leftover
    conjuncts (the {e residual}) must then be {e row-decidable}:

    - every rooted path in the residual starts at a variable the query
      SELECTs bare (empty path), so the row itself carries the value
      the predicate navigates into;
    - no [Eq_paths] atom — row values are {!Odb.Value.normalize}d and
      the conservative contract here only trusts the existential
      string atoms ([=] with a constant, [CONTAINS], [STARTS WITH]),
      which are invariant under set dedup/reordering.

    Under those conditions, {!filter_rows} applied to [by]'s result is
    byte-identical to evaluating [q] from scratch: per file the rows of
    [q] are exactly the rows of [by] whose values satisfy the residual,
    and filtering preserves the sorted-dedup row order
    {!Odb.Query_eval.eval} produces.  This is the proof obligation the
    containment-aware result cache ({!Exec.Rcache}) and the batch
    runner rely on; DESIGN §14 spells it out and the property suite
    cross-checks filtered against fresh results. *)

val conjuncts : Odb.Query.pred -> Odb.Query.pred list
(** Flatten nested [And]s, dropping [True]. *)

val subsumes : Odb.Query.t -> by:Odb.Query.t -> Odb.Query.pred option
(** [Some residual] when [q ⊑ by] with a row-decidable residual
    ([True] when the queries are equivalent up to conjunct order —
    serve the superset unfiltered); [None] otherwise. *)

val filter_rows :
  Odb.Query.t ->
  residual:Odb.Query.pred ->
  (string * Odb.Query_eval.row) list ->
  (string * Odb.Query_eval.row) list
(** Keep the tagged rows whose values satisfy the residual, binding
    each bare-SELECTed variable to its row column.  With the residual
    returned by {!subsumes}, the result is exactly what evaluating the
    subsumed query would produce. *)
