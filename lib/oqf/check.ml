module D = Analysis.Diagnostic

type checked = {
  plan : Plan.t option;
  diagnostics : D.t list;
}

(* ---------------- path-level analysis ---------------- *)

let rec pred_paths (p : Odb.Query.pred) =
  let module Q = Odb.Query in
  match p with
  | Q.True -> []
  | Q.Eq_const (rp, _) | Q.Contains (rp, _) | Q.Starts_with (rp, _) -> [ rp ]
  | Q.Eq_paths (a, b) -> [ a; b ]
  | Q.And (a, b) | Q.Or (a, b) -> pred_paths a @ pred_paths b
  | Q.Not p -> pred_paths p

let path_diags env ?text ~root (rp : Odb.Query.rooted_path) =
  let g = env.Compile.full_rig in
  let var = rp.Odb.Query.var in
  let span_of name =
    match text with
    | None -> None
    | Some text -> D.span_of_word ~text name
  in
  let path_str = var ^ "." ^ Odb.Path.to_string rp.Odb.Query.path in
  let rec go cur stars anys acc = function
    | [] -> List.rev acc
    | Odb.Path.Star :: rest -> go cur (stars + 1) anys acc rest
    | Odb.Path.Any :: rest -> go cur stars (anys + 1) acc rest
    | (Odb.Path.Attr a | Odb.Path.Plus a) :: rest ->
        if not (Ralg.Rig.mem g a) then begin
          let d =
            D.make ?span:(span_of a) ~subject:var ~code:"OQF002"
              ~severity:D.Warning
              (Printf.sprintf
                 "attribute %s names no region of the schema; the planner \
                  treats it as a wildcard"
                 a)
          in
          (* mirror the planner: an unknown attribute behaves like [*X] *)
          go cur (stars + 1) anys (d :: acc) rest
        end
        else if not (Compile.step_possible env ~src:cur ~dst:a ~stars ~anys)
        then begin
          let how =
            if stars > 0 then "no RIG walk"
            else if anys > 0 then
              Printf.sprintf "no RIG walk of length %d" (anys + 1)
            else "no RIG edge"
          in
          let d =
            D.make ?span:(span_of a) ~subject:var ~code:"OQF005"
              ~severity:D.Warning
              (Printf.sprintf
                 "path %s can never match: %s from %s to %s, so the query is \
                  empty on every file conforming to the schema"
                 path_str how cur a)
          in
          go a 0 0 (d :: acc) rest
        end
        else go a 0 0 acc rest
  in
  go root 0 0 [] rp.Odb.Query.path

(* ---------------- plan-level analysis ---------------- *)

let var_plan_diags ?text ?cost ?cost_threshold ~query_rig
    (vp : Plan.var_plan) =
  match vp.Plan.candidates with
  | Plan.All -> []
  | Plan.Empty ->
      [
        D.make ~subject:vp.Plan.var ~code:"OQF001" ~severity:D.Error
          "the candidate set is provably empty: this query returns no rows \
           on any file conforming to the schema (Prop 3.3)";
      ]
  | Plan.Expr e ->
      List.map
        (D.with_subject vp.Plan.var)
        (Analysis.Expr_check.check ?text ?cost ?cost_threshold query_rig e)

let dedup ds =
  List.rev
    (List.fold_left (fun acc d -> if List.mem d acc then acc else d :: acc) [] ds)

let plan_diagnostics ?text ?cost ?cost_threshold env ~query_rig
    (plan : Plan.t) =
  let q = plan.Plan.query in
  let root_of var =
    List.find_map
      (fun (vp : Plan.var_plan) ->
        if vp.Plan.var = var then Some vp.Plan.root else None)
      plan.Plan.var_plans
  in
  let paths = q.Odb.Query.select @ pred_paths q.Odb.Query.where in
  let path_level =
    List.concat_map
      (fun (rp : Odb.Query.rooted_path) ->
        match root_of rp.Odb.Query.var with
        | Some root -> path_diags env ?text ~root rp
        | None -> [])
      paths
  in
  let plan_level =
    List.concat_map
      (var_plan_diags ?text ?cost ?cost_threshold ~query_rig)
      plan.Plan.var_plans
  in
  D.sort (dedup (path_level @ plan_level))

let query ?text ?cost ?cost_threshold env ~query_rig q =
  match Compile.compile env q with
  | Error e ->
      let unknown_class =
        String.length e >= 14 && String.sub e 0 14 = "unknown class:"
      in
      let code = if unknown_class then "OQF002" else "OQF000" in
      { plan = None; diagnostics = [ D.make ~code ~severity:D.Error e ] }
  | Ok plan ->
      {
        plan = Some plan;
        diagnostics =
          plan_diagnostics ?text ?cost ?cost_threshold env ~query_rig plan;
      }

(* ---------------- cross-query analysis ---------------- *)

let cross_query queries =
  let arr = Array.of_list queries in
  let n = Array.length arr in
  let subsumed_by i j =
    let _, qi = arr.(i) and _, qj = arr.(j) in
    Subsume.subsumes qi ~by:qj <> None
  in
  let diags = ref [] in
  for i = n - 1 downto 0 do
    (* report the first superset; when two queries subsume each other
       (duplicates up to conjunct order) only the later one is
       flagged, so at least one copy stays unannotated *)
    let found = ref false in
    for j = 0 to n - 1 do
      if
        (not !found) && i <> j
        && subsumed_by i j
        && (j < i || not (subsumed_by j i))
      then begin
        found := true;
        let label_i, _ = arr.(i) and label_j, _ = arr.(j) in
        diags :=
          D.make ~subject:label_i ~code:"OQF304" ~severity:D.Warning
            ~detail:(Printf.sprintf "superset: %s" label_j)
            "query is subsumed by another query of the batch: its rows can \
             be recovered by filtering that query's result"
          :: !diags
      end
    done
  done;
  D.sort !diags

let refusal diags =
  let errs = D.errors diags in
  let n = List.length errs in
  String.concat "\n"
    (Printf.sprintf
       "static analysis found %d error%s (use --force to execute anyway):" n
       (if n = 1 then "" else "s")
    :: List.map (fun d -> "  " ^ D.to_string d) errs)
