(** EXPLAIN ANALYZE rendering.

    Combines the static side of an executed query — the plan and the
    optimizer rewrites that shaped it — with the actual per-node costs
    collected by {!Ralg.Eval.eval_shared_annotated} (via
    [Execute.run ~explain:true]) and the static {!Ralg.Cost} estimate
    for each node, so estimated and actual work sit side by side.

    The "analyzed totals" line sums the per-node self costs across all
    annotated trees; for plans whose index work happens entirely in
    phase 1 (no join assist) it equals the [index_ops] /
    [region_comparisons] of the outcome's {!Stdx.Stats}. *)

val pp :
  ?show_times:bool ->
  source:Execute.source ->
  Format.formatter ->
  Execute.outcome ->
  unit
(** [show_times] (default [false]) appends per-node wall-clock
    durations; leave it off for deterministic transcripts. *)
