type action = Shard_retried | Naive_fallback | Excluded

type t = { file : string; action : action; detail : string }

let make ~file action detail = { file; action; detail }

let action_to_string = function
  | Shard_retried -> "shard retried"
  | Naive_fallback -> "naive fallback"
  | Excluded -> "excluded"

let pp ppf t =
  let verb =
    match t.action with
    | Shard_retried -> "re-evaluated directly after a task failure"
    | Naive_fallback -> "fell back to a naive scan"
    | Excluded -> "excluded from the result"
  in
  Format.fprintf ppf "%s: %s (%s)" t.file verb t.detail

let pp_report ppf = function
  | [] -> ()
  | ds ->
      Format.fprintf ppf "degraded:@\n";
      List.iter (fun d -> Format.fprintf ppf "  %a@\n" pp d) ds

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  Printf.sprintf {|{"file":"%s","action":"%s","detail":"%s"}|}
    (json_escape t.file)
    (json_escape (action_to_string t.action))
    (json_escape t.detail)

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"
