(** Two-phase query execution (§5.1 steps (i)–(iv), §6.2).

    Phase 1 evaluates the (optimized) candidate expressions on the
    indexing engine.  Phase 2 materialises candidate regions by parsing
    just those byte ranges and — unless the plan is exact — re-filters
    them with the database evaluator.  Index-only projections skip
    parsing entirely. *)

type origin = Memory | Disk
(** Where a source's bytes authoritatively live: [Memory] sources own
    their text (generated corpora, tests), [Disk] sources mirror a
    file that can be re-read — the degradation fallback re-reads it,
    and treats a vanished file as data loss. *)

type source = {
  view : Fschema.View.t;
  text : Pat.Text.t;
  instance : Pat.Instance.t;
  env : Compile.env;
  query_rig : Ralg.Rig.t;  (** the RIG of the indexed names, used by the
                               optimizer *)
  origin : origin;
}

val make_source :
  ?origin:origin ->
  Fschema.View.t -> Pat.Text.t -> index:string list -> (source, string) result
(** Parse the text once (index construction may scan) and build the
    word and region indices for [index].  [origin] defaults to
    [Memory]. *)

val make_source_full : Fschema.View.t -> Pat.Text.t -> (source, string) result
(** Index every non-root non-terminal. *)

val source_of_instance :
  ?origin:origin -> Fschema.View.t -> Pat.Instance.t -> source
(** Build a source from an already-constructed (e.g. persisted and
    reloaded) instance; the index names are the instance's region
    names.  [origin] defaults to [Memory]. *)

type outcome = {
  rows : Odb.Query_eval.row list;
  plan : Plan.t;
  diagnostics : Analysis.Diagnostic.t list;
      (** the static-analysis findings for the plan ({!Check}), sorted
          by severity; warnings and hints when the run proceeded,
          possibly errors too under [~force:true] *)
  evaluated : (string * Ralg.Expr.t) list;
      (** per variable, the expression actually evaluated (after
          optimization if enabled) *)
  candidates_count : int;  (** candidate regions across variables *)
  answers_count : int;
  join_assisted : bool;
      (** a §5.2 join refinement ran: path regions were projected, their
          texts joined, and the candidate sets shrunk before parsing *)
  stats : Stdx.Stats.t;  (** query-time work only *)
  rewrites : Ralg.Optimizer.rewrite list;
      (** optimizer rewrites applied to the candidate expressions, in
          application order; empty with [~optimize:false] *)
  annotations : (string * Ralg.Annot.t) list;
      (** with [~explain:true], the per-node actual-cost tree for each
          evaluated expression, keyed like [evaluated]; [[]] otherwise *)
  plan_mode : Oqf_cost.Planner.mode;
      (** which planner picked the evaluated expressions *)
  decisions : (string * Oqf_cost.Planner.decision) list;
      (** in cost mode, the plan selection per evaluated expression
          (keyed like [evaluated]); [[]] in rules mode *)
  est_cost : float;
      (** summed estimated cost of the chosen plans (0 in rules mode);
          recorded in the qlog for estimate-vs-actual calibration *)
}

val run :
  ?optimize:bool ->
  ?minimize:bool ->
  ?join_assist:bool ->
  ?explain:bool ->
  ?force:bool ->
  ?lazy_phase1:bool ->
  ?plan_mode:Oqf_cost.Planner.mode ->
  ?qctx:Obs.Qlog.ctx ->
  source ->
  Odb.Query.t ->
  (outcome, string) result
(** [optimize] defaults to [true]; pass [false] to execute the naive
    translation (benchmark E1).  [minimize] runs
    {!Analysis.Contain.minimize} on every candidate expression before
    planning, dropping provably-redundant conjuncts and subsumed union
    arms; it defaults to on under [Cost_based] and off under [Rules],
    and logs its substitutions as ["minimize"] rewrites.
    [join_assist] defaults to [true]; pass
    [false] to skip the §5.2 join refinement (benchmark E6).
    [plan_mode] (default [Rules]) selects the optimizer: [Rules] is
    the paper's Prop 3.5 rewrite system; [Cost_based] enumerates the
    rewrite-equivalent plans and picks by {!Oqf_cost.Model} estimate —
    byte-identical rows either way, only the work differs.
    [explain] (default [false]) evaluates phase 1 through
    {!Ralg.Eval.eval_shared_annotated} and fills [annotations] — the
    EXPLAIN ANALYZE path.  [lazy_phase1] (default [false]) evaluates
    phase 1 through the pull-based {!Ralg.Lazy_eval} instead of the
    materialized shared evaluator — same rows (qcheck-verified), no
    common-subexpression sharing; the serve daemon's path.  Ignored
    under [explain].

    Static analysis ({!Check.plan_diagnostics}) runs between compiling
    and phase 1.  Error-severity findings — the plan is provably empty
    on every conforming file (Prop 3.3) — refuse execution with
    {!Check.refusal} unless [force] (default [false]) is set; the
    findings of a run that proceeds are in the outcome's
    [diagnostics].

    Every run observes the [query.latency_ms], [query.answers] and
    [query.candidates] registry histograms; when a trace sink is
    installed the phases (i)–(iv) appear as spans ([query.compile],
    [query.analyze], [query.phase1], [query.join_assist],
    [query.phase2]) under a [query.run] root.

    [qctx] is the query-log correlation context: when present {e and}
    a log is installed ({!Obs.Qlog.install}), the run appends one qlog
    record carrying [qctx]'s trace id and workload label.  Callers
    that drive many per-file runs for one logical query (the
    {!Exec.Driver}) log at their own level and leave [qctx] unset
    here. *)

val run_baseline :
  Fschema.View.t ->
  Pat.Text.t ->
  Odb.Query.t ->
  (Odb.Query_eval.row list * Stdx.Stats.t, string) result
(** The standard database implementation: parse the whole file, load
    every extent, evaluate in the database.  No indices. *)

val semantic_error : Fschema.View.t -> Odb.Query.t -> string option
(** A defect in the query itself (fails validation, or names a class
    the view does not have) — it would fail identically on every
    file, so degradation policies surface it as a query error instead
    of excluding files one by one. *)

val run_naive : file:string -> source -> Odb.Query.t ->
  (Odb.Query_eval.row list, string) result
(** The degradation fallback: answer [q] from the raw file with
    {!run_baseline} (semantics-equivalent to the indexed plan, §2/§5).
    [Disk] sources are re-read from [file]; a [Disk] source whose
    file is gone or unreadable is an error — no remaining path to the
    data.  Successful fallbacks count in the [fallback.naive]
    metric. *)
