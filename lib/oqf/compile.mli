(** Translating database queries into region expressions (§5, §6.1).

    For each FROM variable the WHERE clause is compiled into a region
    expression over the indexed names: a path
    [r.A1.A2…An = "w"] becomes the inclusion chain
    [R ⊃d A1 ⊃d … ⊃d σw(An)] restricted to the indexed names, [*X]
    variables become simple inclusion [⊃], fixed-length variables
    become depth-constrained inclusion, and boolean connectives map to
    [∪ ∩ −].  Each construct tracks whether it is {e exact} (§6.3) or a
    candidate superset (§6.2).

    Selections are placed according to how a non-terminal's text
    relates to its value: an equality against an {e atomic} carrier
    (a token rule, following pass-through wrappers) compiles to the
    exact-extent selection [σ]; anything else falls back to a
    containment selection, marked inexact. *)

type env = {
  view : Fschema.View.t;
  full_rig : Ralg.Rig.t;
  index_names : string list;
}

val env : Fschema.View.t -> index:string list -> env
(** [index] lists the region names available at query time. *)

val value_carrier : env -> string -> string
(** Follow single-child pass-through rules ([Year → "{" Year_value "}"])
    to the non-terminal whose value the name denotes. *)

val is_atomic : env -> string -> bool
(** Every rule of the name is a token rule: its region text {e is} its
    value. *)

val word_containment_exact : env -> string -> string -> bool
(** [word_containment_exact env name w]: every literal reachable in the
    name's sub-grammar is safe for the query word [w] (does not contain
    it as a word and has non-word edge characters), so containment of
    [w] over the region coincides with containment over the value's
    nested strings. *)

val step_possible :
  env -> src:string -> dst:string -> stars:int -> anys:int -> bool
(** Can a query path step from a region of [src] to one of [dst] with
    [stars] [*X] and [anys] [Xi] wildcards in between, under the full
    RIG?  ([stars > 0] asks for any walk, [anys > 0] for a walk of
    exactly [anys + 1] edges, neither for one edge.)  The Prop 3.3
    test the planner applies per path step; the static analyzer uses
    it to report {e why} a path can only be empty. *)

val compile : env -> Odb.Query.t -> (Plan.t, string) result
(** Build the plan.  Fails on validation errors (unknown class, unbound
    variable). *)

val indexed_path_attrs : env -> root:string -> Odb.Path.t -> string list option
(** For a concrete path (no [*X]/[Xi] variables), the indexed region
    names it traverses, extended to the value carrier of its final
    attribute when that carrier is indexed and atomic.  [None] when the
    path has variables, is provably impossible, ends below the indexed
    names, or its final carrier's text is not its value.  Used by the
    §5.2 join assist, which needs to read path values straight from
    region texts. *)
