module Q = Odb.Query

let rec conjunct_list p acc =
  match p with
  | Q.True -> acc
  | Q.And (a, b) -> conjunct_list a (conjunct_list b acc)
  | p -> p :: acc

let conjuncts p = conjunct_list p []

let rec remove_one x = function
  | [] -> None
  | y :: rest when y = x -> Some rest
  | y :: rest -> Option.map (fun r -> y :: r) (remove_one x rest)

(* [big] minus [small] as multisets; None when some element of [small]
   has no match left in [big]. *)
let multiset_residual ~of_:big ~minus:small =
  List.fold_left
    (fun acc c -> match acc with None -> None | Some rest -> remove_one c rest)
    (Some big) small

(* The variables whose whole object is a SELECT item, with the row
   column that carries it. *)
let bare_columns (q : Q.t) =
  List.concat
    (List.mapi
       (fun i (rp : Q.rooted_path) ->
         if rp.Q.path = [] then [ (rp.Q.var, i) ] else [])
       q.Q.select)

let rec row_decidable bare = function
  | Q.True -> true
  | Q.Eq_const (rp, _) | Q.Contains (rp, _) | Q.Starts_with (rp, _) ->
      List.mem_assoc rp.Q.var bare
  | Q.Eq_paths _ -> false
  | Q.And (a, b) | Q.Or (a, b) -> row_decidable bare a && row_decidable bare b
  | Q.Not p -> row_decidable bare p

let rebuild = function
  | [] -> Q.True
  | c :: rest -> List.fold_left (fun acc x -> Q.And (acc, x)) c rest

let subsumes (q : Q.t) ~by =
  if q.Q.select = by.Q.select && q.Q.from_ = by.Q.from_ then begin
    match
      multiset_residual ~of_:(conjuncts q.Q.where) ~minus:(conjuncts by.Q.where)
    with
    | None -> None
    | Some residual ->
        let bare = bare_columns q in
        if List.for_all (row_decidable bare) residual then
          Some (rebuild residual)
        else None
  end
  else None

let filter_rows (q : Q.t) ~residual tagged =
  if residual = Q.True then tagged
  else begin
    let bare = bare_columns q in
    List.filter
      (fun (_file, row) ->
        let bindings = List.map (fun (v, i) -> (v, List.nth row i)) bare in
        Odb.Query_eval.matches bindings residual)
      tagged
  end
