(* The log_audit scenario re-run on a growing log, through the catalog.

   The paper's file system evolves: logs only grow.  Instead of
   re-indexing the whole file after every growth spurt, a catalog
   fingerprints its sources, notices that the old contents are an
   unchanged prefix, and extends the persisted index incrementally —
   tokenizing and parsing only the appended tail.  Queries then run
   straight off the persisted index, served through an LRU instance
   cache.

   Run with: dune exec examples/catalog_growth.exe *)

let or_fail = function Ok x -> x | Error e -> failwith e

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let day n =
  (* Log_gen draws its randomness per entry, so a larger size with the
     same seed grows the file by appending whole entries. *)
  Workload.Log_gen.generate
    { (Workload.Log_gen.with_size (1000 * n)) with error_percent = 4 }

let audit cat log_path =
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  let corpus = or_fail (Oqf.Corpus.of_catalog cat ~schema:"log") in
  let r = or_fail (Oqf.Corpus.run corpus q) in
  let module Sset = Set.Make (String) in
  let services =
    List.fold_left
      (fun acc (_, row) ->
        List.fold_left
          (fun acc v -> Sset.add (Odb.Value.to_display_string v) acc)
          acc row)
      Sset.empty r.Oqf.Corpus.rows
  in
  Format.printf "  services with errors: %s  (parsed %dB — index-only)@."
    (String.concat ", " (Sset.elements services))
    r.Oqf.Corpus.stats.bytes_parsed;
  ignore log_path

let () =
  let dir = Filename.temp_file "oqf_catalog_growth" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let log_path = Filename.concat dir "app.log" in

  (* Day 1: put the log under catalog management. *)
  write_file log_path (day 1);
  let cat = or_fail (Oqf_catalog.Catalog.init (Filename.concat dir "cat")) in
  let entry = or_fail (Oqf_catalog.Catalog.add cat ~schema:"log" log_path) in
  Format.printf "day 1: indexed %s (%d bytes, %d region names)@." log_path
    entry.Oqf_catalog.Catalog.length
    (List.length entry.Oqf_catalog.Catalog.index_names);
  audit cat log_path;

  (* Day 2: the log has grown.  The catalog notices the append and
     extends the index instead of rebuilding it. *)
  write_file log_path (day 2);
  let e = Option.get (Oqf_catalog.Catalog.find cat log_path) in
  Format.printf "@.day 2: the log grew; status says %a@."
    Oqf_catalog.Catalog.pp_staleness
    (Oqf_catalog.Catalog.staleness cat e);
  let outcome = or_fail (Oqf_catalog.Catalog.refresh cat log_path) in
  Format.printf "  refresh: %a@." Oqf_catalog.Catalog.pp_refresh outcome;
  audit cat log_path;

  (* Same audit again: the instance is already in the cache. *)
  audit cat log_path;
  Format.printf "@.instance cache after both audits: %a@."
    Oqf_catalog.Instance_cache.pp_stats
    (Oqf_catalog.Instance_cache.stats (Oqf_catalog.Catalog.cache cat))
