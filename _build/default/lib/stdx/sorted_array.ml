let is_sorted ~cmp a =
  let n = Array.length a in
  let rec go i = i >= n - 1 || (cmp a.(i) a.(i + 1) < 0 && go (i + 1)) in
  go 0

let of_list ~cmp xs =
  let a = Array.of_list xs in
  Array.sort cmp a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let out = ref [ a.(n - 1) ] in
    for i = n - 2 downto 0 do
      if cmp a.(i) a.(i + 1) <> 0 then out := a.(i) :: !out
    done;
    Array.of_list !out
  end

let union ~cmp a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
  let out = Array.make (na + nb) a.(0) in
  let rec go i j k =
    if i >= na && j >= nb then k
    else if i >= na then begin out.(k) <- b.(j); go i (j + 1) (k + 1) end
    else if j >= nb then begin out.(k) <- a.(i); go (i + 1) j (k + 1) end
    else
      let c = cmp a.(i) b.(j) in
      if c < 0 then begin out.(k) <- a.(i); go (i + 1) j (k + 1) end
      else if c > 0 then begin out.(k) <- b.(j); go i (j + 1) (k + 1) end
      else begin out.(k) <- a.(i); go (i + 1) (j + 1) (k + 1) end
  in
  Array.sub out 0 (go 0 0 0)
  end

let inter ~cmp a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then [||]
  else begin
    let out = Array.make (min na nb) a.(0) in
    let rec go i j k =
      if i >= na || j >= nb then k
      else
        let c = cmp a.(i) b.(j) in
        if c < 0 then go (i + 1) j k
        else if c > 0 then go i (j + 1) k
        else begin out.(k) <- a.(i); go (i + 1) (j + 1) (k + 1) end
    in
    Array.sub out 0 (go 0 0 0)
  end

let diff ~cmp a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then [||]
  else begin
    let out = Array.make na a.(0) in
    let rec go i j k =
      if i >= na then k
      else if j >= nb then begin out.(k) <- a.(i); go (i + 1) j (k + 1) end
      else
        let c = cmp a.(i) b.(j) in
        if c < 0 then begin out.(k) <- a.(i); go (i + 1) j (k + 1) end
        else if c > 0 then go i (j + 1) k
        else go (i + 1) (j + 1) k
    in
    Array.sub out 0 (go 0 0 0)
  end

let lower_bound ~cmp a x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cmp a.(mid) x < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let upper_bound ~cmp a x =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cmp a.(mid) x <= 0 then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let mem ~cmp a x =
  let i = lower_bound ~cmp a x in
  i < Array.length a && cmp a.(i) x = 0

let subset ~cmp a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else
      let c = cmp a.(i) b.(j) in
      if c < 0 then false
      else if c > 0 then go i (j + 1)
      else go (i + 1) (j + 1)
  in
  go 0 0

let equal ~cmp a b =
  Array.length a = Array.length b
  && (let rec go i =
        i >= Array.length a || (cmp a.(i) b.(i) = 0 && go (i + 1))
      in
      go 0)

let filter p a = Array.of_list (List.filter p (Array.to_list a))
