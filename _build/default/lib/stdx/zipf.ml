type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (k + 1)) s);
    cdf.(k) <- !total
  done;
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. !total
  done;
  { cdf }

let n t = Array.length t.cdf

let sample t prng =
  let u = Prng.float prng 1.0 in
  let cmp x y = compare x y in
  let i = Sorted_array.lower_bound ~cmp t.cdf u in
  min i (Array.length t.cdf - 1)
