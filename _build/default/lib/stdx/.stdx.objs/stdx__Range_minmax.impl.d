lib/stdx/range_minmax.ml: Array
