lib/stdx/zipf.mli: Prng
