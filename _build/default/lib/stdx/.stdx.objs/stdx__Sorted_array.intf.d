lib/stdx/sorted_array.mli:
