lib/stdx/sorted_array.ml: Array List
