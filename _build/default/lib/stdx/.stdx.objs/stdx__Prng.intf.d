lib/stdx/prng.mli:
