lib/stdx/range_minmax.mli:
