lib/stdx/zipf.ml: Array Float Prng Sorted_array
