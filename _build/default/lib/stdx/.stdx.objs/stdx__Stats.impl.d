lib/stdx/stats.ml: Format
