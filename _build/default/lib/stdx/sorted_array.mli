(** Set operations on sorted arrays.

    The PAT engine ({!module:Pat}) represents match-point sets and region
    sets as strictly increasing arrays; all algebra operators reduce to
    linear merges on such arrays.  This module provides the generic
    kernel, parameterised by a comparison function.

    All functions expect inputs sorted strictly increasing under [cmp]
    (no duplicates) and return outputs with the same property. *)

val is_sorted : cmp:('a -> 'a -> int) -> 'a array -> bool
(** [is_sorted ~cmp a] checks strict ascending order. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a array
(** Sort and deduplicate a list into a sorted array. *)

val union : cmp:('a -> 'a -> int) -> 'a array -> 'a array -> 'a array
(** Set union by linear merge. *)

val inter : cmp:('a -> 'a -> int) -> 'a array -> 'a array -> 'a array
(** Set intersection by linear merge. *)

val diff : cmp:('a -> 'a -> int) -> 'a array -> 'a array -> 'a array
(** Set difference [a - b] by linear merge. *)

val mem : cmp:('a -> 'a -> int) -> 'a array -> 'a -> bool
(** Binary-search membership. *)

val subset : cmp:('a -> 'a -> int) -> 'a array -> 'a array -> bool
(** [subset ~cmp a b] is true when every element of [a] occurs in [b]. *)

val equal : cmp:('a -> 'a -> int) -> 'a array -> 'a array -> bool
(** Set equality (element-wise, given sortedness). *)

val lower_bound : cmp:('a -> 'a -> int) -> 'a array -> 'a -> int
(** [lower_bound ~cmp a x] is the least index [i] with [cmp a.(i) x >= 0],
    or [Array.length a] if all elements are smaller. *)

val upper_bound : cmp:('a -> 'a -> int) -> 'a array -> 'a -> int
(** [upper_bound ~cmp a x] is the least index [i] with [cmp a.(i) x > 0],
    or [Array.length a] if no element is greater. *)

val filter : ('a -> bool) -> 'a array -> 'a array
(** Order-preserving filter (sortedness is preserved). *)
