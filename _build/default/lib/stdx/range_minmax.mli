(** Static range-minimum / range-maximum queries.

    A sparse table over an immutable int array, answering
    min/max-over-interval queries in O(1) after O(n log n) preprocessing.
    The region-set inclusion operators ({!Pat.Region_set}) use it to test
    "does some region with start in this window have a small enough
    stop?" in logarithmic time per probe. *)

type t

val of_array : kind:[ `Min | `Max ] -> int array -> t
(** Build a table answering queries of the given kind. *)

val query : t -> lo:int -> hi:int -> int option
(** [query t ~lo ~hi] is the min (or max) of the elements with indices in
    [\[lo, hi\]] inclusive, or [None] when the interval is empty or out of
    range (indices are clamped to the array bounds first). *)

val query_excluding : t -> lo:int -> hi:int -> skip:int -> int option
(** Like {!query} but ignores the element at index [skip] (used when a
    region must not be compared against itself). *)
