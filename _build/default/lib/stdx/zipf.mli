(** Zipf-distributed sampling over a finite rank range.

    Used by the workload generators to draw author last names and
    keywords with the skew real bibliographies exhibit, so that query
    selectivity spans several orders of magnitude across words. *)

type t
(** Precomputed cumulative distribution for a fixed [n] and exponent. *)

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a Zipf law over ranks [1..n] with exponent
    [s] (probability of rank [k] proportional to [1/k^s]).  [n] must be
    positive, [s] non-negative. *)

val sample : t -> Prng.t -> int
(** [sample t prng] draws a rank in [\[0, n)] (0-based). *)

val n : t -> int
(** The rank-range size the law was built for. *)
