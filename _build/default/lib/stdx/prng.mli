(** Deterministic pseudo-random number generation.

    All randomness in the repository (workload generation, property-test
    instance generation, benchmark inputs) flows through this module so
    that every run is reproducible from a seed.  The generator is
    splitmix64, which is fast, has a 64-bit state, and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the rest of [t]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements of [xs],
    preserving no particular order. *)
