type t = { kind : [ `Min | `Max ]; table : int array array; n : int }

let combine kind (a : int) (b : int) =
  match kind with
  | `Min -> if a < b then a else b
  | `Max -> if a > b then a else b

let log2_floor n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let of_array ~kind a =
  let n = Array.length a in
  if n = 0 then { kind; table = [||]; n }
  else begin
    let levels = log2_floor n + 1 in
    let table = Array.make levels [||] in
    table.(0) <- Array.copy a;
    for l = 1 to levels - 1 do
      let w = 1 lsl l in
      let m = n - w + 1 in
      if m > 0 then begin
        let row = Array.make m 0 in
        let prev = table.(l - 1) in
        for i = 0 to m - 1 do
          row.(i) <- combine kind prev.(i) prev.(i + (w / 2))
        done;
        table.(l) <- row
      end
    done;
    { kind; table; n }
  end

let query t ~lo ~hi =
  let lo = max lo 0 and hi = min hi (t.n - 1) in
  if lo > hi then None
  else begin
    let l = log2_floor (hi - lo + 1) in
    let row = t.table.(l) in
    Some (combine t.kind row.(lo) row.(hi - (1 lsl l) + 1))
  end

let query_excluding t ~lo ~hi ~skip =
  if skip < lo || skip > hi then query t ~lo ~hi
  else begin
    let left = query t ~lo ~hi:(skip - 1) in
    let right = query t ~lo:(skip + 1) ~hi in
    match (left, right) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (combine t.kind a b)
  end
