type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
  r mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  let n = min k (Array.length arr) in
  Array.to_list (Array.sub arr 0 n)
