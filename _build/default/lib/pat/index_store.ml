let magic = "OQF-INDEX-1"

type payload = { contents : string; bindings : (string * (int * int) list) list }

let save ~path instance =
  let bindings =
    List.map
      (fun name ->
        let set = Instance.find instance name in
        ( name,
          List.map
            (fun (r : Region.t) -> (r.start, r.stop))
            (Region_set.to_list set) ))
      (Instance.names instance)
  in
  let payload =
    { contents = Text.unsafe_contents (Instance.text instance); bindings }
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc payload [])

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then failwith ("Index_store.load: bad magic in " ^ path);
      let payload : payload = Marshal.from_channel ic in
      let text = Text.of_string payload.contents in
      Instance.create text
        (List.map
           (fun (name, pairs) -> (name, Region_set.of_pairs pairs))
           payload.bindings))
