(** Text regions.

    A region is a contiguous substring of the indexed text, given by a
    half-open byte interval [\[start, stop)].  Following the paper, a
    region [r] {e includes} a region [s] when the endpoints of [s] lie
    within those of [r]; inclusion is non-strict, so every region
    includes itself. *)

type t = { start : int; stop : int }

val make : start:int -> stop:int -> t
(** Requires [0 <= start <= stop]. *)

val length : t -> int
(** [stop - start]. *)

val compare : t -> t -> int
(** Total order: by [start] ascending, then by [stop] {e descending}, so
    that in a sorted sequence an enclosing region precedes the regions
    it contains that share its start. *)

val equal : t -> t -> bool

val includes : t -> t -> bool
(** [includes r s] — the endpoints of [s] are within those of [r]
    (non-strict: [includes r r] holds). *)

val strictly_includes : t -> t -> bool
(** [includes r s && not (equal r s)]. *)

val contains_point : t -> int -> bool
(** Whether a byte offset lies inside the region ([start <= p < stop];
    for empty regions, never). *)

val overlaps : t -> t -> bool
(** Non-empty intersection of the two intervals. *)

val text : Text.t -> t -> string
(** Content of the region, counted as scanned bytes. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["[start,stop)"]. *)
