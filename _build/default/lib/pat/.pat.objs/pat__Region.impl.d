lib/pat/region.ml: Format Int Printf Text
