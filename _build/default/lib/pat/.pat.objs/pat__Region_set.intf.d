lib/pat/region_set.mli: Format Region
