lib/pat/tokenizer.ml: Array Text
