lib/pat/region_scanner.mli: Region_set Text
