lib/pat/text.ml: Fun Stdx String
