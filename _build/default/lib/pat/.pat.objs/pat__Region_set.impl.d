lib/pat/region_set.ml: Array Format Int List Region Stdx
