lib/pat/index_store.ml: Fun Instance List Marshal Region Region_set String Text
