lib/pat/index_store.mli: Instance
