lib/pat/instance.mli: Region_set Text Word_index
