lib/pat/word_index.ml: Array Int Region Region_set Stdx String Suffix_array Text
