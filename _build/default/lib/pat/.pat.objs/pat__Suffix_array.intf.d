lib/pat/suffix_array.mli: Text
