lib/pat/text.mli:
