lib/pat/region_scanner.ml: Array Int List Region Region_set Stdx String Text
