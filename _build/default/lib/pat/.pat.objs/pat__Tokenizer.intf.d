lib/pat/tokenizer.mli: Text
