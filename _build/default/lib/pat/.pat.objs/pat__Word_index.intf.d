lib/pat/word_index.mli: Region_set Text
