lib/pat/suffix_array.ml: Array Char List Stdx String Text Tokenizer
