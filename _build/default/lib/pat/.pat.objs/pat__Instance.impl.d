lib/pat/instance.ml: List Map Region Region_set String Text Word_index
