lib/pat/region.mli: Format Text
