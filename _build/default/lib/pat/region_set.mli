(** Sets of regions and the operators of the region algebra.

    A set is a strictly increasing array of regions under
    {!Region.compare}.  The operators implement §3.1 of the paper:
    set-theoretic [∪ ∩ −], inclusion [⊃]/[⊂], {e direct} inclusion
    [⊃d]/[⊂d] relative to the full set of indexed regions, innermost
    [ι] and outermost [ω], and the word selections [σ].

    Inclusion joins run in O((|R| + |S|) log) using range-min/max
    tables; direct inclusion additionally scans the indexed regions that
    may lie between the two operands, which is what makes it
    "significantly more expensive than the simple inclusion operation"
    (paper, §3.1). *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val of_list : Region.t list -> t
(** Sort and deduplicate. *)

val of_pairs : (int * int) list -> t
(** Convenience: build from [(start, stop)] pairs. *)

val to_list : t -> Region.t list
val to_array : t -> Region.t array
(** The returned array must not be mutated. *)

val mem : t -> Region.t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool
val iter : (Region.t -> unit) -> t -> unit
val fold : ('a -> Region.t -> 'a) -> 'a -> t -> 'a
val filter : (Region.t -> bool) -> t -> t
val choose : t -> Region.t option
(** Some arbitrary element (the least), or [None]. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val including : t -> t -> t
(** [including r s] is [r ⊃ s]: the regions of [r] that include some
    region of [s] (non-strict). *)

val included : t -> t -> t
(** [included r s] is [r ⊂ s]: the regions of [r] that are included in
    some region of [s] (non-strict). *)

val including_strict : t -> t -> t
(** Like {!including} but the witness must be strictly smaller. *)

val included_strict : t -> t -> t
(** Like {!included} but the witness must be strictly larger. *)

val directly_including_strict : context:t -> t -> t -> t
(** Like {!directly_including} but the witness must be strictly
    smaller.  Needed when both operands can hold the same regions
    (self-nested names): a region does not directly include itself. *)

val directly_included_strict : context:t -> t -> t -> t
(** Strict variant of {!directly_included}. *)

val directly_including : context:t -> t -> t -> t
(** [directly_including ~context r s] is [r ⊃d s]: regions of [r]
    including some [s]-region with no region of [context] strictly
    between them ([r ⊋ u ⊋ s]).  [context] is the union of {e all}
    indexed region instances, per the paper's definition. *)

val directly_included : context:t -> t -> t -> t
(** [directly_included ~context r s] is [r ⊂d s] (symmetric). *)

val innermost : t -> t
(** [ι]: elements that include no other element of the set. *)

val outermost : t -> t
(** [ω]: elements included in no other element of the set. *)

val containing_match : t -> positions:int array -> len:int -> t
(** [σ_w] (containment form): regions containing at least one occurrence
    of a word of length [len] at one of the sorted [positions]. *)

val matching_exact : t -> positions:int array -> len:int -> t
(** [σ_w] (exact form): regions whose extent is precisely one occurrence
    [\[p, p+len)]. *)

val matching_prefix : t -> positions:int array -> len:int -> t
(** Prefix selection: regions whose extent begins at one of the
    positions and is at least [len] long (the positions are where the
    prefix occurs). *)

val containing_at_least : t -> positions:int array -> len:int -> count:int -> t
(** Frequency search: regions containing at least [count] of the
    occurrences. *)

val occurrences_within : t -> positions:int array -> len:int -> Region.t -> int
(** Number of the occurrences lying inside one region. *)

val count_strictly_between : context:t -> outer:Region.t -> inner:Region.t -> int
(** Number of context regions [u] with [outer ⊋ u ⊋ inner]; used for
    fixed-length path variables (§5.3). *)

val including_at_depth : context:t -> depth:int -> t -> t -> t
(** [including_at_depth ~context ~depth r s]: regions of [r] that
    include some [s]-region with exactly [depth] context regions
    strictly between them. *)

val pp : Format.formatter -> t -> unit
