(** Index persistence.

    Saves a built instance (text, named region sets) to disk and loads
    it back, so the CLI can separate the indexing phase from the query
    phase like the PAT system does.  The word index (suffix array) is
    rebuilt on load — it is cheaper to rebuild than to store and its
    construction is deterministic. *)

val save : path:string -> Instance.t -> unit
(** Write the instance to [path].  Overwrites. *)

val load : path:string -> Instance.t
(** Read an instance back.  Raises [Failure] if the file is not a saved
    index. *)
