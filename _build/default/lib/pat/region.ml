type t = { start : int; stop : int }

let make ~start ~stop =
  if start < 0 || stop < start then
    invalid_arg
      (Printf.sprintf "Region.make: invalid interval [%d,%d)" start stop);
  { start; stop }

let length r = r.stop - r.start

let compare a b =
  let c = Int.compare a.start b.start in
  if c <> 0 then c else Int.compare b.stop a.stop

let equal a b = a.start = b.start && a.stop = b.stop
let includes r s = r.start <= s.start && s.stop <= r.stop
let strictly_includes r s = includes r s && not (equal r s)
let contains_point r p = r.start <= p && p < r.stop
let overlaps a b = a.start < b.stop && b.start < a.stop
let text txt r = Text.scan_sub txt ~pos:r.start ~len:(length r)
let pp ppf r = Format.fprintf ppf "[%d,%d)" r.start r.stop
