(** Marker-based region construction.

    PAT lets users define region sets by start and end markers ("regions
    starting with [AUTHOR =] and ending with a comma", paper §2).  This
    runs at index-construction time, where scanning the file once is
    permitted. *)

val scan :
  Text.t ->
  start_marker:string ->
  end_marker:string ->
  ?include_markers:bool ->
  unit ->
  Region_set.t
(** Pair each occurrence of [start_marker] with the nearest following
    occurrence of [end_marker]; unmatched starts are dropped.  When
    [include_markers] is false (default) the region covers the content
    strictly between the two markers. *)

val scan_balanced :
  Text.t -> open_char:char -> close_char:char -> Region_set.t
(** Regions delimited by balanced single-character delimiters, supporting
    nesting (e.g. brace-delimited blocks).  Each region covers the
    content between a matching open/close pair, exclusive of the
    delimiters.  Unbalanced closes are ignored; unclosed opens are
    dropped. *)

val occurrences : Text.t -> string -> Region_set.t
(** Every occurrence of a literal string, as zero-context regions. *)
