(** Word segmentation.

    PAT indexes {e sistrings}: semi-infinite strings starting at word
    boundaries.  This module defines what a word is (a maximal run of
    ASCII letters and digits) and enumerates word-start positions. *)

val is_word_char : char -> bool
(** Letters and digits (ASCII). *)

val word_starts : Text.t -> int array
(** Strictly increasing positions at which a word begins: a word
    character whose predecessor is absent or not a word character. *)

val word_at : Text.t -> int -> string option
(** [word_at text pos] is the maximal word starting exactly at [pos], or
    [None] if no word starts there. *)

val is_word_start : Text.t -> int -> bool
(** Whether a word begins at the position. *)

val is_word_end : Text.t -> int -> bool
(** Whether position [pos] is a valid token end: [pos] is the text
    length or the byte at [pos] is not a word character. *)
