let find_all s pattern =
  let m = String.length pattern in
  if m = 0 then []
  else begin
    let out = ref [] in
    let n = String.length s in
    let i = ref 0 in
    while !i <= n - m do
      (match String.index_from_opt s !i pattern.[0] with
      | None -> i := n
      | Some j ->
          if j > n - m then i := n
          else if String.sub s j m = pattern then begin
            out := j :: !out;
            i := j + 1
          end
          else i := j + 1);
      ()
    done;
    List.rev !out
  end

let scan text ~start_marker ~end_marker ?(include_markers = false) () =
  let s = Text.unsafe_contents text in
  let starts = find_all s start_marker in
  let ends = Array.of_list (find_all s end_marker) in
  let slen = String.length start_marker and elen = String.length end_marker in
  let next_end pos =
    let i = Stdx.Sorted_array.lower_bound ~cmp:Int.compare ends pos in
    if i < Array.length ends then Some ends.(i) else None
  in
  let regions =
    List.filter_map
      (fun sp ->
        match next_end (sp + slen) with
        | None -> None
        | Some ep ->
            if include_markers then
              Some (Region.make ~start:sp ~stop:(ep + elen))
            else Some (Region.make ~start:(sp + slen) ~stop:ep))
      starts
  in
  Region_set.of_list regions

let scan_balanced text ~open_char ~close_char =
  let s = Text.unsafe_contents text in
  let n = String.length s in
  let stack = ref [] in
  let out = ref [] in
  for i = 0 to n - 1 do
    if s.[i] = open_char then stack := i :: !stack
    else if s.[i] = close_char then begin
      match !stack with
      | [] -> ()
      | top :: rest ->
          stack := rest;
          out := Region.make ~start:(top + 1) ~stop:i :: !out
    end
  done;
  Region_set.of_list !out

let occurrences text pattern =
  let s = Text.unsafe_contents text in
  let m = String.length pattern in
  Region_set.of_list
    (List.map
       (fun p -> Region.make ~start:p ~stop:(p + m))
       (find_all s pattern))
