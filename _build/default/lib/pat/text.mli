(** The indexed text.

    A [Text.t] wraps the raw bytes of one file (or a concatenation of
    files).  Every read of raw content outside the index layer goes
    through {!sub} or {!scan_sub}, which lets the instrumentation
    distinguish index-driven work from file scanning — the quantity the
    paper's optimizations are designed to minimise. *)

type t

val of_string : string -> t
(** Wrap an in-memory string.  The string must not be mutated
    afterwards. *)

val of_file : string -> t
(** Read a whole file from disk. *)

val length : t -> int
(** Number of bytes. *)

val get : t -> int -> char
(** Byte at an offset.  Does not count as scanning (single-byte probes
    are index bookkeeping). *)

val sub : t -> pos:int -> len:int -> string
(** Extract [len] bytes at [pos] {e without} recording scan work.  Used
    by the index-construction phase, which is allowed to read the whole
    file once. *)

val scan_sub : t -> pos:int -> len:int -> string
(** Extract bytes {e and} record them as scanned in
    {!Stdx.Stats.global}.  Query-time code must use this. *)

val unsafe_contents : t -> string
(** The underlying string (for the suffix-array builder only). *)
