let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let is_word_start text pos =
  pos >= 0
  && pos < Text.length text
  && is_word_char (Text.get text pos)
  && (pos = 0 || not (is_word_char (Text.get text (pos - 1))))

let is_word_end text pos =
  pos = Text.length text
  || (pos >= 0 && pos < Text.length text && not (is_word_char (Text.get text pos)))

let word_starts text =
  let n = Text.length text in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if is_word_start text i then out := i :: !out
  done;
  Array.of_list !out

let word_at text pos =
  if not (is_word_start text pos) then None
  else begin
    let n = Text.length text in
    let rec stop i =
      if i < n && is_word_char (Text.get text i) then stop (i + 1) else i
    in
    Some (Text.sub text ~pos ~len:(stop pos - pos))
  end
