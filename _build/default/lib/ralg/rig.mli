(** Region Inclusion Graphs (paper §3.2, Definition 3.1).

    A RIG [G = (I, E)] has the indexed region names as nodes; an edge
    [(Ri, Rj)] states that an [Ri]-region may {e directly} include an
    [Rj]-region.  An instance satisfies [G] when every directly-including
    pair of indexed regions is licensed by an edge.  The graph may be
    cyclic (self-nested regions).

    All the walk predicates below treat walks (node repetition allowed),
    which is the reading under which the paper's rewrite conditions are
    sound on cyclic graphs. *)

type t

val create : names:string list -> edges:(string * string) list -> t
(** Build a graph.  Edge endpoints must be listed in [names]; raises
    [Invalid_argument] otherwise.  Duplicate edges are collapsed. *)

val names : t -> string list
(** Sorted node list. *)

val edges : t -> (string * string) list
(** Sorted edge list. *)

val mem : t -> string -> bool
val has_edge : t -> string -> string -> bool
val successors : t -> string -> string list
val predecessors : t -> string -> string list

val reverse : t -> t
(** Flip every edge; used to optimise [⊂]-family chains with the same
    machinery as [⊃]-family ones. *)

val reachable : t -> string -> string -> bool
(** [reachable g a b]: a walk of length >= 1 from [a] to [b] exists. *)

val reachable_avoiding : t -> string -> string -> avoid:string list -> bool
(** Like {!reachable}, but no {e interior} node of the walk may belong
    to [avoid] (the endpoints may). *)

val only_walk_is_edge : t -> string -> string -> bool
(** Condition (a-1) of Proposition 3.5: the edge [(a, b)] exists and is
    the only walk from [a] to [b] (no walk of length >= 2). *)

val all_walks_start_with_edge : t -> string -> string -> bool
(** Condition (a-2): the edge [(a, b)] exists and every walk from [a]
    to [b] begins with it (no walk leaving [a] through another successor
    ever reaches [b]). *)

val separator : t -> src:string -> dst:string -> via:string -> bool
(** Condition (b): every walk from [src] to [dst] passes through [via]
    (trivially true when [via] is an endpoint). *)

val count_paths_avoiding :
  t -> string -> string -> avoid_interior:(string -> bool) ->
  [ `Zero | `One | `Many ]
(** Number of distinct walks of length >= 1 from the source to the
    destination whose interior nodes all fail [avoid_interior]; [`Many]
    is returned for two or more, including the infinitely-many case
    produced by a usable cycle.  Used by the §6.3 exactness test. *)

val partial : t -> keep:string list -> t
(** The RIG of a partial index (paper §6.1): nodes are [keep]; there is
    an edge [(a, b)] iff the full graph has a walk from [a] to [b] whose
    interior nodes are all outside [keep]. *)

val interior_nodes : t -> string -> string -> string list
(** Nodes other than the endpoints lying on some walk from the first to
    the second name. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?highlight:(string * string) list -> t -> string
(** GraphViz rendering of the graph (the paper draws its RIGs as
    figures, and its companion system Hy+ visualised such graphs).
    Edges listed in [highlight] are drawn dashed and bold — used to
    show a query path, like the dashed arrows of §5.1's figure. *)
