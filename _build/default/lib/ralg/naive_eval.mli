(** Reference evaluator with direct quantifier semantics.

    Every operator is computed by brute-force enumeration straight from
    its definition in §3.1.  Quadratic or worse; exists to validate
    {!Eval} (and through it the {!Pat.Region_set} sweeps) in property
    tests. *)

val eval : Pat.Instance.t -> Expr.t -> Pat.Region_set.t
(** Same contract as {!Eval.eval}, including {!Eval.Unknown_region}. *)
