(** Evaluation of region expressions on a PAT instance. *)

exception Unknown_region of string
(** Raised when an expression mentions a region name the instance does
    not index — with partial indexing this signals that the planner
    referenced a missing index. *)

val eval : Pat.Instance.t -> Expr.t -> Pat.Region_set.t
(** Evaluate with the efficient operators of {!Pat.Region_set}.  Direct
    inclusion is decided against the instance universe. *)

val eval_shared : Pat.Instance.t -> Expr.t -> Pat.Region_set.t
(** Like {!eval} but common subexpressions are evaluated once (§5.2:
    boolean combinations of selection criteria often share their inner
    chains).  Same result, fewer index operations. *)

val direct_including_layered :
  context:Pat.Region_set.t ->
  Pat.Region_set.t ->
  Pat.Region_set.t ->
  Pat.Region_set.t
(** The paper's §3.1 while-program for [⊃d]: iterate over nested layers
    of the left operand (outermost first) and, per layer, discard the
    right-operand regions shadowed by an intermediate context region.
    Given as an illustration of the cost of [⊃d]; correct for laminar
    instances (same-layer regions disjoint), which parse-tree-derived
    region sets always are. *)
