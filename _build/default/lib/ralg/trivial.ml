let pair_is_trivial rig ~family ~strength ~left ~right =
  if left = right then false
  else if not (Rig.mem rig left && Rig.mem rig right) then false
  else begin
    let g = match family with Chain.Up -> rig | Chain.Down -> Rig.reverse rig in
    match strength with
    | Chain.Direct -> not (Rig.has_edge g left right)
    | Chain.Simple -> not (Rig.reachable g left right)
  end

(* Conservative over-approximation of the names the result regions of an
   expression can carry. *)
let rec result_names e =
  match e with
  | Expr.Name n -> [ n ]
  | Expr.Select (_, e1) | Expr.Innermost e1 | Expr.Outermost e1 ->
      result_names e1
  | Expr.Chain (a, _, _) | Expr.Chain_strict (a, _, _)
  | Expr.At_depth (_, a, _) ->
      result_names a
  | Expr.Setop (Expr.Diff, a, _) -> result_names a
  | Expr.Setop ((Expr.Union | Expr.Inter), a, b) ->
      result_names a @ result_names b

let rec check rig e =
  match e with
  | Expr.Name _ -> false
  | Expr.Select (_, e1) | Expr.Innermost e1 | Expr.Outermost e1 -> check rig e1
  | Expr.Setop (Expr.Union, a, b) -> check rig a && check rig b
  | Expr.Setop (Expr.Inter, a, b) -> check rig a || check rig b
  | Expr.Setop (Expr.Diff, a, _) -> check rig a
  | Expr.At_depth (_, a, b) -> check rig a || check rig b
  | Expr.Chain (a, op, b) | Expr.Chain_strict (a, op, b) ->
      check rig a || check rig b
      ||
      let family, strength =
        match op with
        | Expr.Including -> (Chain.Up, Chain.Simple)
        | Expr.Directly_including -> (Chain.Up, Chain.Direct)
        | Expr.Included -> (Chain.Down, Chain.Simple)
        | Expr.Directly_included -> (Chain.Down, Chain.Direct)
      in
      let lefts = result_names a and rights = result_names b in
      lefts <> [] && rights <> []
      && List.for_all
           (fun l ->
             List.for_all
               (fun r -> pair_is_trivial rig ~family ~strength ~left:l ~right:r)
               rights)
           lefts
