(** Heuristic cost model for region expressions.

    Used by the planner's [explain] output to show why the optimized
    expression is preferred.  Cardinalities come from the instance when
    one is available, otherwise from a uniform default.  The weights
    reflect the implementation: simple inclusion joins are
    merge-with-range-query (log factor); direct inclusion additionally
    probes the indexed-region universe per candidate pair. *)

type t = {
  simple_ops : int;  (** [⊃]/[⊂] applications *)
  direct_ops : int;  (** [⊃d]/[⊂d] applications *)
  set_ops : int;
  selections : int;
  weighted : float;  (** scalar estimate, lower is better *)
}

val estimate : ?card:(string -> int) -> ?universe:int -> Expr.t -> t
(** [card name] estimates the cardinality of a region name (default
    1000); [universe] the total indexed-region count (default the sum
    over mentioned names). *)

val of_instance : Pat.Instance.t -> Expr.t -> t
(** Estimate with true cardinalities from an instance. *)

val compare_weighted : t -> t -> int
val pp : Format.formatter -> t -> unit
