type error = { position : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "parse error at %d: %s" e.position e.message

type token =
  | Tname of string
  | Tstring of string
  | Tint of int
  | Tchain of Expr.op * bool  (* operator, strict? *)
  | Tpipe
  | Tamp
  | Tminus
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tcomma

exception Error of error

let fail position message = raise (Error { position; message })

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let push tok pos = out := (tok, pos) :: !out in
  while !i < n do
    let c = s.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '>' || c = '<' then begin
      let direct = !i + 1 < n && s.[!i + 1] = 'd' in
      (* ">d" only when the d is not the start of a name like "delta",
         except when followed by the strictness marker "!" *)
      let direct =
        direct
        && (!i + 2 >= n || (not (is_name_char s.[!i + 2])) || s.[!i + 2] = '!')
      in
      let after = !i + if direct then 2 else 1 in
      let strict = after < n && s.[after] = '!' in
      let op =
        match (c, direct) with
        | '>', true -> Expr.Directly_including
        | '>', false -> Expr.Including
        | '<', true -> Expr.Directly_included
        | _, false -> Expr.Included
        | _ -> assert false
      in
      push (Tchain (op, strict)) pos;
      i := after + if strict then 1 else 0
    end
    else if c = '|' then (push Tpipe pos; incr i)
    else if c = '&' then (push Tamp pos; incr i)
    else if c = '-' then (push Tminus pos; incr i)
    else if c = '(' then (push Tlparen pos; incr i)
    else if c = ')' then (push Trparen pos; incr i)
    else if c = '[' then (push Tlbracket pos; incr i)
    else if c = ']' then (push Trbracket pos; incr i)
    else if c = ',' then (push Tcomma pos; incr i)
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if s.[!i] = '"' then closed := true
        else if s.[!i] = '\\' && !i + 1 < n then begin
          Buffer.add_char buf s.[!i + 1];
          incr i
        end
        else Buffer.add_char buf s.[!i];
        incr i
      done;
      if not !closed then fail pos "unterminated string literal";
      push (Tstring (Buffer.contents buf)) pos
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      push (Tint (int_of_string (String.sub s !i (!j - !i)))) pos;
      i := !j
    end
    else if is_name_char c then begin
      let j = ref !i in
      while !j < n && is_name_char s.[!j] do
        incr j
      done;
      push (Tname (String.sub s !i (!j - !i))) pos;
      i := !j
    end
    else fail pos (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !out

type state = { mutable toks : (token * int) list; len : int }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  match peek st with
  | Some (t, _) when t = tok -> advance st
  | Some (_, pos) -> fail pos ("expected " ^ what)
  | None -> fail st.len ("expected " ^ what ^ " but input ended")

let expect_string st =
  match peek st with
  | Some (Tstring w, _) ->
      advance st;
      w
  | Some (_, pos) -> fail pos "expected a string literal"
  | None -> fail st.len "expected a string literal but input ended"

let expect_int st =
  match peek st with
  | Some (Tint k, _) ->
      advance st;
      k
  | Some (_, pos) -> fail pos "expected an integer"
  | None -> fail st.len "expected an integer but input ended"

let rec parse_expr st =
  let left = parse_chain st in
  parse_setops st left

and parse_setops st left =
  match peek st with
  | Some (Tpipe, _) ->
      advance st;
      parse_setops st (Expr.Setop (Expr.Union, left, parse_chain st))
  | Some (Tamp, _) ->
      advance st;
      parse_setops st (Expr.Setop (Expr.Inter, left, parse_chain st))
  | Some (Tminus, _) ->
      advance st;
      parse_setops st (Expr.Setop (Expr.Diff, left, parse_chain st))
  | _ -> left

and parse_chain st =
  let left = parse_atom st in
  match peek st with
  | Some (Tchain (op, strict), _) ->
      advance st;
      if strict then Expr.Chain_strict (left, op, parse_chain st)
      else Expr.Chain (left, op, parse_chain st)
  | _ -> left

and parse_atom st =
  match peek st with
  | Some (Tlparen, _) ->
      advance st;
      let e = parse_expr st in
      expect st Trparen "')'";
      e
  | Some (Tname "sigma", _) ->
      advance st;
      parse_selection st (fun w -> Expr.Exactly_word w)
  | Some (Tname "word", _) ->
      advance st;
      parse_selection st (fun w -> Expr.Contains_word w)
  | Some (Tname "prefix", _) ->
      advance st;
      parse_selection st (fun w -> Expr.Prefix_word w)
  | Some (Tname "inner", _) ->
      advance st;
      expect st Tlparen "'('";
      let e = parse_expr st in
      expect st Trparen "')'";
      Expr.Innermost e
  | Some (Tname "outer", _) ->
      advance st;
      expect st Tlparen "'('";
      let e = parse_expr st in
      expect st Trparen "')'";
      Expr.Outermost e
  | Some (Tname "depth", _) ->
      advance st;
      expect st Tlbracket "'['";
      let k = expect_int st in
      expect st Trbracket "']'";
      expect st Tlparen "'('";
      let a = parse_expr st in
      expect st Tcomma "','";
      let b = parse_expr st in
      expect st Trparen "')'";
      Expr.At_depth (k, a, b)
  | Some (Tname n, _) ->
      advance st;
      Expr.Name n
  | Some (_, pos) -> fail pos "expected a region name or '('"
  | None -> fail st.len "unexpected end of input"

and parse_selection st mk =
  expect st Tlbracket "'['";
  let w = expect_string st in
  expect st Trbracket "']'";
  expect st Tlparen "'('";
  let e = parse_expr st in
  expect st Trparen "')'";
  Expr.Select (mk w, e)

let parse s =
  match
    let st = { toks = tokenize s; len = String.length s } in
    let e = parse_expr st in
    (match peek st with
    | Some (_, pos) -> fail pos "trailing input"
    | None -> ());
    e
  with
  | e -> Ok e
  | exception Error err -> Error err

let parse_exn s =
  match parse s with
  | Ok e -> e
  | Error err -> failwith (Format.asprintf "%a" pp_error err)
