(** Concrete syntax for region expressions.

    Grammar (whitespace-insensitive):

    {v
    expr   ::= chain (("|" | "&" | "-") chain)*          left-associative
    chain  ::= atom ((">" | ">d" | "<" | "<d") chain)?   right-associative
    atom   ::= NAME
             | "sigma" "[" STRING "]" "(" expr ")"       exact-word selection
             | "word"  "[" STRING "]" "(" expr ")"       contains-word selection
             | "inner" "(" expr ")" | "outer" "(" expr ")"
             | "depth" "[" INT "]" "(" expr "," expr ")"
             | "(" expr ")"
    v}

    [Expr.pp] prints in this syntax, so printing and parsing round-trip. *)

type error = { position : int; message : string }

val parse : string -> (Expr.t, error) result
val parse_exn : string -> Expr.t
(** Raises [Failure] with a located message. *)

val pp_error : Format.formatter -> error -> unit
