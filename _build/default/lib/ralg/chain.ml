type strength = Simple | Direct
type family = Up | Down
type element = { name : string; selection : Expr.selection option }

type t = {
  family : family;
  elements : element list;
  strengths : strength list;
}

let classify = function
  | Expr.Including -> Some (Up, Simple)
  | Expr.Directly_including -> Some (Up, Direct)
  | Expr.Included -> Some (Down, Simple)
  | Expr.Directly_included -> Some (Down, Direct)

let element_of_expr = function
  | Expr.Name n -> Some { name = n; selection = None }
  | Expr.Select (sel, Expr.Name n) -> Some { name = n; selection = Some sel }
  | _ -> None

let of_expr e =
  (* Walk the right spine of Chain nodes, requiring a single family and
     name-only left operands. *)
  let rec spine fam = function
    | Expr.Chain (left, op, right) -> begin
        match (classify op, element_of_expr left) with
        | Some (f, s), Some el when f = fam -> begin
            match spine fam right with
            | Some (els, ss) -> Some (el :: els, s :: ss)
            | None -> None
          end
        | _ -> None
      end
    | last -> begin
        match element_of_expr last with
        | Some el -> Some ([ el ], [])
        | None -> None
      end
  in
  match e with
  | Expr.Chain (_, op, _) -> begin
      match classify op with
      | None -> None
      | Some (fam, _) -> begin
          match spine fam e with
          | Some (elements, strengths) when List.length elements >= 2 ->
              Some { family = fam; elements; strengths }
          | _ -> None
        end
    end
  | _ -> None

let expr_of_element el =
  match el.selection with
  | None -> Expr.Name el.name
  | Some sel -> Expr.Select (sel, Expr.Name el.name)

let op_of family strength =
  match (family, strength) with
  | Up, Simple -> Expr.Including
  | Up, Direct -> Expr.Directly_including
  | Down, Simple -> Expr.Included
  | Down, Direct -> Expr.Directly_included

let to_expr t =
  let rec build elements strengths =
    match (elements, strengths) with
    | [ el ], [] -> expr_of_element el
    | el :: els, s :: ss ->
        Expr.Chain (expr_of_element el, op_of t.family s, build els ss)
    | _ -> invalid_arg "Chain.to_expr: mismatched lengths"
  in
  build t.elements t.strengths

let node_names t = List.map (fun el -> el.name) t.elements
let length t = List.length t.elements
