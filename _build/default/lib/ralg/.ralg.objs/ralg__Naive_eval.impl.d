lib/ralg/naive_eval.ml: Array Eval Expr Fun List Pat String
