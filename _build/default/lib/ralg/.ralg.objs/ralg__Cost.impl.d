lib/ralg/cost.ml: Expr Float Format List Pat
