lib/ralg/rig.mli: Format
