lib/ralg/trivial.ml: Chain Expr List Rig
