lib/ralg/eval.mli: Expr Pat
