lib/ralg/optimizer.mli: Chain Expr Rig
