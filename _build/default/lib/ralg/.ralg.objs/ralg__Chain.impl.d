lib/ralg/chain.ml: Expr List
