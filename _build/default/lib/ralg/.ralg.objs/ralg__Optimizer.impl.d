lib/ralg/optimizer.ml: Array Chain Expr Rig
