lib/ralg/naive_eval.mli: Expr Pat
