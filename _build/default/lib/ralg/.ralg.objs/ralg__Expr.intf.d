lib/ralg/expr.mli: Format
