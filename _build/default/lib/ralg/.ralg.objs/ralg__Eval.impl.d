lib/ralg/eval.ml: Expr Hashtbl Pat
