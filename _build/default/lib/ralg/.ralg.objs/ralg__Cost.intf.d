lib/ralg/cost.mli: Expr Format Pat
