lib/ralg/expr.ml: Format List String
