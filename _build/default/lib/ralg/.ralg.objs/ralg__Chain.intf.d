lib/ralg/chain.mli: Expr
