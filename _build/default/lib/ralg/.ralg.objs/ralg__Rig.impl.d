lib/ralg/rig.ml: Buffer Format Hashtbl List Map Printf Set String
