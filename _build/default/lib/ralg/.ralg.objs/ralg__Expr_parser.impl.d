lib/ralg/expr_parser.ml: Buffer Expr Format List Printf String
