lib/ralg/expr_parser.mli: Expr Format
