lib/ralg/trivial.mli: Chain Expr Rig
