type t = {
  simple_ops : int;
  direct_ops : int;
  set_ops : int;
  selections : int;
  weighted : float;
}

let zero =
  { simple_ops = 0; direct_ops = 0; set_ops = 0; selections = 0; weighted = 0. }

let log2 x = if x < 2.0 then 1.0 else log x /. log 2.0

(* Returns (cost-so-far, estimated result cardinality). *)
let rec walk ~card ~universe acc expr =
  match expr with
  | Expr.Name n -> (acc, float_of_int (card n))
  | Expr.Select (_, e) ->
      let acc, c = walk ~card ~universe acc e in
      ( {
          acc with
          selections = acc.selections + 1;
          weighted = acc.weighted +. (c *. log2 universe);
        },
        (* a word selection is typically highly selective *)
        Float.max 1.0 (c /. 10.0) )
  | Expr.Innermost e | Expr.Outermost e ->
      let acc, c = walk ~card ~universe acc e in
      ( { acc with set_ops = acc.set_ops + 1; weighted = acc.weighted +. (c *. log2 c) },
        c )
  | Expr.Setop (_, a, b) ->
      let acc, ca = walk ~card ~universe acc a in
      let acc, cb = walk ~card ~universe acc b in
      ( { acc with set_ops = acc.set_ops + 1; weighted = acc.weighted +. ca +. cb },
        ca +. cb )
  | Expr.Chain (a, op, b) | Expr.Chain_strict (a, op, b) -> begin
      let acc, ca = walk ~card ~universe acc a in
      let acc, cb = walk ~card ~universe acc b in
      let join = (ca +. cb) *. log2 (Float.max ca cb) in
      match op with
      | Expr.Including | Expr.Included ->
          ( {
              acc with
              simple_ops = acc.simple_ops + 1;
              weighted = acc.weighted +. join;
            },
            ca /. 2.0 )
      | Expr.Directly_including | Expr.Directly_included ->
          (* each candidate pair probes the universe window *)
          let probe = ca *. Float.max 1.0 (universe /. Float.max 1.0 ca) in
          ( {
              acc with
              direct_ops = acc.direct_ops + 1;
              weighted = acc.weighted +. join +. probe;
            },
            ca /. 2.0 )
    end
  | Expr.At_depth (_, a, b) ->
      let acc, ca = walk ~card ~universe acc a in
      let acc, cb = walk ~card ~universe acc b in
      let probe = ca *. universe in
      ( {
          acc with
          direct_ops = acc.direct_ops + 1;
          weighted = acc.weighted +. ((ca +. cb) *. log2 (Float.max ca cb)) +. probe;
        },
        ca /. 2.0 )

let estimate ?(card = fun _ -> 1000) ?universe expr =
  let universe =
    match universe with
    | Some u -> float_of_int u
    | None ->
        float_of_int
          (List.fold_left (fun acc n -> acc + card n) 0 (Expr.names expr))
  in
  let universe = Float.max 1.0 universe in
  fst (walk ~card ~universe zero expr)

let of_instance inst expr =
  let card n =
    match Pat.Instance.find_opt inst n with
    | Some set -> Pat.Region_set.cardinal set
    | None -> 0
  in
  estimate ~card ~universe:(Pat.Instance.total_regions inst) expr

let compare_weighted a b = Float.compare a.weighted b.weighted

let pp ppf t =
  Format.fprintf ppf
    "simple=%d direct=%d set=%d sel=%d weighted=%.1f" t.simple_ops
    t.direct_ops t.set_ops t.selections t.weighted
