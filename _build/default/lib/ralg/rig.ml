module Smap = Map.Make (String)
module Sset = Set.Make (String)

type t = { nodes : Sset.t; succ : Sset.t Smap.t; pred : Sset.t Smap.t }

let create ~names ~edges =
  let nodes = Sset.of_list names in
  let check n =
    if not (Sset.mem n nodes) then
      invalid_arg ("Rig.create: edge endpoint not a node: " ^ n)
  in
  let add m a b =
    Smap.update a
      (function None -> Some (Sset.singleton b) | Some s -> Some (Sset.add b s))
      m
  in
  let succ, pred =
    List.fold_left
      (fun (succ, pred) (a, b) ->
        check a;
        check b;
        (add succ a b, add pred b a))
      (Smap.empty, Smap.empty) edges
  in
  { nodes; succ; pred }

let names t = Sset.elements t.nodes

let edges t =
  Smap.fold
    (fun a bs acc -> Sset.fold (fun b acc -> (a, b) :: acc) bs acc)
    t.succ []
  |> List.sort compare

let mem t n = Sset.mem n t.nodes

let successors t n =
  match Smap.find_opt n t.succ with None -> [] | Some s -> Sset.elements s

let predecessors t n =
  match Smap.find_opt n t.pred with None -> [] | Some s -> Sset.elements s

let has_edge t a b =
  match Smap.find_opt a t.succ with None -> false | Some s -> Sset.mem b s

let reverse t = { t with succ = t.pred; pred = t.succ }

(* Depth-first reachability with an interior-avoid set.  A walk of
   length >= 1 from [a] to [b] exists with all interior nodes outside
   [avoid].  [b] itself may be in [avoid] (it is an endpoint). *)
let reachable_avoiding t a b ~avoid =
  let avoid = Sset.of_list avoid in
  let visited = ref Sset.empty in
  let rec go n =
    (* n is reached as an interior candidate or the start *)
    List.exists
      (fun m ->
        if m = b then true
        else if Sset.mem m avoid || Sset.mem m !visited then false
        else begin
          visited := Sset.add m !visited;
          go m
        end)
      (successors t n)
  in
  go a

let reachable t a b = reachable_avoiding t a b ~avoid:[]

let only_walk_is_edge t a b =
  has_edge t a b
  && not (List.exists (fun x -> reachable t x b) (successors t a))

let all_walks_start_with_edge t a b =
  has_edge t a b
  && not
       (List.exists
          (fun x -> x <> b && reachable t x b)
          (successors t a))

let separator t ~src ~dst ~via =
  if via = src || via = dst then true
  else not (reachable_avoiding t src dst ~avoid:[ via ])

let count_paths_avoiding t a b ~avoid_interior =
  (* Restrict to nodes usable as interior: reachable from [a] and
     co-reachable to [b] without touching avoided interiors.  If the
     restricted subgraph has a cycle, infinitely many walks exist. *)
  let allowed n = (not (avoid_interior n)) && n <> a && n <> b in
  (* usable interior nodes *)
  let from_a = ref Sset.empty in
  let rec dfs n =
    List.iter
      (fun m ->
        if allowed m && not (Sset.mem m !from_a) then begin
          from_a := Sset.add m !from_a;
          dfs m
        end)
      (successors t n)
  in
  dfs a;
  let to_b = ref Sset.empty in
  let rec dfs_back n =
    List.iter
      (fun m ->
        if allowed m && not (Sset.mem m !to_b) then begin
          to_b := Sset.add m !to_b;
          dfs_back m
        end)
      (predecessors t n)
  in
  dfs_back b;
  let interior = Sset.inter !from_a !to_b in
  (* cycle detection among interior nodes *)
  let color = Hashtbl.create 16 in
  let rec has_cycle n =
    match Hashtbl.find_opt color n with
    | Some `Done -> false
    | Some `Active -> true
    | None ->
        Hashtbl.replace color n `Active;
        let c =
          List.exists
            (fun m -> Sset.mem m interior && has_cycle m)
            (successors t n)
        in
        Hashtbl.replace color n `Done;
        c
  in
  if Sset.exists has_cycle interior then `Many
  else begin
    (* DAG over interior ∪ {a, b}: count walks a->b, capped at 2.  Count
       from each node the number of walk suffixes reaching b. *)
    let memo = Hashtbl.create 16 in
    let rec count n =
      (* number of walks from n to b of length >= 1, capped *)
      match Hashtbl.find_opt memo n with
      | Some c -> c
      | None ->
          let c =
            List.fold_left
              (fun acc m ->
                if acc >= 2 then acc
                else if m = b then acc + 1
                else if Sset.mem m interior then min 2 (acc + count m)
                else acc)
              0 (successors t n)
          in
          Hashtbl.replace memo n c;
          c
    in
    match count a with 0 -> `Zero | 1 -> `One | _ -> `Many
  end

let partial t ~keep =
  let keep_set = Sset.of_list keep in
  let keep = Sset.elements (Sset.inter keep_set t.nodes) in
  let edges =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if
              reachable_avoiding t a b
                ~avoid:(Sset.elements keep_set)
            then Some (a, b)
            else None)
          keep)
      keep
  in
  create ~names:keep ~edges

let interior_nodes t a b =
  List.filter
    (fun x -> x <> a && x <> b && reachable t a x && reachable t x b)
    (names t)

let to_dot ?(highlight = []) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph rig {\n  rankdir=TB;\n  node [shape=box];\n";
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  %S;\n" n))
    (names t);
  List.iter
    (fun (a, b) ->
      let attrs =
        if List.mem (a, b) highlight then
          " [style=\"dashed,bold\", color=blue]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %S -> %S%s;\n" a b attrs))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "@[<v>nodes: %a@,edges: %a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_string)
    (names t)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (a, b) -> Format.fprintf ppf "%s->%s" a b))
    (edges t)
