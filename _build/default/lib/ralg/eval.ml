exception Unknown_region of string

module Rs = Pat.Region_set

let rec eval inst expr =
  match expr with
  | Expr.Name n -> begin
      match Pat.Instance.find_opt inst n with
      | Some set -> set
      | None -> raise (Unknown_region n)
    end
  | Expr.Select (Expr.Contains_word w, e) ->
      Pat.Word_index.select_containing (Pat.Instance.word_index inst) w
        (eval inst e)
  | Expr.Select (Expr.Exactly_word w, e) ->
      Pat.Word_index.select_exact (Pat.Instance.word_index inst) w
        (eval inst e)
  | Expr.Select (Expr.Prefix_word w, e) ->
      Pat.Word_index.select_prefix (Pat.Instance.word_index inst) w
        (eval inst e)
  | Expr.Setop (Expr.Union, a, b) -> Rs.union (eval inst a) (eval inst b)
  | Expr.Setop (Expr.Inter, a, b) -> Rs.inter (eval inst a) (eval inst b)
  | Expr.Setop (Expr.Diff, a, b) -> Rs.diff (eval inst a) (eval inst b)
  | Expr.Innermost e -> Rs.innermost (eval inst e)
  | Expr.Outermost e -> Rs.outermost (eval inst e)
  | Expr.Chain (a, op, b) -> begin
      let ra = eval inst a and rb = eval inst b in
      match op with
      | Expr.Including -> Rs.including ra rb
      | Expr.Included -> Rs.included ra rb
      | Expr.Directly_including ->
          Rs.directly_including ~context:(Pat.Instance.universe inst) ra rb
      | Expr.Directly_included ->
          Rs.directly_included ~context:(Pat.Instance.universe inst) ra rb
    end
  | Expr.Chain_strict (a, op, b) -> begin
      let ra = eval inst a and rb = eval inst b in
      match op with
      | Expr.Including -> Rs.including_strict ra rb
      | Expr.Included -> Rs.included_strict ra rb
      | Expr.Directly_including ->
          Rs.directly_including_strict
            ~context:(Pat.Instance.universe inst)
            ra rb
      | Expr.Directly_included ->
          Rs.directly_included_strict
            ~context:(Pat.Instance.universe inst)
            ra rb
    end
  | Expr.At_depth (n, a, b) ->
      Rs.including_at_depth
        ~context:(Pat.Instance.universe inst)
        ~depth:n (eval inst a) (eval inst b)

let eval_shared inst expr =
  let memo : (Expr.t, Rs.t) Hashtbl.t = Hashtbl.create 16 in
  let rec go expr =
    match Hashtbl.find_opt memo expr with
    | Some r -> r
    | None ->
        let r =
          match expr with
          | Expr.Name _ -> eval inst expr
          | Expr.Select (Expr.Contains_word w, e) ->
              Pat.Word_index.select_containing
                (Pat.Instance.word_index inst)
                w (go e)
          | Expr.Select (Expr.Exactly_word w, e) ->
              Pat.Word_index.select_exact
                (Pat.Instance.word_index inst)
                w (go e)
          | Expr.Select (Expr.Prefix_word w, e) ->
              Pat.Word_index.select_prefix
                (Pat.Instance.word_index inst)
                w (go e)
          | Expr.Setop (Expr.Union, a, b) -> Rs.union (go a) (go b)
          | Expr.Setop (Expr.Inter, a, b) -> Rs.inter (go a) (go b)
          | Expr.Setop (Expr.Diff, a, b) -> Rs.diff (go a) (go b)
          | Expr.Innermost e -> Rs.innermost (go e)
          | Expr.Outermost e -> Rs.outermost (go e)
          | Expr.Chain (a, op, b) -> begin
              let ra = go a and rb = go b in
              match op with
              | Expr.Including -> Rs.including ra rb
              | Expr.Included -> Rs.included ra rb
              | Expr.Directly_including ->
                  Rs.directly_including
                    ~context:(Pat.Instance.universe inst)
                    ra rb
              | Expr.Directly_included ->
                  Rs.directly_included
                    ~context:(Pat.Instance.universe inst)
                    ra rb
            end
          | Expr.Chain_strict (a, op, b) -> begin
              let ra = go a and rb = go b in
              match op with
              | Expr.Including -> Rs.including_strict ra rb
              | Expr.Included -> Rs.included_strict ra rb
              | Expr.Directly_including ->
                  Rs.directly_including_strict
                    ~context:(Pat.Instance.universe inst)
                    ra rb
              | Expr.Directly_included ->
                  Rs.directly_included_strict
                    ~context:(Pat.Instance.universe inst)
                    ra rb
            end
          | Expr.At_depth (n, a, b) ->
              Rs.including_at_depth
                ~context:(Pat.Instance.universe inst)
                ~depth:n (go a) (go b)
        in
        Hashtbl.replace memo expr r;
        r
  in
  go expr

let direct_including_layered ~context r s =
  let result = ref Rs.empty in
  let layer = ref (Rs.outermost r) in
  let rest = ref (Rs.diff r !layer) in
  let continue_ = ref true in
  while (not (Rs.is_empty !layer)) && !continue_ do
    if Rs.is_empty (Rs.including !layer s) then continue_ := false
    else begin
      (* context regions strictly inside some layer region … *)
      let intermediates = Rs.included_strict context !layer in
      (* … shadow the s-regions strictly inside them *)
      let shadowed = Rs.included_strict s intermediates in
      let visible = Rs.diff s shadowed in
      result := Rs.union !result (Rs.including !layer visible);
      layer := Rs.outermost !rest;
      rest := Rs.diff !rest !layer
    end
  done;
  !result
