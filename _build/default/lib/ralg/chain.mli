(** Linear inclusion chains — the expressions the optimizer rewrites.

    An {e inclusion expression} (paper §3.2) is a right-grouped chain
    [A1 o1 A2 o2 … on−1 An] where each [oi] is [⊃]/[⊃d] (the "up"
    family) or each is [⊂]/[⊂d] (the "down" family), and every element
    is a region name, possibly under a word selection. *)

type strength = Simple | Direct

type family =
  | Up  (** [⊃]-family: each element includes the next *)
  | Down  (** [⊂]-family: each element is included in the next *)

type element = { name : string; selection : Expr.selection option }

type t = {
  family : family;
  elements : element list;  (** in written order; length >= 2 *)
  strengths : strength list;  (** between consecutive elements *)
}

val of_expr : Expr.t -> t option
(** Recognise a maximal homogeneous chain; [None] if the expression is
    not one (including single names, mixed families, or non-name
    operands). *)

val to_expr : t -> Expr.t
(** Rebuild the right-grouped expression. *)

val node_names : t -> string list
(** Element names in written order. *)

val length : t -> int
(** Number of elements. *)
