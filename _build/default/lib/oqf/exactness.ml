let link_exact ~full_rig ~indexed a b =
  Ralg.Rig.count_paths_avoiding full_rig a b ~avoid_interior:indexed = `One

let star_link () = true
