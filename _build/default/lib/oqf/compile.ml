type env = {
  view : Fschema.View.t;
  full_rig : Ralg.Rig.t;
  index_names : string list;
}

let env view ~index =
  {
    view;
    full_rig = Fschema.Rig_of_grammar.full view.Fschema.View.grammar;
    index_names = index;
  }

let indexed env n = List.mem n env.index_names
let grammar env = env.view.Fschema.View.grammar

(* ------------------------------------------------------------------ *)
(* Grammar shape analyses                                               *)

let non_literal_items items =
  List.filter
    (function
      | Fschema.Grammar.Lit _ -> false
      | Fschema.Grammar.Nonterm _ | Fschema.Grammar.Star _
      | Fschema.Grammar.Tok _ -> true)
    items

let rec value_carrier env name =
  match Fschema.Grammar.rules_of (grammar env) name with
  | [ Fschema.Grammar.Seq items ] -> begin
      match non_literal_items items with
      | [ Fschema.Grammar.Nonterm n ] -> value_carrier env n
      | _ -> name
    end
  | _ -> name

let is_atomic env name =
  match Fschema.Grammar.rules_of (grammar env) name with
  | [] -> false
  | rules ->
      List.for_all
        (function Fschema.Grammar.Token _ -> true | Fschema.Grammar.Seq _ -> false)
        rules

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

(* Whole-word containment, as the word index sees it. *)
let literal_contains_word l w =
  let n = String.length l and m = String.length w in
  let boundary i = i < 0 || i >= n || not (is_word_char l.[i]) in
  let rec go i =
    i + m <= n
    && ((String.sub l i m = w && boundary (i - 1) && boundary (i + m))
       || go (i + 1))
  in
  m > 0 && go 0

(* A literal is "safe" for word containment of [w] when it cannot make
   the region match where the value strings would not: [w] must not
   occur as a word inside it, and its edge characters must be non-word
   so no word can span a literal/token boundary. *)
let literal_safe l w =
  String.length l > 0
  && (not (is_word_char l.[0]))
  && (not (is_word_char l.[String.length l - 1]))
  && not (literal_contains_word l w)

let word_containment_exact env name w =
  (* closure over the sub-grammar reachable from [name] *)
  let seen = Hashtbl.create 8 in
  let rec ok name =
    if Hashtbl.mem seen name then true
    else begin
      Hashtbl.replace seen name ();
      List.for_all
        (function
          | Fschema.Grammar.Token _ -> true
          | Fschema.Grammar.Seq items ->
              List.for_all
                (function
                  | Fschema.Grammar.Lit l -> literal_safe l w
                  | Fschema.Grammar.Tok _ -> true
                  | Fschema.Grammar.Nonterm n
                  | Fschema.Grammar.Star { nonterm = n; _ } -> ok n)
                items)
        (Fschema.Grammar.rules_of (grammar env) name)
    end
  in
  ok name

(* Does the full RIG admit a walk of length exactly [len] from a to b? *)
let walk_of_length g a b len =
  if len <= 0 then a = b
  else begin
    let rec frontier nodes k =
      if k = 0 then List.mem b nodes
      else begin
        let next =
          List.sort_uniq String.compare
            (List.concat_map (fun n -> Ralg.Rig.successors g n) nodes)
        in
        next <> [] && frontier next (k - 1)
      end
    in
    frontier [ a ] len
  end

(* ------------------------------------------------------------------ *)
(* Path chains                                                          *)

type pending = { stars : int; anys : int; skipped : string list }

let no_pending = { stars = 0; anys = 0; skipped = [] }

type link = { target : string; via : pending; plus : bool }
(* chain = root, then links; [via] describes what the query path put
   between the previous indexed element and [target]; [plus] marks a
   GraphLog-style closure step ([target+]) *)

type sel = No_sel | Sel_exact of string | Sel_contains of string | Sel_prefix of string

(* Validate one step from the previous named attribute to the next,
   with [stars]/[anys] wildcards in between. *)
let step_possible env ~src ~dst ~stars ~anys =
  let g = env.full_rig in
  if stars > 0 then Ralg.Rig.reachable g src dst
  else if anys > 0 then walk_of_length g src dst (anys + 1)
  else Ralg.Rig.has_edge g src dst

(* Split a query path rooted at [root] into indexed chain links.
   Returns [None] if the path is provably impossible (Prop 3.3 applied
   to the full grammar), otherwise the links plus the trailing pending
   info past the last indexed element.  Validation is local (previous
   named attribute to next); the [via] info of a link accumulates
   everything since the previous {e indexed} element. *)
let chain_links env ~root (path : Odb.Path.t) =
  let exception Impossible in
  (* [cur]: last named node; [local_*]: wildcards since [cur];
     [pending]: accumulated since the last indexed element *)
  let rec go cur local_stars local_anys pending links = function
    | [] -> Some (List.rev links, pending)
    | Odb.Path.Star :: rest ->
        go cur (local_stars + 1) local_anys
          { pending with stars = pending.stars + 1 }
          links rest
    | Odb.Path.Any :: rest ->
        go cur local_stars (local_anys + 1)
          { pending with anys = pending.anys + 1 }
          links rest
    | Odb.Path.Attr a :: rest ->
        let known = Ralg.Rig.mem env.full_rig a in
        if
          known
          && not
               (step_possible env ~src:cur ~dst:a ~stars:local_stars
                  ~anys:local_anys)
        then raise Impossible
        else if known && indexed env a then
          go a 0 0 no_pending
            ({ target = a; via = pending; plus = false } :: links)
            rest
        else if known then
          go a 0 0
            { pending with skipped = pending.skipped @ [ a ] }
            links rest
        else begin
          (* an attribute with no named region (e.g. an anonymous token
             field): the index cannot see past it — treat as a wildcard *)
          go cur (local_stars + 1) local_anys
            { pending with stars = pending.stars + 1 }
            links rest
        end
    | Odb.Path.Plus a :: rest ->
        (* closure step: one or more [a]-attribute applications.  The
           first application is an ordinary attribute step; further
           levels behave like a wildcard for whatever follows. *)
        let known = Ralg.Rig.mem env.full_rig a in
        if
          known
          && not
               (step_possible env ~src:cur ~dst:a ~stars:local_stars
                  ~anys:local_anys)
        then raise Impossible
        else if known && indexed env a then
          go a 0 0 no_pending
            ({ target = a; via = pending; plus = true } :: links)
            rest
        else if known then
          go a 1 0
            {
              pending with
              skipped = pending.skipped @ [ a ];
              stars = pending.stars + 1;
            }
            links rest
        else
          go cur (local_stars + 1) local_anys
            { pending with stars = pending.stars + 1 }
            links rest
  in
  match go root 0 0 no_pending [] path with
  | result -> result
  | exception Impossible -> None

(* Decide the operator and exactness of one link.  The tail's result
   regions carry the link target's name; when that equals [src]
   (self-nested names) the step must use the strict operator — a path
   step always descends at least one level, while the paper's
   non-strict inclusion would let a region match itself. *)
let link_expr env ~src (link : link) tail =
  let via = link.via in
  let chain op =
    if src = link.target then Ralg.Expr.Chain_strict (Ralg.Expr.Name src, op, tail)
    else Ralg.Expr.Chain (Ralg.Expr.Name src, op, tail)
  in
  let interior_all_indexed a b =
    List.for_all (indexed env) (Ralg.Rig.interior_nodes env.full_rig a b)
  in
  if via.stars > 0 then (chain Ralg.Expr.Including, true)
  else if link.plus then begin
    (* [a+]: any-depth inclusion is exact precisely when regions of the
       target can only nest under [src] through pure target-chains *)
    let exact =
      via.anys = 0 && via.skipped = []
      && Ralg.Rig.interior_nodes env.full_rig src link.target = []
      && Ralg.Rig.interior_nodes env.full_rig link.target link.target = []
    in
    (chain Ralg.Expr.Including, exact)
  end
  else if
    via.anys > 0 && via.skipped = [] && interior_all_indexed src link.target
  then
    (* fixed-length variables: exactly [anys] indexed levels between *)
    (Ralg.Expr.At_depth (via.anys, Ralg.Expr.Name src, tail), true)
  else if via.anys > 0 then (chain Ralg.Expr.Including, false)
  else begin
    let exact =
      Exactness.link_exact ~full_rig:env.full_rig ~indexed:(indexed env) src
        link.target
    in
    (chain Ralg.Expr.Directly_including, exact)
  end

(* Build the candidate expression for one rooted path with an optional
   word selection on its final value.  Returns (expr, covered). *)
let path_expr env ~root (path : Odb.Path.t) (sel : sel) =
  match chain_links env ~root path with
  | None -> (`Empty, true)
  | Some (links, trailing) -> begin
      (* If the final query attribute is unindexed but its value carrier
         is indexed (Year is unindexed, Year_value is), extend the chain
         to the carrier: the selection can then be applied to a region
         whose text is the attribute's value. *)
      let links, trailing =
        match sel with
        | (Sel_exact _ | Sel_contains _ | Sel_prefix _)
          when trailing.stars = 0 && trailing.anys = 0 && trailing.skipped <> []
          -> begin
            let final_attr = List.nth trailing.skipped
                (List.length trailing.skipped - 1) in
            let carrier = value_carrier env final_attr in
            if indexed env carrier then
              ( links @ [ { target = carrier; via = trailing; plus = false } ],
                no_pending )
            else (links, trailing)
          end
        | _ -> (links, trailing)
      in
      (* resolve the value carrier of the last chain element when the
         selection needs the region text to equal the value *)
      let last_name =
        match List.rev links with [] -> root | l :: _ -> l.target
      in
      let trailing_unresolved =
        trailing.stars > 0 || trailing.anys > 0 || trailing.skipped <> []
      in
      (* extend through pass-through wrappers for equality selections *)
      let links, last_name =
        match sel with
        | (Sel_exact _ | Sel_prefix _)
          when (not trailing_unresolved) && not (is_atomic env last_name) -> begin
            let carrier = value_carrier env last_name in
            if carrier <> last_name && indexed env carrier then
              ( links @ [ { target = carrier; via = no_pending; plus = false } ],
                carrier )
            else (links, last_name)
          end
        | _ -> (links, last_name)
      in
      let selection, sel_covered =
        if trailing_unresolved then begin
          (* the selection applies below the last indexed element *)
          match sel with
          | No_sel -> (None, false)
          | Sel_exact w | Sel_contains w ->
              (Some (Ralg.Expr.Contains_word w), false)
          | Sel_prefix _ ->
              (* a word prefix need not occur as a whole word anywhere,
                 so no containment approximation is sound *)
              (None, false)
        end
        else begin
          match sel with
          | No_sel -> (None, true)
          | Sel_exact w ->
              if is_atomic env last_name then
                (Some (Ralg.Expr.Exactly_word w), true)
              else (Some (Ralg.Expr.Contains_word w), false)
          | Sel_prefix w ->
              if is_atomic env last_name then
                (Some (Ralg.Expr.Prefix_word w), true)
              else (None, false)
          | Sel_contains w ->
              ( Some (Ralg.Expr.Contains_word w),
                word_containment_exact env last_name w )
        end
      in
      (* assemble right-grouped chain *)
      let rec build src = function
        | [] -> assert false
        | [ last ] ->
            let base = Ralg.Expr.Name last.target in
            let base =
              match selection with
              | Some s -> Ralg.Expr.Select (s, base)
              | None -> base
            in
            link_expr env ~src last base
        | link :: rest ->
            let tail, ok = build link.target rest in
            let e, ok' = link_expr env ~src link tail in
            (e, ok && ok')
      in
      match links with
      | [] -> begin
          (* the path never reaches an indexed name: candidates are all
             root regions, with a containment selection if any *)
          match selection with
          | Some s ->
              (`Expr (Ralg.Expr.Select (s, Ralg.Expr.Name root)), false)
          | None -> (`Expr (Ralg.Expr.Name root), sel_covered)
        end
      | links ->
          let e, links_ok = build root links in
          (`Expr e, links_ok && sel_covered)
    end

(* ------------------------------------------------------------------ *)
(* Predicate translation (per variable)                                 *)

(* Invariant: the returned candidates are always a superset of the
   satisfying root regions; [covered = true] means equality. *)
let rec pred_candidates env ~root ~var (pred : Odb.Query.pred) =
  let module Q = Odb.Query in
  match pred with
  | Q.True -> (`All, true)
  | Q.Eq_const (rp, w) ->
      if rp.Q.var <> var then (`All, true)
      else path_expr env ~root rp.Q.path (Sel_exact w)
  | Q.Contains (rp, w) ->
      if rp.Q.var <> var then (`All, true)
      else path_expr env ~root rp.Q.path (Sel_contains w)
  | Q.Starts_with (rp, w) ->
      if rp.Q.var <> var then (`All, true)
      else path_expr env ~root rp.Q.path (Sel_prefix w)
  | Q.Eq_paths (a, b) -> begin
      (* index assist (§5.2): the satisfying objects must possess both
         paths, so intersect the unselected chains; the equality itself
         is residual *)
      let for_side (rp : Q.rooted_path) =
        if rp.Q.var <> var then (`All, true)
        else begin
          let c, _ = path_expr env ~root rp.Q.path No_sel in
          (c, false)
        end
      in
      let ca, _ = for_side a and cb, _ = for_side b in
      (and_candidates ca cb, false)
    end
  | Q.And (p, q) ->
      let ca, ea = pred_candidates env ~root ~var p in
      let cb, eb = pred_candidates env ~root ~var q in
      (and_candidates ca cb, ea && eb)
  | Q.Or (p, q) ->
      let other_var p = List.exists (fun v -> v <> var) (Q.pred_vars p) in
      let ca, ea = pred_candidates env ~root ~var p in
      let cb, eb = pred_candidates env ~root ~var q in
      if other_var p || other_var q then (`All, false)
      else (or_candidates ca cb, ea && eb)
  | Q.Not p -> begin
      (* complementing is per-variable sound only when the negated
         predicate constrains this variable alone: NOT over another
         variable's predicate says nothing about this one, and NOT over
         a mixed predicate can admit every binding of this variable *)
      let vars = Q.pred_vars p in
      if vars = [] || List.for_all (fun v -> v <> var) vars then (`All, true)
      else if List.exists (fun v -> v <> var) vars then (`All, false)
      else begin
        let c, e = pred_candidates env ~root ~var p in
        if not e then (`All, false)
        else begin
          match c with
          | `All -> (`Empty, true)
          | `Empty -> (`All, true)
          | `Expr ex ->
              ( `Expr
                  (Ralg.Expr.Setop (Ralg.Expr.Diff, Ralg.Expr.Name root, ex)),
                true )
        end
      end
    end

and and_candidates a b =
  match (a, b) with
  | `Empty, _ | _, `Empty -> `Empty
  | `All, x | x, `All -> x
  | `Expr x, `Expr y -> `Expr (Ralg.Expr.Setop (Ralg.Expr.Inter, x, y))

and or_candidates a b =
  match (a, b) with
  | `All, _ | _, `All -> `All
  | `Empty, x | x, `Empty -> x
  | `Expr x, `Expr y -> `Expr (Ralg.Expr.Setop (Ralg.Expr.Union, x, y))

(* ------------------------------------------------------------------ *)
(* Select-item planning                                                 *)

let projection_plan env ~root ~cand_expr ~var_covered (path : Odb.Path.t) =
  if not var_covered then None
  else begin
    match chain_links env ~root path with
    | None -> None
    | Some (links, trailing) ->
        if
          trailing.stars > 0 || trailing.anys > 0 || trailing.skipped <> []
          || links = []
          || List.exists
               (fun l -> l.via.stars > 0 || l.via.anys > 0)
               links
        then None
        else begin
          (* extend to the value carrier so the region text is the
             value — only when the carrier is itself indexed *)
          let last = (List.hd (List.rev links)).target in
          let carrier = value_carrier env last in
          let links =
            if carrier <> last && indexed env carrier then
              links @ [ { target = carrier; via = no_pending; plus = false } ]
            else links
          in
          let final = (List.hd (List.rev links)).target in
          if not (is_atomic env final) then None
          else begin
            (* exactness of every link, in either direction the same *)
            let rec links_exact src = function
              | [] -> true
              | l :: rest ->
                  Exactness.link_exact ~full_rig:env.full_rig
                    ~indexed:(indexed env) src l.target
                  && links_exact l.target rest
            in
            if not (links_exact root links) then None
            else begin
              (* build Final ⊂d … ⊂d A1 ⊂d candidates, strict on
                 same-name links (self-nested regions) *)
              let rev = List.rev_map (fun l -> l.target) links in
              let rec build = function
                | [] -> (cand_expr, root)
                | n :: rest ->
                    let tail, tail_name = build rest in
                    let e =
                      if n = tail_name then
                        Ralg.Expr.Chain_strict
                          (Ralg.Expr.Name n, Ralg.Expr.Directly_included, tail)
                      else
                        Ralg.Expr.Chain
                          (Ralg.Expr.Name n, Ralg.Expr.Directly_included, tail)
                    in
                    (e, n)
              in
              match rev with [] -> None | l -> Some (fst (build l))
            end
          end
        end
  end

(* ------------------------------------------------------------------ *)

let indexed_path_attrs env ~root (path : Odb.Path.t) =
  if Odb.Path.has_variables path then None
  else begin
    match chain_links env ~root path with
    | None -> None
    | Some (links, trailing) -> begin
        (* the final attribute must itself be reachable: either it is
           the last link, or it is the head of the trailing skip list
           with an indexed carrier *)
        let links =
          if trailing = no_pending then Some links
          else if trailing.stars = 0 && trailing.anys = 0 then begin
            let final_attr =
              List.nth trailing.skipped (List.length trailing.skipped - 1)
            in
            let carrier = value_carrier env final_attr in
            if indexed env carrier then
              Some (links @ [ { target = carrier; via = trailing; plus = false } ])
            else None
          end
          else None
        in
        match links with
        | None | Some [] -> None
        | Some links -> begin
            (* follow the pass-through wrapper of the last element *)
            let last = (List.hd (List.rev links)).target in
            let carrier = value_carrier env last in
            let links =
              if carrier <> last && indexed env carrier then
                links @ [ { target = carrier; via = no_pending; plus = false } ]
              else links
            in
            let final = (List.hd (List.rev links)).target in
            if is_atomic env final then
              Some (List.map (fun l -> l.target) links)
            else None
          end
      end
  end

let compile env (q : Odb.Query.t) =
  let module Q = Odb.Query in
  match Q.validate q with
  | Error e -> Error e
  | Ok () -> begin
      let missing =
        List.find_map
          (fun (cls, _) ->
            match Fschema.View.class_nonterm env.view cls with
            | None -> Some cls
            | Some _ -> None)
          q.Q.from_
      in
      match missing with
      | Some cls -> Error ("unknown class: " ^ cls)
      | None ->
          let var_plans =
            List.map
              (fun (cls, var) ->
                let root =
                  Option.get (Fschema.View.class_nonterm env.view cls)
                in
                if not (indexed env root) then
                  {
                    Plan.var;
                    class_name = cls;
                    root;
                    candidates = Plan.All;
                    covered = false;
                  }
                else begin
                  let cands, covered =
                    pred_candidates env ~root ~var q.Q.where
                  in
                  let candidates =
                    match cands with
                    | `All -> Plan.Expr (Ralg.Expr.Name root)
                    | `Empty -> Plan.Empty
                    | `Expr e -> Plan.Expr e
                  in
                  { Plan.var; class_name = cls; root; candidates; covered }
                end)
              q.Q.from_
          in
          let exact = List.for_all (fun vp -> vp.Plan.covered) var_plans in
          let select_plans =
            List.map
              (fun (rp : Q.rooted_path) ->
                let vp =
                  List.find (fun vp -> vp.Plan.var = rp.Q.var) var_plans
                in
                if rp.Q.path = [] then Plan.Materialize rp.Q.var
                else begin
                  match vp.Plan.candidates with
                  | Plan.Expr cand_expr when exact -> begin
                      match
                        projection_plan env ~root:vp.Plan.root ~cand_expr
                          ~var_covered:vp.Plan.covered rp.Q.path
                      with
                      | Some e -> Plan.Project_regions e
                      | None -> Plan.Materialize rp.Q.var
                    end
                  | _ -> Plan.Materialize rp.Q.var
                end)
              q.Q.select
          in
          Ok
            {
              Plan.query = q;
              var_plans;
              select_plans;
              exact;
              index_names = env.index_names;
            }
    end
