module Sset = Set.Make (String)

(* Head region name of an expression (the name whose regions it
   returns), when syntactically evident. *)
let rec head_name = function
  | Ralg.Expr.Name n -> Some n
  | Ralg.Expr.Select (_, e)
  | Ralg.Expr.Innermost e
  | Ralg.Expr.Outermost e -> head_name e
  | Ralg.Expr.Chain (a, _, _)
  | Ralg.Expr.Chain_strict (a, _, _)
  | Ralg.Expr.At_depth (_, a, _) ->
      head_name a
  | Ralg.Expr.Setop (_, a, _) -> head_name a

(* Direct-inclusion pairs surviving in an expression. *)
let rec direct_pairs acc = function
  | Ralg.Expr.Name _ -> acc
  | Ralg.Expr.Select (_, e) | Ralg.Expr.Innermost e | Ralg.Expr.Outermost e ->
      direct_pairs acc e
  | Ralg.Expr.Setop (_, a, b) | Ralg.Expr.At_depth (_, a, b) ->
      direct_pairs (direct_pairs acc a) b
  | Ralg.Expr.Chain (a, op, b) | Ralg.Expr.Chain_strict (a, op, b) ->
      let acc = direct_pairs (direct_pairs acc a) b in
      if Ralg.Expr.is_direct op then begin
        match (head_name a, head_name b) with
        | Some x, Some y ->
            (* orient as (outer, inner) *)
            let pair =
              match op with
              | Ralg.Expr.Directly_including -> (x, y)
              | Ralg.Expr.Directly_included -> (y, x)
              | _ -> assert false
            in
            pair :: acc
        | _ -> acc
      end
      else acc

(* Depth-constrained pairs: counting the regions strictly between two
   endpoints is faithful only when every name on a walk between them is
   indexed, so the advisor must include all interior nodes. *)
let rec depth_pairs acc = function
  | Ralg.Expr.Name _ -> acc
  | Ralg.Expr.Select (_, e) | Ralg.Expr.Innermost e | Ralg.Expr.Outermost e ->
      depth_pairs acc e
  | Ralg.Expr.Setop (_, a, b)
  | Ralg.Expr.Chain (a, _, b)
  | Ralg.Expr.Chain_strict (a, _, b) ->
      depth_pairs (depth_pairs acc a) b
  | Ralg.Expr.At_depth (_, a, b) ->
      let acc = depth_pairs (depth_pairs acc a) b in
      (match (head_name a, head_name b) with
      | Some x, Some y -> (x, y) :: acc
      | _ -> acc)

(* Greedy §7 blocker selection: extend [chosen] until every full-RIG
   walk of length >= 2 from [x] to [y] passes through a chosen node. *)
let cover_pair full_rig chosen (x, y) =
  (* a walk of length >= 2 with interior avoiding [chosen] exists iff
     some successor chain does; pick interior nodes until none remains *)
  let exists_uncovered chosen =
    List.exists
      (fun z ->
        if Sset.mem z chosen then false
        else if z = y then
          (* x -> y -> … -> y requires a cycle through y avoiding chosen *)
          Ralg.Rig.reachable_avoiding full_rig y y
            ~avoid:(Sset.elements chosen)
        else
          Ralg.Rig.reachable_avoiding full_rig z y
            ~avoid:(Sset.elements chosen))
      (Ralg.Rig.successors full_rig x)
  in
  let pick chosen =
    List.find_opt
      (fun n ->
        (not (Sset.mem n chosen))
        && n <> x && n <> y
        && Ralg.Rig.reachable_avoiding full_rig x n
             ~avoid:(Sset.elements chosen)
        && Ralg.Rig.reachable_avoiding full_rig n y
             ~avoid:(Sset.elements chosen))
      (Ralg.Rig.names full_rig)
  in
  let rec go chosen =
    if not (exists_uncovered chosen) then chosen
    else begin
      match pick chosen with
      | Some n -> go (Sset.add n chosen)
      | None -> chosen (* cannot improve further *)
    end
  in
  go chosen

let optimized_var_exprs view q =
  let index = Fschema.Grammar.indexable view.Fschema.View.grammar in
  let env = Compile.env view ~index in
  match Compile.compile env q with
  | Error e -> Error e
  | Ok plan ->
      let rig = env.Compile.full_rig in
      Ok
        ( env,
          plan,
          List.filter_map
            (fun (vp : Plan.var_plan) ->
              match vp.Plan.candidates with
              | Plan.Expr e ->
                  Some (vp.Plan.var, e, Ralg.Optimizer.optimize rig e)
              | Plan.All | Plan.Empty -> None)
            plan.Plan.var_plans )

let required_indices view q =
  match optimized_var_exprs view q with
  | Error e -> Error e
  | Ok (env, _plan, exprs) ->
      let full_rig = env.Compile.full_rig in
      let base =
        List.fold_left
          (fun acc (_, _, e) ->
            List.fold_left (fun acc n -> Sset.add n acc) acc (Ralg.Expr.names e))
          Sset.empty exprs
      in
      (* depth-constrained links count indexed regions between their
         endpoints: every interior name must be indexed *)
      let base =
        List.fold_left
          (fun acc (_, _, e) ->
            List.fold_left
              (fun acc (x, y) ->
                List.fold_left
                  (fun acc n -> Sset.add n acc)
                  acc
                  (Ralg.Rig.interior_nodes full_rig x y))
              acc (depth_pairs [] e))
          base exprs
      in
      let pairs =
        List.concat_map (fun (_, _, e) -> direct_pairs [] e) exprs
      in
      let chosen = List.fold_left (cover_pair full_rig) base pairs in
      Ok (Sset.elements chosen)

let explain view ~index q =
  match optimized_var_exprs view q with
  | Error e -> Error e
  | Ok (_, _, full_exprs) -> begin
      let env = Compile.env view ~index in
      match Compile.compile env q with
      | Error e -> Error e
      | Ok plan ->
          let buf = Buffer.create 512 in
          let ppf = Format.formatter_of_buffer buf in
          Format.fprintf ppf "%a@." Plan.pp plan;
          let rig = Ralg.Rig.partial env.Compile.full_rig ~keep:index in
          List.iter
            (fun (vp : Plan.var_plan) ->
              match vp.Plan.candidates with
              | Plan.Expr e ->
                  let opt = Ralg.Optimizer.optimize rig e in
                  Format.fprintf ppf
                    "var %s:@.  naive:     %a@.  optimized: %a@.  cost: %a -> \
                     %a@.  trivially empty: %b@."
                    vp.Plan.var Ralg.Expr.pp e Ralg.Expr.pp opt Ralg.Cost.pp
                    (Ralg.Cost.estimate e) Ralg.Cost.pp
                    (Ralg.Cost.estimate opt)
                    (Ralg.Trivial.check rig e)
              | Plan.All ->
                  Format.fprintf ppf "var %s: full scan@." vp.Plan.var
              | Plan.Empty ->
                  Format.fprintf ppf "var %s: provably empty@." vp.Plan.var)
            plan.Plan.var_plans;
          (match required_indices view q with
          | Ok names ->
              Format.fprintf ppf
                "sufficient indices for exact evaluation: %s@."
                (String.concat ", " names)
          | Error _ -> ());
          List.iter
            (fun (v, naive, opt) ->
              Format.fprintf ppf
                "under full indexing, %s: %a  ==>  %a@." v Ralg.Expr.pp naive
                Ralg.Expr.pp opt)
            full_exprs;
          Format.pp_print_flush ppf ();
          Ok (Buffer.contents buf)
    end
