(** Index selection (§7).

    To fully compute a query it suffices to index (i) the non-terminals
    mentioned by its optimized inclusion expressions and (ii), for each
    remaining direct-inclusion pair, one non-terminal on each full-RIG
    walk between the pair's endpoints (so that a region of some indexed
    name always witnesses non-direct inclusion). *)

val required_indices :
  Fschema.View.t -> Odb.Query.t -> (string list, string) result
(** The sufficient index set for exact computation of the query,
    sorted.  Computed from the full-indexing plan: optimized expression
    names plus greedily chosen walk-blockers for each surviving direct
    operator. *)

val explain :
  Fschema.View.t -> index:string list -> Odb.Query.t -> (string, string) result
(** Human-readable plan report: per-variable naive and optimized
    expressions, cost estimates, exactness, and the advisor's
    sufficient index set. *)
