lib/oqf/exactness.mli: Ralg
