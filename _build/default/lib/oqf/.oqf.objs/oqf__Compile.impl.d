lib/oqf/compile.ml: Exactness Fschema Hashtbl List Odb Option Plan Ralg String
