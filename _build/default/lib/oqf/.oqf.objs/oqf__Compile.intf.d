lib/oqf/compile.mli: Fschema Odb Plan Ralg
