lib/oqf/execute.mli: Compile Fschema Odb Pat Plan Ralg Stdx
