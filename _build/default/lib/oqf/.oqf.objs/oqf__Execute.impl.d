lib/oqf/execute.ml: Compile Format Fschema List Odb Pat Plan Ralg Set Stdx String
