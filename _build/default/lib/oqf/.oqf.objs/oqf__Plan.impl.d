lib/oqf/plan.ml: Format List Odb Ralg String
