lib/oqf/corpus.mli: Execute Fschema Odb Pat Stdx
