lib/oqf/exactness.ml: Ralg
