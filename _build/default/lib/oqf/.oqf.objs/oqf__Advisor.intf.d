lib/oqf/advisor.mli: Fschema Odb
