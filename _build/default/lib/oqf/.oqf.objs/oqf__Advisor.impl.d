lib/oqf/advisor.ml: Buffer Compile Format Fschema List Plan Ralg Set String
