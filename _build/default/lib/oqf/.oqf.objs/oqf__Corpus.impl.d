lib/oqf/corpus.ml: Execute Fschema List Odb Printf Stdx
