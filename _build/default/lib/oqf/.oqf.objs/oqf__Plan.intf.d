lib/oqf/plan.mli: Format Odb Ralg
