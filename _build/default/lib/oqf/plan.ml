type candidates = All | Empty | Expr of Ralg.Expr.t

type var_plan = {
  var : string;
  class_name : string;
  root : string;
  candidates : candidates;
  covered : bool;
}

type select_plan = Materialize of string | Project_regions of Ralg.Expr.t

type t = {
  query : Odb.Query.t;
  var_plans : var_plan list;
  select_plans : select_plan list;
  exact : bool;
  index_names : string list;
}

let find_var t v = List.find_opt (fun vp -> vp.var = v) t.var_plans

let pp_candidates ppf = function
  | All -> Format.pp_print_string ppf "<all regions / full parse>"
  | Empty -> Format.pp_print_string ppf "<provably empty>"
  | Expr e -> Ralg.Expr.pp ppf e

let pp ppf t =
  Format.fprintf ppf "@[<v>query: %a@," Odb.Query.pp t.query;
  Format.fprintf ppf "indices: %s@," (String.concat ", " t.index_names);
  List.iter
    (fun vp ->
      Format.fprintf ppf "var %s (%s as %s): %a%s@," vp.var vp.class_name
        vp.root pp_candidates vp.candidates
        (if vp.covered then " [exact]" else " [superset]"))
    t.var_plans;
  List.iter
    (fun sp ->
      match sp with
      | Materialize v -> Format.fprintf ppf "select: materialize %s@," v
      | Project_regions e ->
          Format.fprintf ppf "select: project regions %a@," Ralg.Expr.pp e)
    t.select_plans;
  Format.fprintf ppf "phase 2: %s@]"
    (if t.exact then "materialize only (no re-filtering)"
     else "parse candidates and re-filter")
