(** The §6.3 exactness test.

    With a partial index, the inclusion expression for a query path is
    exact iff every edge of the partial-RIG path it uses matches a
    {e unique} path in the full RIG (whose interior avoids the indexed
    names).  With full indexing every edge trivially matches one path. *)

val link_exact :
  full_rig:Ralg.Rig.t -> indexed:(string -> bool) -> string -> string -> bool
(** Does the partial-RIG edge [(a, b)] correspond to exactly one full
    RIG path with unindexed interior? *)

val star_link : unit -> bool
(** A link produced by a [*X] path variable is exact by definition
    (any path is acceptable); provided for symmetry and clarity. *)
