(** Query plans.

    A plan records, per FROM variable, the region expression that
    computes its {e candidate regions} — an exact answer set when the
    indexed names suffice (§5, §6.3), otherwise a superset to be parsed
    and filtered (§6.2) — plus how each SELECT item is produced. *)

type candidates =
  | All  (** no index support: every region of the root non-terminal —
             or, if the root is unindexed, a full file parse *)
  | Empty  (** provably empty under the RIG (Proposition 3.3) *)
  | Expr of Ralg.Expr.t

type var_plan = {
  var : string;
  class_name : string;
  root : string;  (** the non-terminal whose regions are candidates *)
  candidates : candidates;
  covered : bool;
      (** the WHERE clause's effect on this variable is computed exactly
          by [candidates]; when false, [candidates] is a superset and
          phase 2 must re-filter *)
}

type select_plan =
  | Materialize of string  (** variable: parse its surviving candidate
                               regions and navigate the item's path *)
  | Project_regions of Ralg.Expr.t
      (** index-only projection (§5.2): the values are the texts of
          these regions; no parsing at all *)

type t = {
  query : Odb.Query.t;
  var_plans : var_plan list;
  select_plans : select_plan list;
  exact : bool;
      (** every variable covered: phase 2 needs no re-filtering *)
  index_names : string list;
}

val find_var : t -> string -> var_plan option

val pp : Format.formatter -> t -> unit
(** Multi-line EXPLAIN-style rendering. *)
