type params = {
  seed : int;
  n_messages : int;
  n_users : int;
  max_recipients : int;
  body_words : int;
  zipf_s : float;
}

let default =
  {
    seed = 23;
    n_messages = 200;
    n_users = 40;
    max_recipients = 3;
    body_words = 15;
    zipf_s = 1.1;
  }

let with_size n = { default with n_messages = n }

let domains = [| "uni.edu"; "csri.edu"; "uw.ca"; "web.org" |]

let address k =
  Printf.sprintf "%s%d@%s"
    (String.lowercase_ascii (Vocab.last_name (k mod 20)))
    k
    domains.(k mod Array.length domains)

let generate p =
  let prng = Stdx.Prng.create p.seed in
  let zipf = Stdx.Zipf.create ~n:(max p.n_users 1) ~s:p.zipf_s in
  let buf = Buffer.create (p.n_messages * 250) in
  let subjects = Array.make (max p.n_messages 1) "hello" in
  Buffer.add_string buf "== mbox ==\n";
  for i = 0 to p.n_messages - 1 do
    let sender = address (Stdx.Zipf.sample zipf prng) in
    let n_rcpt = Stdx.Prng.int_in prng 1 (max p.max_recipients 1) in
    let recipients =
      String.concat "; "
        (List.init n_rcpt (fun _ -> address (Stdx.Zipf.sample zipf prng)))
    in
    let subject =
      if i > 0 && Stdx.Prng.int prng 100 < 35 then
        (* a reply: re-use an earlier subject so threads exist *)
        "re: " ^ subjects.(Stdx.Prng.int prng i)
      else
        String.concat " "
          (List.init (Stdx.Prng.int_in prng 2 4) (fun _ ->
               Vocab.abstract_word (Stdx.Prng.int prng 25)))
    in
    subjects.(i) <-
      (if String.length subject >= 4 && String.sub subject 0 4 = "re: " then
         String.sub subject 4 (String.length subject - 4)
       else subject);
    let body =
      String.concat " "
        (List.init (max p.body_words 1) (fun _ ->
             Vocab.abstract_word (Stdx.Prng.int prng 25)))
    in
    Buffer.add_string buf
      (Printf.sprintf
         "<msg> FROM: %s\nTO: {%s}\nSUBJECT: {%s}\nDATE: {2026-06-%02d}\n\
          BODY: {%s}\n</msg>\n"
         sender recipients subject
         (1 + (i mod 28))
         body)
  done;
  Buffer.contents buf
