(** Shared vocabulary for the synthetic corpora.

    Real bibliographies draw names and keywords from heavy-tailed
    distributions; the generators reproduce that with Zipf-ranked pools
    so that query words span a wide selectivity range.  Rank 0 is the
    most frequent item of each pool. *)

val last_name : int -> string
(** Deterministic last name of a given rank ("Chang", "Corliss", …,
    then synthetic ["LastN"]). *)

val first_name : int -> string
val keyword : int -> string
(** Multi-word keyword phrases, letters and spaces only. *)

val title_word : int -> string
val abstract_word : int -> string
val service : int -> string
(** Service names for the log corpus. *)

val heading_word : int -> string
