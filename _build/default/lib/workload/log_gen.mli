(** Synthetic structured logs conforming to {!Fschema.Log_schema}. *)

type params = {
  seed : int;
  n_entries : int;
  error_percent : int;  (** share of ERROR entries, 0–100 *)
  services : int;  (** distinct service names *)
  message_words : int;
}

val default : params
val with_size : int -> params
val generate : params -> string
