(** Synthetic mailboxes conforming to {!Fschema.Mbox_schema}.

    Senders and recipients are drawn from a Zipf-distributed user pool
    (a few prolific writers, a long tail), and message bodies reuse the
    abstract vocabulary, so both selective and unselective text queries
    exist.  Reply subjects reference earlier subjects so join-style
    thread queries have matches. *)

type params = {
  seed : int;
  n_messages : int;
  n_users : int;
  max_recipients : int;
  body_words : int;
  zipf_s : float;
}

val default : params
val with_size : int -> params
val address : int -> string
(** Deterministic address of the user with a given rank. *)

val generate : params -> string
