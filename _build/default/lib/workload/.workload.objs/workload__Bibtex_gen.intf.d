lib/workload/bibtex_gen.mli:
