lib/workload/log_gen.ml: Buffer List Printf Stdx String Vocab
