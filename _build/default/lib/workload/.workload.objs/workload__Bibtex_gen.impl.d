lib/workload/bibtex_gen.ml: Buffer List Printf Stdx String Vocab
