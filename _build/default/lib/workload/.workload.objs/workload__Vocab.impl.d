lib/workload/vocab.ml: Array Printf
