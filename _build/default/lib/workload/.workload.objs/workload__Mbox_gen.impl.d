lib/workload/mbox_gen.ml: Array Buffer List Printf Stdx String Vocab
