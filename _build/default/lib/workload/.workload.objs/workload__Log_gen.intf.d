lib/workload/log_gen.mli:
