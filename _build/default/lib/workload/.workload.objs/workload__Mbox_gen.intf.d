lib/workload/mbox_gen.mli:
