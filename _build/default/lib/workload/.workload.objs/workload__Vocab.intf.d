lib/workload/vocab.mli:
