lib/workload/sgml_gen.mli:
