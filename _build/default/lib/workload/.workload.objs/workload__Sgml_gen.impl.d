lib/workload/sgml_gen.ml: Buffer List Printf Stdx String Vocab
