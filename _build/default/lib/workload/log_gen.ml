type params = {
  seed : int;
  n_entries : int;
  error_percent : int;
  services : int;
  message_words : int;
}

let default =
  { seed = 7; n_entries = 500; error_percent = 10; services = 5; message_words = 6 }

let with_size n = { default with n_entries = n }

let timestamp i =
  Printf.sprintf "2026-07-04 %02d:%02d:%02d" (i / 3600 mod 24) (i / 60 mod 60)
    (i mod 60)

let generate p =
  let prng = Stdx.Prng.create p.seed in
  let buf = Buffer.create (p.n_entries * 90) in
  Buffer.add_string buf "== log ==\n";
  for i = 0 to p.n_entries - 1 do
    let level =
      if Stdx.Prng.int prng 100 < p.error_percent then "ERROR"
      else if Stdx.Prng.int prng 100 < 20 then "WARN"
      else "INFO"
    in
    let service = Vocab.service (Stdx.Prng.int prng (max p.services 1)) in
    let msg =
      String.concat " "
        (List.init (max p.message_words 1) (fun _ ->
             Vocab.abstract_word (Stdx.Prng.int prng 25)))
    in
    Buffer.add_string buf
      (Printf.sprintf "[%s] level=%s service=%s msg=\"%s\"\n" (timestamp i)
         level service msg)
  done;
  Buffer.contents buf
