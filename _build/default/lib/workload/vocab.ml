let pick base synth k =
  if k < Array.length base then base.(k)
  else Printf.sprintf "%s%d" synth (k - Array.length base)

let last_names =
  [|
    "Chang"; "Corliss"; "Milo"; "Griewank"; "Consens"; "Tompa"; "Gonnet";
    "Abiteboul"; "Cluet"; "Salminen"; "Kilpelainen"; "Mannila"; "Kifer";
    "Sagiv"; "Mendelzon"; "Lamport"; "Sethi"; "Burkowski"; "Bertino"; "Paepcke";
  |]

let first_names =
  [|
    "Gene"; "Yves"; "Tova"; "Andreas"; "Mariano"; "Frank"; "Gaston"; "Serge";
    "Sophie"; "Airi"; "Pekka"; "Heikki"; "Michael"; "Yehoshua"; "Alberto";
    "Leslie"; "Ravi"; "Forbes"; "Elisa"; "Andreas2";
  |]

let keywords =
  [|
    "point algorithm"; "Taylor series"; "radius of convergence";
    "text indexing"; "query optimization"; "region algebra";
    "structuring schema"; "partial indexing"; "suffix arrays";
    "object databases"; "path expressions"; "transitive closure";
    "file systems"; "semi structured data"; "visual queries";
  |]

let title_words =
  [|
    "Optimizing"; "Queries"; "Files"; "Solving"; "Ordinary"; "Differential";
    "Equations"; "Using"; "Taylor"; "Series"; "Automatic"; "Text"; "Search";
    "Region"; "Indexing"; "Databases"; "Algebra"; "Grammar"; "Modelling";
    "Retrieval";
  |]

let abstract_words =
  [|
    "the"; "a"; "system"; "index"; "region"; "query"; "file"; "database";
    "parser"; "word"; "algorithm"; "evaluation"; "optimization"; "grammar";
    "structure"; "text"; "schema"; "engine"; "program"; "derivation";
    "preprocessor"; "performance"; "candidate"; "superset"; "inclusion";
  |]

let services = [| "auth"; "web"; "db"; "cache"; "mail"; "queue"; "batch" |]

let heading_words =
  [|
    "introduction"; "background"; "motivation"; "example"; "indexing";
    "optimization"; "schemas"; "evaluation"; "conclusion"; "appendix";
  |]

let last_name = pick last_names "Last"
let first_name = pick first_names "First"
let keyword = pick keywords "keyword"
let title_word = pick title_words "Word"
let abstract_word = pick abstract_words "term"
let service = pick services "svc"
let heading_word = pick heading_words "section"
