(** Synthetic BibTeX corpora conforming to {!Fschema.Bibtex_schema}.

    Deterministic in the seed.  Author/editor last names and keywords
    are Zipf-distributed so that selective and unselective query words
    both exist; cross-references ([CITES]) point at earlier keys so
    join queries have matches. *)

type params = {
  seed : int;
  n_references : int;
  max_authors : int;  (** authors per reference, uniform in [1..max] *)
  max_editors : int;
  max_keywords : int;
  max_cites : int;
  abstract_words : int;  (** words per abstract *)
  name_pool : int;  (** distinct last names *)
  zipf_s : float;  (** skew of the name/keyword draws *)
}

val default : params
(** 200 references, 3 authors, skew 1.1, seed 42. *)

val with_size : int -> params
(** [default] at a given reference count. *)

val generate : params -> string
(** The file text, parseable by the BibTeX grammar. *)

val key_of : int -> string
(** The reference key the generator gives entry [i] (["Ref0042"]). *)
