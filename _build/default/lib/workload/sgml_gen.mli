(** Synthetic nested documents conforming to {!Fschema.Sgml_schema}.

    The nesting depth is a parameter — E7 (transitive closure) and E8
    (direct-inclusion cost) sweep it. *)

type params = {
  seed : int;
  top_sections : int;
  depth : int;  (** maximum nesting depth *)
  fanout : int;  (** subsections per section, uniform in [0..fanout] *)
  paras : int;  (** paragraphs per section, uniform in [1..paras] *)
  para_words : int;
}

val default : params
val with_depth : int -> params
val generate : params -> string
