type params = {
  seed : int;
  top_sections : int;
  depth : int;
  fanout : int;
  paras : int;
  para_words : int;
}

let default =
  { seed = 13; top_sections = 3; depth = 4; fanout = 2; paras = 2; para_words = 8 }

let with_depth d = { default with depth = d }

let generate p =
  let prng = Stdx.Prng.create p.seed in
  let buf = Buffer.create 4096 in
  let para () =
    String.concat " "
      (List.init (max p.para_words 1) (fun _ ->
           Vocab.abstract_word (Stdx.Prng.int prng 25)))
  in
  let rec section depth =
    Buffer.add_string buf "<sec> <h>";
    Buffer.add_string buf (Vocab.heading_word (Stdx.Prng.int prng 10));
    Buffer.add_string buf (Printf.sprintf " level%d" depth);
    Buffer.add_string buf "</h>\n";
    for _ = 1 to Stdx.Prng.int_in prng 1 (max p.paras 1) do
      Buffer.add_string buf ("<p>" ^ para () ^ "</p>\n")
    done;
    if depth < p.depth then begin
      (* at least one child while above half the target depth, so deep
         chains reliably exist for the closure experiments *)
      let min_children = if depth * 2 < p.depth then 1 else 0 in
      let n = Stdx.Prng.int_in prng min_children (max p.fanout min_children) in
      for _ = 1 to n do
        section (depth + 1)
      done
    end;
    Buffer.add_string buf "</sec>\n"
  in
  Buffer.add_string buf "<doc>\n";
  for _ = 1 to max p.top_sections 1 do
    section 1
  done;
  Buffer.add_string buf "</doc>\n";
  Buffer.contents buf
