type params = {
  seed : int;
  n_references : int;
  max_authors : int;
  max_editors : int;
  max_keywords : int;
  max_cites : int;
  abstract_words : int;
  name_pool : int;
  zipf_s : float;
}

let default =
  {
    seed = 42;
    n_references = 200;
    max_authors = 3;
    max_editors = 2;
    max_keywords = 4;
    max_cites = 3;
    abstract_words = 30;
    name_pool = 120;
    zipf_s = 1.1;
  }

let with_size n = { default with n_references = n }
let key_of i = Printf.sprintf "Ref%04d" i

let gen_name prng zipf =
  Printf.sprintf "%s %s"
    (Vocab.first_name (Stdx.Prng.int prng 20))
    (Vocab.last_name (Stdx.Zipf.sample zipf prng))

let gen_names prng zipf max_n =
  let n = Stdx.Prng.int_in prng 1 (max max_n 1) in
  String.concat " and " (List.init n (fun _ -> gen_name prng zipf))

let gen_title prng =
  let n = Stdx.Prng.int_in prng 3 7 in
  String.concat " "
    (List.init n (fun _ -> Vocab.title_word (Stdx.Prng.int prng 20)))

let gen_keywords prng kw_zipf max_n =
  let n = Stdx.Prng.int_in prng 1 (max max_n 1) in
  String.concat "; "
    (List.init n (fun _ -> Vocab.keyword (Stdx.Zipf.sample kw_zipf prng)))

let gen_cites prng i max_n =
  if i = 0 then key_of 0
  else begin
    let n = Stdx.Prng.int_in prng 1 (max max_n 1) in
    String.concat "; "
      (List.init n (fun _ -> key_of (Stdx.Prng.int prng i)))
  end

let gen_abstract prng words =
  String.concat " "
    (List.init (max words 1) (fun _ ->
         Vocab.abstract_word (Stdx.Prng.int prng 25)))

let generate p =
  let prng = Stdx.Prng.create p.seed in
  let name_zipf = Stdx.Zipf.create ~n:(max p.name_pool 1) ~s:p.zipf_s in
  let kw_zipf = Stdx.Zipf.create ~n:40 ~s:p.zipf_s in
  let buf = Buffer.create (p.n_references * 400) in
  Buffer.add_string buf "%% bibliography\n";
  for i = 0 to p.n_references - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "@INCOLLECTION{%s, AUTHOR = {%s},\n  TITLE = {%s},\n  YEAR = {%d},\n\
         \  EDITOR = {%s},\n  KEYWORDS = {%s},\n  CITES = {%s},\n\
         \  ABSTRACT = {%s}}\n"
         (key_of i)
         (gen_names prng name_zipf p.max_authors)
         (gen_title prng)
         (1960 + Stdx.Prng.int prng 40)
         (gen_names prng name_zipf p.max_editors)
         (gen_keywords prng kw_zipf p.max_keywords)
         (gen_cites prng i p.max_cites)
         (gen_abstract prng p.abstract_words))
  done;
  Buffer.contents buf
