(** Deriving the region inclusion graph from a grammar (§4.2, §6.1).

    For full indexing: nodes are the non-terminals and [(A, B)] is an
    edge iff [B] occurs (directly or under a star) on the right-hand
    side of a rule for [A].  For a partial index the derived graph has
    an edge where the full graph has a walk whose interior avoids the
    indexed set. *)

val full : Grammar.t -> Ralg.Rig.t
(** The RIG over all non-terminals (including the root, which helps
    answering path queries that start at the root even though the root
    itself is not indexed). *)

val for_index : Grammar.t -> keep:string list -> Ralg.Rig.t
(** The RIG of the partial index [keep]. *)
