(** Derived database types.

    The paper's §4.1 structuring schema begins with class and type
    declarations ([Class Reference = tuple(Key : string, Authors :
    set(Name), …)]).  For natural schemas those declarations are
    determined by the grammar's rule shapes; this module derives and
    prints them. *)

type ty =
  | Str_ty  (** atomic string *)
  | Named of string  (** reference to another declared type *)
  | Set_ty of ty
  | Tuple_ty of (string * ty) list
  | Union_ty of ty list  (** disjunctive non-terminal (paper, fn. 5) *)

val of_grammar : Grammar.t -> (string * ty) list
(** One declaration per non-terminal, in sorted order.  Pass-through
    wrappers declare the wrapped type directly. *)

val pp_ty : Format.formatter -> ty -> unit

val pp_declarations : View.t -> Format.formatter -> unit -> unit
(** The full §4.1-style listing: class-mapped non-terminals print as
    [Class], the rest as [Type]. *)

val to_string : View.t -> string
