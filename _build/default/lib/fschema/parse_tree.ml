type t = { symbol : string; start : int; stop : int; content : content }

and content = Leaf | Branch of branch list

and branch =
  | Child of t
  | Children of string * t list
  | Text of int * int

let region t = Pat.Region.make ~start:t.start ~stop:t.stop

let children t =
  match t.content with
  | Leaf -> []
  | Branch branches ->
      List.concat_map
        (function
          | Child c -> [ c ]
          | Children (_, cs) -> cs
          | Text _ -> [])
        branches

let rec all_regions t =
  (t.symbol, region t) :: List.concat_map all_regions (children t)

let rec count_nodes t = 1 + List.fold_left (fun a c -> a + count_nodes c) 0 (children t)

let rec strictly_nested t =
  List.for_all
    (fun c ->
      Pat.Region.strictly_includes (region t) (region c) && strictly_nested c)
    (children t)

let pp ?keep ppf t =
  let visible symbol =
    match keep with None -> true | Some names -> List.mem symbol names
  in
  (* children promoted through hidden nodes *)
  let rec visible_children node =
    List.concat_map
      (fun c -> if visible c.symbol then [ c ] else visible_children c)
      (children node)
  in
  let rec go indent node =
    Format.fprintf ppf "%s%s [%d,%d)@." indent node.symbol node.start node.stop;
    List.iter (go (indent ^ "  ")) (visible_children node)
  in
  if visible t.symbol then go "" t
  else List.iter (go "") (visible_children t)
