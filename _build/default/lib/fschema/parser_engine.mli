(** Scannerless recursive-descent parsing of files against a grammar.

    PEG semantics: alternatives are ordered choice with backtracking,
    repetitions are greedy.  Whitespace is skipped before literals and
    tokens.  The paper uses Yacc for this role; a PEG over the natural
    rule shapes is equivalent for the grammars structuring schemas use,
    and directly yields the byte spans the region indices need.

    Parsing is where file bytes are consumed, so the engine reports the
    bytes it touched to {!Stdx.Stats.global} ([bytes_parsed]) — this is
    the quantity partial indexing is designed to shrink. *)

type error = { position : int; expected : string }

val parse : Grammar.t -> Pat.Text.t -> (Parse_tree.t, error) result
(** Parse the whole text as the grammar root (trailing whitespace
    allowed). *)

val parse_at :
  Grammar.t ->
  Pat.Text.t ->
  symbol:string ->
  start:int ->
  stop:int ->
  (Parse_tree.t, error) result
(** Parse exactly the slice [\[start, stop)] as one occurrence of
    [symbol] — used to materialise candidate regions (§6.2). *)

val pp_error : Format.formatter -> error -> unit

val describe_error : Pat.Text.t -> error -> string
(** Multi-line description with line:column and a caret-annotated
    snippet of the offending input. *)
