type ty =
  | Str_ty
  | Named of string
  | Set_ty of ty
  | Tuple_ty of (string * ty) list
  | Union_ty of ty list

let ty_of_rhs = function
  | Grammar.Token _ -> Str_ty
  | Grammar.Seq items -> begin
      let named =
        List.filter_map
          (function
            | Grammar.Lit _ -> None
            | Grammar.Nonterm n -> Some (n, Named n)
            | Grammar.Star { nonterm; _ } -> Some (nonterm, Set_ty (Named nonterm))
            | Grammar.Tok _ -> Some ("text", Str_ty))
          items
      in
      match named with [ (_, ty) ] -> ty | fields -> Tuple_ty fields
    end

let of_grammar g =
  List.map
    (fun n ->
      let ty =
        match List.map ty_of_rhs (Grammar.rules_of g n) with
        | [] -> Str_ty
        | [ ty ] -> ty
        | alts -> Union_ty alts
      in
      (n, ty))
    (Grammar.nonterminals g)

let rec pp_ty ppf = function
  | Str_ty -> Format.pp_print_string ppf "string"
  | Named n -> Format.pp_print_string ppf n
  | Set_ty t -> Format.fprintf ppf "set(%a)" pp_ty t
  | Tuple_ty fields ->
      Format.fprintf ppf "tuple(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (k, t) -> Format.fprintf ppf "%s : %a" k pp_ty t))
        fields
  | Union_ty alts ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
        pp_ty ppf alts

let pp_declarations view ppf () =
  let g = view.View.grammar in
  List.iter
    (fun (name, ty) ->
      let keyword =
        match View.nonterm_class view name with
        | Some _ -> "Class"
        | None -> "Type"
      in
      Format.fprintf ppf "@[<hov 2>%s %s =@ %a@]@." keyword name pp_ty ty)
    (of_grammar g)

let to_string view = Format.asprintf "%a" (pp_declarations view) ()
