(** Natural structuring schemas (paper §4).

    A structuring schema is a grammar annotated with database
    construction; for {e natural} schemas the annotation is determined
    by the rule shape, so this module only stores the grammar and the
    library derives values, regions and the RIG from it:

    - a [Token] rule maps to an atomic string;
    - a [Seq] rule maps to a tuple over its non-literal items (or
      passes through when there is exactly one);
    - a [Star] item maps to a set of tagged elements.

    {b Span discipline.}  Every region built for a parse-tree node must
    {e strictly} contain the regions of its children, otherwise direct
    inclusion could not tell parent from child.  [create] therefore
    rejects rules whose right-hand side is a bare [Nonterm] or a bare
    [Star]: wrap them in delimiters (["{" … "}"]), which real file
    formats have anyway. *)

type term_spec =
  | Word  (** a maximal run of letters/digits *)
  | Until of char list
      (** raw text up to (not including) any stop character, trimmed of
          surrounding whitespace; must be non-empty after trimming *)

type item =
  | Lit of string  (** literal terminal; must be non-empty *)
  | Nonterm of string
  | Star of { nonterm : string; separator : string option }
      (** zero or more elements, optionally separated by a literal *)
  | Tok of term_spec  (** anonymous token: contributes a string value
                          but no named region *)

type rhs = Seq of item list | Token of term_spec
type rule = { lhs : string; rhs : rhs }
type t

val create : root:string -> rule list -> (t, string) result
(** Validate and build: every referenced non-terminal must be defined,
    the root must be defined, the non-literal items of a [Seq] must have
    distinct names, and the span discipline above must hold. *)

val create_exn : root:string -> rule list -> t

val root : t -> string
val nonterminals : t -> string list
(** All defined non-terminals, sorted. *)

val indexable : t -> string list
(** Non-terminals other than the root — the candidates for region
    indexing (the paper excludes the grammar root). *)

val rules_of : t -> string -> rhs list
(** Alternatives for one non-terminal, in declaration order. *)

val pp : Format.formatter -> t -> unit
