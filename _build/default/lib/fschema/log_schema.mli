(** Structuring schema for structured server logs — one of the
    semi-structured file kinds the paper's introduction motivates
    ("log files").

    {v
    == log ==
    [2026-07-04 12:00:01] level=ERROR service=auth msg="failed login for bob"
    [2026-07-04 12:00:05] level=INFO service=web msg="GET /index"
    v}

    Each entry surfaces as an object of class ["Entries"] with
    attributes [Timestamp], [Level], [Service] and [Message]. *)

val grammar : Grammar.t
val view : View.t
val sample : string
