(** The BibTeX structuring schema of the paper's running example.

    A (simplified, fixed field order) BibTeX entry:

    {v
    @INCOLLECTION{Cor182a,
      AUTHOR = {Gene Corliss and Yves Chang},
      TITLE = {Solving Ordinary Differential Equations},
      YEAR = {1982},
      EDITOR = {Andreas Griewank},
      KEYWORDS = {point algorithm; Taylor series},
      CITES = {Aber88a; Gupt85a},
      ABSTRACT = {A Fortran pre-processor uses automatic
                  differentiation.}}
    v}

    The database image of a file is a set of [Reference] objects with
    attributes [Key], [Authors] (a set of [Name]s, each with
    [First_Name]/[Last_Name]), [Title], [Year], [Editors], [Keywords],
    [Cites] and [Abstract], exposed as the class ["References"]. *)

val grammar : Grammar.t
val view : View.t

val field_names : string list
(** The attribute non-terminals of a [Reference], in file order. *)

val sample : string
(** A two-entry file used by tests and the quickstart example. *)
