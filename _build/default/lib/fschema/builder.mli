(** Database-image construction (the natural-schema annotations of §4).

    From a parse tree the builder derives the value each node denotes:
    token nodes become strings, sequence nodes become tuples over their
    non-literal items (passing through when there is exactly one), and
    star items become sets of elements tagged with their non-terminal
    name. *)

val value_of_tree : Pat.Text.t -> Parse_tree.t -> Odb.Value.t
(** The database image of one node. *)

val regions_of_tree : Parse_tree.t -> (string * Pat.Region.t) list
(** All named regions of the tree (symbol, span). *)

val scoped_regions :
  Parse_tree.t -> name:string -> within:string -> Pat.Region.t list
(** The regions of [name] that lie below an occurrence of [within] in
    the parse tree — §7's selective indexing ("instead of indexing all
    the Name regions it is better to index only those that reside in
    some Authors region"). *)

val instance_of_tree :
  Pat.Text.t -> Parse_tree.t -> keep:string list -> Pat.Instance.t
(** Build a region-index instance from the parse tree, keeping only the
    names in [keep] (pass every indexable non-terminal for full
    indexing).  The grammar root is normally excluded. *)

val load :
  Pat.Text.t ->
  Parse_tree.t ->
  class_of:(string -> string option) ->
  Odb.Database.t ->
  unit
(** Walk the tree; every node whose symbol is mapped to a class by
    [class_of] is materialised and inserted into that class extent.
    This is the paper's "construct the database image of the file" full
    load. *)
