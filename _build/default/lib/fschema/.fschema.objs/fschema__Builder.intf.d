lib/fschema/builder.mli: Odb Parse_tree Pat
