lib/fschema/log_schema.ml: Grammar View
