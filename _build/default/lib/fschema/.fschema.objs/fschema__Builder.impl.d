lib/fschema/builder.ml: List Odb Parse_tree Pat String
