lib/fschema/view.mli: Grammar Odb Pat
