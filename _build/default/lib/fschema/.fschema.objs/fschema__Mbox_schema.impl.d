lib/fschema/mbox_schema.ml: Grammar View
