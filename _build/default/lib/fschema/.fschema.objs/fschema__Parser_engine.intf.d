lib/fschema/parser_engine.mli: Format Grammar Parse_tree Pat
