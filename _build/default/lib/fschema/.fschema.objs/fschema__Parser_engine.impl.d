lib/fschema/parser_engine.ml: Format Grammar List Parse_tree Pat Printf Stdx String
