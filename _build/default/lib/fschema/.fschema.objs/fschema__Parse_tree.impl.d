lib/fschema/parse_tree.ml: Format List Pat
