lib/fschema/parse_tree.mli: Format Pat
