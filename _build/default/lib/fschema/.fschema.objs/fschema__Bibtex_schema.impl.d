lib/fschema/bibtex_schema.ml: Grammar View
