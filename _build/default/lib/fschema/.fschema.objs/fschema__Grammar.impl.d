lib/fschema/grammar.ml: Format List Map String
