lib/fschema/sgml_schema.ml: Grammar View
