lib/fschema/rig_of_grammar.mli: Grammar Ralg
