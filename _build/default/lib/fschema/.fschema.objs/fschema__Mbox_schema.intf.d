lib/fschema/mbox_schema.mli: Grammar View
