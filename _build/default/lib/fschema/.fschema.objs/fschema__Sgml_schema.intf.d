lib/fschema/sgml_schema.mli: Grammar View
