lib/fschema/log_schema.mli: Grammar View
