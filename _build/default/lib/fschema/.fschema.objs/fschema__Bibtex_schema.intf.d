lib/fschema/bibtex_schema.mli: Grammar View
