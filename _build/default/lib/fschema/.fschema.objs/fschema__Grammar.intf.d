lib/fschema/grammar.mli: Format
