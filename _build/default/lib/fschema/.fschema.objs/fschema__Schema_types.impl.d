lib/fschema/schema_types.ml: Format Grammar List View
