lib/fschema/schema_types.mli: Format Grammar View
