lib/fschema/rig_of_grammar.ml: Grammar List Ralg
