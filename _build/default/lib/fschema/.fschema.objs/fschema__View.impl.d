lib/fschema/view.ml: Builder Grammar List Odb Parser_engine Pat Printf
