type t = { grammar : Grammar.t; classes : (string * string) list }

let make ~grammar ~classes =
  List.iter
    (fun (cls, nonterm) ->
      if not (List.mem nonterm (Grammar.nonterminals grammar)) then
        invalid_arg
          (Printf.sprintf "View.make: class %s maps to unknown non-terminal %s"
             cls nonterm))
    classes;
  { grammar; classes }

let class_nonterm t cls = List.assoc_opt cls t.classes

let nonterm_class t nonterm =
  List.find_map
    (fun (cls, n) -> if n = nonterm then Some cls else None)
    t.classes

let load_file t text =
  match Parser_engine.parse t.grammar text with
  | Error e -> Error (Parser_engine.describe_error text e)
  | Ok tree ->
      let db = Odb.Database.create () in
      Builder.load text tree ~class_of:(nonterm_class t) db;
      Ok db

let index_file t text ~keep =
  match Parser_engine.parse t.grammar text with
  | Error e -> Error (Parser_engine.describe_error text e)
  | Ok tree -> Ok (Builder.instance_of_tree text tree ~keep)

type index_spec =
  | Plain of string
  | Scoped of { name : string; within : string; alias : string }

let index_file_specs t text ~specs =
  match Parser_engine.parse t.grammar text with
  | Error e -> Error (Parser_engine.describe_error text e)
  | Ok tree ->
      let plain =
        List.filter_map (function Plain n -> Some n | Scoped _ -> None) specs
      in
      let base = Builder.instance_of_tree text tree ~keep:plain in
      Ok
        (List.fold_left
           (fun inst spec ->
             match spec with
             | Plain _ -> inst
             | Scoped { name; within; alias } ->
                 Pat.Instance.add inst alias
                   (Pat.Region_set.of_list
                      (Builder.scoped_regions tree ~name ~within)))
           base specs)
