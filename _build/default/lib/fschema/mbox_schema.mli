(** Structuring schema for a mailbox file — e-mail is on the paper's
    §1 list of semi-structured file kinds.

    {v
    == mbox ==
    <msg> FROM: chang@uni.edu
    TO: {milo@csri.edu; tompa@uw.ca}
    SUBJECT: {re: indexing plan}
    DATE: {2026-06-12}
    BODY: {the region index answers it}
    </msg>
    v}

    Messages surface as the class ["Messages"] with attributes
    [Sender], [Recipients] (a set of [Recipient]), [Subject], [Date]
    and [Body].  Subject, date and body wrap indexable value carriers
    so equality selections compile exactly. *)

val grammar : Grammar.t
val view : View.t
val sample : string
