(** Parse trees with byte spans.

    Every node corresponds to a non-terminal occurrence and carries the
    half-open byte span of the text it matched (including its literal
    delimiters, so a parent span strictly contains its children's). *)

type t = { symbol : string; start : int; stop : int; content : content }

and content =
  | Leaf  (** token rule: the span is the (trimmed) token text *)
  | Branch of branch list
      (** sequence rule: one entry per non-literal item, in order *)

and branch =
  | Child of t  (** a [Nonterm] item *)
  | Children of string * t list  (** a [Star] item: element name, elements *)
  | Text of int * int  (** an anonymous [Tok] item: trimmed span *)

val region : t -> Pat.Region.t
(** The node's span as a region. *)

val all_regions : t -> (string * Pat.Region.t) list
(** Every node of the tree as a [(symbol, region)] pair, preorder. *)

val count_nodes : t -> int

val strictly_nested : t -> bool
(** Check the span discipline: every child span strictly inside its
    parent's (used by tests). *)

val pp : ?keep:string list -> Format.formatter -> t -> unit
(** Render the tree, one node per line with indentation.  With [keep],
    only nodes whose symbol is listed are shown (children of hidden
    nodes are promoted) — the view of the paper's Figure 3, where a
    partial index sees only some of the parse tree. *)
