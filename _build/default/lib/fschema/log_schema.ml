open Grammar

let rules =
  [
    {
      lhs = "Log";
      rhs = Seq [ Lit "== log =="; Star { nonterm = "Entry"; separator = None } ];
    };
    {
      lhs = "Entry";
      rhs =
        Seq
          [
            Lit "[";
            Nonterm "Timestamp";
            Lit "]";
            Lit "level=";
            Nonterm "Level";
            Lit "service=";
            Nonterm "Service";
            Lit "msg=";
            Nonterm "Message";
          ];
    };
    { lhs = "Timestamp"; rhs = Token (Until [ ']' ]) };
    { lhs = "Level"; rhs = Token Word };
    { lhs = "Service"; rhs = Token Word };
    { lhs = "Message"; rhs = Seq [ Lit "\""; Tok (Until [ '"' ]); Lit "\"" ] };
  ]

let grammar = create_exn ~root:"Log" rules
let view = View.make ~grammar ~classes:[ ("Entries", "Entry") ]

let sample =
  {|== log ==
[2026-07-04 12:00:01] level=ERROR service=auth msg="failed login for bob"
[2026-07-04 12:00:05] level=INFO service=web msg="GET /index"
[2026-07-04 12:00:09] level=ERROR service=web msg="timeout talking to auth"
|}
