(** A database view over files: grammar plus class mapping.

    The structuring schema declares which non-terminals surface as
    class extents ("every BibTeX file is represented as a set of
    reference objects"). *)

type t = {
  grammar : Grammar.t;
  classes : (string * string) list;
      (** (class name, element non-terminal), e.g.
          [("References", "Reference")] *)
}

val make : grammar:Grammar.t -> classes:(string * string) list -> t
(** Validates that every class element is a grammar non-terminal. *)

val class_nonterm : t -> string -> string option
(** The non-terminal whose occurrences populate a class. *)

val nonterm_class : t -> string -> string option
(** Inverse mapping. *)

val load_file : t -> Pat.Text.t -> (Odb.Database.t, string) result
(** Parse the whole text and load every class extent — the standard
    full-parse pipeline the paper's optimizations avoid. *)

val index_file :
  t -> Pat.Text.t -> keep:string list -> (Pat.Instance.t, string) result
(** Parse the whole text once (index construction is allowed to scan)
    and build the region indices for the names in [keep]. *)

type index_spec =
  | Plain of string  (** every region of the non-terminal *)
  | Scoped of { name : string; within : string; alias : string }
      (** §7's selective indexing: only regions of [name] below an
          occurrence of [within], registered under [alias] *)

val index_file_specs :
  t -> Pat.Text.t -> specs:index_spec list -> (Pat.Instance.t, string) result
(** Like {!index_file} but supporting scoped entries.  Scoped indices
    are for hand-written region expressions (the query compiler plans
    only with plain names); they trade completeness for index size
    exactly as §7 describes. *)
