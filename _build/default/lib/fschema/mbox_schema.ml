open Grammar

let braced inner = Seq ([ Lit "{" ] @ inner @ [ Lit "}" ])

let rules =
  [
    {
      lhs = "Mbox";
      rhs = Seq [ Lit "== mbox =="; Star { nonterm = "Message"; separator = None } ];
    };
    {
      lhs = "Message";
      rhs =
        Seq
          [
            Lit "<msg>";
            Lit "FROM:";
            Nonterm "Sender";
            Lit "TO:";
            Nonterm "Recipients";
            Lit "SUBJECT:";
            Nonterm "Subject";
            Lit "DATE:";
            Nonterm "Date";
            Lit "BODY:";
            Nonterm "Body";
            Lit "</msg>";
          ];
    };
    { lhs = "Sender"; rhs = Token (Until [ '\n' ]) };
    {
      lhs = "Recipients";
      rhs = braced [ Star { nonterm = "Recipient"; separator = Some ";" } ];
    };
    { lhs = "Recipient"; rhs = Token (Until [ ';'; '}' ]) };
    { lhs = "Subject"; rhs = braced [ Nonterm "Subject_value" ] };
    { lhs = "Subject_value"; rhs = Token (Until [ '}' ]) };
    { lhs = "Date"; rhs = braced [ Nonterm "Date_value" ] };
    { lhs = "Date_value"; rhs = Token (Until [ '}' ]) };
    { lhs = "Body"; rhs = braced [ Nonterm "Body_value" ] };
    { lhs = "Body_value"; rhs = Token (Until [ '}' ]) };
  ]

let grammar = create_exn ~root:"Mbox" rules
let view = View.make ~grammar ~classes:[ ("Messages", "Message") ]

let sample =
  {|== mbox ==
<msg> FROM: chang@uni.edu
TO: {milo@csri.edu; tompa@uw.ca}
SUBJECT: {re: indexing plan}
DATE: {2026-06-12}
BODY: {the region index answers it without scanning}
</msg>
<msg> FROM: milo@csri.edu
TO: {chang@uni.edu}
SUBJECT: {structuring schemas}
DATE: {2026-06-13}
BODY: {the grammar derives the inclusion graph}
</msg>
|}
