let full g =
  let names = Grammar.nonterminals g in
  let edges =
    List.concat_map
      (fun lhs ->
        List.concat_map
          (function
            | Grammar.Token _ -> []
            | Grammar.Seq items ->
                List.filter_map
                  (function
                    | Grammar.Nonterm n -> Some (lhs, n)
                    | Grammar.Star { nonterm; _ } -> Some (lhs, nonterm)
                    | Grammar.Lit _ | Grammar.Tok _ -> None)
                  items)
          (Grammar.rules_of g lhs))
      names
  in
  Ralg.Rig.create ~names ~edges:(List.sort_uniq compare edges)

let for_index g ~keep = Ralg.Rig.partial (full g) ~keep
