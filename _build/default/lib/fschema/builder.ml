let rec value_of_tree text (node : Parse_tree.t) =
  match node.content with
  | Parse_tree.Leaf ->
      Odb.Value.Str
        (Pat.Text.sub text ~pos:node.start ~len:(node.stop - node.start))
  | Parse_tree.Branch branches -> begin
      let named =
        List.map
          (function
            | Parse_tree.Child c -> (c.Parse_tree.symbol, value_of_branch text (Parse_tree.Child c))
            | Parse_tree.Children (n, _) as b -> (n, value_of_branch text b)
            | Parse_tree.Text (a, b) ->
                ("text", Odb.Value.Str (Pat.Text.sub text ~pos:a ~len:(b - a))))
          branches
      in
      match named with
      | [ (_, v) ] -> v
      | fields -> Odb.Value.Tuple fields
    end

and value_of_branch text = function
  | Parse_tree.Child c -> value_of_tree text c
  | Parse_tree.Children (n, elems) ->
      Odb.Value.Set
        (List.map
           (fun e -> Odb.Value.Variant (n, value_of_tree text e))
           elems)
  | Parse_tree.Text (a, b) ->
      Odb.Value.Str (Pat.Text.sub text ~pos:a ~len:(b - a))

let regions_of_tree = Parse_tree.all_regions

let scoped_regions tree ~name ~within =
  let out = ref [] in
  let rec go inside (node : Parse_tree.t) =
    let inside = inside || node.Parse_tree.symbol = within in
    if inside && node.Parse_tree.symbol = name then
      out := Parse_tree.region node :: !out;
    match node.Parse_tree.content with
    | Parse_tree.Leaf -> ()
    | Parse_tree.Branch branches ->
        List.iter
          (function
            | Parse_tree.Child c -> go inside c
            | Parse_tree.Children (_, cs) -> List.iter (go inside) cs
            | Parse_tree.Text _ -> ())
          branches
  in
  go false tree;
  List.rev !out

let instance_of_tree text tree ~keep =
  let all = regions_of_tree tree in
  let bindings =
    List.map
      (fun name ->
        let spans =
          List.filter_map
            (fun (sym, r) -> if sym = name then Some r else None)
            all
        in
        (name, Pat.Region_set.of_list spans))
      (List.sort_uniq String.compare keep)
  in
  Pat.Instance.create text bindings

let load text tree ~class_of db =
  let rec go (node : Parse_tree.t) =
    (match class_of node.Parse_tree.symbol with
    | Some cls ->
        Odb.Database.insert db ~class_name:cls (value_of_tree text node)
    | None -> ());
    match node.content with
    | Parse_tree.Leaf -> ()
    | Parse_tree.Branch branches ->
        List.iter
          (function
            | Parse_tree.Child c -> go c
            | Parse_tree.Children (_, cs) -> List.iter go cs
            | Parse_tree.Text _ -> ())
          branches
  in
  go tree
