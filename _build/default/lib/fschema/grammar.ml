type term_spec = Word | Until of char list

type item =
  | Lit of string
  | Nonterm of string
  | Star of { nonterm : string; separator : string option }
  | Tok of term_spec

type rhs = Seq of item list | Token of term_spec
type rule = { lhs : string; rhs : rhs }

module Smap = Map.Make (String)

type t = { root : string; rules : rhs list Smap.t }

let item_name = function
  | Nonterm n -> Some n
  | Star { nonterm; _ } -> Some nonterm
  | Lit _ | Tok _ -> None

let validate_rule rule =
  match rule.rhs with
  | Token _ -> Ok ()
  | Seq items ->
      if items = [] then Error (rule.lhs ^ ": empty right-hand side")
      else if
        List.exists (function Lit "" -> true | _ -> false) items
      then Error (rule.lhs ^ ": empty literal")
      else begin
        let names = List.filter_map item_name items in
        let dup =
          List.exists
            (fun n -> List.length (List.filter (String.equal n) names) > 1)
            names
        in
        if dup then
          Error
            (rule.lhs
           ^ ": a non-terminal may appear at most once on a right-hand side")
        else begin
          (* span discipline: a Seq must not be reducible to exactly the
             span of a single child *)
          match items with
          | [ Nonterm n ] ->
              Error
                (rule.lhs ^ " -> " ^ n
               ^ ": bare non-terminal; wrap it in literal delimiters so the \
                  parent region strictly contains the child")
          | [ Star { nonterm; _ } ] ->
              Error
                (rule.lhs ^ " -> " ^ nonterm
               ^ "*: bare repetition; wrap it in literal delimiters so the \
                  parent region strictly contains the elements")
          | _ -> Ok ()
        end
      end

let create ~root rules =
  let table =
    List.fold_left
      (fun acc rule ->
        Smap.update rule.lhs
          (function None -> Some [ rule.rhs ] | Some rs -> Some (rs @ [ rule.rhs ]))
          acc)
      Smap.empty rules
  in
  let defined n = Smap.mem n table in
  let rec first_error = function
    | [] -> None
    | rule :: rest -> begin
        match validate_rule rule with
        | Error e -> Some e
        | Ok () ->
            let missing =
              match rule.rhs with
              | Token _ -> None
              | Seq items ->
                  List.find_map
                    (fun item ->
                      match item_name item with
                      | Some n when not (defined n) -> Some n
                      | _ -> None)
                    items
            in
            (match missing with
            | Some n -> Some ("undefined non-terminal: " ^ n)
            | None -> first_error rest)
      end
  in
  if not (defined root) then Error ("undefined root: " ^ root)
  else begin
    match first_error rules with
    | Some e -> Error e
    | None -> Ok { root; rules = table }
  end

let create_exn ~root rules =
  match create ~root rules with
  | Ok g -> g
  | Error e -> invalid_arg ("Grammar.create: " ^ e)

let root t = t.root
let nonterminals t = List.map fst (Smap.bindings t.rules)
let indexable t = List.filter (fun n -> n <> t.root) (nonterminals t)

let rules_of t n =
  match Smap.find_opt n t.rules with Some rs -> rs | None -> []

let pp_spec ppf = function
  | Word -> Format.pp_print_string ppf "WORD"
  | Until stops ->
      Format.fprintf ppf "UNTIL[%s]"
        (String.concat "" (List.map (String.make 1) stops))

let pp_item ppf = function
  | Lit s -> Format.fprintf ppf "%S" s
  | Nonterm n -> Format.pp_print_string ppf n
  | Star { nonterm; separator = None } -> Format.fprintf ppf "%s*" nonterm
  | Star { nonterm; separator = Some sep } ->
      Format.fprintf ppf "%s* sep %S" nonterm sep
  | Tok spec -> pp_spec ppf spec

let pp ppf t =
  Format.fprintf ppf "@[<v>root: %s@," t.root;
  Smap.iter
    (fun lhs alts ->
      List.iter
        (fun rhs ->
          match rhs with
          | Token spec -> Format.fprintf ppf "%s -> %a@," lhs pp_spec spec
          | Seq items ->
              Format.fprintf ppf "%s -> %a@," lhs
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
                   pp_item)
                items)
        alts)
    t.rules;
  Format.fprintf ppf "@]"
