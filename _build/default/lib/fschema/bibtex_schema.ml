open Grammar

(* Field bodies are brace-delimited so that every field region strictly
   contains its contents (see the span discipline in {!Grammar}). *)
let braced inner = Seq ([ Lit "{" ] @ inner @ [ Lit "}" ])

let rules =
  [
    { lhs = "Ref_set"; rhs = Seq [ Lit "%% bibliography"; Star { nonterm = "Reference"; separator = None } ] };
    {
      lhs = "Reference";
      rhs =
        Seq
          [
            Lit "@INCOLLECTION{";
            Nonterm "Key";
            Lit ","; Lit "AUTHOR"; Lit "=";
            Nonterm "Authors";
            Lit ","; Lit "TITLE"; Lit "=";
            Nonterm "Title";
            Lit ","; Lit "YEAR"; Lit "=";
            Nonterm "Year";
            Lit ","; Lit "EDITOR"; Lit "=";
            Nonterm "Editors";
            Lit ","; Lit "KEYWORDS"; Lit "=";
            Nonterm "Keywords";
            Lit ","; Lit "CITES"; Lit "=";
            Nonterm "Cites";
            Lit ","; Lit "ABSTRACT"; Lit "=";
            Nonterm "Abstract";
            Lit "}";
          ];
    };
    { lhs = "Key"; rhs = Token (Until [ ',' ]) };
    {
      lhs = "Authors";
      rhs = braced [ Star { nonterm = "Name"; separator = Some "and" } ];
    };
    {
      lhs = "Editors";
      rhs = braced [ Star { nonterm = "Name"; separator = Some "and" } ];
    };
    { lhs = "Name"; rhs = Seq [ Nonterm "First_Name"; Nonterm "Last_Name" ] };
    { lhs = "First_Name"; rhs = Token Word };
    { lhs = "Last_Name"; rhs = Token Word };
    (* Title and Year wrap an indexable value carrier so that equality
       selections can use the exact-extent σ (the carrier's region text
       is precisely the field's value) *)
    { lhs = "Title"; rhs = braced [ Nonterm "Title_value" ] };
    { lhs = "Title_value"; rhs = Token (Until [ '}' ]) };
    { lhs = "Year"; rhs = braced [ Nonterm "Year_value" ] };
    { lhs = "Year_value"; rhs = Token Word };
    {
      lhs = "Keywords";
      rhs = braced [ Star { nonterm = "Keyword"; separator = Some ";" } ];
    };
    { lhs = "Keyword"; rhs = Token (Until [ ';'; '}' ]) };
    {
      lhs = "Cites";
      rhs = braced [ Star { nonterm = "Cite"; separator = Some ";" } ];
    };
    { lhs = "Cite"; rhs = Token (Until [ ';'; '}' ]) };
    { lhs = "Abstract"; rhs = braced [ Nonterm "Abstract_value" ] };
    { lhs = "Abstract_value"; rhs = Token (Until [ '}' ]) };
  ]

let grammar = create_exn ~root:"Ref_set" rules
let view = View.make ~grammar ~classes:[ ("References", "Reference") ]

let field_names =
  [ "Key"; "Authors"; "Title"; "Year"; "Editors"; "Keywords"; "Cites"; "Abstract" ]

let sample =
  {|%% bibliography
@INCOLLECTION{Cor182a, AUTHOR = {Gene Corliss and Yves Chang},
  TITLE = {Solving Ordinary Differential Equations Using Taylor Series},
  YEAR = {1982},
  EDITOR = {Andreas Griewank},
  KEYWORDS = {point algorithm; Taylor series; radius of convergence},
  CITES = {Aber88a; Gupt85a},
  ABSTRACT = {A Fortran pre-processor uses automatic differentiation to
    write a Fortran program to solve the system.}}
@INCOLLECTION{Mil94, AUTHOR = {Tova Milo},
  TITLE = {Optimizing Queries on Files},
  YEAR = {1994},
  EDITOR = {Yves Chang},
  KEYWORDS = {text indexing; query optimization},
  CITES = {Cor182a},
  ABSTRACT = {Region indices answer database queries on files.}}
|}
