open Grammar

let rules =
  [
    {
      lhs = "Doc";
      rhs =
        Seq
          [
            Lit "<doc>";
            Star { nonterm = "Section"; separator = None };
            Lit "</doc>";
          ];
    };
    {
      lhs = "Section";
      rhs =
        Seq
          [
            Lit "<sec>";
            Nonterm "Heading";
            Star { nonterm = "Para"; separator = None };
            Star { nonterm = "Section"; separator = None };
            Lit "</sec>";
          ];
    };
    (* Heading wraps an indexable value carrier (cf. Year_value in the
       BibTeX schema) so heading projections can run index-only *)
    {
      lhs = "Heading";
      rhs = Seq [ Lit "<h>"; Nonterm "Heading_text"; Lit "</h>" ];
    };
    { lhs = "Heading_text"; rhs = Token (Until [ '<' ]) };
    { lhs = "Para"; rhs = Seq [ Lit "<p>"; Tok (Until [ '<' ]); Lit "</p>" ] };
  ]

let grammar = create_exn ~root:"Doc" rules
let view = View.make ~grammar ~classes:[ ("Sections", "Section") ]

let sample =
  {|<doc>
<sec> <h>introduction</h> <p>files hold data</p>
  <sec> <h>background</h> <p>indexing with PAT arrays</p> </sec>
  <sec> <h>motivation</h> <p>queries on files</p>
    <sec> <h>deep example</h> <p>nested sections stress closure</p> </sec>
  </sec>
</sec>
<sec> <h>conclusion</h> <p>regions win</p> </sec>
</doc>
|}
