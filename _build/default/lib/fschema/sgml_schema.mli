(** Structuring schema for SGML-like nested documents.

    Sections nest inside sections without bound, so the derived RIG is
    cyclic ([Section → Section]) — the self-nested case the paper uses
    for path regular expressions and transitive closure (§5.3).

    {v
    <doc>
    <sec> <h>intro</h> <p>text…</p>
      <sec> <h>background</h> <p>more…</p> </sec>
    </sec>
    </doc>
    v}

    Sections surface as the class ["Sections"] with attributes
    [Heading], [Para] (set) and [Section] (set of subsections). *)

val grammar : Grammar.t
val view : View.t
val sample : string
