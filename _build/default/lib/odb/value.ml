type t =
  | Str of string
  | Tuple of (string * t) list
  | Set of t list
  | Variant of string * t

let rec normalize = function
  | Str _ as v -> v
  | Tuple fields -> Tuple (List.map (fun (k, v) -> (k, normalize v)) fields)
  | Variant (tag, v) -> Variant (tag, normalize v)
  | Set elts ->
      let elts = List.map normalize elts in
      Set (List.sort_uniq raw_compare elts)

and raw_compare a b =
  match (a, b) with
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Tuple x, Tuple y ->
      List.compare
        (fun (k1, v1) (k2, v2) ->
          let c = String.compare k1 k2 in
          if c <> 0 then c else raw_compare v1 v2)
        x y
  | Tuple _, _ -> -1
  | _, Tuple _ -> 1
  | Set x, Set y -> List.compare raw_compare x y
  | Set _, _ -> -1
  | _, Set _ -> 1
  | Variant (t1, v1), Variant (t2, v2) ->
      let c = String.compare t1 t2 in
      if c <> 0 then c else raw_compare v1 v2

let compare a b = raw_compare (normalize a) (normalize b)
let equal a b = compare a b = 0

let field v name =
  match v with Tuple fields -> List.assoc_opt name fields | _ -> None

let rec pp ppf = function
  | Str s -> Format.fprintf ppf "%S" s
  | Tuple fields ->
      Format.fprintf ppf "@[<hv 1>{%a}@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (k, v) -> Format.fprintf ppf "%s: %a" k pp v))
        fields
  | Set elts ->
      Format.fprintf ppf "@[<hv 1>#{%a}@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           pp)
        elts
  | Variant (tag, v) -> Format.fprintf ppf "%s(%a)" tag pp v

let rec to_display_string = function
  | Str s -> s
  | Tuple fields ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> k ^ "=" ^ to_display_string v) fields)
      ^ "}"
  | Set elts -> "{" ^ String.concat "; " (List.map to_display_string elts) ^ "}"
  | Variant (_, v) -> to_display_string v

let str s = Str s
let tuple fields = Tuple fields
let set elts = Set elts
let variant tag v = Variant (tag, v)
