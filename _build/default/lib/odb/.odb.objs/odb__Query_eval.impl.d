lib/odb/query_eval.ml: Database List Path Query String Value
