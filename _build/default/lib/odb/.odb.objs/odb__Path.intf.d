lib/odb/path.mli: Format Value
