lib/odb/query.ml: Format List Path String
