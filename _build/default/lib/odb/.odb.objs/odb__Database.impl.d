lib/odb/database.ml: Hashtbl List Stdx String Value
