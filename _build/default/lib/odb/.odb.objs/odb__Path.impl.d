lib/odb/path.ml: Format List String Value
