lib/odb/query_parser.mli: Format Query
