lib/odb/query_eval.mli: Database Query Value
