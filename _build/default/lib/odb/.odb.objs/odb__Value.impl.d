lib/odb/value.ml: Format List String
