lib/odb/database.mli: Value
