lib/odb/query.mli: Format Path
