lib/odb/value.mli: Format
