lib/odb/query_parser.ml: Buffer Format List Path Printf Query String
