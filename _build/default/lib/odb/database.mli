(** Class extents: the in-memory object store.

    Plays the role of the O2 system in the paper's prototype — the
    target into which parsed file regions are loaded, and the engine
    that evaluates the residual (join/filter) part of queries. *)

type t

val create : unit -> t
val insert : t -> class_name:string -> Value.t -> unit
(** Appends to the extent and counts one object built in
    {!Stdx.Stats.global}. *)

val insert_all : t -> class_name:string -> Value.t list -> unit
val extent : t -> string -> Value.t list
(** Empty for unknown classes. *)

val classes : t -> string list
val cardinal : t -> string -> int
val total_objects : t -> int
val clear : t -> unit
