type rooted_path = { var : string; path : Path.t }

type pred =
  | True
  | Eq_const of rooted_path * string
  | Eq_paths of rooted_path * rooted_path
  | Contains of rooted_path * string
  | Starts_with of rooted_path * string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t = {
  select : rooted_path list;
  from_ : (string * string) list;
  where : pred;
}

let var v = { var = v; path = [] }
let rooted v parts = { var = v; path = Path.of_strings parts }

let rec pred_vars = function
  | True -> []
  | Eq_const (rp, _) | Contains (rp, _) | Starts_with (rp, _) -> [ rp.var ]
  | Eq_paths (a, b) -> [ a.var; b.var ]
  | And (a, b) | Or (a, b) -> pred_vars a @ pred_vars b
  | Not p -> pred_vars p

let free_variables q =
  List.sort_uniq String.compare
    (List.map (fun rp -> rp.var) q.select @ pred_vars q.where)

let validate q =
  if q.select = [] then Error "SELECT list is empty"
  else if q.from_ = [] then Error "FROM list is empty"
  else begin
    let bound = List.map snd q.from_ in
    let dup =
      List.exists
        (fun v -> List.length (List.filter (String.equal v) bound) > 1)
        bound
    in
    if dup then Error "duplicate variable in FROM"
    else begin
      match
        List.find_opt (fun v -> not (List.mem v bound)) (free_variables q)
      with
      | Some v -> Error ("unbound variable: " ^ v)
      | None -> Ok ()
    end
  end

let pp_rooted ppf rp =
  if rp.path = [] then Format.pp_print_string ppf rp.var
  else Format.fprintf ppf "%s.%s" rp.var (Path.to_string rp.path)

let rec pp_pred ppf = function
  | True -> Format.pp_print_string ppf "TRUE"
  | Eq_const (rp, w) -> Format.fprintf ppf "%a = %S" pp_rooted rp w
  | Eq_paths (a, b) -> Format.fprintf ppf "%a = %a" pp_rooted a pp_rooted b
  | Contains (rp, w) -> Format.fprintf ppf "%a CONTAINS %S" pp_rooted rp w
  | Starts_with (rp, w) ->
      Format.fprintf ppf "%a STARTS WITH %S" pp_rooted rp w
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp_pred a pp_pred b
  | Not p -> Format.fprintf ppf "(NOT %a)" pp_pred p

let pp ppf q =
  Format.fprintf ppf "SELECT %a FROM %a%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_rooted)
    q.select
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (cls, v) -> Format.fprintf ppf "%s %s" cls v))
    q.from_
    (fun ppf -> function
      | True -> ()
      | w -> Format.fprintf ppf " WHERE %a" pp_pred w)
    q.where

let to_string q = Format.asprintf "%a" pp q
