(** Database values.

    The object model of the paper's database view (after XSQL/O2):
    atomic strings, tuples with named attributes, sets, and tagged
    values.  Set elements produced by a [A → B*] grammar rule are
    wrapped in [Variant "B"] so that the XSQL-style path step [.B] can
    select them ("each element {e is} a Name"). *)

type t =
  | Str of string
  | Tuple of (string * t) list
  | Set of t list
  | Variant of string * t  (** type-tagged value *)

val equal : t -> t -> bool
(** Structural, with set semantics for [Set] (order- and
    duplicate-insensitive). *)

val compare : t -> t -> int
(** Total order compatible with {!equal}. *)

val normalize : t -> t
(** Sort and deduplicate every [Set], recursively. *)

val field : t -> string -> t option
(** Tuple attribute lookup ([None] on other shapes). *)

val to_display_string : t -> string
(** Compact single-line rendering for examples and the CLI. *)

val pp : Format.formatter -> t -> unit

val str : string -> t
val tuple : (string * t) list -> t
val set : t list -> t
val variant : string -> t -> t
