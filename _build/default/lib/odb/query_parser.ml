type error = { position : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "query parse error at %d: %s" e.position e.message

exception Err of error

let fail position message = raise (Err { position; message })

type token =
  | Kselect
  | Kfrom
  | Kwhere
  | Kand
  | Kor
  | Knot
  | Kcontains
  | Kstarts
  | Kwith
  | Tword of string  (* identifier or *X component *)
  | Tstring of string
  | Tdot
  | Tcomma
  | Teq
  | Tlparen
  | Trparen

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let keyword_of s =
  match String.uppercase_ascii s with
  | "SELECT" -> Some Kselect
  | "FROM" -> Some Kfrom
  | "WHERE" -> Some Kwhere
  | "AND" -> Some Kand
  | "OR" -> Some Kor
  | "NOT" -> Some Knot
  | "CONTAINS" -> Some Kcontains
  | "STARTS" -> Some Kstarts
  | "WITH" -> Some Kwith
  | _ -> None

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let push t p = out := (t, p) :: !out in
  while !i < n do
    let c = s.[!i] and pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '.' then (push Tdot pos; incr i)
    else if c = ',' then (push Tcomma pos; incr i)
    else if c = '=' then (push Teq pos; incr i)
    else if c = '(' then (push Tlparen pos; incr i)
    else if c = ')' then (push Trparen pos; incr i)
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if s.[!i] = '"' then closed := true
        else if s.[!i] = '\\' && !i + 1 < n then begin
          Buffer.add_char buf s.[!i + 1];
          incr i
        end
        else Buffer.add_char buf s.[!i];
        incr i
      done;
      if not !closed then fail pos "unterminated string";
      push (Tstring (Buffer.contents buf)) pos
    end
    else if c = '*' then begin
      (* a *X path component *)
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      if !j = !i + 1 then fail pos "expected a variable name after '*'";
      push (Tword (String.sub s !i (!j - !i))) pos;
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      (* a trailing '+' belongs to the path component: "Section+" *)
      if !j < n && s.[!j] = '+' then incr j;
      let w = String.sub s !i (!j - !i) in
      (match keyword_of w with
      | Some k -> push k pos
      | None -> push (Tword w) pos);
      i := !j
    end
    else fail pos (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !out

type state = { mutable toks : (token * int) list; len : int }

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st tok what =
  match peek st with
  | Some (t, _) when t = tok -> advance st
  | Some (_, pos) -> fail pos ("expected " ^ what)
  | None -> fail st.len ("expected " ^ what ^ " but query ended")

let expect_word st what =
  match peek st with
  | Some (Tword w, _) ->
      advance st;
      w
  | Some (_, pos) -> fail pos ("expected " ^ what)
  | None -> fail st.len ("expected " ^ what ^ " but query ended")

(* item := VAR ("." component)* *)
let parse_item st =
  let v = expect_word st "a variable" in
  let rec components acc =
    match peek st with
    | Some (Tdot, _) ->
        advance st;
        components (expect_word st "a path component" :: acc)
    | _ -> List.rev acc
  in
  let parts = components [] in
  { Query.var = v; path = Path.of_strings parts }

let rec parse_pred st =
  let left = parse_conj st in
  match peek st with
  | Some (Kor, _) ->
      advance st;
      Query.Or (left, parse_pred st)
  | _ -> left

and parse_conj st =
  let left = parse_unit st in
  match peek st with
  | Some (Kand, _) ->
      advance st;
      Query.And (left, parse_conj st)
  | _ -> left

and parse_unit st =
  match peek st with
  | Some (Knot, _) ->
      advance st;
      Query.Not (parse_unit st)
  | Some (Tlparen, _) ->
      advance st;
      let p = parse_pred st in
      expect st Trparen "')'";
      p
  | _ -> begin
      let lhs = parse_item st in
      match peek st with
      | Some (Teq, _) -> begin
          advance st;
          match peek st with
          | Some (Tstring w, _) ->
              advance st;
              Query.Eq_const (lhs, w)
          | _ -> Query.Eq_paths (lhs, parse_item st)
        end
      | Some (Kcontains, _) -> begin
          advance st;
          match peek st with
          | Some (Tstring w, _) ->
              advance st;
              Query.Contains (lhs, w)
          | Some (_, pos) -> fail pos "expected a string after CONTAINS"
          | None -> fail st.len "expected a string after CONTAINS"
        end
      | Some (Kstarts, _) -> begin
          advance st;
          expect st Kwith "WITH";
          match peek st with
          | Some (Tstring w, _) ->
              advance st;
              Query.Starts_with (lhs, w)
          | Some (_, pos) -> fail pos "expected a string after STARTS WITH"
          | None -> fail st.len "expected a string after STARTS WITH"
        end
      | Some (_, pos) -> fail pos "expected '=', CONTAINS or STARTS WITH"
      | None -> fail st.len "predicate ended unexpectedly"
    end

let parse_query st =
  expect st Kselect "SELECT";
  let rec items acc =
    let it = parse_item st in
    match peek st with
    | Some (Tcomma, _) ->
        advance st;
        items (it :: acc)
    | _ -> List.rev (it :: acc)
  in
  let select = items [] in
  expect st Kfrom "FROM";
  let rec bindings acc =
    let cls = expect_word st "a class name" in
    let v = expect_word st "a variable name" in
    match peek st with
    | Some (Tcomma, _) ->
        advance st;
        bindings ((cls, v) :: acc)
    | _ -> List.rev ((cls, v) :: acc)
  in
  let from_ = bindings [] in
  let where =
    match peek st with
    | Some (Kwhere, _) ->
        advance st;
        parse_pred st
    | _ -> Query.True
  in
  (match peek st with
  | Some (_, pos) -> fail pos "trailing input"
  | None -> ());
  { Query.select; from_; where }

let parse s =
  match
    let st = { toks = tokenize s; len = String.length s } in
    let q = parse_query st in
    match Query.validate q with
    | Ok () -> q
    | Error msg -> fail 0 msg
  with
  | q -> Ok q
  | exception Err e -> Error e

let parse_exn s =
  match parse s with
  | Ok q -> q
  | Error e -> failwith (Format.asprintf "%a" pp_error e)
