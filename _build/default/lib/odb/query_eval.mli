(** Query evaluation over class extents — the "standard database
    implementation" the paper compares against.

    Nested-loop semantics: the FROM clause binds each variable to every
    object of its class extent; the predicate is tested under the usual
    existential path semantics ([r.p = "w"] holds when {e some} value
    reached by [p] equals the string); the SELECT items project the
    satisfying bindings. *)

type row = Value.t list
(** One value per SELECT item. *)

val eval : Database.t -> Query.t -> row list
(** Rows are deduplicated (set semantics) and word containment is
    tested on the string values reached by the path. *)

val eval_single : Database.t -> Query.t -> Value.t list
(** Convenience for single-item SELECTs. *)

val matches : (string * Value.t) list -> Query.pred -> bool
(** Predicate test under a variable binding (exposed for the two-phase
    executor, which re-filters candidate objects). *)
