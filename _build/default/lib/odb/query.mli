(** XSQL-like queries over the database view (paper §2, §5).

    Supported shape:

    {v
    SELECT <item> [, <item>]*
    FROM <Class> <var> [, <Class> <var>]*
    WHERE <predicate>
    v}

    Items are variables or paths rooted at a variable; predicates
    compare a path with a string constant or with another path, test
    word containment, and combine with [AND]/[OR]/[NOT].  Paths may use
    the §5.3 extensions: [*X] (any sequence of attributes) and
    [Xi] (exactly one attribute, any name). *)

type rooted_path = { var : string; path : Path.t }

type pred =
  | True
  | Eq_const of rooted_path * string  (** [r.p = "w"] *)
  | Eq_paths of rooted_path * rooted_path  (** [r.p = s.q] *)
  | Contains of rooted_path * string  (** [r.p CONTAINS "w"] *)
  | Starts_with of rooted_path * string  (** [r.p STARTS WITH "w"] *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type t = {
  select : rooted_path list;  (** empty path = the whole object *)
  from_ : (string * string) list;  (** (class, variable) pairs *)
  where : pred;
}

val var : string -> rooted_path
val rooted : string -> string list -> rooted_path

val pred_vars : pred -> string list
(** Variables mentioned by a predicate (with duplicates). *)

val free_variables : t -> string list
(** Variables used in [select]/[where]; for validation against
    [from_]. *)

val validate : t -> (unit, string) result
(** Check that every used variable is bound in [FROM] and that classes
    and variables are non-empty. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
