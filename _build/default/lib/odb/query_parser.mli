(** Textual syntax for queries.

    {v
    query ::= SELECT item ("," item)* FROM binding ("," binding)*
              [WHERE pred]
    item  ::= VAR ("." component)*
    binding ::= CLASS VAR
    pred  ::= conj (OR conj)*
    conj  ::= unit (AND unit)*
    unit  ::= NOT unit | "(" pred ")" | item "=" (STRING | item)
            | item CONTAINS STRING
    v}

    Keywords are case-insensitive; path components use [*X] for the
    any-sequence variable and [X1], [X2], … for single-step
    variables. *)

type error = { position : int; message : string }

val parse : string -> (Query.t, error) result
val parse_exn : string -> Query.t
val pp_error : Format.formatter -> error -> unit
