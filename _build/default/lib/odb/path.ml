type step = Attr of string | Star | Any | Plus of string
type t = step list

(* A star item that sits inline in its parent's rule produces a field
   whose name equals its elements' tag (SGML's [Section] inside
   [Section]).  Such a set has no region of its own, so for the
   path-step/region-level correspondence the field is transparent: one
   step lands on the elements. *)
let field_step_values name v =
  match v with
  | Value.Set elts
    when elts <> []
         && List.for_all
              (function Value.Variant (tag, _) -> tag = name | _ -> false)
              elts ->
      List.map (function Value.Variant (_, x) -> x | x -> x) elts
  | Value.Set [] -> []
  | v -> [ v ]

(* One region level down: tuple attributes keep their values (each
   non-inline attribute is a region), inline star fields contribute
   their elements, and a set is entered by unwrapping its elements. *)
let rec children v =
  match v with
  | Value.Tuple fields ->
      List.concat_map (fun (k, v) -> field_step_values k v) fields
  | Value.Set elts ->
      List.map (function Value.Variant (_, x) -> x | x -> x) elts
  | Value.Variant (_, x) -> children x
  | Value.Str _ -> []

let rec descendants v = v :: List.concat_map descendants (children v)

let rec step_values step v =
  match step with
  | Attr a -> begin
      match v with
      | Value.Tuple fields -> begin
          match List.assoc_opt a fields with
          | Some x -> field_step_values a x
          | None -> []
        end
      | Value.Set elts -> List.concat_map (step_values (Attr a)) elts
      | Value.Variant (tag, x) -> if tag = a then [ x ] else []
      | Value.Str _ -> []
    end
  | Star -> descendants v
  | Any -> children v
  | Plus a ->
      (* one or more [Attr a] steps: the transitive closure of the
         attribute edge (values are finite trees, so this terminates) *)
      let rec closure v =
        let one = step_values (Attr a) v in
        one @ List.concat_map closure one
      in
      closure v

let navigate root path =
  List.fold_left
    (fun values step -> List.concat_map (step_values step) values)
    [ root ] path

let is_any_component s =
  String.length s >= 2
  && s.[0] = 'X'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (String.length s - 1))

let of_strings parts =
  List.map
    (fun part ->
      let n = String.length part in
      if n > 0 && part.[0] = '*' then Star
      else if is_any_component part then Any
      else if n > 1 && part.[n - 1] = '+' then
        Plus (String.sub part 0 (n - 1))
      else Attr part)
    parts

let step_to_string = function
  | Attr a -> a
  | Star -> "*X"
  | Any -> "X1"
  | Plus a -> a ^ "+"

let to_string path = String.concat "." (List.map step_to_string path)
let pp ppf path = Format.pp_print_string ppf (to_string path)

let attr_names path =
  List.filter_map
    (function Attr a -> Some a | Star | Any | Plus _ -> None)
    path

let has_variables path =
  List.exists (function Star | Any | Plus _ -> true | Attr _ -> false) path
