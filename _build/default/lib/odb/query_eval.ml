type row = Value.t list

let navigate_binding bindings (rp : Query.rooted_path) =
  match List.assoc_opt rp.var bindings with
  | None -> []
  | Some root -> Path.navigate root rp.path

let contains_word haystack needle =
  (* whole-word containment, consistent with the PAT word index *)
  let n = String.length haystack and m = String.length needle in
  let is_word_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  in
  let boundary i = i < 0 || i >= n || not (is_word_char haystack.[i]) in
  let rec go i =
    if i + m > n then false
    else if String.sub haystack i m = needle && boundary (i - 1) && boundary (i + m)
    then true
    else go (i + 1)
  in
  m > 0 && go 0

(* Every atomic string nested in a value: CONTAINS is full-text search
   over whatever the path reaches. *)
let rec strings_of acc = function
  | Value.Str s -> s :: acc
  | Value.Tuple fields -> List.fold_left (fun a (_, v) -> strings_of a v) acc fields
  | Value.Set elts -> List.fold_left strings_of acc elts
  | Value.Variant (_, v) -> strings_of acc v

let rec matches bindings = function
  | Query.True -> true
  | Query.Eq_const (rp, w) ->
      List.exists
        (function Value.Str s -> String.equal s w | _ -> false)
        (navigate_binding bindings rp)
  | Query.Contains (rp, w) ->
      List.exists
        (fun v -> List.exists (fun s -> contains_word s w) (strings_of [] v))
        (navigate_binding bindings rp)
  | Query.Starts_with (rp, w) ->
      List.exists
        (function
          | Value.Str s ->
              String.length s >= String.length w
              && String.sub s 0 (String.length w) = w
          | _ -> false)
        (navigate_binding bindings rp)
  | Query.Eq_paths (a, b) ->
      let va = navigate_binding bindings a in
      let vb = navigate_binding bindings b in
      List.exists (fun x -> List.exists (Value.equal x) vb) va
  | Query.And (a, b) -> matches bindings a && matches bindings b
  | Query.Or (a, b) -> matches bindings a || matches bindings b
  | Query.Not p -> not (matches bindings p)

let eval db (q : Query.t) =
  let rec product acc = function
    | [] -> [ List.rev acc ]
    | (cls, v) :: rest ->
        List.concat_map
          (fun obj -> product ((v, obj) :: acc) rest)
          (Database.extent db cls)
  in
  (* one row per combination of values reached by the SELECT items; a
     binding where some item reaches nothing yields no row *)
  let rec rows_of_items bindings = function
    | [] -> [ [] ]
    | rp :: rest ->
        let values = navigate_binding bindings rp in
        List.concat_map
          (fun v ->
            List.map (fun row -> Value.normalize v :: row)
              (rows_of_items bindings rest))
          values
  in
  let rows =
    List.concat_map
      (fun bindings ->
        if matches bindings q.Query.where then
          rows_of_items bindings q.Query.select
        else [])
      (product [] q.Query.from_)
  in
  List.sort_uniq (List.compare Value.compare) rows

let eval_single db q = List.concat (eval db q)
