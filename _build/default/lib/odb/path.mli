(** Path expressions over database values (paper §5.1, §5.3).

    A path is a sequence of steps applied existentially, traversing
    sets transparently:

    - [Attr a] follows a tuple attribute, or selects the elements of a
      set tagged [a];
    - [Star] (written [*X] in XSQL) reaches {e every} nested value at
      any depth, including the current one;
    - [Any] (written [Xi]) descends exactly one level, whatever the
      attribute;
    - [Plus a] (written [a+], after GraphLog's path regular
      expressions) applies the [a] attribute one or more times — the
      transitive closure of the attribute edge. *)

type step = Attr of string | Star | Any | Plus of string
type t = step list

val navigate : Value.t -> t -> Value.t list
(** All values reached from the root by the path.  Duplicates are kept
    (callers with set semantics should dedup). *)

val of_strings : string list -> t
(** Parse path components: ["*X"]-prefixed components become [Star],
    components matching [X<digits>] become [Any], anything else is an
    attribute step. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val attr_names : t -> string list
(** The attribute steps, in order (used to match the path against the
    region-inclusion graph). *)

val has_variables : t -> bool
(** Whether the path contains [Star] or [Any] steps. *)
