  $ ../bin/oqf_cli.exe generate -k bibtex -n 4 --seed 7 -o refs.bib
  $ ../bin/oqf_cli.exe query -s bibtex refs.bib 'SELECT r.Key FROM References r WHERE r.Year STARTS WITH "19"' 2>/dev/null | head -5
  $ ../bin/oqf_cli.exe explain -s bibtex refs.bib --index Reference,Key,Last_Name 'SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"' | grep -E "naive|optimized:"
  $ ../bin/oqf_cli.exe advise -s bibtex 'SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"'
  $ ../bin/oqf_cli.exe rexpr -s bibtex refs.bib 'Reference > Authors > sigma["Chang"](Last_Name)' | tail -1
  $ ../bin/oqf_cli.exe index -s bibtex refs.bib -o refs.idx | sed 's/ saved.*//'
  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --load refs.idx 'SELECT r.Key FROM References r' 2>/dev/null | head -2
  $ ../bin/oqf_cli.exe schema -s log | grep -A1 "derived database"
  $ ../bin/oqf_cli.exe tree -s bibtex refs.bib --index Reference,Key,Last_Name | head -4
