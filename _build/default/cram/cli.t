The oqf command line, end to end on a small deterministic corpus.

Generate a bibliography:

  $ ../bin/oqf_cli.exe generate -k bibtex -n 4 --seed 7 -o refs.bib
  wrote 2079 bytes to refs.bib

Ask a database question about the file:

  $ ../bin/oqf_cli.exe query -s bibtex refs.bib 'SELECT r.Key FROM References r WHERE r.Year STARTS WITH "19"' 2>/dev/null | head -5
  Ref0000
  Ref0001
  Ref0002
  Ref0003
  -- 4 rows (4 candidates, exact plan); scanned=28B parsed=0B index_ops=22 cmps=1070 lookups=2 objs=0 regions=979

Explain shows the naive and optimized region expressions:

  $ ../bin/oqf_cli.exe explain -s bibtex refs.bib --index Reference,Key,Last_Name 'SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"' | grep -E "naive|optimized:"
    naive:     Reference >d sigma["Chang"](Last_Name)
    optimized: Reference > sigma["Chang"](Last_Name)

The advisor computes the sufficient index set of section 7:

  $ ../bin/oqf_cli.exe advise -s bibtex 'SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"'
  index these region names for exact evaluation:
    Authors, Last_Name, Reference

Raw region algebra expressions evaluate against the indices:

  $ ../bin/oqf_cli.exe rexpr -s bibtex refs.bib 'Reference > Authors > sigma["Chang"](Last_Name)' | tail -1
  -- 3 regions

Indices persist and reload:

  $ ../bin/oqf_cli.exe index -s bibtex refs.bib -o refs.idx | sed 's/ saved.*//'
  indexed refs.bib: 17 region names, 110 regions,
  $ ../bin/oqf_cli.exe query -s bibtex refs.bib --load refs.idx 'SELECT r.Key FROM References r' 2>/dev/null | head -2
  Ref0000
  Ref0001

The schema subcommand prints the derived types:

  $ ../bin/oqf_cli.exe schema -s log | grep -A1 "derived database"
  derived database types (§4.1):
  Class Entry = tuple(Timestamp : Timestamp, Level : Level, Service : Service,

The tree subcommand reproduces the paper's Figure 3: the parse tree as
a partial index sees it:

  $ ../bin/oqf_cli.exe tree -s bibtex refs.bib --index Reference,Key,Last_Name | head -4
  Reference [16,535)
    Key [30,37)
    Last_Name [56,61)
    Last_Name [72,78)
