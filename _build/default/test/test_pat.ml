(* Tests for the PAT engine: suffix array, word index, region sets and
   the region-algebra operators, checked against naive reference
   implementations on random inputs. *)

open Pat

(* ------------------------------------------------------------------ *)
(* Naive reference semantics for the region operators.                 *)

module Naive = struct
  let mem_list rs r = List.exists (Region.equal r) rs

  let including r s =
    List.filter (fun x -> List.exists (fun y -> Region.includes x y) s) r

  let included r s =
    List.filter (fun x -> List.exists (fun y -> Region.includes y x) s) r

  let blocked ctx outer inner =
    List.exists
      (fun u ->
        Region.strictly_includes outer u
        && Region.strictly_includes u inner
        && (not (Region.equal u outer))
        && not (Region.equal u inner))
      ctx

  let directly_including ctx r s =
    List.filter
      (fun x ->
        List.exists
          (fun y -> Region.includes x y && not (blocked ctx x y))
          s)
      r

  let directly_included ctx r s =
    List.filter
      (fun x ->
        List.exists
          (fun y -> Region.includes y x && not (blocked ctx y x))
          s)
      r

  let directly_including_strict ctx r s =
    List.filter
      (fun x ->
        List.exists
          (fun y -> Region.strictly_includes x y && not (blocked ctx x y))
          s)
      r

  let including_strict r s =
    List.filter
      (fun x -> List.exists (fun y -> Region.strictly_includes x y) s)
      r

  let included_strict r s =
    List.filter
      (fun x -> List.exists (fun y -> Region.strictly_includes y x) s)
      r

  let innermost r =
    List.filter
      (fun x ->
        not
          (List.exists
             (fun y -> (not (Region.equal x y)) && Region.includes x y)
             r))
      r

  let outermost r =
    List.filter
      (fun x ->
        not
          (List.exists
             (fun y -> (not (Region.equal x y)) && Region.includes y x)
             r))
      r

  let _ = mem_list
end

(* Random region-set generator: positions bounded so that inclusion and
   overlap happen often. *)
let region_gen =
  QCheck.Gen.(
    map2
      (fun a b -> Region.make ~start:(min a b) ~stop:(max a b))
      (int_bound 40) (int_bound 40))

let region_list_gen = QCheck.Gen.(list_size (int_bound 25) region_gen)

let print_regions rs =
  String.concat ";"
    (List.map (fun (r : Region.t) -> Printf.sprintf "[%d,%d)" r.start r.stop) rs)

let arb_regions = QCheck.make ~print:print_regions region_list_gen

let arb_regions3 =
  QCheck.(
    make
      ~print:(fun (a, b, c) ->
        Printf.sprintf "(%s | %s | %s)" (print_regions a) (print_regions b)
          (print_regions c))
      QCheck.Gen.(triple region_list_gen region_list_gen region_list_gen))

let set = Region_set.of_list
let as_sorted_list rs = Region_set.to_list (Region_set.of_list rs)

(* ------------------------------------------------------------------ *)
(* Region unit tests                                                   *)

let region_tests =
  [
    Alcotest.test_case "compare orders enclosing first" `Quick (fun () ->
        let outer = Region.make ~start:0 ~stop:10 in
        let inner = Region.make ~start:0 ~stop:4 in
        Alcotest.(check bool) "outer first" true (Region.compare outer inner < 0));
    Alcotest.test_case "includes is non-strict" `Quick (fun () ->
        let r = Region.make ~start:2 ~stop:8 in
        Alcotest.(check bool) "self" true (Region.includes r r);
        Alcotest.(check bool) "strict self" false (Region.strictly_includes r r));
    Alcotest.test_case "make rejects inverted interval" `Quick (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Region.make: invalid interval [5,3)") (fun () ->
            ignore (Region.make ~start:5 ~stop:3)));
    Alcotest.test_case "contains_point boundary" `Quick (fun () ->
        let r = Region.make ~start:2 ~stop:5 in
        Alcotest.(check bool) "start in" true (Region.contains_point r 2);
        Alcotest.(check bool) "stop out" false (Region.contains_point r 5));
    Alcotest.test_case "overlaps" `Quick (fun () ->
        let a = Region.make ~start:0 ~stop:5 in
        let b = Region.make ~start:4 ~stop:9 in
        let c = Region.make ~start:5 ~stop:9 in
        Alcotest.(check bool) "touching intervals overlap" true
          (Region.overlaps a b);
        Alcotest.(check bool) "adjacent do not" false (Region.overlaps a c));
  ]

(* ------------------------------------------------------------------ *)
(* Region_set properties                                               *)

let eq_sets got want =
  Region_set.equal got (Region_set.of_list want)

let region_set_props =
  [
    QCheck.Test.make ~name:"including matches naive" ~count:500 arb_regions3
      (fun (r, s, _) ->
        eq_sets (Region_set.including (set r) (set s))
          (Naive.including (as_sorted_list r) (as_sorted_list s)));
    QCheck.Test.make ~name:"included matches naive" ~count:500 arb_regions3
      (fun (r, s, _) ->
        eq_sets (Region_set.included (set r) (set s))
          (Naive.included (as_sorted_list r) (as_sorted_list s)));
    QCheck.Test.make ~name:"directly_including matches naive" ~count:500
      arb_regions3 (fun (r, s, c) ->
        let ctx = as_sorted_list (r @ s @ c) in
        eq_sets
          (Region_set.directly_including ~context:(set ctx) (set r) (set s))
          (Naive.directly_including ctx (as_sorted_list r) (as_sorted_list s)));
    QCheck.Test.make ~name:"directly_included matches naive" ~count:500
      arb_regions3 (fun (r, s, c) ->
        let ctx = as_sorted_list (r @ s @ c) in
        eq_sets
          (Region_set.directly_included ~context:(set ctx) (set r) (set s))
          (Naive.directly_included ctx (as_sorted_list r) (as_sorted_list s)));
    QCheck.Test.make ~name:"including_strict matches naive" ~count:500
      arb_regions3 (fun (r, s, _) ->
        eq_sets
          (Region_set.including_strict (set r) (set s))
          (Naive.including_strict (as_sorted_list r) (as_sorted_list s)));
    QCheck.Test.make ~name:"included_strict matches naive" ~count:500
      arb_regions3 (fun (r, s, _) ->
        eq_sets
          (Region_set.included_strict (set r) (set s))
          (Naive.included_strict (as_sorted_list r) (as_sorted_list s)));
    QCheck.Test.make ~name:"directly_including_strict matches naive" ~count:500
      arb_regions3 (fun (r, s, c) ->
        let ctx = as_sorted_list (r @ s @ c) in
        eq_sets
          (Region_set.directly_including_strict ~context:(set ctx) (set r)
             (set s))
          (Naive.directly_including_strict ctx (as_sorted_list r)
             (as_sorted_list s)));
    QCheck.Test.make ~name:"strict excludes self-matches" ~count:300
      arb_regions (fun r ->
        let s = set r in
        let strict = Region_set.including_strict s s in
        (* an element is kept only if it strictly contains another *)
        List.for_all
          (fun x ->
            List.exists
              (fun y -> Region.strictly_includes x y)
              (Region_set.to_list s))
          (Region_set.to_list strict));
    QCheck.Test.make ~name:"innermost matches naive" ~count:500 arb_regions
      (fun r ->
        eq_sets (Region_set.innermost (set r)) (Naive.innermost (as_sorted_list r)));
    QCheck.Test.make ~name:"outermost matches naive" ~count:500 arb_regions
      (fun r ->
        eq_sets (Region_set.outermost (set r)) (Naive.outermost (as_sorted_list r)));
    QCheck.Test.make ~name:"direct inclusion implies inclusion" ~count:300
      arb_regions3 (fun (r, s, c) ->
        let ctx = set (r @ s @ c) in
        Region_set.subset
          (Region_set.directly_including ~context:ctx (set r) (set s))
          (Region_set.including (set r) (set s)));
    QCheck.Test.make ~name:"R ⊃ R = R (non-strict inclusion)" ~count:300
      arb_regions (fun r ->
        Region_set.equal (Region_set.including (set r) (set r)) (set r));
    QCheck.Test.make ~name:"innermost is a fixpoint" ~count:300 arb_regions
      (fun r ->
        let i = Region_set.innermost (set r) in
        Region_set.equal (Region_set.innermost i) i);
    QCheck.Test.make ~name:"outermost is a fixpoint" ~count:300 arb_regions
      (fun r ->
        let o = Region_set.outermost (set r) in
        Region_set.equal (Region_set.outermost o) o);
    QCheck.Test.make ~name:"union/inter/diff are set ops" ~count:300
      arb_regions3 (fun (a, b, _) ->
        let sa = set a and sb = set b in
        let u = Region_set.union sa sb
        and i = Region_set.inter sa sb
        and d = Region_set.diff sa sb in
        Region_set.subset i sa && Region_set.subset i sb
        && Region_set.subset sa u && Region_set.subset sb u
        && Region_set.subset d sa
        && Region_set.is_empty (Region_set.inter d sb));
    QCheck.Test.make ~name:"count_strictly_between matches naive" ~count:300
      arb_regions3 (fun (r, s, c) ->
        let ctx = as_sorted_list (r @ s @ c) in
        let ctx_set = set ctx in
        List.for_all
          (fun outer ->
            List.for_all
              (fun inner ->
                (not (Region.includes outer inner))
                ||
                let naive =
                  List.length
                    (List.filter
                       (fun u ->
                         Region.strictly_includes outer u
                         && Region.strictly_includes u inner)
                       ctx)
                in
                Region_set.count_strictly_between ~context:ctx_set ~outer
                  ~inner
                = naive)
              (as_sorted_list s))
          (as_sorted_list r));
  ]

let region_set_units =
  [
    Alcotest.test_case "of_list dedups" `Quick (fun () ->
        let s = Region_set.of_pairs [ (1, 3); (1, 3); (0, 5) ] in
        Alcotest.(check int) "cardinal" 2 (Region_set.cardinal s));
    Alcotest.test_case "empty behaviour" `Quick (fun () ->
        Alcotest.(check bool) "is_empty" true (Region_set.is_empty Region_set.empty);
        Alcotest.(check bool)
          "including with empty" true
          (Region_set.is_empty
             (Region_set.including Region_set.empty (Region_set.of_pairs [ (0, 1) ])));
        Alcotest.(check bool)
          "choose empty" true
          (Region_set.choose Region_set.empty = None));
    Alcotest.test_case "directly_including skips when blocked" `Quick (fun () ->
        (* outer [0,10) ⊃ mid [2,8) ⊃ inner [4,6): outer ⊃d inner fails. *)
        let outer = Region_set.of_pairs [ (0, 10) ] in
        let inner = Region_set.of_pairs [ (4, 6) ] in
        let ctx = Region_set.of_pairs [ (0, 10); (2, 8); (4, 6) ] in
        Alcotest.(check bool)
          "blocked" true
          (Region_set.is_empty
             (Region_set.directly_including ~context:ctx outer inner));
        let ctx_free = Region_set.of_pairs [ (0, 10); (4, 6) ] in
        Alcotest.(check bool)
          "unblocked" false
          (Region_set.is_empty
             (Region_set.directly_including ~context:ctx_free outer inner)));
    Alcotest.test_case "including_at_depth counts layers" `Quick (fun () ->
        let outer = Region_set.of_pairs [ (0, 10) ] in
        let inner = Region_set.of_pairs [ (4, 6) ] in
        let ctx = Region_set.of_pairs [ (0, 10); (2, 8); (3, 7); (4, 6) ] in
        Alcotest.(check bool)
          "depth 2" false
          (Region_set.is_empty
             (Region_set.including_at_depth ~context:ctx ~depth:2 outer inner));
        Alcotest.(check bool)
          "depth 1 empty" true
          (Region_set.is_empty
             (Region_set.including_at_depth ~context:ctx ~depth:1 outer inner)));
  ]

(* ------------------------------------------------------------------ *)
(* Suffix array / word index                                           *)

let naive_word_occurrences text w =
  (* positions where w occurs, starting at a word start and ending at a
     token boundary *)
  let t = Text.of_string text in
  let n = String.length text and m = String.length w in
  let out = ref [] in
  for p = n - m downto 0 do
    if
      String.sub text p m = w
      && Tokenizer.is_word_start t p
      && Tokenizer.is_word_end t (p + m)
    then out := p :: !out
  done;
  !out

let word_gen =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 4) (oneofl [ 'a'; 'b'; 'c' ])))

let text_gen =
  QCheck.Gen.(
    map
      (fun ws -> String.concat " " ws)
      (list_size (int_bound 30) word_gen))

let suffix_array_props =
  [
    QCheck.Test.make ~name:"find_word matches naive scan" ~count:300
      QCheck.(make ~print:Print.(pair string string) Gen.(pair text_gen word_gen))
      (fun (text, w) ->
        let t = Text.of_string text in
        let sa = Suffix_array.build t in
        Array.to_list (Suffix_array.find_word sa w)
        = naive_word_occurrences text w);
    QCheck.Test.make ~name:"find returns word-start prefix matches" ~count:300
      QCheck.(make ~print:Print.(pair string string) Gen.(pair text_gen word_gen))
      (fun (text, w) ->
        let t = Text.of_string text in
        let sa = Suffix_array.build t in
        let found = Suffix_array.find sa w in
        Array.for_all
          (fun p ->
            Tokenizer.is_word_start t p
            && p + String.length w <= String.length text
            && String.sub text p (String.length w) = w)
          found);
    QCheck.Test.make ~name:"count = |find|" ~count:200
      QCheck.(make ~print:Print.(pair string string) Gen.(pair text_gen word_gen))
      (fun (text, w) ->
        let sa = Suffix_array.build (Text.of_string text) in
        Suffix_array.count sa w = Array.length (Suffix_array.find sa w));
  ]

(* Random region windows over random texts, used to compare the indexed
   word selections against character-level scans. *)
let windows_gen =
  QCheck.Gen.(
    pair text_gen
      (list_size (int_bound 8) (pair (int_bound 60) (int_bound 60))))

let arb_windows =
  QCheck.make
    ~print:(fun (t, ws) ->
      Printf.sprintf "%S %s" t
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) ws)))
    windows_gen

let clip_regions text ws =
  let n = String.length text in
  Region_set.of_pairs
    (List.filter_map
       (fun (a, b) ->
         let lo = min (min a b) n and hi = min (max a b) n in
         if lo <= hi then Some (lo, hi) else None)
       ws)

let word_selection_props =
  let naive_count text (r : Region.t) w =
    let t = Text.of_string text in
    let m = String.length w in
    let count = ref 0 in
    for p = r.start to r.stop - m do
      if
        String.sub text p m = w
        && Tokenizer.is_word_start t p
        && Tokenizer.is_word_end t (p + m)
      then incr count
    done;
    !count
  in
  [
    QCheck.Test.make ~name:"select_min_count matches naive scan" ~count:300
      QCheck.(pair arb_windows (make Gen.(pair word_gen (int_range 1 3))))
      (fun ((text, ws), (w, k)) ->
        let t = Text.of_string text in
        let wi = Word_index.build t in
        let regions = clip_regions text ws in
        let got = Word_index.select_min_count wi w ~count:k regions in
        let want =
          Region_set.filter (fun r -> naive_count text r w >= k) regions
        in
        Region_set.equal got want);
    QCheck.Test.make ~name:"select_prefix matches naive scan" ~count:300
      QCheck.(pair arb_windows (make word_gen))
      (fun ((text, ws), w) ->
        let t = Text.of_string text in
        let wi = Word_index.build t in
        let regions = clip_regions text ws in
        let got = Word_index.select_prefix wi w regions in
        let m = String.length w in
        let want =
          Region_set.filter
            (fun (r : Region.t) ->
              Region.length r >= m
              && r.start + m <= String.length text
              && String.sub text r.start m = w
              && Tokenizer.is_word_start t r.start)
            regions
        in
        Region_set.equal got want);
    QCheck.Test.make ~name:"select_proximity matches naive scan" ~count:300
      QCheck.(
        pair arb_windows (make Gen.(triple word_gen word_gen (int_bound 12))))
      (fun ((text, ws), (w1, w2, window)) ->
        let t = Text.of_string text in
        let wi = Word_index.build t in
        let regions = clip_regions text ws in
        let got = Word_index.select_proximity wi w1 w2 ~window regions in
        let occs w (r : Region.t) =
          let m = String.length w in
          let out = ref [] in
          for p = r.start to r.stop - m do
            if
              String.sub text p m = w
              && Tokenizer.is_word_start t p
              && Tokenizer.is_word_end t (p + m)
            then out := p :: !out
          done;
          !out
        in
        let want =
          Region_set.filter
            (fun r ->
              List.exists
                (fun p1 ->
                  List.exists (fun p2 -> abs (p1 - p2) <= window) (occs w2 r))
                (occs w1 r))
            regions
        in
        Region_set.equal got want);
  ]

let sample_text = "the cat sat on the mat; the catalog was flat"

let word_index_tests =
  [
    Alcotest.test_case "exact word does not match prefix" `Quick (fun () ->
        let wi = Word_index.build (Text.of_string sample_text) in
        Alcotest.(check int) "cat occurs once" 1
          (Array.length (Word_index.match_points wi "cat"));
        Alcotest.(check int) "catalog separate" 1
          (Array.length (Word_index.match_points wi "catalog")));
    Alcotest.test_case "multi-word pattern" `Quick (fun () ->
        let wi = Word_index.build (Text.of_string sample_text) in
        Alcotest.(check int) "the cat once" 1
          (Array.length (Word_index.match_points wi "the cat ")));
    Alcotest.test_case "select_exact picks exact-extent regions" `Quick
      (fun () ->
        let text = Text.of_string "AUTHOR = Chang , EDITOR = Chang" in
        let wi = Word_index.build text in
        (* regions: the two name fields, trimmed *)
        let names = Region_set.of_pairs [ (9, 14); (26, 31) ] in
        let hit = Word_index.select_exact wi "Chang" names in
        Alcotest.(check int) "both" 2 (Region_set.cardinal hit);
        let miss = Word_index.select_exact wi "Chan" names in
        Alcotest.(check int) "prefix rejected" 0 (Region_set.cardinal miss));
    Alcotest.test_case "select_containing finds embedded word" `Quick
      (fun () ->
        let text = Text.of_string "a Chang wrote; b Corliss edited" in
        let wi = Word_index.build text in
        let halves = Region_set.of_pairs [ (0, 13); (15, 31) ] in
        let hit = Word_index.select_containing wi "Chang" halves in
        Alcotest.(check int) "first half" 1 (Region_set.cardinal hit);
        Alcotest.(check bool)
          "is first" true
          (match Region_set.choose hit with
          | Some r -> r.Region.start = 0
          | None -> false));
    Alcotest.test_case "empty text" `Quick (fun () ->
        let wi = Word_index.build (Text.of_string "") in
        Alcotest.(check int) "no matches" 0
          (Array.length (Word_index.match_points wi "x")));
    Alcotest.test_case "prefix search selects extents starting with w" `Quick
      (fun () ->
        let text = Text.of_string "Ref0012 Ref0034 Xy0012" in
        let wi = Word_index.build text in
        let tokens = Region_set.of_pairs [ (0, 7); (8, 15); (16, 22) ] in
        Alcotest.(check int) "Ref00 matches two" 2
          (Region_set.cardinal (Word_index.select_prefix wi "Ref00" tokens));
        Alcotest.(check int) "Ref0012 matches one" 1
          (Region_set.cardinal (Word_index.select_prefix wi "Ref0012" tokens));
        Alcotest.(check int) "no such prefix" 0
          (Region_set.cardinal (Word_index.select_prefix wi "Zz" tokens));
        (* prefix must start at the region start, not merely occur *)
        let whole = Region_set.of_pairs [ (0, 22) ] in
        Alcotest.(check int) "whole text starts with Ref" 1
          (Region_set.cardinal (Word_index.select_prefix wi "Ref" whole));
        Alcotest.(check int) "whole text does not start with Xy" 0
          (Region_set.cardinal (Word_index.select_prefix wi "Xy" whole)));
    Alcotest.test_case "frequency search counts occurrences" `Quick (fun () ->
        let text = Text.of_string "ab ab zz | ab zz zz | zz" in
        let wi = Word_index.build text in
        (* three pipe-free chunks *)
        let chunks = Region_set.of_pairs [ (0, 9); (11, 19); (22, 24) ] in
        let at_least k =
          Region_set.cardinal (Word_index.select_min_count wi "zz" ~count:k chunks)
        in
        Alcotest.(check int) "k=1" 3 (at_least 1);
        Alcotest.(check int) "k=2" 1 (at_least 2);
        Alcotest.(check int) "k=3" 0 (at_least 3));
    Alcotest.test_case "proximity search respects the window" `Quick
      (fun () ->
        let text = Text.of_string "alpha beta | alpha xx xx xx xx beta" in
        let wi = Word_index.build text in
        let chunks = Region_set.of_pairs [ (0, 10); (13, 35) ] in
        let near w =
          Region_set.cardinal
            (Word_index.select_proximity wi "alpha" "beta" ~window:w chunks)
        in
        Alcotest.(check int) "tight window" 1 (near 8);
        Alcotest.(check int) "wide window" 2 (near 30);
        Alcotest.(check int) "zero window" 0 (near 2));
    Alcotest.test_case "proximity requires both words inside the region"
      `Quick
      (fun () ->
        let text = Text.of_string "alpha | beta" in
        let wi = Word_index.build text in
        (* the words are near each other but in different regions *)
        let chunks = Region_set.of_pairs [ (0, 5); (8, 12) ] in
        Alcotest.(check int) "none" 0
          (Region_set.cardinal
             (Word_index.select_proximity wi "alpha" "beta" ~window:20 chunks)));
  ]

(* ------------------------------------------------------------------ *)
(* Region scanner                                                      *)

let scanner_tests =
  [
    Alcotest.test_case "marker scan pairs start with nearest end" `Quick
      (fun () ->
        let text = Text.of_string "AUTHOR = a b c, TITLE = t, AUTHOR = d," in
        let rs =
          Region_scanner.scan text ~start_marker:"AUTHOR =" ~end_marker:"," ()
        in
        Alcotest.(check int) "two author regions" 2 (Region_set.cardinal rs);
        let contents =
          List.map (Region.text text) (Region_set.to_list rs)
        in
        Alcotest.(check (list string)) "contents" [ " a b c"; " d" ] contents);
    Alcotest.test_case "unmatched start dropped" `Quick (fun () ->
        let text = Text.of_string "BEGIN x BEGIN y END" in
        let rs =
          Region_scanner.scan text ~start_marker:"BEGIN" ~end_marker:"END" ()
        in
        (* both starts pair with the single END; the scanner allows that *)
        Alcotest.(check int) "two regions" 2 (Region_set.cardinal rs));
    Alcotest.test_case "balanced braces nest" `Quick (fun () ->
        let text = Text.of_string "{a {b} {c {d}}}" in
        let rs = Region_scanner.scan_balanced text ~open_char:'{' ~close_char:'}' in
        Alcotest.(check int) "four regions" 4 (Region_set.cardinal rs);
        let outer = Region_set.outermost rs in
        Alcotest.(check int) "one outermost" 1 (Region_set.cardinal outer));
    Alcotest.test_case "occurrences finds all" `Quick (fun () ->
        let text = Text.of_string "xx-xx-xx" in
        let rs = Region_scanner.occurrences text "xx" in
        Alcotest.(check int) "three" 3 (Region_set.cardinal rs));
  ]

(* ------------------------------------------------------------------ *)
(* Instance & store                                                    *)

let instance_tests =
  [
    Alcotest.test_case "universe unions all names" `Quick (fun () ->
        let text = Text.of_string "abcdef" in
        let inst =
          Instance.create text
            [
              ("A", Region_set.of_pairs [ (0, 6) ]);
              ("B", Region_set.of_pairs [ (1, 3); (4, 5) ]);
            ]
        in
        Alcotest.(check int) "universe" 3
          (Region_set.cardinal (Instance.universe inst));
        Alcotest.(check int) "total" 3 (Instance.total_regions inst));
    Alcotest.test_case "restrict drops names" `Quick (fun () ->
        let text = Text.of_string "abcdef" in
        let inst =
          Instance.create text
            [
              ("A", Region_set.of_pairs [ (0, 6) ]);
              ("B", Region_set.of_pairs [ (1, 3) ]);
            ]
        in
        let p = Instance.restrict inst [ "A" ] in
        Alcotest.(check (list string)) "names" [ "A" ] (Instance.names p);
        Alcotest.(check bool) "B gone" false (Instance.mem p "B"));
    Alcotest.test_case "duplicate names rejected" `Quick (fun () ->
        Alcotest.check_raises "dup"
          (Invalid_argument "Instance.create: duplicate region name A")
          (fun () ->
            ignore
              (Instance.create (Text.of_string "x")
                 [ ("A", Region_set.empty); ("A", Region_set.empty) ])));
    Alcotest.test_case "satisfies_rig accepts consistent instance" `Quick
      (fun () ->
        let text = Text.of_string "0123456789" in
        let inst =
          Instance.create text
            [
              ("A", Region_set.of_pairs [ (0, 10) ]);
              ("B", Region_set.of_pairs [ (2, 5) ]);
            ]
        in
        Alcotest.(check bool)
          "ok" true
          (Instance.satisfies_rig inst ~edges:[ ("A", "B") ] = None);
        Alcotest.(check bool)
          "violated without edge" true
          (Instance.satisfies_rig inst ~edges:[] <> None));
    Alcotest.test_case "index store rejects foreign files" `Quick (fun () ->
        let path = Filename.temp_file "oqf_test" ".idx" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "definitely not an index file";
            close_out oc;
            match Index_store.load ~path with
            | exception Failure msg ->
                Alcotest.(check bool) "mentions magic" true
                  (String.length msg > 0)
            | _ -> Alcotest.fail "should refuse"));
    Alcotest.test_case "text loads from disk" `Quick (fun () ->
        let path = Filename.temp_file "oqf_test" ".txt" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let oc = open_out path in
            output_string oc "hello disk";
            close_out oc;
            let t = Text.of_file path in
            Alcotest.(check int) "length" 10 (Text.length t);
            Alcotest.(check string) "contents" "hello disk"
              (Text.sub t ~pos:0 ~len:10)));
    Alcotest.test_case "index store round-trip" `Quick (fun () ->
        let text = Text.of_string "hello world of regions" in
        let inst =
          Instance.create text
            [
              ("W", Region_set.of_pairs [ (0, 5); (6, 11) ]);
              ("ALL", Region_set.of_pairs [ (0, 22) ]);
            ]
        in
        let path = Filename.temp_file "oqf_test" ".idx" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Index_store.save ~path inst;
            let inst' = Index_store.load ~path in
            Alcotest.(check (list string))
              "names" (Instance.names inst) (Instance.names inst');
            Alcotest.(check bool)
              "regions equal" true
              (Region_set.equal (Instance.find inst "W") (Instance.find inst' "W"));
            Alcotest.(check int)
              "same text" (Text.length text)
              (Text.length (Instance.text inst'))));
  ]

let suites =
  [
    ("pat.region", region_tests);
    ( "pat.region_set",
      region_set_units @ List.map QCheck_alcotest.to_alcotest region_set_props );
    ( "pat.suffix_array",
      List.map QCheck_alcotest.to_alcotest suffix_array_props );
    ( "pat.word_selections",
      List.map QCheck_alcotest.to_alcotest word_selection_props );
    ("pat.word_index", word_index_tests);
    ("pat.region_scanner", scanner_tests);
    ("pat.instance", instance_tests);
  ]
