test/test_oqf.ml: Alcotest Bibtex_schema Fmt Fschema Grammar List Log_schema Mbox_schema Odb Oqf Pat Printf Ralg Sgml_schema Stdx String View Workload
