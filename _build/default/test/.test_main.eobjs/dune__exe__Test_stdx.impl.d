test/test_stdx.ml: Alcotest Array Fun Gen Int List Print QCheck QCheck_alcotest Set Stdx
