test/test_pat.ml: Alcotest Array Filename Fun Gen Index_store Instance List Pat Print Printf QCheck QCheck_alcotest Region Region_scanner Region_set String Suffix_array Sys Text Tokenizer Word_index
