test/test_main.ml: Alcotest Test_fschema Test_odb Test_oqf Test_pat Test_ralg Test_stdx
