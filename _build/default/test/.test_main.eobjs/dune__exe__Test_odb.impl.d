test/test_odb.ml: Alcotest Database List Odb Path Query Query_eval Query_parser Stdx Value
