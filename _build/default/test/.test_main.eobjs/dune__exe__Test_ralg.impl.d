test/test_ralg.ml: Alcotest Array Chain Cost Eval Expr Expr_parser Fun Gen List Naive_eval Optimizer Pat Printf QCheck QCheck_alcotest Ralg Rig Stdx String Trivial
