(* Bibliography search: the paper's §2 scenario.

   A research group shares large BibTeX files; we want database-style
   questions answered without scanning the files.  This example runs a
   realistic mix — exact field lookups, path variables, a self-join —
   over a generated 300-entry bibliography, under both full and partial
   indexing, and reports the work each took.

   Run with: dune exec examples/bibliography_search.exe *)

let generate () =
  Pat.Text.of_string
    (Workload.Bibtex_gen.generate (Workload.Bibtex_gen.with_size 300))

let queries =
  [
    ( "authored by Chang",
      {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|} );
    ( "Chang anywhere (author or editor), via *X",
      {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|} );
    ( "published in 1982",
      {|SELECT r FROM References r WHERE r.Year = "1982"|} );
    ( "keyword lookup",
      {|SELECT r FROM References r WHERE r.Keywords.Keyword = "Taylor series"|}
    );
    ( "keys of references authored by Corliss (projection)",
      {|SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Corliss"|}
    );
    ( "editors who also author (self-join)",
      {|SELECT r.Key FROM References r, References s
        WHERE r.Editors.Name.Last_Name = s.Authors.Name.Last_Name
        AND r.Year = "1982"|} );
  ]

let run_with label view text ~index =
  Format.printf "@.=== %s (indices: %s) ===@." label
    (String.concat ", " index);
  match Oqf.Execute.make_source view text ~index with
  | Error e -> failwith e
  | Ok src ->
      List.iter
        (fun (name, q_text) ->
          let q = Odb.Query_parser.parse_exn q_text in
          match Oqf.Execute.run src q with
          | Error e -> Format.printf "%-50s ERROR %s@." name e
          | Ok r ->
              Format.printf
                "%-50s %3d answers (%4d candidates%s) parsed %6dB@." name
                r.Oqf.Execute.answers_count r.Oqf.Execute.candidates_count
                (if r.Oqf.Execute.plan.Oqf.Plan.exact then ", exact" else "")
                r.Oqf.Execute.stats.bytes_parsed)
        queries

let () =
  let text = generate () in
  let view = Fschema.Bibtex_schema.view in
  Format.printf "file size: %d bytes@." (Pat.Text.length text);

  run_with "full indexing" view text
    ~index:(Fschema.Grammar.indexable view.Fschema.View.grammar);

  (* the paper's §6.1 partial index *)
  run_with "partial indexing" view text
    ~index:[ "Reference"; "Key"; "Last_Name" ];

  (* what would the advisor pick for the first query? *)
  let q = Odb.Query_parser.parse_exn (snd (List.nth queries 0)) in
  (match Oqf.Advisor.required_indices view q with
  | Ok names ->
      Format.printf "@.advisor: indices sufficient for %S: %s@."
        (fst (List.nth queries 0))
        (String.concat ", " names)
  | Error e -> failwith e);

  (* and the baseline: what the standard database implementation costs *)
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
  in
  (match Oqf.Execute.run_baseline view text q with
  | Ok (rows, stats) ->
      Format.printf
        "@.baseline (full parse + load + evaluate): %d answers, parsed %dB, \
         %d objects built@."
        (List.length rows) stats.bytes_parsed stats.objects_built
  | Error e -> failwith e);

  (* §2's real scenario: every group member keeps several files — query
     them all at once *)
  let member_file seed =
    Pat.Text.of_string
      (Workload.Bibtex_gen.generate
         { (Workload.Bibtex_gen.with_size 60) with seed })
  in
  let corpus =
    match
      Oqf.Corpus.make_full view
        [
          ("alice.bib", member_file 11);
          ("bob.bib", member_file 12);
          ("carol.bib", member_file 13);
        ]
    with
    | Ok c -> c
    | Error e -> failwith e
  in
  let q =
    Odb.Query_parser.parse_exn
      {|SELECT r.Key FROM References r WHERE r.Keywords.Keyword = "text indexing"|}
  in
  match Oqf.Corpus.run corpus q with
  | Error e -> failwith e
  | Ok out ->
      Format.printf
        "@.corpus query over %d files: %d answers (first few:%s), parsed %dB \
         total@."
        (List.length (Oqf.Corpus.files corpus))
        (List.length out.Oqf.Corpus.rows)
        (String.concat ""
           (List.filteri
              (fun i _ -> i < 3)
              (List.map
                 (fun (f, row) ->
                   Printf.sprintf " %s:%s" f
                     (String.concat "," (List.map Odb.Value.to_display_string row)))
                 out.Oqf.Corpus.rows)))
        out.Oqf.Corpus.stats.bytes_parsed
