examples/quickstart.ml: Format Fschema List Odb Oqf Pat Ralg Stdx
