examples/log_audit.mli:
