examples/quickstart.mli:
