examples/mail_triage.ml: Format Fschema Odb Oqf Pat Printf Workload
