examples/document_outline.mli:
