examples/mail_triage.mli:
