examples/log_audit.ml: Format Fschema List Odb Oqf Pat Workload
