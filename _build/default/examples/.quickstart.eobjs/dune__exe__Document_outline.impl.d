examples/document_outline.ml: Format Fschema List Odb Oqf Pat Ralg Workload
