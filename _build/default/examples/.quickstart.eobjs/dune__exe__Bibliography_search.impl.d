examples/bibliography_search.ml: Format Fschema List Odb Oqf Pat Printf String Workload
