(* Document outlines: self-nested regions and closure-style queries.

   SGML-like documents nest sections inside sections, so the region
   inclusion graph is cyclic.  §5.3 of the paper observes that queries
   a traditional database evaluates by fixpoint iteration — "sections
   transitively containing a word" — reduce to a single inclusion test
   on region indices.

   Run with: dune exec examples/document_outline.exe *)

let () =
  let text =
    Pat.Text.of_string
      (Workload.Sgml_gen.generate
         { (Workload.Sgml_gen.with_depth 6) with top_sections = 4; seed = 99 })
  in
  let view = Fschema.Sgml_schema.view in
  Format.printf "document size: %d bytes@." (Pat.Text.length text);

  let src =
    match Oqf.Execute.make_source_full view text with
    | Ok s -> s
    | Error e -> failwith e
  in

  (* 1. Sections whose own heading mentions a word. *)
  let q1 =
    Odb.Query_parser.parse_exn
      {|SELECT s FROM Sections s WHERE s.Heading CONTAINS "background"|}
  in
  (match Oqf.Execute.run src q1 with
  | Error e -> failwith e
  | Ok r ->
      Format.printf "@.sections titled 'background': %d@."
        r.Oqf.Execute.answers_count);

  (* 2. Sections containing the word anywhere below them — arbitrary
     nesting depth, one inclusion expression, no fixpoint. *)
  let q2 =
    Odb.Query_parser.parse_exn
      {|SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "index"|}
  in
  (match Oqf.Execute.run src q2 with
  | Error e -> failwith e
  | Ok r ->
      Format.printf
        "sections with 'index' in a paragraph at any depth: %d@."
        r.Oqf.Execute.answers_count;
      List.iter
        (fun (v, e) -> Format.printf "  expression (%s): %a@." v Ralg.Expr.pp e)
        r.Oqf.Execute.evaluated);

  (* 3. The same query phrased directly in the region algebra, showing
     the engine the paper builds on.  Innermost sections matching: *)
  let inst = src.Oqf.Execute.instance in
  let sections = Pat.Instance.find inst "Section" in
  let paras = Pat.Instance.find inst "Para" in
  let wi = Pat.Instance.word_index inst in
  let hits =
    Pat.Region_set.including sections
      (Pat.Word_index.select_containing wi "index" paras)
  in
  let innermost = Pat.Region_set.innermost hits in
  Format.printf
    "region algebra: %d matching sections, %d innermost among them@."
    (Pat.Region_set.cardinal hits)
    (Pat.Region_set.cardinal innermost);

  (* 4. Direct subsections of matching sections, via one level of the
     fixed-length path variable. *)
  let q3 =
    Odb.Query_parser.parse_exn
      {|SELECT s FROM Sections s WHERE s.Section.Heading CONTAINS "level2"|}
  in
  match Oqf.Execute.run src q3 with
  | Error e -> failwith e
  | Ok r ->
      Format.printf "sections with a level-2 subsection heading: %d@."
        r.Oqf.Execute.answers_count
