(* Quickstart: index a BibTeX file and query it like a database.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A semi-structured file.  In real use: Pat.Text.of_file path. *)
  let text = Pat.Text.of_string Fschema.Bibtex_schema.sample in

  (* 2. Build the indices.  The structuring schema (grammar + class
     mapping) tells the system how the file maps to a database; full
     indexing covers every non-terminal. *)
  let src =
    match Oqf.Execute.make_source_full Fschema.Bibtex_schema.view text with
    | Ok src -> src
    | Error e -> failwith e
  in

  (* 3. Ask a database question about the file — the paper's running
     example: references where Chang is one of the authors. *)
  let query =
    Odb.Query_parser.parse_exn
      {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
  in

  match Oqf.Execute.run src query with
  | Error e -> failwith e
  | Ok result ->
      (* The compiler turned the path into an inclusion expression and
         optimized it against the region inclusion graph. *)
      List.iter
        (fun (var, expr) ->
          Format.printf "evaluated for %s: %a@." var Ralg.Expr.pp expr)
        result.Oqf.Execute.evaluated;
      Format.printf "plan is exact: %b@."
        result.Oqf.Execute.plan.Oqf.Plan.exact;

      (* 4. The answers are ordinary database objects. *)
      List.iter
        (fun row ->
          List.iter
            (fun v ->
              match Odb.Value.field v "Key" with
              | Some (Odb.Value.Str key) ->
                  Format.printf "match: %s (%s)@." key
                    (match Odb.Value.field v "Title" with
                    | Some t -> Odb.Value.to_display_string t
                    | None -> "?")
              | _ -> ())
            row)
        result.Oqf.Execute.rows;

      (* 5. And the work was bounded by the index, not the file size. *)
      Format.printf "query-time work: %a@." Stdx.Stats.pp
        result.Oqf.Execute.stats
