(* Log auditing: querying a structured log file as a database.

   Log files are among the semi-structured files the paper's
   introduction motivates.  Here an operator investigates an incident:
   find the error entries of one service, then project out the services
   that logged errors at all — both answered from the word and region
   indices, parsing only the entries that matter.

   Run with: dune exec examples/log_audit.exe *)

let () =
  let text =
    Pat.Text.of_string
      (Workload.Log_gen.generate
         { (Workload.Log_gen.with_size 2000) with error_percent = 4 })
  in
  let view = Fschema.Log_schema.view in
  Format.printf "log size: %d bytes@." (Pat.Text.length text);

  let src =
    match Oqf.Execute.make_source_full view text with
    | Ok s -> s
    | Error e -> failwith e
  in

  (* 1. Errors of the auth service. *)
  let q1 =
    Odb.Query_parser.parse_exn
      {|SELECT e FROM Entries e WHERE e.Service = "auth" AND e.Level = "ERROR"|}
  in
  (match Oqf.Execute.run src q1 with
  | Error e -> failwith e
  | Ok r ->
      Format.printf "@.auth errors: %d (of %d candidate regions), parsed %dB@."
        r.Oqf.Execute.answers_count r.Oqf.Execute.candidates_count
        r.Oqf.Execute.stats.bytes_parsed;
      List.iteri
        (fun i row ->
          if i < 3 then
            List.iter
              (fun v ->
                Format.printf "  [%s] %s@."
                  (match Odb.Value.field v "Timestamp" with
                  | Some t -> Odb.Value.to_display_string t
                  | None -> "?")
                  (match Odb.Value.field v "Message" with
                  | Some m -> Odb.Value.to_display_string m
                  | None -> "?"))
              row)
        r.Oqf.Execute.rows);

  (* 2. Which services logged errors?  An index-only projection: the
     answer is read straight out of the region index. *)
  let q2 =
    Odb.Query_parser.parse_exn
      {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
  in
  (match Oqf.Execute.run src q2 with
  | Error e -> failwith e
  | Ok r ->
      Format.printf "@.services with errors (parsed %dB — index-only):@."
        r.Oqf.Execute.stats.bytes_parsed;
      List.iter
        (fun row ->
          List.iter
            (fun v -> Format.printf "  %s@." (Odb.Value.to_display_string v))
            row)
        r.Oqf.Execute.rows);

  (* 3. Text search within messages combines with structure. *)
  let q3 =
    Odb.Query_parser.parse_exn
      {|SELECT e FROM Entries e
        WHERE e.Message CONTAINS "timeout" OR e.Message CONTAINS "candidate"|}
  in
  match Oqf.Execute.run src q3 with
  | Error e -> failwith e
  | Ok r ->
      Format.printf "@.messages mentioning timeout/candidate: %d, parsed %dB@."
        r.Oqf.Execute.answers_count r.Oqf.Execute.stats.bytes_parsed
