(* Mail triage: querying a mailbox file as a database.

   E-mail is on the paper's list of semi-structured files (§1).  This
   example answers triage questions on a generated mailbox: traffic by
   sender, thread lookups via subject prefixes, and a who-replies-to-
   whom join — all from word and region indices.

   Run with: dune exec examples/mail_triage.exe *)

let () =
  let text =
    Pat.Text.of_string
      (Workload.Mbox_gen.generate (Workload.Mbox_gen.with_size 400))
  in
  let view = Fschema.Mbox_schema.view in
  Format.printf "mailbox size: %d bytes@." (Pat.Text.length text);
  let src =
    match Oqf.Execute.make_source_full view text with
    | Ok s -> s
    | Error e -> failwith e
  in
  let run label q_text =
    let q = Odb.Query_parser.parse_exn q_text in
    match Oqf.Execute.run src q with
    | Error e -> Format.printf "%-46s ERROR %s@." label e
    | Ok r ->
        Format.printf "%-46s %4d answers%s, parsed %6dB@." label
          r.Oqf.Execute.answers_count
          (if r.Oqf.Execute.join_assisted then " (join-assisted)" else "")
          r.Oqf.Execute.stats.bytes_parsed
  in
  let top = Workload.Mbox_gen.address 0 in
  run "messages from the most prolific writer"
    (Printf.sprintf {|SELECT m FROM Messages m WHERE m.Sender = "%s"|} top);
  run "messages addressed to that writer"
    (Printf.sprintf
       {|SELECT m FROM Messages m WHERE m.Recipients.Recipient = "%s"|} top);
  run "replies (subject starts with re:)"
    {|SELECT m FROM Messages m WHERE m.Subject STARTS WITH "re"|};
  run "bodies mentioning the word candidate"
    {|SELECT m FROM Messages m WHERE m.Body CONTAINS "candidate"|};
  run "senders who also receive mail (join)"
    {|SELECT m.Sender FROM Messages m, Messages n
      WHERE m.Sender = n.Recipients.Recipient|};
  run "mail sent on June 12"
    {|SELECT m.Sender FROM Messages m WHERE m.Date = "2026-06-12"|}
