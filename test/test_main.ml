let () =
  Alcotest.run "oqf"
    (Test_obs.suites @ Test_stdx.suites @ Test_pat.suites @ Test_ralg.suites
   @ Test_odb.suites @ Test_fschema.suites @ Test_analysis.suites
   @ Test_oqf.suites @ Test_catalog.suites @ Test_exec.suites
   @ Test_serve.suites @ Test_cost.suites)
