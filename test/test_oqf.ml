(* End-to-end tests of the query compiler and two-phase executor.  The
   master property: for any query, oqf's result equals the standard
   database implementation's (full parse + load + evaluate), under full
   indexing, partial indexing, and no useful indexing at all. *)

open Fschema

let bibtex_text n =
  Pat.Text.of_string (Workload.Bibtex_gen.generate (Workload.Bibtex_gen.with_size n))

let rows_t =
  Alcotest.testable
    (Fmt.Dump.list (Fmt.Dump.list Odb.Value.pp))
    (List.equal (List.equal Odb.Value.equal))

let run_both ?(index = None) view text q_text =
  let q = Odb.Query_parser.parse_exn q_text in
  let index =
    match index with
    | Some names -> names
    | None -> Grammar.indexable view.View.grammar
  in
  let src =
    match Oqf.Execute.make_source view text ~index with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let indexed =
    match Oqf.Execute.run src q with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let baseline =
    match Oqf.Execute.run_baseline view text q with
    | Ok (rows, _) -> rows
    | Error e -> Alcotest.fail e
  in
  (indexed, baseline)

let check_equiv ?index view text q_text =
  let indexed, baseline = run_both ?index view text q_text in
  Alcotest.check rows_t ("rows agree: " ^ q_text) baseline indexed.Oqf.Execute.rows;
  indexed

(* The query battery run against the BibTeX corpus. *)
let bibtex_queries =
  [
    {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
    {|SELECT r FROM References r WHERE r.Editors.Name.Last_Name = "Chang"|};
    {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|};
    {|SELECT r FROM References r WHERE r.X1.X2.Last_Name = "Chang"|};
    {|SELECT r FROM References r WHERE r.Year = "1982"|};
    {|SELECT r FROM References r WHERE r.Key = "Ref0003"|};
    {|SELECT r FROM References r WHERE r.Keywords.Keyword = "Taylor series"|};
    {|SELECT r FROM References r WHERE r.Abstract CONTAINS "derivation"|};
    {|SELECT r FROM References r
      WHERE r.Authors.Name.Last_Name = "Chang" AND r.Year = "1982"|};
    {|SELECT r FROM References r
      WHERE r.Authors.Name.Last_Name = "Chang" OR r.Editors.Name.Last_Name = "Chang"|};
    {|SELECT r FROM References r WHERE NOT r.Authors.Name.Last_Name = "Chang"|};
    {|SELECT r.Authors.Name.Last_Name FROM References r|};
    {|SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Corliss"|};
    {|SELECT r FROM References r, References s
      WHERE r.Editors.Name.Last_Name = s.Authors.Name.Last_Name|};
    {|SELECT r FROM References r WHERE r.Title = "Optimizing Queries Files"|};
    {|SELECT r FROM References r WHERE r.Authors.Name.First_Name = "Tova"|};
    {|SELECT r FROM References r WHERE r.Key STARTS WITH "Ref000"|};
    {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name STARTS WITH "C"|};
    {|SELECT r FROM References r WHERE r.Year STARTS WITH "19"|};
  ]

let equivalence_tests =
  [
    Alcotest.test_case "full indexing matches baseline (query battery)" `Slow
      (fun () ->
        let text = bibtex_text 40 in
        List.iter
          (fun q -> ignore (check_equiv Bibtex_schema.view text q))
          bibtex_queries);
    Alcotest.test_case "partial indexing matches baseline (query battery)"
      `Slow
      (fun () ->
        let text = bibtex_text 40 in
        let partial_indices =
          [
            [ "Reference"; "Key"; "Last_Name" ];
            [ "Reference"; "Authors"; "Last_Name" ];
            [ "Reference"; "Authors"; "Editors"; "Name"; "Last_Name" ];
            [ "Reference"; "Year_value" ];
            [ "Reference" ];
          ]
        in
        List.iter
          (fun index ->
            List.iter
              (fun q ->
                ignore (check_equiv ~index:(Some index) Bibtex_schema.view text q))
              bibtex_queries)
          partial_indices);
    Alcotest.test_case "random partial index sets match baseline" `Slow
      (fun () ->
        let text = bibtex_text 25 in
        let all = Grammar.indexable Bibtex_schema.grammar in
        let prng = Stdx.Prng.create 2024 in
        for _ = 1 to 12 do
          let k = Stdx.Prng.int_in prng 1 (List.length all) in
          let index = "Reference" :: Stdx.Prng.sample prng k all in
          List.iter
            (fun q ->
              ignore (check_equiv ~index:(Some index) Bibtex_schema.view text q))
            [
              {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
              {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|};
              {|SELECT r.Key FROM References r WHERE r.Year = "1982"|};
            ]
        done);
    Alcotest.test_case "root not indexed falls back to full scan" `Quick
      (fun () ->
        let text = bibtex_text 10 in
        let r =
          check_equiv ~index:(Some [ "Last_Name" ]) Bibtex_schema.view text
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        Alcotest.(check bool) "plan is full scan" true
          (List.exists
             (fun vp -> vp.Oqf.Plan.candidates = Oqf.Plan.All)
             r.Oqf.Execute.plan.Oqf.Plan.var_plans));
    Alcotest.test_case "log schema queries" `Quick (fun () ->
        let text =
          Pat.Text.of_string (Workload.Log_gen.generate (Workload.Log_gen.with_size 60))
        in
        let battery =
          [
            {|SELECT e FROM Entries e WHERE e.Level = "ERROR"|};
            {|SELECT e FROM Entries e WHERE e.Service = "auth" AND e.Level = "ERROR"|};
            {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|};
            {|SELECT e FROM Entries e WHERE e.Message CONTAINS "index"|};
          ]
        in
        List.iter (fun q -> ignore (check_equiv Log_schema.view text q)) battery;
        (* and under partial index sets *)
        List.iter
          (fun index ->
            List.iter
              (fun q ->
                ignore (check_equiv ~index:(Some index) Log_schema.view text q))
              battery)
          [ [ "Entry"; "Level" ]; [ "Entry" ]; [ "Entry"; "Message" ] ]);
    Alcotest.test_case "mbox schema queries" `Quick (fun () ->
        let text =
          Pat.Text.of_string
            (Workload.Mbox_gen.generate (Workload.Mbox_gen.with_size 50))
        in
        let battery =
          [
            Printf.sprintf {|SELECT m FROM Messages m WHERE m.Sender = "%s"|}
              (Workload.Mbox_gen.address 0);
            Printf.sprintf
              {|SELECT m FROM Messages m WHERE m.Recipients.Recipient = "%s"|}
              (Workload.Mbox_gen.address 1);
            {|SELECT m FROM Messages m WHERE m.Subject STARTS WITH "re"|};
            {|SELECT m.Sender FROM Messages m WHERE m.Date = "2026-06-12"|};
            {|SELECT m FROM Messages m WHERE m.Body CONTAINS "candidate"|};
            {|SELECT m.Sender FROM Messages m, Messages n
              WHERE m.Sender = n.Recipients.Recipient|};
          ]
        in
        List.iter (fun q -> ignore (check_equiv Mbox_schema.view text q)) battery;
        List.iter
          (fun index ->
            List.iter
              (fun q ->
                ignore (check_equiv ~index:(Some index) Mbox_schema.view text q))
              battery)
          [
            [ "Message" ];
            [ "Message"; "Sender"; "Recipient" ];
            [ "Message"; "Subject_value"; "Date_value" ];
          ]);
    Alcotest.test_case "sgml partial index battery" `Quick (fun () ->
        let text =
          Pat.Text.of_string (Workload.Sgml_gen.generate (Workload.Sgml_gen.with_depth 4))
        in
        let battery =
          [
            {|SELECT s FROM Sections s WHERE s.Heading CONTAINS "background"|};
            {|SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "index"|};
            {|SELECT s FROM Sections s WHERE s.Section+.Heading CONTAINS "level3"|};
          ]
        in
        List.iter
          (fun index ->
            List.iter
              (fun q ->
                ignore (check_equiv ~index:(Some index) Sgml_schema.view text q))
              battery)
          [ [ "Section" ]; [ "Section"; "Para" ]; [ "Section"; "Heading" ] ]);
    Alcotest.test_case "sgml schema queries (cyclic RIG)" `Quick (fun () ->
        let text =
          Pat.Text.of_string (Workload.Sgml_gen.generate (Workload.Sgml_gen.with_depth 4))
        in
        List.iter
          (fun q -> ignore (check_equiv Sgml_schema.view text q))
          [
            {|SELECT s FROM Sections s WHERE s.Heading CONTAINS "background"|};
            {|SELECT s FROM Sections s WHERE s.*X.Para CONTAINS "index"|};
            {|SELECT s FROM Sections s WHERE s.Section.Heading CONTAINS "level3"|};
            {|SELECT s FROM Sections s WHERE s.Section+.Heading CONTAINS "level3"|};
            {|SELECT s FROM Sections s WHERE s.Section+.Para CONTAINS "region"|};
          ]);
    Alcotest.test_case "closure step compiles to one exact inclusion" `Quick
      (fun () ->
        let text =
          Pat.Text.of_string
            (Workload.Sgml_gen.generate (Workload.Sgml_gen.with_depth 5))
        in
        let src =
          match Oqf.Execute.make_source_full Sgml_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT s FROM Sections s WHERE s.Section+.Heading CONTAINS "level4"|}
        in
        match Oqf.Execute.run src q with
        | Ok r ->
            (* sections nest only through sections, so a+ is exact *)
            Alcotest.(check bool) "exact" true r.Oqf.Execute.plan.Oqf.Plan.exact;
            let e = List.assoc "s" r.Oqf.Execute.evaluated in
            (* the closure is a single (strict) simple inclusion, not a
               fixpoint: one ⊃ for Section+, one ⊃d for .Heading *)
            Alcotest.(check int) "one simple inclusion" 1
              (Ralg.Expr.count_ops e Ralg.Expr.Including);
            Alcotest.(check int) "one direct inclusion" 1
              (Ralg.Expr.count_ops e Ralg.Expr.Directly_including)
        | Error e -> Alcotest.fail e);
  ]

let plan_tests =
  [
    Alcotest.test_case "paper query is exact and optimized under full index"
      `Quick
      (fun () ->
        let text = bibtex_text 10 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        match Oqf.Execute.run src q with
        | Ok r ->
            Alcotest.(check bool) "exact" true r.Oqf.Execute.plan.Oqf.Plan.exact;
            (* the evaluated expression must be the optimized form:
               Reference > Authors > sigma["Chang"](Last_Name) *)
            let e = List.assoc "r" r.Oqf.Execute.evaluated in
            Alcotest.(check string)
              "optimized"
              {|Reference > Authors > sigma["Chang"](Last_Name)|}
              (Ralg.Expr.to_string e)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "partial index of §6.1 is a superset plan" `Quick
      (fun () ->
        let text = bibtex_text 10 in
        let src =
          match
            Oqf.Execute.make_source Bibtex_schema.view text
              ~index:[ "Reference"; "Key"; "Last_Name" ]
          with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        match Oqf.Execute.run src q with
        | Ok r ->
            Alcotest.(check bool) "not exact" false
              r.Oqf.Execute.plan.Oqf.Plan.exact;
            (* candidates ⊇ answers, and strictly more when an editor
               Chang exists *)
            Alcotest.(check bool) "superset" true
              (r.Oqf.Execute.candidates_count >= r.Oqf.Execute.answers_count)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "key lookup with §6.1 index is exact" `Quick (fun () ->
        let text = bibtex_text 10 in
        let src =
          match
            Oqf.Execute.make_source Bibtex_schema.view text
              ~index:[ "Reference"; "Key"; "Last_Name" ]
          with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Key = "Ref0002"|}
        in
        match Oqf.Execute.run src q with
        | Ok r ->
            Alcotest.(check bool) "exact" true r.Oqf.Execute.plan.Oqf.Plan.exact;
            Alcotest.(check int) "one answer" 1 r.Oqf.Execute.answers_count
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "carrier hop: Year exact with only Year_value indexed"
      `Quick
      (fun () ->
        (* the query names Year; only its value carrier is indexed, yet
           the plan is exact via the pass-through hop *)
        let text = bibtex_text 10 in
        let src =
          match
            Oqf.Execute.make_source Bibtex_schema.view text
              ~index:[ "Reference"; "Year_value" ]
          with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Year = "1982"|}
        in
        match Oqf.Execute.run src q with
        | Ok r ->
            Alcotest.(check bool) "exact" true r.Oqf.Execute.plan.Oqf.Plan.exact;
            let e = List.assoc "r" r.Oqf.Execute.evaluated in
            Alcotest.(check bool) "selects on the carrier" true
              (List.mem "Year_value" (Ralg.Expr.names e))
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "prefix plans are exact on atomic carriers" `Quick
      (fun () ->
        let text = bibtex_text 10 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Key STARTS WITH "Ref000"|}
        in
        match Oqf.Execute.run src q with
        | Ok r ->
            Alcotest.(check bool) "exact" true r.Oqf.Execute.plan.Oqf.Plan.exact;
            Alcotest.(check int) "ten keys" 10 r.Oqf.Execute.answers_count
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "projection falls back when the carrier is unindexed"
      `Quick
      (fun () ->
        (* regression: with Title indexed but Title_value not, the
           projection plan must not reference the unindexed carrier *)
        let text = bibtex_text 8 in
        let r =
          check_equiv
            ~index:(Some [ "Reference"; "Title" ])
            Bibtex_schema.view text
            {|SELECT r.Title FROM References r|}
        in
        Alcotest.(check bool) "materialize plan" true
          (match r.Oqf.Execute.plan.Oqf.Plan.select_plans with
          | [ Oqf.Plan.Materialize _ ] -> true
          | _ -> false));
    Alcotest.test_case "soak: 2000-reference corpus stays correct" `Slow
      (fun () ->
        let text = bibtex_text 2000 in
        List.iter
          (fun q -> ignore (check_equiv Bibtex_schema.view text q))
          [
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
            {|SELECT r.Key FROM References r WHERE r.Year = "1982"|};
            {|SELECT r FROM References r WHERE r.*X.Last_Name = "Consens"|};
          ]);
    Alcotest.test_case "impossible path compiles to empty" `Quick (fun () ->
        let text = bibtex_text 5 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Title.Last_Name = "Chang"|}
        in
        (* the analyzer proves the plan empty (OQF001) and refuses the
           unforced run *)
        (match Oqf.Execute.run src q with
        | Ok _ -> Alcotest.fail "expected a static-analysis refusal"
        | Error msg ->
            Alcotest.(check bool) "refusal mentions OQF001" true
              (Astring.String.is_infix ~affix:"OQF001" msg));
        (* --force executes anyway and finds the empty answer *)
        match Oqf.Execute.run ~force:true src q with
        | Ok r ->
            Alcotest.(check int) "no candidates" 0 r.Oqf.Execute.candidates_count;
            Alcotest.(check int) "no rows" 0 r.Oqf.Execute.answers_count;
            Alcotest.(check bool) "diagnostics kept in the outcome" true
              (List.exists
                 (fun (d : Analysis.Diagnostic.t) ->
                   d.Analysis.Diagnostic.code = "OQF001")
                 r.Oqf.Execute.diagnostics)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "unknown class is an error" `Quick (fun () ->
        let text = bibtex_text 5 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q = Odb.Query_parser.parse_exn {|SELECT x FROM Zooks x|} in
        match Oqf.Execute.run src q with
        | Error msg ->
            Alcotest.(check string) "msg" "unknown class: Zooks" msg
        | Ok _ -> Alcotest.fail "should fail");
    Alcotest.test_case "projection plan avoids parsing" `Quick (fun () ->
        let text = bibtex_text 30 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r.Authors.Name.Last_Name FROM References r WHERE r.Year = "1982"|}
        in
        match Oqf.Execute.run src q with
        | Ok r ->
            Alcotest.(check bool) "index-only" true
              (match r.Oqf.Execute.plan.Oqf.Plan.select_plans with
              | [ Oqf.Plan.Project_regions _ ] -> true
              | _ -> false);
            Alcotest.(check int) "no parsing" 0 r.Oqf.Execute.stats.bytes_parsed
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "exact plans skip re-filtering but still materialise"
      `Quick
      (fun () ->
        let text = bibtex_text 30 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        match Oqf.Execute.run src q with
        | Ok r ->
            Alcotest.(check int) "candidates = answers"
              r.Oqf.Execute.answers_count r.Oqf.Execute.candidates_count;
            Alcotest.(check bool) "parsed much less than the file" true
              (r.Oqf.Execute.stats.bytes_parsed < Pat.Text.length text / 2)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "optimize:false evaluates the naive chain" `Quick
      (fun () ->
        let text = bibtex_text 10 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        let with_opt =
          match Oqf.Execute.run ~optimize:true src q with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        let without =
          match Oqf.Execute.run ~optimize:false src q with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        Alcotest.check rows_t "same rows" with_opt.Oqf.Execute.rows
          without.Oqf.Execute.rows;
        let naive = List.assoc "r" without.Oqf.Execute.evaluated in
        Alcotest.(check bool) "naive uses >d" true
          (Ralg.Expr.count_ops naive Ralg.Expr.Directly_including > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Random query fuzzing: generate well-formed queries against the
   BibTeX view and check the executor against the baseline under
   arbitrary index subsets, and the advisor's exactness promise. *)

module Query_fuzz = struct
  let paths =
    [|
      [ "Authors"; "Name"; "Last_Name" ];
      [ "Authors"; "Name"; "First_Name" ];
      [ "Editors"; "Name"; "Last_Name" ];
      [ "*X"; "Last_Name" ];
      [ "X1"; "X2"; "Last_Name" ];
      [ "Year" ];
      [ "Key" ];
      [ "Keywords"; "Keyword" ];
      [ "Cites"; "Cite" ];
      [ "Title" ];
      [ "Abstract" ];
    |]

  let words =
    [|
      Workload.Vocab.last_name 0; Workload.Vocab.last_name 3;
      Workload.Vocab.last_name 60; Workload.Vocab.first_name 2;
      "1982"; "1994"; "Ref0003"; Workload.Vocab.keyword 1;
      Workload.Vocab.abstract_word 4; "nosuchword";
    |]

  let rec random_pred prng depth =
    let leaf () =
      let rp =
        { Odb.Query.var = "r"; path = Odb.Path.of_strings (Stdx.Prng.choose prng paths) }
      in
      let w = Stdx.Prng.choose prng words in
      match Stdx.Prng.int prng 100 with
      | k when k < 20 -> Odb.Query.Contains (rp, w)
      | k when k < 35 ->
          Odb.Query.Starts_with
            (rp, String.sub w 0 (min 3 (String.length w)))
      | _ -> Odb.Query.Eq_const (rp, w)
    in
    if depth = 0 then leaf ()
    else begin
      match Stdx.Prng.int prng 6 with
      | 0 | 1 | 2 -> leaf ()
      | 3 ->
          Odb.Query.And (random_pred prng (depth - 1), random_pred prng (depth - 1))
      | 4 ->
          Odb.Query.Or (random_pred prng (depth - 1), random_pred prng (depth - 1))
      | _ -> Odb.Query.Not (random_pred prng (depth - 1))
    end

  let random_query prng =
    let select =
      if Stdx.Prng.int prng 100 < 70 then [ Odb.Query.var "r" ]
      else
        [
          {
            Odb.Query.var = "r";
            path = Odb.Path.of_strings (Stdx.Prng.choose prng paths);
          };
        ]
    in
    {
      Odb.Query.select;
      from_ = [ ("References", "r") ];
      where = random_pred prng 2;
    }

  let random_index prng =
    let all = Grammar.indexable Bibtex_schema.grammar in
    let k = Stdx.Prng.int_in prng 0 (List.length all) in
    "Reference" :: Stdx.Prng.sample prng k all
end

let fuzz_tests =
  [
    Alcotest.test_case "fuzz: random queries, random index sets" `Slow
      (fun () ->
        let text = bibtex_text 25 in
        let prng = Stdx.Prng.create 314159 in
        for i = 1 to 250 do
          let q = Query_fuzz.random_query prng in
          let index = Query_fuzz.random_index prng in
          let src =
            match Oqf.Execute.make_source Bibtex_schema.view text ~index with
            | Ok s -> s
            | Error e -> Alcotest.fail e
          in
          let indexed =
            match Oqf.Execute.run src q with
            | Ok r -> r.Oqf.Execute.rows
            | Error e ->
                Alcotest.failf "case %d (%s): %s" i (Odb.Query.to_string q) e
          in
          let baseline =
            match Oqf.Execute.run_baseline Bibtex_schema.view text q with
            | Ok (rows, _) -> rows
            | Error e -> Alcotest.fail e
          in
          if indexed <> baseline then
            Alcotest.failf "case %d: rows differ for %s under {%s}" i
              (Odb.Query.to_string q)
              (String.concat "," index)
        done);
    Alcotest.test_case "fuzz: two-variable queries with joins and negation"
      `Slow
      (fun () ->
        let text = bibtex_text 15 in
        let prng = Stdx.Prng.create 424242 in
        let rec pred depth =
          let var = if Stdx.Prng.bool prng then "r" else "s" in
          let leaf () =
            if Stdx.Prng.int prng 100 < 25 then
              Odb.Query.Eq_paths
                ( {
                    Odb.Query.var = "r";
                    path = Odb.Path.of_strings (Stdx.Prng.choose prng Query_fuzz.paths);
                  },
                  {
                    Odb.Query.var = "s";
                    path = Odb.Path.of_strings (Stdx.Prng.choose prng Query_fuzz.paths);
                  } )
            else
              Odb.Query.Eq_const
                ( {
                    Odb.Query.var;
                    path = Odb.Path.of_strings (Stdx.Prng.choose prng Query_fuzz.paths);
                  },
                  Stdx.Prng.choose prng Query_fuzz.words )
          in
          if depth = 0 then leaf ()
          else begin
            match Stdx.Prng.int prng 6 with
            | 0 | 1 | 2 -> leaf ()
            | 3 -> Odb.Query.And (pred (depth - 1), pred (depth - 1))
            | 4 -> Odb.Query.Or (pred (depth - 1), pred (depth - 1))
            | _ -> Odb.Query.Not (pred (depth - 1))
          end
        in
        for i = 1 to 60 do
          let q =
            {
              Odb.Query.select =
                [
                  { Odb.Query.var = "r"; path = Odb.Path.of_strings [ "Key" ] };
                  { Odb.Query.var = "s"; path = Odb.Path.of_strings [ "Key" ] };
                ];
              from_ = [ ("References", "r"); ("References", "s") ];
              where = pred 2;
            }
          in
          let index = Query_fuzz.random_index prng in
          let src =
            match Oqf.Execute.make_source Bibtex_schema.view text ~index with
            | Ok s -> s
            | Error e -> Alcotest.fail e
          in
          let indexed =
            match Oqf.Execute.run src q with
            | Ok r -> r.Oqf.Execute.rows
            | Error e ->
                Alcotest.failf "case %d (%s): %s" i (Odb.Query.to_string q) e
          in
          let baseline =
            match Oqf.Execute.run_baseline Bibtex_schema.view text q with
            | Ok (rows, _) -> rows
            | Error e -> Alcotest.fail e
          in
          if indexed <> baseline then
            Alcotest.failf "case %d: rows differ for %s under {%s}" i
              (Odb.Query.to_string q)
              (String.concat "," index)
        done);
    Alcotest.test_case "fuzz: advised index sets give exact plans" `Slow
      (fun () ->
        let text = bibtex_text 15 in
        let prng = Stdx.Prng.create 2718 in
        for i = 1 to 60 do
          (* advisor exactness is promised for simple positive path
             selections (§7 considers SELECT-FROM-WHERE r.p = w) *)
          let rp =
            {
              Odb.Query.var = "r";
              path = Odb.Path.of_strings (Stdx.Prng.choose prng Query_fuzz.paths);
            }
          in
          let q =
            {
              Odb.Query.select = [ Odb.Query.var "r" ];
              from_ = [ ("References", "r") ];
              where = Odb.Query.Eq_const (rp, Stdx.Prng.choose prng Query_fuzz.words);
            }
          in
          match Oqf.Advisor.required_indices Bibtex_schema.view q with
          | Error e -> Alcotest.failf "case %d: advisor failed: %s" i e
          | Ok names -> begin
              let src =
                match
                  Oqf.Execute.make_source Bibtex_schema.view text ~index:names
                with
                | Ok s -> s
                | Error e -> Alcotest.fail e
              in
              match Oqf.Execute.run src q with
              | Ok r ->
                  if not r.Oqf.Execute.plan.Oqf.Plan.exact then
                    Alcotest.failf "case %d: advised {%s} not exact for %s" i
                      (String.concat "," names)
                      (Odb.Query.to_string q)
              | Error e -> Alcotest.failf "case %d: %s" i e
            end
        done);
  ]

let join_tests =
  [
    Alcotest.test_case "join assist shrinks candidates and stays correct"
      `Quick
      (fun () ->
        let text = bibtex_text 60 in
        let q_text =
          {|SELECT r FROM References r, References s
            WHERE r.Editors.Name.Last_Name = s.Authors.Name.Last_Name
            AND r.Year = "1982"|}
        in
        let r = check_equiv Bibtex_schema.view text q_text in
        Alcotest.(check bool) "assisted" true r.Oqf.Execute.join_assisted;
        Alcotest.(check bool) "fewer candidates than two full extents" true
          (r.Oqf.Execute.candidates_count < 120));
    Alcotest.test_case "join assist under partial indexing stays correct"
      `Quick
      (fun () ->
        let text = bibtex_text 40 in
        ignore
          (check_equiv
             ~index:(Some [ "Reference"; "Name"; "Last_Name" ])
             Bibtex_schema.view text
             {|SELECT r FROM References r, References s
               WHERE r.Editors.Name.Last_Name = s.Authors.Name.Last_Name|}));
    Alcotest.test_case "NOT over another variable keeps all candidates"
      `Quick
      (fun () ->
        (* regression: NOT s.… must not empty r's candidate set *)
        let text = bibtex_text 12 in
        ignore
          (check_equiv Bibtex_schema.view text
             {|SELECT r.Key FROM References r, References s
               WHERE r.Editors.Name.Last_Name = s.Authors.Name.Last_Name
               AND NOT s.Year = "1982"|});
        ignore
          (check_equiv Bibtex_schema.view text
             {|SELECT r.Key FROM References r, References s
               WHERE NOT (r.Year = "1982" AND s.Year = "1994")|}));
    Alcotest.test_case "cites join across entries" `Quick (fun () ->
        let text = bibtex_text 30 in
        let r =
          check_equiv Bibtex_schema.view text
            {|SELECT s.Key FROM References r, References s
              WHERE r.Cites.Cite = s.Key AND r.Authors.Name.Last_Name = "Chang"|}
        in
        Alcotest.(check bool) "assisted" true r.Oqf.Execute.join_assisted);
  ]

let corpus_tests =
  [
    Alcotest.test_case "corpus merges answers across files" `Quick (fun () ->
        let file seed n =
          Pat.Text.of_string
            (Workload.Bibtex_gen.generate
               { (Workload.Bibtex_gen.with_size n) with seed })
        in
        let files =
          [ ("a.bib", file 1 15); ("b.bib", file 2 10); ("c.bib", file 3 5) ]
        in
        let corpus =
          match Oqf.Corpus.make_full Bibtex_schema.view files with
          | Ok c -> c
          | Error e -> Alcotest.fail e
        in
        Alcotest.(check (list string))
          "files" [ "a.bib"; "b.bib"; "c.bib" ]
          (Oqf.Corpus.files corpus);
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        match Oqf.Corpus.run corpus q with
        | Error e -> Alcotest.fail e
        | Ok out ->
            (* per-file answers must match per-file baselines *)
            let expected =
              List.concat_map
                (fun (name, text) ->
                  match Oqf.Execute.run_baseline Bibtex_schema.view text q with
                  | Ok (rows, _) -> List.map (fun row -> (name, row)) rows
                  | Error e -> Alcotest.fail e)
                files
            in
            Alcotest.(check int)
              "row count" (List.length expected) (List.length out.Oqf.Corpus.rows);
            Alcotest.(check bool) "tagged rows agree" true
              (List.for_all2
                 (fun (f1, r1) (f2, r2) ->
                   f1 = f2 && List.equal Odb.Value.equal r1 r2)
                 expected out.Oqf.Corpus.rows));
    Alcotest.test_case "corpus reports the failing file" `Quick (fun () ->
        match
          Oqf.Corpus.make_full Bibtex_schema.view
            [
              ("good.bib", Pat.Text.of_string Bibtex_schema.sample);
              ("bad.bib", Pat.Text.of_string "not a bibliography");
            ]
        with
        | Error e ->
            Alcotest.(check bool) "names the file" true
              (String.length e > 8 && String.sub e 0 8 = "bad.bib:")
        | Ok _ -> Alcotest.fail "should fail");
  ]

let advisor_tests =
  [
    Alcotest.test_case "advisor covers the paper's query" `Quick (fun () ->
        match
          Oqf.Advisor.required_indices Bibtex_schema.view
            (Odb.Query_parser.parse_exn
               {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|})
        with
        | Ok names ->
            (* must contain the expression names *)
            List.iter
              (fun n ->
                Alcotest.(check bool) (n ^ " present") true (List.mem n names))
              [ "Reference"; "Authors"; "Last_Name" ]
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "advised set yields an exact plan" `Quick (fun () ->
        let text = bibtex_text 15 in
        let queries =
          [
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
            {|SELECT r FROM References r WHERE r.Year = "1982"|};
            {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|};
          ]
        in
        List.iter
          (fun q_text ->
            let q = Odb.Query_parser.parse_exn q_text in
            match Oqf.Advisor.required_indices Bibtex_schema.view q with
            | Error e -> Alcotest.fail e
            | Ok names -> begin
                let src =
                  match
                    Oqf.Execute.make_source Bibtex_schema.view text ~index:names
                  with
                  | Ok s -> s
                  | Error e -> Alcotest.fail e
                in
                match Oqf.Execute.run src q with
                | Ok r ->
                    Alcotest.(check bool)
                      ("exact with advised set: " ^ q_text)
                      true r.Oqf.Execute.plan.Oqf.Plan.exact
                | Error e -> Alcotest.fail e
              end)
          queries);
    Alcotest.test_case "explain mentions the optimized expression" `Quick
      (fun () ->
        match
          Oqf.Advisor.explain Bibtex_schema.view
            ~index:(Grammar.indexable Bibtex_schema.grammar)
            (Odb.Query_parser.parse_exn
               {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|})
        with
        | Ok text ->
            Alcotest.(check bool) "has optimized line" true
              (let needle = "optimized" in
               let rec find i =
                 i + String.length needle <= String.length text
                 && (String.sub text i (String.length needle) = needle
                    || find (i + 1))
               in
               find 0)
        | Error e -> Alcotest.fail e);
  ]

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE at the query level: the per-node annotations of an
   explained run must account for exactly the index work the outcome's
   stats charge to the query. *)

let explain_tests =
  [
    Alcotest.test_case "annotated sums equal the query's stats totals" `Quick
      (fun () ->
        let text = bibtex_text 40 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        List.iter
          (fun q_text ->
            let q = Odb.Query_parser.parse_exn q_text in
            match Oqf.Execute.run ~explain:true src q with
            | Error e -> Alcotest.fail e
            | Ok r ->
                let sum f =
                  List.fold_left
                    (fun acc (_, a) -> acc + f a)
                    0 r.Oqf.Execute.annotations
                in
                Alcotest.(check bool)
                  ("has annotations: " ^ q_text) true
                  (r.Oqf.Execute.annotations <> []);
                Alcotest.(check int)
                  ("index_ops accounted: " ^ q_text)
                  r.Oqf.Execute.stats.Stdx.Stats.index_ops
                  (sum Ralg.Annot.total_ops);
                Alcotest.(check int)
                  ("region_comparisons accounted: " ^ q_text)
                  r.Oqf.Execute.stats.Stdx.Stats.region_comparisons
                  (sum Ralg.Annot.total_cmps))
          [
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
            {|SELECT r FROM References r WHERE r.*X.Last_Name = "Chang"|};
            {|SELECT r.Key FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
          ]);
    Alcotest.test_case "explain does not change the rows" `Quick (fun () ->
        let text = bibtex_text 30 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        match (Oqf.Execute.run src q, Oqf.Execute.run ~explain:true src q) with
        | Ok plainr, Ok explained ->
            Alcotest.check rows_t "same rows" plainr.Oqf.Execute.rows
              explained.Oqf.Execute.rows
        | Error e, _ | _, Error e -> Alcotest.fail e);
    Alcotest.test_case "optimizer rewrites are reported" `Quick (fun () ->
        let text = bibtex_text 10 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        match
          (Oqf.Execute.run src q, Oqf.Execute.run ~optimize:false src q)
        with
        | Ok optimized, Ok naive ->
            Alcotest.(check bool)
              "optimized run logs rewrites" true
              (optimized.Oqf.Execute.rewrites <> []);
            List.iter
              (fun (rw : Ralg.Optimizer.rewrite) ->
                Alcotest.(check bool)
                  "known rule" true
                  (List.mem rw.Ralg.Optimizer.rule
                     [ "weaken-direct"; "shorten" ]))
              optimized.Oqf.Execute.rewrites;
            Alcotest.(check (list (pair string string)))
              "naive run logs none" []
              (List.map
                 (fun (rw : Ralg.Optimizer.rewrite) ->
                   (rw.Ralg.Optimizer.rule, rw.Ralg.Optimizer.detail))
                 naive.Oqf.Execute.rewrites)
        | Error e, _ | _, Error e -> Alcotest.fail e);
    Alcotest.test_case "explain renderer mentions every section" `Quick
      (fun () ->
        let text = bibtex_text 10 in
        let src =
          match Oqf.Execute.make_source_full Bibtex_schema.view text with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|}
        in
        match Oqf.Execute.run ~explain:true src q with
        | Error e -> Alcotest.fail e
        | Ok r ->
            let out =
              Format.asprintf "%a" (Oqf.Explain.pp ~source:src ~show_times:false) r
            in
            let has needle =
              let nh = String.length out and nn = String.length needle in
              let rec go i =
                if i + nn > nh then false
                else String.sub out i nn = needle || go (i + 1)
              in
              go 0
            in
            List.iter
              (fun needle ->
                if not (has needle) then
                  Alcotest.failf "explain output misses %S:\n%s" needle out)
              [
                "rewrites:"; "analyze:"; "analyzed totals:"; "est weighted=";
                "stats:"; "self: ops=";
              ]);
  ]

let suites =
  [
    ("oqf.equivalence", equivalence_tests);
    ("oqf.plans", plan_tests);
    ("oqf.fuzz", fuzz_tests);
    ("oqf.join", join_tests);
    ("oqf.corpus", corpus_tests);
    ("oqf.advisor", advisor_tests);
    ("oqf.explain", explain_tests);
  ]
