(* The serve subsystem: protocol codec, admission control, the
   streaming driver path, and a live daemon over a Unix-domain
   socket. *)

let or_fail = function Ok x -> x | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* jsonx                                                               *)

let jsonx_tests =
  let module J = Obs.Jsonx in
  [
    Alcotest.test_case "print/parse round-trip" `Quick (fun () ->
        let v =
          J.Obj
            [
              ("id", J.Num 7.);
              ("op", J.Str "query");
              ("nested", J.Arr [ J.Null; J.Bool true; J.Num 2.5 ]);
              ("text", J.Str "a \"b\"\n\tc\\d");
            ]
        in
        let s = J.to_string v in
        Alcotest.(check bool) "single line" false (String.contains s '\n');
        match J.parse s with
        | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "escapes decode" `Quick (fun () ->
        match J.parse {|"A\n\"\\"|} with
        | Ok (J.Str s) -> Alcotest.(check string) "decoded" "A\n\"\\" s
        | Ok _ -> Alcotest.fail "expected a string"
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "errors carry an offset" `Quick (fun () ->
        (match J.parse "{\"a\": }" with
        | Error e ->
            Alcotest.(check bool) ("offset in: " ^ e) true
              (Astring.String.is_infix ~affix:"at byte" e)
        | Ok _ -> Alcotest.fail "expected parse error");
        match J.parse "1 trailing" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "trailing garbage accepted");
    Alcotest.test_case "integral numbers print without a point" `Quick
      (fun () ->
        Alcotest.(check string) "int" "42" (J.to_string (J.Num 42.));
        Alcotest.(check string) "float" "2.5" (J.to_string (J.Num 2.5)));
  ]

(* ------------------------------------------------------------------ *)
(* protocol                                                            *)

let protocol_tests =
  let module P = Serve.Protocol in
  let roundtrip_request id req =
    match P.parse_request (P.render_request id req) with
    | Ok (id', req') ->
        Alcotest.(check int) "id" id id';
        Alcotest.(check bool) "request round-trips" true (req = req')
    | Error (_, e) -> Alcotest.fail e
  in
  let roundtrip_response resp =
    match P.parse_response (P.render_response resp) with
    | Ok resp' ->
        Alcotest.(check bool) "response round-trips" true (resp = resp')
    | Error e -> Alcotest.fail e
  in
  [
    Alcotest.test_case "request codec round-trips" `Quick (fun () ->
        roundtrip_request 1 P.Ping;
        roundtrip_request 2 P.Stats;
        roundtrip_request 3 P.Shutdown;
        roundtrip_request 4
          (P.Query
             {
               schema = "log";
               text = {|SELECT e FROM Entries e WHERE e.Level = "ERROR"|};
               timeout_ms = Some 250.;
               fail_policy = Some Exec.Driver.Degrade;
               force = true;
               workload = "errors-dashboard";
             });
        roundtrip_request 5
          (P.Rexpr
             {
               schema = "bibtex";
               text = {|sigma["Chang"](Last_Name)|};
               timeout_ms = None;
               fail_policy = None;
               force = false;
               workload = "";
             }));
    Alcotest.test_case "response codec round-trips" `Quick (fun () ->
        roundtrip_response (P.Pong { id = 1 });
        roundtrip_response (P.Bye { id = 9 });
        roundtrip_response
          (P.Row { id = 2; file = "a.log"; values = [ "x"; "y | z" ] });
        roundtrip_response (P.Region { id = 3; file = "b.log"; start = 4; stop = 17 });
        roundtrip_response
          (P.Done
             {
               id = 2;
               rows = 7;
               cached = true;
               degraded = [ ("c.log", "naive-fallback", "injected fault") ];
               trace = "c1-r2";
             });
        roundtrip_response (P.Overloaded { id = 5; active = 8; queued = 16 });
        roundtrip_response (P.Failed { id = 6; message = "boom \"quoted\"" }));
    Alcotest.test_case "parse errors name the problem, keep the id" `Quick
      (fun () ->
        (match P.parse_request "{not json" with
        | Error (0, _) -> ()
        | _ -> Alcotest.fail "expected id-0 parse error");
        (match P.parse_request {|{"id":12,"op":"frobnicate"}|} with
        | Error (12, e) ->
            Alcotest.(check bool) ("mentions op: " ^ e) true
              (Astring.String.is_infix ~affix:"frobnicate" e)
        | _ -> Alcotest.fail "expected id-12 error");
        (match P.parse_request {|{"id":3,"op":"query","schema":"log"}|} with
        | Error (3, e) ->
            Alcotest.(check bool) ("names the member: " ^ e) true
              (Astring.String.is_infix ~affix:"\"q\"" e)
        | _ -> Alcotest.fail "expected missing-member error");
        match
          P.parse_request
            {|{"id":4,"op":"query","schema":"log","q":"x","fail_policy":"yolo"}|}
        with
        | Error (4, _) -> ()
        | _ -> Alcotest.fail "expected bad fail_policy error");
    Alcotest.test_case "reader: framing, overflow, eof" `Quick (fun () ->
        let r, w = Unix.pipe () in
        (* the oversized line exceeds the pipe buffer: write from a
           thread so the writer can block while we read *)
        let writer =
          Thread.create
            (fun () ->
              let write s =
                let b = Bytes.of_string s in
                let n = Bytes.length b in
                let rec go off =
                  if off < n then go (off + Unix.write w b off (n - off))
                in
                go 0
              in
              write "{\"id\":1}\n";
              write (String.make (P.max_line + 10) 'x');
              write "\n{\"id\":2}\n";
              Unix.close w)
            ()
        in
        let reader = P.reader r in
        (match P.read_line reader with
        | `Line l -> Alcotest.(check string) "first line" "{\"id\":1}" l
        | _ -> Alcotest.fail "expected first line");
        (match P.read_line reader with
        | `Overflow -> ()
        | _ -> Alcotest.fail "expected overflow");
        (match P.read_line reader with
        | `Line l ->
            Alcotest.(check string) "line after overflow" "{\"id\":2}" l
        | _ -> Alcotest.fail "connection should survive overflow");
        (match P.read_line reader with
        | `Eof -> ()
        | _ -> Alcotest.fail "expected eof");
        Thread.join writer;
        Unix.close r);
  ]

(* ------------------------------------------------------------------ *)
(* admission                                                           *)

let admission_tests =
  [
    Alcotest.test_case "bounded admission rejects past the queue" `Quick
      (fun () ->
        let adm = Serve.Admission.make ~max_active:2 ~max_queue:0 in
        Alcotest.(check bool) "1st" true (Serve.Admission.acquire adm = `Admitted);
        Alcotest.(check bool) "2nd" true (Serve.Admission.acquire adm = `Admitted);
        (match Serve.Admission.acquire adm with
        | `Overloaded (active, queued) ->
            Alcotest.(check int) "active" 2 active;
            Alcotest.(check int) "queued" 0 queued
        | _ -> Alcotest.fail "expected overloaded");
        Serve.Admission.release adm;
        Alcotest.(check bool) "slot freed" true
          (Serve.Admission.acquire adm = `Admitted));
    Alcotest.test_case "queued waiter runs when a slot frees" `Quick (fun () ->
        let adm = Serve.Admission.make ~max_active:1 ~max_queue:1 in
        Alcotest.(check bool) "occupied" true
          (Serve.Admission.acquire adm = `Admitted);
        let got = Atomic.make (`Pending : [ `Pending | `Admitted | `Closed | `Overloaded of int * int ]) in
        let th =
          Thread.create
            (fun () ->
              Atomic.set got
                (Serve.Admission.acquire adm
                  :> [ `Pending | `Admitted | `Closed | `Overloaded of int * int ]))
            ()
        in
        Thread.delay 0.05;
        Alcotest.(check bool) "still waiting" true (Atomic.get got = `Pending);
        Serve.Admission.release adm;
        Thread.join th;
        Alcotest.(check bool) "admitted after release" true
          (Atomic.get got = `Admitted));
    Alcotest.test_case "close drains waiters with `Closed" `Quick (fun () ->
        let adm = Serve.Admission.make ~max_active:1 ~max_queue:4 in
        Alcotest.(check bool) "occupied" true
          (Serve.Admission.acquire adm = `Admitted);
        let got = Atomic.make (`Pending : [ `Pending | `Admitted | `Closed | `Overloaded of int * int ]) in
        let th =
          Thread.create
            (fun () ->
              Atomic.set got
                (Serve.Admission.acquire adm
                  :> [ `Pending | `Admitted | `Closed | `Overloaded of int * int ]))
            ()
        in
        Thread.delay 0.05;
        Serve.Admission.close adm;
        Thread.join th;
        Alcotest.(check bool) "waiter closed" true (Atomic.get got = `Closed);
        Alcotest.(check bool) "new arrivals closed" true
          (Serve.Admission.acquire adm = `Closed));
  ]

(* ------------------------------------------------------------------ *)
(* the streaming driver path                                           *)

let bibtex_corpus sizes =
  let files =
    List.mapi
      (fun i n ->
        ( Printf.sprintf "refs%d.bib" i,
          Pat.Text.of_string
            (Workload.Bibtex_gen.generate
               { (Workload.Bibtex_gen.with_size n) with seed = 1000 + i }) ))
      sizes
  in
  or_fail (Oqf.Corpus.make_full Fschema.Bibtex_schema.view files)

let log_corpus sizes =
  let files =
    List.mapi
      (fun i n ->
        ( Printf.sprintf "node%d.log" i,
          Pat.Text.of_string
            (Workload.Log_gen.generate
               { (Workload.Log_gen.with_size n) with seed = 2000 + i }) ))
      sizes
  in
  or_fail (Oqf.Corpus.make_full Fschema.Log_schema.view files)

let bibtex_queries =
  [
    {|SELECT r FROM References r WHERE r.Authors.Name.Last_Name = "Chang"|};
    {|SELECT r.Key FROM References r|};
    {|SELECT r FROM References r WHERE r.Abstract CONTAINS "derivation"|};
  ]

let log_queries =
  [
    {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|};
    {|SELECT e FROM Entries e WHERE e.Level = "WARN"|};
  ]

let rows_equal =
  List.equal (fun (f1, r1) (f2, r2) ->
      String.equal f1 f2 && List.equal Odb.Value.equal r1 r2)

let run_streaming_collect ?cache ?timeout_ms ?fail_policy ~pool corpus q =
  let blocks = ref [] in
  let result =
    Exec.Driver.run_streaming ?cache ?timeout_ms ?fail_policy ~pool
      ~on_rows:(fun ~file rows -> blocks := (file, rows) :: !blocks)
      corpus q
  in
  (result, List.rev !blocks)

let streaming_matches_parallel corpus q_text jobs =
  let q = Odb.Query_parser.parse_exn q_text in
  let reference = or_fail (Exec.Driver.run_parallel ~jobs corpus q) in
  Exec.Pool.with_pool ~jobs (fun pool ->
      let result, blocks = run_streaming_collect ~pool corpus q in
      let outcome = or_fail result in
      Alcotest.(check bool)
        (Printf.sprintf "rows == run_parallel at jobs=%d: %s" jobs q_text)
        true
        (rows_equal reference.Exec.Driver.rows outcome.Exec.Driver.rows);
      (* the streamed blocks concatenate to exactly the outcome rows,
         in corpus order *)
      let streamed =
        List.concat_map
          (fun (file, rows) -> List.map (fun r -> (file, r)) rows)
          blocks
      in
      Alcotest.(check bool) "streamed blocks == outcome rows" true
        (rows_equal streamed outcome.Exec.Driver.rows);
      List.iter
        (fun (_, rows) ->
          Alcotest.(check bool) "no empty blocks" true (rows <> []))
        blocks)

let streaming_qcheck =
  QCheck.Test.make ~count:20
    ~name:"run_streaming == run_parallel (lazy phase 1, any shard count)"
    QCheck.(
      quad (int_range 1 4) (int_range 3 14) (int_range 1 8)
        (pair bool (int_range 0 9)))
    (fun (n_files, size, jobs, (use_log, q_pick)) ->
      let sizes = List.init n_files (fun i -> size + (i * 3)) in
      let corpus, queries =
        if use_log then (log_corpus sizes, log_queries)
        else (bibtex_corpus sizes, bibtex_queries)
      in
      let q_text = List.nth queries (q_pick mod List.length queries) in
      let q = Odb.Query_parser.parse_exn q_text in
      let reference =
        match Exec.Driver.run_parallel ~jobs corpus q with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "parallel failed: %s" e
      in
      Exec.Pool.with_pool ~jobs (fun pool ->
          let result, _ = run_streaming_collect ~pool corpus q in
          match result with
          | Error e -> QCheck.Test.fail_reportf "streaming failed: %s" e
          | Ok outcome ->
              if
                not
                  (rows_equal reference.Exec.Driver.rows
                     outcome.Exec.Driver.rows)
              then
                QCheck.Test.fail_reportf
                  "rows differ (files=%d size=%d jobs=%d log=%b q=%s)" n_files
                  size jobs use_log q_text;
              true))

let streaming_tests =
  [
    Alcotest.test_case "streamed rows == run_parallel (battery)" `Quick
      (fun () ->
        let corpus = bibtex_corpus [ 12; 4; 8 ] in
        List.iter
          (fun q -> streaming_matches_parallel corpus q 2)
          bibtex_queries;
        let corpus = log_corpus [ 20; 10; 5 ] in
        List.iter (fun q -> streaming_matches_parallel corpus q 3) log_queries);
    QCheck_alcotest.to_alcotest streaming_qcheck;
    Alcotest.test_case "cache hit replays per-file blocks" `Quick (fun () ->
        let corpus = log_corpus [ 15; 10 ] in
        let q =
          Odb.Query_parser.parse_exn
            {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}
        in
        let cache = Exec.Rcache.create () in
        Exec.Pool.with_pool ~jobs:2 (fun pool ->
            let r1, blocks1 = run_streaming_collect ~cache ~pool corpus q in
            let o1 = or_fail r1 in
            Alcotest.(check bool) "first run not cached" false
              o1.Exec.Driver.from_cache;
            let r2, blocks2 = run_streaming_collect ~cache ~pool corpus q in
            let o2 = or_fail r2 in
            Alcotest.(check bool) "second run cached" true
              o2.Exec.Driver.from_cache;
            Alcotest.(check bool) "same rows" true
              (rows_equal o1.Exec.Driver.rows o2.Exec.Driver.rows);
            Alcotest.(check bool) "same blocks replayed" true
              (blocks1 = blocks2)));
    Alcotest.test_case "deadline expiry fails the request, not the pool"
      `Quick (fun () ->
        let corpus = log_corpus [ 200 ] in
        let q =
          Odb.Query_parser.parse_exn {|SELECT e FROM Entries e|}
        in
        Exec.Pool.with_pool ~jobs:1 (fun pool ->
            (match
               run_streaming_collect ~timeout_ms:0.0001
                 ~fail_policy:Exec.Driver.Fail_fast ~pool corpus q
             with
            | (Ok _, _) -> Alcotest.fail "expected a timeout"
            | (Error e, _) ->
                Alcotest.(check bool)
                  ("timeout surfaced: " ^ e)
                  true
                  (Astring.String.is_infix ~affix:"timed out" e));
            (* the pool survives and serves the next request *)
            let r, _ = run_streaming_collect ~pool corpus q in
            let o = or_fail r in
            Alcotest.(check bool) "pool still works" true
              (List.length o.Exec.Driver.rows > 0)));
  ]

(* ------------------------------------------------------------------ *)
(* the daemon over a live socket                                       *)

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "oqfserve-%d-%d" (Unix.getpid ()) !tmp_counter)
  in
  Unix.mkdir dir 0o755;
  dir

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* a disk catalog of two log files, the daemon's corpus *)
let setup_catalog dir =
  let log1 =
    Workload.Log_gen.generate { (Workload.Log_gen.with_size 20) with seed = 41 }
  in
  let log2 =
    Workload.Log_gen.generate { (Workload.Log_gen.with_size 12) with seed = 42 }
  in
  write_file (Filename.concat dir "a.log") log1;
  write_file (Filename.concat dir "b.log") log2;
  let cat = or_fail (Oqf_catalog.Catalog.init (Filename.concat dir "cat")) in
  let (_ : Oqf_catalog.Catalog.entry) =
    or_fail
      (Oqf_catalog.Catalog.add cat ~schema:"log" (Filename.concat dir "a.log"))
  in
  let (_ : Oqf_catalog.Catalog.entry) =
    or_fail
      (Oqf_catalog.Catalog.add cat ~schema:"log" (Filename.concat dir "b.log"))
  in
  cat

(* OQF_SERVE_WATCH=1 replays the whole suite against a daemon running
   its background watcher (CI does this once under injected faults):
   every test must behave identically whether staleness is caught by
   the per-request pass or the watcher. *)
let watch_mode =
  match Sys.getenv_opt "OQF_SERVE_WATCH" with
  | Some ("1" | "true") -> true
  | _ -> false

let with_server ?(max_active = 4) ?(max_queue = 8) ?(jobs = 2) ?http_port f =
  let dir = fresh_dir () in
  let (_ : Oqf_catalog.Catalog.t) = setup_catalog dir in
  let config =
    {
      (Serve.Server.default_config
         ~catalog_dir:(Filename.concat dir "cat")
         ~socket_path:(Filename.concat dir "oqf.sock"))
      with
      Serve.Server.max_active;
      max_queue;
      jobs;
      http_port;
      watch = watch_mode;
      watch_interval_ms = 50.;
    }
  in
  let server = or_fail (Serve.Server.start config) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.request_shutdown server;
      Serve.Server.wait server)
    (fun () -> f config dir)

let connect config =
  or_fail (Serve.Client.connect ~wait_ms:2000. config.Serve.Server.socket_path)

let query_text = {|SELECT e.Service FROM Entries e WHERE e.Level = "ERROR"|}

let query_req ?timeout_ms ?fail_policy ?(force = false) ?(workload = "") text =
  Serve.Protocol.Query
    { schema = "log"; text; timeout_ms; fail_policy; force; workload }

let collect_rows events =
  List.filter_map
    (function
      | Serve.Protocol.Row { file; values; _ } -> Some (file, values)
      | _ -> None)
    events

let terminal_of conn req = or_fail (Serve.Client.stream conn req ~on_event:ignore)

let server_tests =
  [
    Alcotest.test_case "ping, query, cached repeat over the socket" `Quick
      (fun () ->
        with_server (fun config _dir ->
            let c = connect config in
            (match terminal_of c Serve.Protocol.Ping with
            | Serve.Protocol.Pong _ -> ()
            | _ -> Alcotest.fail "expected pong");
            let events = or_fail (Serve.Client.request c (query_req query_text)) in
            let rows = collect_rows events in
            (match List.rev events with
            | Serve.Protocol.Done { cached; rows = n; _ } :: _ ->
                Alcotest.(check bool) "first run not cached" false cached;
                Alcotest.(check int) "row count" (List.length rows) n
            | _ -> Alcotest.fail "expected done");
            (* repeat hits the daemon's result cache, byte-identical *)
            let events' =
              or_fail (Serve.Client.request c (query_req query_text))
            in
            (match List.rev events' with
            | Serve.Protocol.Done { cached; _ } :: _ ->
                Alcotest.(check bool) "repeat cached" true cached
            | _ -> Alcotest.fail "expected done");
            Alcotest.(check bool) "same rows from cache" true
              (collect_rows events' = rows);
            Serve.Client.close c));
    Alcotest.test_case "diagnostics for a bad query; connection survives"
      `Quick (fun () ->
        with_server (fun config _dir ->
            let c = connect config in
            (match terminal_of c (query_req "SELECT FROM nonsense") with
            | Serve.Protocol.Diagnostics { diagnostics; _ } ->
                Alcotest.(check bool) "has OQF000" true
                  (List.exists
                     (fun d ->
                       match Obs.Jsonx.member "code" d with
                       | Some (Obs.Jsonx.Str "OQF000") -> true
                       | _ -> false)
                     diagnostics)
            | _ -> Alcotest.fail "expected diagnostics");
            (match terminal_of c Serve.Protocol.Ping with
            | Serve.Protocol.Pong _ -> ()
            | _ -> Alcotest.fail "connection should survive diagnostics");
            Serve.Client.close c));
    Alcotest.test_case "oversized request line; connection survives" `Quick
      (fun () ->
        with_server (fun config _dir ->
            let c = connect config in
            let fd =
              Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
            in
            Unix.connect fd (Unix.ADDR_UNIX config.Serve.Server.socket_path);
            let big = String.make (Serve.Protocol.max_line + 100) 'y' ^ "\n" in
            ignore (Unix.write_substring fd big 0 (String.length big));
            let ping = {|{"id":1,"op":"ping"}|} ^ "\n" in
            ignore (Unix.write_substring fd ping 0 (String.length ping));
            let reader = Serve.Protocol.reader fd in
            (match Serve.Protocol.read_line reader with
            | `Line l -> (
                match Serve.Protocol.parse_response l with
                | Ok (Serve.Protocol.Failed { message; _ }) ->
                    Alcotest.(check bool) ("names the bound: " ^ message) true
                      (Astring.String.is_infix ~affix:"exceeds" message)
                | _ -> Alcotest.fail "expected error event")
            | _ -> Alcotest.fail "expected a response");
            (match Serve.Protocol.read_line reader with
            | `Line l -> (
                match Serve.Protocol.parse_response l with
                | Ok (Serve.Protocol.Pong _) -> ()
                | _ -> Alcotest.fail "expected pong after oversize")
            | _ -> Alcotest.fail "connection should survive oversize");
            Unix.close fd;
            Serve.Client.close c));
    Alcotest.test_case "concurrent clients get byte-identical rows" `Quick
      (fun () ->
        with_server ~max_active:8 ~max_queue:16 (fun config _dir ->
            let reference =
              let c = connect config in
              let events =
                or_fail (Serve.Client.request c (query_req query_text))
              in
              Serve.Client.close c;
              collect_rows events
            in
            Alcotest.(check bool) "reference non-empty" true (reference <> []);
            let results = Array.make 8 [] in
            let threads =
              List.init 8 (fun i ->
                  Thread.create
                    (fun () ->
                      let c = connect config in
                      let events =
                        or_fail
                          (Serve.Client.request c (query_req query_text))
                      in
                      results.(i) <- collect_rows events;
                      Serve.Client.close c)
                    ())
            in
            List.iter Thread.join threads;
            Array.iteri
              (fun i rows ->
                Alcotest.(check bool)
                  (Printf.sprintf "client %d matches" i)
                  true (rows = reference))
              results));
    Alcotest.test_case "stale catalog entries refresh per request" `Quick
      (fun () ->
        with_server (fun config dir ->
            let c = connect config in
            let count_all () =
              match
                terminal_of c
                  (query_req {|SELECT e FROM Entries e|})
              with
              | Serve.Protocol.Done { rows; _ } -> rows
              | _ -> Alcotest.fail "expected done"
            in
            let before = count_all () in
            (* regrow a.log with the same seed and a larger size: the
               generator appends byte-for-byte, so this is the paper's
               growing-log scenario *)
            write_file
              (Filename.concat dir "a.log")
              (Workload.Log_gen.generate
                 { (Workload.Log_gen.with_size 40) with seed = 41 });
            (* per-request mode ingests on the very next request; the
               background watcher is asynchronous, so give it a few
               polling intervals before asserting *)
            let after =
              if not watch_mode then count_all ()
              else begin
                let deadline = Unix.gettimeofday () +. 5. in
                let rec poll () =
                  let n = count_all () in
                  if n > before || Unix.gettimeofday () > deadline then n
                  else begin
                    Thread.delay 0.02;
                    poll ()
                  end
                in
                poll ()
              end
            in
            Alcotest.(check bool)
              (Printf.sprintf "grew %d -> %d without an explicit refresh"
                 before after)
              true (after > before);
            Serve.Client.close c));
    Alcotest.test_case "daemon survives injected transient faults" `Quick
      (fun () ->
        with_server (fun config _dir ->
            Stdx.Fault.set (Some (or_fail (Stdx.Fault.parse "transient:0.05,seed:42")));
            Fun.protect
              ~finally:(fun () -> Stdx.Fault.set None)
              (fun () ->
                let c = connect config in
                for _ = 1 to 10 do
                  match
                    terminal_of c
                      (query_req ~fail_policy:Exec.Driver.Degrade query_text)
                  with
                  | Serve.Protocol.Done _ -> ()
                  | Serve.Protocol.Failed { message; _ } ->
                      Alcotest.failf "request failed under faults: %s" message
                  | _ -> Alcotest.fail "expected done"
                done;
                (match terminal_of c Serve.Protocol.Ping with
                | Serve.Protocol.Pong _ -> ()
                | _ -> Alcotest.fail "connection dropped under faults");
                Serve.Client.close c)));
    Alcotest.test_case "shutdown op drains and closes" `Quick (fun () ->
        with_server (fun config _dir ->
            let c = connect config in
            (match terminal_of c Serve.Protocol.Shutdown with
            | Serve.Protocol.Bye _ -> ()
            | _ -> Alcotest.fail "expected bye");
            Serve.Client.close c));
  ]

(* ---------------- telemetry: /metrics, qlog, trace ids ---------------- *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> assert false)

let done_trace events =
  match
    List.find_opt
      (function Serve.Protocol.Done _ -> true | _ -> false)
      events
  with
  | Some (Serve.Protocol.Done { trace; _ }) -> trace
  | _ -> Alcotest.fail "no done event"

let telemetry_tests =
  [
    Alcotest.test_case "/metrics serves a valid exposition page" `Quick
      (fun () ->
        with_server ~http_port:(free_port ()) (fun config _dir ->
            let port = Option.get config.Serve.Server.http_port in
            (* one real request so the serve series are non-empty *)
            let c = connect config in
            ignore (or_fail (Serve.Client.request c (query_req query_text)));
            Serve.Client.close c;
            let status, body =
              or_fail (Serve.Client.http_get ~port "/metrics")
            in
            Alcotest.(check int) "200" 200 status;
            (match Obs.Expo.validate body with
            | Ok () -> ()
            | Error e -> Alcotest.fail ("invalid exposition: " ^ e));
            List.iter
              (fun needle ->
                Alcotest.(check bool) ("page has " ^ needle) true
                  (Astring.String.is_infix ~affix:needle body))
              [
                "oqf_serve_requests"; "oqf_serve_request_latency_ms";
                "# TYPE";
              ]));
    Alcotest.test_case
      "one trace id correlates the reply, the qlog and the slow log" `Quick
      (fun () ->
        let qpath = Filename.concat (fresh_dir ()) "daemon.qlog" in
        (* slow threshold 0: every record also lands in the slow log *)
        let log = or_fail (Obs.Qlog.open_log ~slow_ms:0.0 qpath) in
        let span_path = qpath ^ ".spans" in
        let span_oc = open_out span_path in
        Obs.Trace.set_sink (Some (Obs.Sink.jsonl span_oc));
        Obs.Qlog.install (Some log);
        let the_trace = ref "" in
        Fun.protect
          ~finally:(fun () ->
            Obs.Qlog.install None;
            Obs.Trace.set_sink None;
            close_out_noerr span_oc;
            Obs.Qlog.close log)
          (fun () ->
            with_server (fun config _dir ->
                let c = connect config in
                let events =
                  or_fail
                    (Serve.Client.request c
                       (query_req ~workload:"errors-dashboard" query_text))
                in
                Serve.Client.close c;
                let trace = done_trace events in
                the_trace := trace;
                Alcotest.(check bool) "reply carries a trace id" true
                  (trace <> "");
                (* the daemon wrote the qlog record before answering,
                   so it is durable and visible already *)
                let records, _ =
                  or_fail
                    (Obs.Qlog.fold qpath ~init:[] ~f:(fun acc r -> r :: acc))
                in
                let r =
                  match
                    List.find_opt
                      (fun r -> r.Obs.Qlog.trace_id = trace)
                      records
                  with
                  | Some r -> r
                  | None -> Alcotest.fail "no qlog record with the reply's id"
                in
                Alcotest.(check string)
                  "workload label" "errors-dashboard" r.Obs.Qlog.workload;
                Alcotest.(check string) "outcome" "ok" r.outcome;
                let slow_traces, _ =
                  or_fail
                    (Obs.Qlog.fold (Obs.Qlog.slow_path log) ~init:[]
                       ~f:(fun acc r -> r.Obs.Qlog.trace_id :: acc))
                in
                Alcotest.(check bool) "slow log shares the id" true
                  (List.mem trace slow_traces));
            (* the span stream tagged serve.request with the same id *)
            Obs.Trace.set_sink None;
            flush span_oc;
            let spans =
              let ic = open_in span_path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () ->
                  let rec go acc =
                    match input_line ic with
                    | l -> go (acc ^ l ^ "\n")
                    | exception End_of_file -> acc
                  in
                  go "")
            in
            Alcotest.(check bool) "serve.request span present" true
              (Astring.String.is_infix ~affix:"serve.request" spans);
            Alcotest.(check bool) "span attrs carry the same id" true
              (Astring.String.is_infix ~affix:!the_trace spans)));
  ]

let suites =
  [
    ("serve.jsonx", jsonx_tests);
    ("serve.protocol", protocol_tests);
    ("serve.admission", admission_tests);
    ("serve.streaming", streaming_tests);
    ("serve.server", server_tests);
    ("serve.telemetry", telemetry_tests);
  ]
