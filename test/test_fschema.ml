(* Tests for structuring schemas: grammar validation, the parser
   engine, database-image construction, RIG derivation, and the three
   shipped schemas. *)

open Fschema

let parse_ok g s =
  match Parser_engine.parse g (Pat.Text.of_string s) with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse failed: %a" Parser_engine.pp_error e

let grammar_tests =
  [
    Alcotest.test_case "bare non-terminal rejected" `Quick (fun () ->
        match
          Grammar.create ~root:"A"
            [
              { Grammar.lhs = "A"; rhs = Grammar.Seq [ Grammar.Nonterm "B" ] };
              { Grammar.lhs = "B"; rhs = Grammar.Token Grammar.Word };
            ]
        with
        | Error msg ->
            Alcotest.(check bool) "mentions delimiters" true
              (String.length msg > 0)
        | Ok _ -> Alcotest.fail "should be rejected");
    Alcotest.test_case "bare star rejected" `Quick (fun () ->
        match
          Grammar.create ~root:"A"
            [
              {
                Grammar.lhs = "A";
                rhs = Grammar.Seq [ Grammar.Star { nonterm = "B"; separator = None } ];
              };
              { Grammar.lhs = "B"; rhs = Grammar.Token Grammar.Word };
            ]
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should be rejected");
    Alcotest.test_case "undefined non-terminal rejected" `Quick (fun () ->
        match
          Grammar.create ~root:"A"
            [ { Grammar.lhs = "A"; rhs = Grammar.Seq [ Grammar.Lit "x"; Grammar.Nonterm "Z" ] } ]
        with
        | Error msg -> Alcotest.(check string) "msg" "undefined non-terminal: Z" msg
        | Ok _ -> Alcotest.fail "should be rejected");
    Alcotest.test_case "duplicate non-terminal on one rhs rejected" `Quick
      (fun () ->
        match
          Grammar.create ~root:"A"
            [
              {
                Grammar.lhs = "A";
                rhs =
                  Grammar.Seq
                    [ Grammar.Lit "x"; Grammar.Nonterm "B"; Grammar.Nonterm "B" ];
              };
              { Grammar.lhs = "B"; rhs = Grammar.Token Grammar.Word };
            ]
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should be rejected");
    Alcotest.test_case "indexable excludes the root" `Quick (fun () ->
        Alcotest.(check bool)
          "no Ref_set" true
          (not (List.mem "Ref_set" (Grammar.indexable Bibtex_schema.grammar))));
    Alcotest.test_case "alternatives allowed" `Quick (fun () ->
        let g =
          Grammar.create_exn ~root:"A"
            [
              { Grammar.lhs = "A"; rhs = Grammar.Seq [ Grammar.Lit "n"; Grammar.Tok Grammar.Word ] };
              { Grammar.lhs = "A"; rhs = Grammar.Token Grammar.Word };
            ]
        in
        Alcotest.(check int) "two alternatives" 2 (List.length (Grammar.rules_of g "A")));
  ]

let engine_tests =
  [
    Alcotest.test_case "spans are strict and cover delimiters" `Quick
      (fun () ->
        let tree = parse_ok Bibtex_schema.grammar Bibtex_schema.sample in
        Alcotest.(check bool) "strict" true (Parse_tree.strictly_nested tree));
    Alcotest.test_case "token spans are trimmed" `Quick (fun () ->
        let g =
          Grammar.create_exn ~root:"A"
            [
              { Grammar.lhs = "A"; rhs = Grammar.Seq [ Grammar.Lit "<"; Grammar.Nonterm "B"; Grammar.Lit ">" ] };
              { Grammar.lhs = "B"; rhs = Grammar.Token (Grammar.Until [ '>' ]) };
            ]
        in
        let text = Pat.Text.of_string "<  hello world  >" in
        match Parser_engine.parse g text with
        | Ok tree -> begin
            match tree.Parse_tree.content with
            | Parse_tree.Branch [ Parse_tree.Child b ] ->
                Alcotest.(check string)
                  "trimmed" "hello world"
                  (Pat.Text.sub text ~pos:b.Parse_tree.start
                     ~len:(b.Parse_tree.stop - b.Parse_tree.start))
            | _ -> Alcotest.fail "unexpected shape"
          end
        | Error e -> Alcotest.failf "parse: %a" Parser_engine.pp_error e);
    Alcotest.test_case "star with separator" `Quick (fun () ->
        let g =
          Grammar.create_exn ~root:"L"
            [
              {
                Grammar.lhs = "L";
                rhs =
                  Grammar.Seq
                    [
                      Grammar.Lit "(";
                      Grammar.Star { nonterm = "W"; separator = Some "," };
                      Grammar.Lit ")";
                    ];
              };
              { Grammar.lhs = "W"; rhs = Grammar.Token Grammar.Word };
            ]
        in
        let count s =
          match Parser_engine.parse g (Pat.Text.of_string s) with
          | Ok tree -> begin
              match tree.Parse_tree.content with
              | Parse_tree.Branch [ Parse_tree.Children (_, cs) ] ->
                  List.length cs
              | _ -> -1
            end
          | Error _ -> -1
        in
        Alcotest.(check int) "three" 3 (count "(a, b, c)");
        Alcotest.(check int) "one" 1 (count "(a)");
        Alcotest.(check int) "zero" 0 (count "()"));
    Alcotest.test_case "separator without following element backtracks" `Quick
      (fun () ->
        (* "(a,)" must fail: the comma commits only before an element *)
        let g =
          Grammar.create_exn ~root:"L"
            [
              {
                Grammar.lhs = "L";
                rhs =
                  Grammar.Seq
                    [
                      Grammar.Lit "(";
                      Grammar.Star { nonterm = "W"; separator = Some "," };
                      Grammar.Lit ")";
                    ];
              };
              { Grammar.lhs = "W"; rhs = Grammar.Token Grammar.Word };
            ]
        in
        match Parser_engine.parse g (Pat.Text.of_string "(a,)") with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should fail on dangling separator");
    Alcotest.test_case "ordered alternatives" `Quick (fun () ->
        let g =
          Grammar.create_exn ~root:"A"
            [
              { Grammar.lhs = "A"; rhs = Grammar.Seq [ Grammar.Lit "x"; Grammar.Nonterm "B" ] };
              { Grammar.lhs = "B"; rhs = Grammar.Seq [ Grammar.Lit "n:"; Grammar.Tok Grammar.Word ] };
              { Grammar.lhs = "B"; rhs = Grammar.Token Grammar.Word };
            ]
        in
        (match Parser_engine.parse g (Pat.Text.of_string "x n: foo") with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "alt1: %a" Parser_engine.pp_error e);
        match Parser_engine.parse g (Pat.Text.of_string "x foo") with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "alt2: %a" Parser_engine.pp_error e);
    Alcotest.test_case "failure reports deepest position" `Quick (fun () ->
        match
          Parser_engine.parse Bibtex_schema.grammar
            (Pat.Text.of_string
               "%% bibliography\n@INCOLLECTION{K, AUTHOR = {A B}, OOPS")
        with
        | Error e ->
            Alcotest.(check bool) "past the authors" true
              (e.Parser_engine.position > 30)
        | Ok _ -> Alcotest.fail "should fail");
    Alcotest.test_case "parse_at materialises a slice" `Quick (fun () ->
        let text = Pat.Text.of_string Bibtex_schema.sample in
        let tree = parse_ok Bibtex_schema.grammar Bibtex_schema.sample in
        let refs =
          List.filter (fun (s, _) -> s = "Reference")
            (Parse_tree.all_regions tree)
        in
        Alcotest.(check int) "two refs" 2 (List.length refs);
        List.iter
          (fun (_, (r : Pat.Region.t)) ->
            match
              Parser_engine.parse_at Bibtex_schema.grammar text
                ~symbol:"Reference" ~start:r.start ~stop:r.stop
            with
            | Ok sub -> Alcotest.(check string) "symbol" "Reference" sub.Parse_tree.symbol
            | Error e -> Alcotest.failf "parse_at: %a" Parser_engine.pp_error e)
          refs);
    Alcotest.test_case "describe_error points at line and column" `Quick
      (fun () ->
        let bad = "== log ==\n[ts] level=ERROR service=auth msg=oops\n" in
        let text = Pat.Text.of_string bad in
        match Parser_engine.parse Log_schema.grammar text with
        | Ok _ -> Alcotest.fail "should fail (unquoted message)"
        | Error e ->
            let desc = Parser_engine.describe_error text e in
            let has needle =
              let n = String.length desc and m = String.length needle in
              let rec go i =
                i + m <= n && (String.sub desc i m = needle || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) "line 2" true (has "line 2");
            Alcotest.(check bool) "caret" true (has "^");
            Alcotest.(check bool) "snippet" true (has "level=ERROR"));
    Alcotest.test_case "parse tree rendering respects keep" `Quick (fun () ->
        let tree = parse_ok Bibtex_schema.grammar Bibtex_schema.sample in
        let render keep =
          Format.asprintf "%a" (Parse_tree.pp ?keep) tree
        in
        let full = render None in
        let partial = render (Some [ "Reference"; "Last_Name" ]) in
        let count_lines s needle =
          List.length
            (List.filter
               (fun line ->
                 String.length line >= String.length needle
                 && String.trim line |> fun t ->
                    String.length t >= String.length needle
                    && String.sub t 0 (String.length needle) = needle)
               (String.split_on_char '\n' s))
        in
        Alcotest.(check int) "refs in full" 2 (count_lines full "Reference ");
        Alcotest.(check int) "refs in partial" 2 (count_lines partial "Reference ");
        (* the partial view hides authors but keeps the promoted last names *)
        Alcotest.(check int) "no authors in partial" 0
          (count_lines partial "Authors ");
        Alcotest.(check int) "five last names" 5
          (count_lines partial "Last_Name "));
    Alcotest.test_case "bytes_parsed is counted" `Quick (fun () ->
        let before = Stdx.Stats.(value bytes_parsed) in
        ignore (parse_ok Log_schema.grammar Log_schema.sample);
        Alcotest.(check bool) "grew" true
          (Stdx.Stats.(value bytes_parsed) > before));
  ]

let builder_tests =
  [
    Alcotest.test_case "bibtex image has the paper's structure" `Quick
      (fun () ->
        let text = Pat.Text.of_string Bibtex_schema.sample in
        let tree = parse_ok Bibtex_schema.grammar Bibtex_schema.sample in
        match Builder.value_of_tree text tree with
        | Odb.Value.Set (first :: _) -> begin
            match first with
            | Odb.Value.Variant ("Reference", Odb.Value.Tuple fields) ->
                Alcotest.(check (list string))
                  "fields" Bibtex_schema.field_names (List.map fst fields)
            | _ -> Alcotest.fail "expected a tagged Reference tuple"
          end
        | _ -> Alcotest.fail "expected a set of references");
    Alcotest.test_case "load populates class extents" `Quick (fun () ->
        let text = Pat.Text.of_string Bibtex_schema.sample in
        match View.load_file Bibtex_schema.view text with
        | Ok db ->
            Alcotest.(check int) "two refs" 2
              (Odb.Database.cardinal db "References")
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "instance_of_tree builds requested names only" `Quick
      (fun () ->
        let text = Pat.Text.of_string Bibtex_schema.sample in
        match
          View.index_file Bibtex_schema.view text
            ~keep:[ "Reference"; "Last_Name" ]
        with
        | Ok inst ->
            Alcotest.(check (list string))
              "names" [ "Last_Name"; "Reference" ] (Pat.Instance.names inst);
            Alcotest.(check int) "two refs" 2
              (Pat.Region_set.cardinal (Pat.Instance.find inst "Reference"));
            (* 2 authors + 1 editor + 1 author + 1 editor = 5 last names *)
            Alcotest.(check int) "five last names" 5
              (Pat.Region_set.cardinal (Pat.Instance.find inst "Last_Name"))
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "scoped indexing keeps only in-scope regions" `Quick
      (fun () ->
        (* §7: index only the last names residing in an Authors region *)
        let text = Pat.Text.of_string Bibtex_schema.sample in
        match
          View.index_file_specs Bibtex_schema.view text
            ~specs:
              [
                View.Plain "Reference";
                View.Scoped
                  {
                    name = "Last_Name";
                    within = "Authors";
                    alias = "Author_Last_Name";
                  };
              ]
        with
        | Error e -> Alcotest.fail e
        | Ok inst ->
            (* sample: 3 author last names, 2 editor last names *)
            Alcotest.(check int) "authors only" 3
              (Pat.Region_set.cardinal (Pat.Instance.find inst "Author_Last_Name"));
            (* the scoped index answers the paper's query exactly with
               simple inclusion and two indexed names *)
            let wi = Pat.Instance.word_index inst in
            let hits =
              Pat.Region_set.including
                (Pat.Instance.find inst "Reference")
                (Pat.Word_index.select_exact wi "Chang"
                   (Pat.Instance.find inst "Author_Last_Name"))
            in
            Alcotest.(check int) "one reference authored by Chang" 1
              (Pat.Region_set.cardinal hits));
    Alcotest.test_case "log image" `Quick (fun () ->
        let text = Pat.Text.of_string Log_schema.sample in
        match View.load_file Log_schema.view text with
        | Ok db -> begin
            Alcotest.(check int) "three entries" 3
              (Odb.Database.cardinal db "Entries");
            match Odb.Database.extent db "Entries" with
            | first :: _ ->
                Alcotest.(check bool)
                  "level attr" true
                  (Odb.Value.field first "Level" = Some (Odb.Value.Str "ERROR"))
            | [] -> Alcotest.fail "no entries"
          end
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "sgml image nests sections" `Quick (fun () ->
        let text = Pat.Text.of_string Sgml_schema.sample in
        match View.load_file Sgml_schema.view text with
        | Ok db ->
            (* every section (nested included) surfaces in the extent *)
            Alcotest.(check int) "five sections" 5
              (Odb.Database.cardinal db "Sections")
        | Error e -> Alcotest.fail e);
  ]

let rig_tests =
  [
    Alcotest.test_case "bibtex RIG matches the paper's figure" `Quick
      (fun () ->
        let rig = Rig_of_grammar.full Bibtex_schema.grammar in
        Alcotest.(check bool) "Ref->Authors" true
          (Ralg.Rig.has_edge rig "Reference" "Authors");
        Alcotest.(check bool) "Authors->Name" true
          (Ralg.Rig.has_edge rig "Authors" "Name");
        Alcotest.(check bool) "Editors->Name" true
          (Ralg.Rig.has_edge rig "Editors" "Name");
        Alcotest.(check bool) "Name->Last" true
          (Ralg.Rig.has_edge rig "Name" "Last_Name");
        Alcotest.(check bool) "no Authors->Editors" false
          (Ralg.Rig.has_edge rig "Authors" "Editors"));
    Alcotest.test_case "partial RIG of §6.1" `Quick (fun () ->
        let rig =
          Rig_of_grammar.for_index Bibtex_schema.grammar
            ~keep:[ "Reference"; "Key"; "Last_Name" ]
        in
        Alcotest.(check (list (pair string string)))
          "edges"
          [ ("Reference", "Key"); ("Reference", "Last_Name") ]
          (Ralg.Rig.edges rig));
    Alcotest.test_case "sgml RIG is cyclic" `Quick (fun () ->
        let rig = Rig_of_grammar.full Sgml_schema.grammar in
        Alcotest.(check bool) "self edge" true
          (Ralg.Rig.has_edge rig "Section" "Section"));
    Alcotest.test_case "generated instances satisfy the derived RIG" `Quick
      (fun () ->
        let text =
          Pat.Text.of_string
            (Workload.Bibtex_gen.generate (Workload.Bibtex_gen.with_size 5))
        in
        match
          View.index_file Bibtex_schema.view text
            ~keep:(Grammar.indexable Bibtex_schema.grammar)
        with
        | Ok inst -> begin
            let rig = Rig_of_grammar.full Bibtex_schema.grammar in
            match Pat.Instance.satisfies_rig inst ~edges:(Ralg.Rig.edges rig) with
            | None -> ()
            | Some (a, b) -> Alcotest.failf "violation (%s,%s)" a b
          end
        | Error e -> Alcotest.fail e);
  ]

let workload_tests =
  [
    Alcotest.test_case "bibtex generator output parses" `Quick (fun () ->
        let s = Workload.Bibtex_gen.generate (Workload.Bibtex_gen.with_size 50) in
        let tree = parse_ok Bibtex_schema.grammar s in
        let refs =
          List.length
            (List.filter (fun (n, _) -> n = "Reference")
               (Parse_tree.all_regions tree))
        in
        Alcotest.(check int) "fifty" 50 refs);
    Alcotest.test_case "bibtex generation is deterministic" `Quick (fun () ->
        let p = Workload.Bibtex_gen.with_size 10 in
        Alcotest.(check string)
          "equal" (Workload.Bibtex_gen.generate p) (Workload.Bibtex_gen.generate p));
    Alcotest.test_case "log generator output parses" `Quick (fun () ->
        let s = Workload.Log_gen.generate (Workload.Log_gen.with_size 40) in
        let tree = parse_ok Log_schema.grammar s in
        let entries =
          List.length
            (List.filter (fun (n, _) -> n = "Entry")
               (Parse_tree.all_regions tree))
        in
        Alcotest.(check int) "forty" 40 entries);
    Alcotest.test_case "mbox sample and generator output parse" `Quick
      (fun () ->
        ignore (parse_ok Mbox_schema.grammar Mbox_schema.sample);
        let s = Workload.Mbox_gen.generate (Workload.Mbox_gen.with_size 30) in
        let tree = parse_ok Mbox_schema.grammar s in
        let messages =
          List.length
            (List.filter (fun (n, _) -> n = "Message")
               (Parse_tree.all_regions tree))
        in
        Alcotest.(check int) "thirty" 30 messages;
        Alcotest.(check bool) "strict" true (Parse_tree.strictly_nested tree));
    Alcotest.test_case "sgml generator output parses and nests" `Quick
      (fun () ->
        let s = Workload.Sgml_gen.generate (Workload.Sgml_gen.with_depth 5) in
        let tree = parse_ok Sgml_schema.grammar s in
        Alcotest.(check bool) "strict" true (Parse_tree.strictly_nested tree);
        (* depth-5 nesting must exist *)
        let rec depth (t : Parse_tree.t) =
          match t.Parse_tree.content with
          | Parse_tree.Leaf -> 0
          | Parse_tree.Branch bs ->
              1
              + List.fold_left
                  (fun acc b ->
                    match b with
                    | Parse_tree.Child c -> max acc (depth c)
                    | Parse_tree.Children (_, cs) ->
                        List.fold_left (fun a c -> max a (depth c)) acc cs
                    | Parse_tree.Text _ -> acc)
                  0 bs
        in
        Alcotest.(check bool) "deep" true (depth tree >= 5));
    Alcotest.test_case "zipf skew shows in author names" `Quick (fun () ->
        let s =
          Workload.Bibtex_gen.generate
            { (Workload.Bibtex_gen.with_size 200) with zipf_s = 1.4 }
        in
        (* rank-0 name should be much more frequent than a deep rank *)
        let occurrences w =
          let rec go i acc =
            if i + String.length w > String.length s then acc
            else if String.sub s i (String.length w) = w then go (i + 1) (acc + 1)
            else go (i + 1) acc
          in
          go 0 0
        in
        Alcotest.(check bool) "head >> tail" true
          (occurrences (Workload.Vocab.last_name 0)
          > 4 * max 1 (occurrences (Workload.Vocab.last_name 60))));
  ]

let contains_sub haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let schema_types_tests =
  [
    Alcotest.test_case "bibtex declarations match the paper's shape" `Quick
      (fun () ->
        let s = Schema_types.to_string Bibtex_schema.view in
        List.iter
          (fun needle ->
            Alcotest.(check bool) ("contains " ^ needle) true
              (contains_sub s needle))
          [
            "Class Reference = tuple(";
            "Type Authors = set(Name)";
            "Type Name = tuple(First_Name : First_Name, Last_Name : Last_Name)";
            "Type Ref_set = set(Reference)";
            "Type Last_Name = string";
          ]);
    Alcotest.test_case "alternatives derive a union type" `Quick (fun () ->
        let g =
          Grammar.create_exn ~root:"A"
            [
              { Grammar.lhs = "A"; rhs = Grammar.Seq [ Grammar.Lit "n:"; Grammar.Tok Grammar.Word ] };
              { Grammar.lhs = "A"; rhs = Grammar.Token Grammar.Word };
            ]
        in
        match List.assoc "A" (Schema_types.of_grammar g) with
        | Schema_types.Union_ty [ Schema_types.Str_ty; Schema_types.Str_ty ] -> ()
        | _ -> Alcotest.fail "expected a union of strings");
    Alcotest.test_case "star inside a sequence becomes a set field" `Quick
      (fun () ->
        match List.assoc "Section" (Schema_types.of_grammar Sgml_schema.grammar) with
        | Schema_types.Tuple_ty fields ->
            Alcotest.(check bool) "Section field is a set" true
              (List.assoc "Section" fields
              = Schema_types.Set_ty (Schema_types.Named "Section"))
        | _ -> Alcotest.fail "expected a tuple");
  ]

(* Render a parsed database image back to BibTeX text; parsing the
   rendered text must reproduce the image (round-trip stability of the
   parser + builder). *)
let render_reference v =
  let str path =
    match Odb.Path.navigate v (Odb.Path.of_strings path) with
    | [ Odb.Value.Str s ] -> s
    | _ -> Alcotest.fail "unexpected shape"
  in
  let names path =
    List.map
      (fun name ->
        Printf.sprintf "%s %s"
          (match Odb.Value.field name "First_Name" with
          | Some (Odb.Value.Str s) -> s
          | _ -> "?")
          (match Odb.Value.field name "Last_Name" with
          | Some (Odb.Value.Str s) -> s
          | _ -> "?"))
      (Odb.Path.navigate v (Odb.Path.of_strings path))
  in
  let strings path =
    List.map
      (function Odb.Value.Str s -> s | _ -> "?")
      (Odb.Path.navigate v (Odb.Path.of_strings path))
  in
  Printf.sprintf
    "@INCOLLECTION{%s, AUTHOR = {%s}, TITLE = {%s}, YEAR = {%s}, EDITOR = \
     {%s}, KEYWORDS = {%s}, CITES = {%s}, ABSTRACT = {%s}}"
    (str [ "Key" ])
    (String.concat " and " (names [ "Authors"; "Name" ]))
    (str [ "Title" ])
    (str [ "Year" ])
    (String.concat " and " (names [ "Editors"; "Name" ]))
    (String.concat "; " (strings [ "Keywords"; "Keyword" ]))
    (String.concat "; " (strings [ "Cites"; "Cite" ]))
    (str [ "Abstract" ])

let roundtrip_tests =
  [
    Alcotest.test_case "parse → render → parse is stable" `Slow (fun () ->
        for seed = 1 to 20 do
          let text0 =
            Workload.Bibtex_gen.generate
              { (Workload.Bibtex_gen.with_size 8) with seed }
          in
          let image text =
            match Parser_engine.parse Bibtex_schema.grammar (Pat.Text.of_string text) with
            | Ok tree -> Builder.value_of_tree (Pat.Text.of_string text) tree
            | Error e ->
                Alcotest.failf "seed %d: %a" seed Parser_engine.pp_error e
          in
          let v0 = image text0 in
          let rendered =
            match v0 with
            | Odb.Value.Set refs ->
                "%% bibliography\n"
                ^ String.concat "\n"
                    (List.map
                       (function
                         | Odb.Value.Variant ("Reference", r) ->
                             render_reference r
                         | _ -> Alcotest.fail "expected references")
                       refs)
            | _ -> Alcotest.fail "expected a set"
          in
          let v1 = image rendered in
          if not (Odb.Value.equal v0 v1) then
            Alcotest.failf "seed %d: round-trip changed the image" seed
        done);
  ]

let suites =
  [
    ("fschema.grammar", grammar_tests);
    ("fschema.schema_types", schema_types_tests);
    ("fschema.roundtrip", roundtrip_tests);
    ("fschema.engine", engine_tests);
    ("fschema.builder", builder_tests);
    ("fschema.rig", rig_tests);
    ("workload.generators", workload_tests);
  ]
