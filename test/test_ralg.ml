(* Tests for the region algebra: RIG analyses, the Prop 3.3 triviality
   test, the Thm 3.6 optimizer (checked on the paper's own examples and
   on random RIG-satisfying instances), the evaluator vs the naive
   reference, and the expression parser. *)

open Ralg

(* ------------------------------------------------------------------ *)
(* The BibTeX RIG of §3.2 *)

let bibtex_rig =
  Rig.create
    ~names:
      [
        "Reference"; "Key"; "Authors"; "Title"; "Editors"; "Name";
        "First_Name"; "Last_Name";
      ]
    ~edges:
      [
        ("Reference", "Key");
        ("Reference", "Authors");
        ("Reference", "Title");
        ("Reference", "Editors");
        ("Authors", "Name");
        ("Editors", "Name");
        ("Name", "First_Name");
        ("Name", "Last_Name");
      ]

let expr = Alcotest.testable Expr.pp Expr.equal

let rig_tests =
  [
    Alcotest.test_case "reachable follows edges transitively" `Quick (fun () ->
        Alcotest.(check bool) "Ref->Last" true
          (Rig.reachable bibtex_rig "Reference" "Last_Name");
        Alcotest.(check bool) "Last->Ref" false
          (Rig.reachable bibtex_rig "Last_Name" "Reference");
        Alcotest.(check bool) "Title->Last" false
          (Rig.reachable bibtex_rig "Title" "Last_Name"));
    Alcotest.test_case "only_walk_is_edge" `Quick (fun () ->
        Alcotest.(check bool) "Ref->Authors" true
          (Rig.only_walk_is_edge bibtex_rig "Reference" "Authors");
        Alcotest.(check bool) "Name->Last" true
          (Rig.only_walk_is_edge bibtex_rig "Name" "Last_Name");
        Alcotest.(check bool) "Ref->Key" true
          (Rig.only_walk_is_edge bibtex_rig "Reference" "Key"));
    Alcotest.test_case "only_walk fails with a longer walk" `Quick (fun () ->
        let g =
          Rig.create ~names:[ "A"; "B"; "C" ]
            ~edges:[ ("A", "B"); ("A", "C"); ("C", "B") ]
        in
        Alcotest.(check bool) "A->B has detour" false
          (Rig.only_walk_is_edge g "A" "B");
        Alcotest.(check bool) "but every A->B walk could still matter" false
          (Rig.all_walks_start_with_edge g "A" "B"));
    Alcotest.test_case "all_walks_start_with_edge under a cycle" `Quick
      (fun () ->
        (* A -> B, B -> B (self-nesting): walks A->B->B… all start with
           the edge, but the edge is not the only walk. *)
        let g = Rig.create ~names:[ "A"; "B" ] ~edges:[ ("A", "B"); ("B", "B") ] in
        Alcotest.(check bool) "starts-with holds" true
          (Rig.all_walks_start_with_edge g "A" "B");
        Alcotest.(check bool) "only-walk fails" false
          (Rig.only_walk_is_edge g "A" "B"));
    Alcotest.test_case "separator" `Quick (fun () ->
        Alcotest.(check bool) "Name separates Authors from Last" true
          (Rig.separator bibtex_rig ~src:"Authors" ~dst:"Last_Name" ~via:"Name");
        Alcotest.(check bool) "Authors does not separate Ref from Last" false
          (Rig.separator bibtex_rig ~src:"Reference" ~dst:"Last_Name"
             ~via:"Authors");
        Alcotest.(check bool) "endpoint via is trivial" true
          (Rig.separator bibtex_rig ~src:"Reference" ~dst:"Key" ~via:"Reference"));
    Alcotest.test_case "partial RIG of §6.1" `Quick (fun () ->
        let p = Rig.partial bibtex_rig ~keep:[ "Reference"; "Key"; "Last_Name" ] in
        Alcotest.(check (list (pair string string)))
          "edges"
          [ ("Reference", "Key"); ("Reference", "Last_Name") ]
          (Rig.edges p));
    Alcotest.test_case "count_paths_avoiding distinguishes 1 from many" `Quick
      (fun () ->
        let keep = [ "Reference"; "Key"; "Last_Name" ] in
        let avoid n = List.mem n keep in
        Alcotest.(check bool) "Ref->Key unique" true
          (Rig.count_paths_avoiding bibtex_rig "Reference" "Key"
             ~avoid_interior:avoid
          = `One);
        Alcotest.(check bool) "Ref->Last ambiguous (authors vs editors)" true
          (Rig.count_paths_avoiding bibtex_rig "Reference" "Last_Name"
             ~avoid_interior:avoid
          = `Many);
        Alcotest.(check bool) "Key->Last zero" true
          (Rig.count_paths_avoiding bibtex_rig "Key" "Last_Name"
             ~avoid_interior:avoid
          = `Zero));
    Alcotest.test_case "count_paths_avoiding reports cycles as many" `Quick
      (fun () ->
        let g =
          Rig.create ~names:[ "A"; "B"; "X" ]
            ~edges:[ ("A", "X"); ("X", "X"); ("X", "B") ]
        in
        Alcotest.(check bool) "pumped walks" true
          (Rig.count_paths_avoiding g "A" "B" ~avoid_interior:(fun _ -> false)
          = `Many));
    Alcotest.test_case "interior_nodes" `Quick (fun () ->
        Alcotest.(check (list string))
          "Ref to Last"
          [ "Authors"; "Editors"; "Name" ]
          (Rig.interior_nodes bibtex_rig "Reference" "Last_Name"));
    Alcotest.test_case "to_dot lists nodes and highlights edges" `Quick
      (fun () ->
        let dot =
          Rig.to_dot ~highlight:[ ("Reference", "Authors") ] bibtex_rig
        in
        let has needle =
          let n = String.length dot and m = String.length needle in
          let rec go i =
            i + m <= n && (String.sub dot i m = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "digraph" true (has "digraph rig");
        Alcotest.(check bool) "node" true (has "\"Last_Name\"");
        Alcotest.(check bool) "highlighted edge" true
          (has "\"Reference\" -> \"Authors\" [style=\"dashed,bold\"");
        Alcotest.(check bool) "plain edge" true (has "\"Name\" -> \"Last_Name\";"));
    Alcotest.test_case "create rejects unknown endpoints" `Quick (fun () ->
        Alcotest.check_raises "unknown"
          (Invalid_argument "Rig.create: edge endpoint not a node: Z")
          (fun () ->
            ignore (Rig.create ~names:[ "A" ] ~edges:[ ("A", "Z") ])));
  ]

(* ------------------------------------------------------------------ *)
(* Optimizer on the paper's examples *)

let optimizer_tests =
  [
    Alcotest.test_case "§3.2 example: ⊃d chain optimises" `Quick (fun () ->
        let e1 =
          Expr.(
            name "Reference"
            >.. (name "Authors" >.. (name "Name" >.. exactly "Chang" (name "Last_Name"))))
        in
        let want =
          Expr.(
            name "Reference"
            >. (name "Authors" >. exactly "Chang" (name "Last_Name")))
        in
        Alcotest.check expr "normal form" want (Optimizer.optimize bibtex_rig e1));
    Alcotest.test_case "§5.2 example: ⊂d projection chain optimises" `Quick
      (fun () ->
        let e1 =
          Expr.(
            name "Last_Name"
            <.. (name "Name" <.. (name "Authors" <.. name "Reference")))
        in
        let want =
          Expr.(name "Last_Name" <. (name "Authors" <. name "Reference"))
        in
        Alcotest.check expr "normal form" want (Optimizer.optimize bibtex_rig e1));
    Alcotest.test_case "Authors test is kept (filters editors)" `Quick
      (fun () ->
        (* the optimiser must not shorten Reference ⊃ Authors ⊃ Last_Name *)
        let e =
          Expr.(name "Reference" >. (name "Authors" >. name "Last_Name"))
        in
        Alcotest.check expr "unchanged" e (Optimizer.optimize bibtex_rig e));
    Alcotest.test_case "selection blocks shortening" `Quick (fun () ->
        (* Name carries a selection, so it cannot be removed even though
           it separates Authors from First_Name. *)
        let e =
          Expr.(
            name "Authors"
            >. (contains "J" (name "Name") >. name "First_Name"))
        in
        Alcotest.check expr "unchanged" e (Optimizer.optimize bibtex_rig e));
    Alcotest.test_case "exact selection on cyclic rightmost keeps ⊃d" `Quick
      (fun () ->
        let g =
          Rig.create ~names:[ "A"; "B" ] ~edges:[ ("A", "B"); ("B", "B") ]
        in
        let direct = Expr.(name "A" >.. exactly "w" (name "B")) in
        Alcotest.check expr "kept direct" direct (Optimizer.optimize g direct);
        (* with a containment selection the rewrite is sound *)
        let contains_e = Expr.(name "A" >.. contains "w" (name "B")) in
        Alcotest.check expr "weakened"
          Expr.(name "A" >. contains "w" (name "B"))
          (Optimizer.optimize g contains_e));
    Alcotest.test_case "equal names are left untouched" `Quick (fun () ->
        let g = Rig.create ~names:[ "A" ] ~edges:[] in
        let e = Expr.(name "A" >.. name "A") in
        Alcotest.check expr "unchanged" e (Optimizer.optimize g e));
    Alcotest.test_case "optimize recurses under set operators" `Quick
      (fun () ->
        let chain =
          Expr.(name "Reference" >.. (name "Authors" >.. name "Name"))
        in
        let e = Expr.Setop (Expr.Union, chain, Expr.name "Key") in
        let want =
          Expr.Setop
            ( Expr.Union,
              Expr.(name "Reference" >. name "Authors"),
              Expr.name "Key" )
        in
        (* Reference ⊃d Authors ⊃d Name: both pairs weaken (only walks);
           then Authors separates Reference from Name, so the chain
           shortens to Reference ⊃ Authors … wait — Name is rightmost and
           carries no selection, and every Ref->Name walk passes through
           Authors or Editors, not only Authors.  Check the actual NF. *)
        ignore want;
        let got = Optimizer.optimize bibtex_rig e in
        let expected =
          Expr.Setop
            ( Expr.Union,
              Expr.(name "Reference" >. (name "Authors" >. name "Name")),
              Expr.name "Key" )
        in
        Alcotest.check expr "normal form" expected got);
    Alcotest.test_case "multi-step shortening reaches fixpoint" `Quick
      (fun () ->
        (* linear grammar A -> B -> C -> D: the whole chain collapses *)
        let g =
          Rig.create ~names:[ "A"; "B"; "C"; "D" ]
            ~edges:[ ("A", "B"); ("B", "C"); ("C", "D") ]
        in
        let e =
          Expr.(name "A" >.. (name "B" >.. (name "C" >.. name "D")))
        in
        Alcotest.check expr "collapsed"
          Expr.(name "A" >. name "D")
          (Optimizer.optimize g e));
  ]

(* ------------------------------------------------------------------ *)
(* Triviality (Prop 3.3) *)

let trivial_tests =
  [
    Alcotest.test_case "no-edge ⊃d is trivial" `Quick (fun () ->
        Alcotest.(check bool) "Ref ⊃d Name" true
          (Trivial.check bibtex_rig Expr.(name "Reference" >.. name "Name")));
    Alcotest.test_case "no-path ⊃ is trivial" `Quick (fun () ->
        Alcotest.(check bool) "Title ⊃ Last" true
          (Trivial.check bibtex_rig Expr.(name "Title" >. name "Last_Name"));
        Alcotest.(check bool) "e3 of the paper" true
          (Trivial.check bibtex_rig
             Expr.(name "Reference" >. (name "Title" >. name "Last_Name"))));
    Alcotest.test_case "reachable pairs are not trivial" `Quick (fun () ->
        Alcotest.(check bool) "Ref ⊃ Last" false
          (Trivial.check bibtex_rig Expr.(name "Reference" >. name "Last_Name")));
    Alcotest.test_case "⊂ family mirrors" `Quick (fun () ->
        Alcotest.(check bool) "Last ⊂ Title" true
          (Trivial.check bibtex_rig Expr.(name "Last_Name" <. name "Title"));
        Alcotest.(check bool) "Last ⊂ Authors" false
          (Trivial.check bibtex_rig Expr.(name "Last_Name" <. name "Authors")));
    Alcotest.test_case "set operators propagate emptiness" `Quick (fun () ->
        let empty_e = Expr.(name "Title" >. name "Last_Name") in
        let full_e = Expr.(name "Reference" >. name "Authors") in
        Alcotest.(check bool) "union of trivials" true
          (Trivial.check bibtex_rig (Expr.Setop (Expr.Union, empty_e, empty_e)));
        Alcotest.(check bool) "union with non-trivial" false
          (Trivial.check bibtex_rig (Expr.Setop (Expr.Union, empty_e, full_e)));
        Alcotest.(check bool) "inter with trivial" true
          (Trivial.check bibtex_rig (Expr.Setop (Expr.Inter, full_e, empty_e))));
    Alcotest.test_case "same name is not trivial" `Quick (fun () ->
        Alcotest.(check bool) "A ⊃ A" false
          (Trivial.check bibtex_rig Expr.(name "Reference" >. name "Reference")));
  ]

(* ------------------------------------------------------------------ *)
(* Random RIG-satisfying instances: optimizer soundness and eval vs
   naive reference. *)

(* Build a text of [n] single-character words ("a b c …") and a laminar
   instance over it guided by the RIG: children names follow edges, and
   spans nest strictly.  Word [k] occupies byte [2k]. *)
module Gen_instance = struct
  let word_start k = 2 * k
  let word_stop k = (2 * k) + 1

  type spec = { rig_names : string list; edges : (string * string) list }

  let random_rig prng =
    let k = Stdx.Prng.int_in prng 3 5 in
    let names = List.init k (fun i -> Printf.sprintf "N%d" i) in
    let arr = Array.of_list names in
    let edges = ref [] in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        if Stdx.Prng.int prng 100 < 45 then edges := (arr.(i), arr.(j)) :: !edges
      done
    done;
    (* occasionally allow self-nesting to exercise cycles *)
    if Stdx.Prng.int prng 100 < 30 then begin
      let n = Stdx.Prng.choose prng arr in
      edges := (n, n) :: !edges
    end;
    { rig_names = names; edges = !edges }

  let to_rig spec = Rig.create ~names:spec.rig_names ~edges:spec.edges

  (* Allocate child word-ranges strictly inside [lo, hi] (inclusive word
     indices), pairwise disjoint. *)
  let rec grow prng rig acc name lo hi depth =
    acc := (name, (word_start lo, word_stop hi)) :: !acc;
    if depth < 4 && hi - lo >= 1 then begin
      let succs = Rig.successors rig name in
      if succs <> [] then begin
        let n_children = Stdx.Prng.int prng 3 in
        let cursor = ref lo in
        for _ = 1 to n_children do
          if hi - !cursor >= 1 then begin
            let clo = Stdx.Prng.int_in prng !cursor (hi - 1) in
            let chi = Stdx.Prng.int_in prng clo (hi - 1) in
            (* ensure strict nesting: child range ≠ parent range *)
            if not (clo = lo && chi = hi) then begin
              let child = Stdx.Prng.choose_list prng succs in
              grow prng rig acc child clo chi (depth + 1)
            end;
            cursor := chi + 1
          end
        done
      end
    end

  let generate seed =
    let prng = Stdx.Prng.create seed in
    let spec = random_rig prng in
    let rig = to_rig spec in
    let n_words = 30 in
    let chars = Array.init n_words (fun _ -> Stdx.Prng.choose prng [| "a"; "b"; "c" |]) in
    let text_str = String.concat " " (Array.to_list chars) in
    let acc = ref [] in
    (* a handful of disjoint roots *)
    let cursor = ref 0 in
    while !cursor < n_words - 2 do
      let lo = !cursor in
      let hi = Stdx.Prng.int_in prng lo (min (n_words - 1) (lo + 12)) in
      let root = Stdx.Prng.choose_list prng spec.rig_names in
      grow prng rig acc root lo hi 0;
      cursor := hi + 2
    done;
    let by_name =
      List.map
        (fun n ->
          let pairs = List.filter_map
            (fun (m, span) -> if m = n then Some span else None)
            !acc
          in
          (n, Pat.Region_set.of_pairs pairs))
        spec.rig_names
    in
    let inst = Pat.Instance.create (Pat.Text.of_string text_str) by_name in
    (rig, inst, prng)

  let random_chain prng rig =
    let names = Array.of_list (Rig.names rig) in
    let len = Stdx.Prng.int_in prng 2 4 in
    let family = if Stdx.Prng.bool prng then Chain.Up else Chain.Down in
    let elements =
      List.init len (fun i ->
          let name = Stdx.Prng.choose prng names in
          let selection =
            if i = len - 1 && Stdx.Prng.int prng 100 < 40 then begin
              let w = Stdx.Prng.choose prng [| "a"; "b"; "c" |] in
              if Stdx.Prng.bool prng then Some (Expr.Exactly_word w)
              else Some (Expr.Contains_word w)
            end
            else None
          in
          { Chain.name; selection })
    in
    let strengths =
      List.init (len - 1) (fun _ ->
          if Stdx.Prng.bool prng then Chain.Direct else Chain.Simple)
    in
    Chain.to_expr { Chain.family; elements; strengths }
end

(* random region expressions over the instance's names: set operators,
   selections, ι/ω, chains, depth constraints *)
let rec random_general prng names depth =
  let leaf () = Expr.Name (Stdx.Prng.choose prng names) in
  if depth = 0 then leaf ()
  else begin
    match Stdx.Prng.int prng 10 with
    | 0 | 1 -> leaf ()
    | 2 ->
        Expr.Select
          ( (if Stdx.Prng.bool prng then
               Expr.Exactly_word (Stdx.Prng.choose prng [| "a"; "b"; "c" |])
             else
               Expr.Contains_word (Stdx.Prng.choose prng [| "a"; "b"; "c" |])),
            random_general prng names (depth - 1) )
    | 3 ->
        Expr.Setop
          ( Stdx.Prng.choose prng [| Expr.Union; Expr.Inter; Expr.Diff |],
            random_general prng names (depth - 1),
            random_general prng names (depth - 1) )
    | 4 -> Expr.Innermost (random_general prng names (depth - 1))
    | 5 -> Expr.Outermost (random_general prng names (depth - 1))
    | 6 ->
        Expr.At_depth
          ( Stdx.Prng.int prng 3,
            random_general prng names (depth - 1),
            random_general prng names (depth - 1) )
    | 7 ->
        Expr.Chain_strict
          ( random_general prng names (depth - 1),
            Stdx.Prng.choose prng
              [|
                Expr.Including; Expr.Directly_including; Expr.Included;
                Expr.Directly_included;
              |],
            random_general prng names (depth - 1) )
    | _ ->
        Expr.Chain
          ( random_general prng names (depth - 1),
            Stdx.Prng.choose prng
              [|
                Expr.Including; Expr.Directly_including; Expr.Included;
                Expr.Directly_included;
              |],
            random_general prng names (depth - 1) )
  end

let soundness_tests =
  [
    Alcotest.test_case "generated instances satisfy their RIG" `Quick
      (fun () ->
        for seed = 1 to 40 do
          let rig, inst, _ = Gen_instance.generate seed in
          match Pat.Instance.satisfies_rig inst ~edges:(Rig.edges rig) with
          | None -> ()
          | Some (a, b) ->
              Alcotest.failf "seed %d: instance violates RIG on (%s,%s)" seed a
                b
        done);
    Alcotest.test_case "optimizer preserves semantics (400 random cases)"
      `Slow
      (fun () ->
        for seed = 1 to 400 do
          let rig, inst, prng = Gen_instance.generate seed in
          let e = Gen_instance.random_chain prng rig in
          let e' = Optimizer.optimize rig e in
          let v = Eval.eval inst e and v' = Eval.eval inst e' in
          if not (Pat.Region_set.equal v v') then
            Alcotest.failf "seed %d: %s ≠ optimized %s" seed (Expr.to_string e)
              (Expr.to_string e')
        done);
    Alcotest.test_case "trivial expressions evaluate to empty" `Slow (fun () ->
        for seed = 1 to 400 do
          let rig, inst, prng = Gen_instance.generate seed in
          let e = Gen_instance.random_chain prng rig in
          if Trivial.check rig e then begin
            let v = Eval.eval inst e in
            if not (Pat.Region_set.is_empty v) then
              Alcotest.failf "seed %d: trivial %s is non-empty" seed
                (Expr.to_string e)
          end
        done);
    Alcotest.test_case "rewrites are confluent (Thm 3.6, Church-Rosser)"
      `Slow
      (fun () ->
        (* apply the two rewrite rules one random applicable instance at
           a time until no rule applies; the result must equal the
           deterministic optimizer's normal form *)
        let randomized_optimize prng rig chain =
          let chain = ref chain in
          let continue_ = ref true in
          while !continue_ do
            let c = !chain in
            let elements = Array.of_list c.Chain.elements in
            let strengths = Array.of_list c.Chain.strengths in
            let n = Array.length strengths in
            (* collect applicable rewrites *)
            let weakenings =
              List.filter
                (fun i ->
                  strengths.(i) = Chain.Direct
                  && Optimizer.weaken_direct_pair rig ~family:c.Chain.family
                       ~left:elements.(i).Chain.name
                       ~right:elements.(i + 1).Chain.name
                       ~rightmost:(i = n - 1)
                       ~right_selection:elements.(i + 1).Chain.selection)
                (List.init n Fun.id)
            in
            let shortenings =
              List.filter
                (fun i ->
                  i + 1 < n
                  && strengths.(i) = Chain.Simple
                  && strengths.(i + 1) = Chain.Simple
                  && elements.(i + 1).Chain.selection = None
                  && Optimizer.can_shorten rig ~family:c.Chain.family
                       elements.(i).Chain.name
                       elements.(i + 1).Chain.name
                       elements.(i + 2).Chain.name)
                (List.init (max 0 (n - 1)) Fun.id)
            in
            let choices =
              List.map (fun i -> `Weaken i) weakenings
              @ List.map (fun i -> `Shorten i) shortenings
            in
            if choices = [] then continue_ := false
            else begin
              match Stdx.Prng.choose_list prng choices with
              | `Weaken i ->
                  strengths.(i) <- Chain.Simple;
                  chain :=
                    {
                      c with
                      Chain.strengths = Array.to_list strengths;
                    }
              | `Shorten i ->
                  let els =
                    List.filteri (fun j _ -> j <> i + 1) (Array.to_list elements)
                  in
                  let ss =
                    List.filteri (fun j _ -> j <> i + 1) (Array.to_list strengths)
                  in
                  chain := { c with Chain.elements = els; strengths = ss }
            end
          done;
          !chain
        in
        for seed = 1 to 300 do
          let rig, _, prng = Gen_instance.generate seed in
          let e = Gen_instance.random_chain prng rig in
          match Chain.of_expr e with
          | None -> ()
          | Some chain ->
              let deterministic = Optimizer.optimize_chain rig chain in
              for round = 1 to 3 do
                let randomized = randomized_optimize prng rig chain in
                if
                  not
                    (Expr.equal
                       (Chain.to_expr deterministic)
                       (Chain.to_expr randomized))
                then
                  Alcotest.failf
                    "seed %d round %d: %s normalizes to both %s and %s" seed
                    round (Expr.to_string e)
                    (Expr.to_string (Chain.to_expr deterministic))
                    (Expr.to_string (Chain.to_expr randomized))
              done
        done);
    Alcotest.test_case "partial RIG edges are unindexed-interior walks" `Quick
      (fun () ->
        for seed = 1 to 60 do
          let rig, _, prng = Gen_instance.generate seed in
          let names = Rig.names rig in
          let k = Stdx.Prng.int_in prng 1 (List.length names) in
          let keep = Stdx.Prng.sample prng k names in
          let partial = Rig.partial rig ~keep in
          (* naive check by direct walk search *)
          let naive_edge a b =
            let rec dfs visited n =
              List.exists
                (fun m ->
                  if m = b then true
                  else if List.mem m keep || List.mem m visited then false
                  else dfs (m :: visited) m)
                (Rig.successors rig n)
            in
            dfs [] a
          in
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  let got = Rig.has_edge partial a b in
                  let want = naive_edge a b in
                  if got <> want then
                    Alcotest.failf "seed %d: partial edge (%s,%s) %b vs %b"
                      seed a b got want)
                keep)
            keep
        done);
    Alcotest.test_case "optimizer is idempotent" `Quick (fun () ->
        for seed = 1 to 100 do
          let rig, _, prng = Gen_instance.generate seed in
          let e = Gen_instance.random_chain prng rig in
          let once = Optimizer.optimize rig e in
          let twice = Optimizer.optimize rig once in
          Alcotest.check expr "fixpoint" once twice
        done);
    Alcotest.test_case "optimizer never increases operator count" `Quick
      (fun () ->
        for seed = 1 to 100 do
          let rig, _, prng = Gen_instance.generate seed in
          let e = Gen_instance.random_chain prng rig in
          let e' = Optimizer.optimize rig e in
          Alcotest.(check bool)
            "size shrinks" true
            (Expr.size e' <= Expr.size e
            && Expr.count_ops e' Expr.Directly_including
               <= Expr.count_ops e Expr.Directly_including
            && Expr.count_ops e' Expr.Directly_included
               <= Expr.count_ops e Expr.Directly_included)
        done);
    Alcotest.test_case "eval agrees with naive reference" `Slow (fun () ->
        for seed = 1 to 300 do
          let rig, inst, prng = Gen_instance.generate seed in
          let e = Gen_instance.random_chain prng rig in
          let fast = Eval.eval inst e and slow = Naive_eval.eval inst e in
          if not (Pat.Region_set.equal fast slow) then
            Alcotest.failf "seed %d: eval mismatch on %s" seed
              (Expr.to_string e)
        done);
    Alcotest.test_case "general expressions agree with naive reference" `Slow
      (fun () ->
        for seed = 1 to 250 do
          let rig, inst, prng = Gen_instance.generate seed in
          let names = Array.of_list (Rig.names rig) in
          let e = random_general prng names 3 in
          let fast = Eval.eval inst e
          and shared = Eval.eval_shared inst e
          and slow = Naive_eval.eval inst e in
          if not (Pat.Region_set.equal fast slow) then
            Alcotest.failf "seed %d: eval mismatch on %s" seed (Expr.to_string e);
          if not (Pat.Region_set.equal shared slow) then
            Alcotest.failf "seed %d: eval_shared mismatch on %s" seed
              (Expr.to_string e)
        done);
    Alcotest.test_case "eval_shared evaluates common subexpressions once"
      `Quick
      (fun () ->
        let _, inst, _ = Gen_instance.generate 7 in
        let sub =
          match Pat.Instance.names inst with
          | a :: b :: _ -> Expr.(name a >. name b)
          | _ -> Alcotest.fail "need two names"
        in
        let e = Expr.Setop (Expr.Union, sub, Expr.Setop (Expr.Inter, sub, sub)) in
        let count f =
          let before = Stdx.Stats.(value index_ops) in
          ignore (f inst e);
          Stdx.Stats.(value index_ops) - before
        in
        let plain = count Eval.eval and shared = count Eval.eval_shared in
        Alcotest.(check bool)
          (Printf.sprintf "fewer ops (%d < %d)" shared plain)
          true (shared < plain));
    Alcotest.test_case "strict chains agree with naive reference" `Slow
      (fun () ->
        for seed = 1 to 200 do
          let rig, inst, prng = Gen_instance.generate seed in
          let names = Array.of_list (Rig.names rig) in
          let a = Stdx.Prng.choose prng names
          and b = Stdx.Prng.choose prng names in
          List.iter
            (fun op ->
              let e = Expr.Chain_strict (Expr.Name a, op, Expr.Name b) in
              let fast = Eval.eval inst e and slow = Naive_eval.eval inst e in
              if not (Pat.Region_set.equal fast slow) then
                Alcotest.failf "seed %d: strict mismatch on %s" seed
                  (Expr.to_string e))
            [
              Expr.Including; Expr.Directly_including; Expr.Included;
              Expr.Directly_included;
            ]
        done);
    Alcotest.test_case "layered ⊃d program agrees on laminar instances"
      `Slow
      (fun () ->
        for seed = 1 to 200 do
          let rig, inst, prng = Gen_instance.generate seed in
          let names = Array.of_list (Rig.names rig) in
          let a = Stdx.Prng.choose prng names
          and b = Stdx.Prng.choose prng names in
          let ra = Pat.Instance.find inst a and rb = Pat.Instance.find inst b in
          let ctx = Pat.Instance.universe inst in
          let direct = Pat.Region_set.directly_including ~context:ctx ra rb in
          let layered = Eval.direct_including_layered ~context:ctx ra rb in
          if not (Pat.Region_set.equal direct layered) then
            Alcotest.failf "seed %d: layered ≠ direct for %s ⊃d %s" seed a b
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Parser round-trip *)

let rec random_expr prng depth =
  let leaf () = Expr.Name (Stdx.Prng.choose prng [| "Alpha"; "Beta"; "Gamma_1" |]) in
  if depth = 0 then leaf ()
  else begin
    match Stdx.Prng.int prng 8 with
    | 0 -> leaf ()
    | 1 ->
        Expr.Select
          ( Stdx.Prng.choose prng
              [|
                Expr.Exactly_word "w1"; Expr.Contains_word "w2";
                Expr.Prefix_word "w3";
              |],
            random_expr prng (depth - 1) )
    | 2 ->
        Expr.Setop
          ( Stdx.Prng.choose prng [| Expr.Union; Expr.Inter; Expr.Diff |],
            random_expr prng (depth - 1),
            random_expr prng (depth - 1) )
    | 3 -> Expr.Innermost (random_expr prng (depth - 1))
    | 4 -> Expr.Outermost (random_expr prng (depth - 1))
    | 5 ->
        Expr.At_depth
          ( Stdx.Prng.int prng 4,
            random_expr prng (depth - 1),
            random_expr prng (depth - 1) )
    | 6 ->
        Expr.Chain_strict
          ( random_expr prng (depth - 1),
            Stdx.Prng.choose prng
              [|
                Expr.Including; Expr.Directly_including; Expr.Included;
                Expr.Directly_included;
              |],
            random_expr prng (depth - 1) )
    | _ ->
        Expr.Chain
          ( random_expr prng (depth - 1),
            Stdx.Prng.choose prng
              [|
                Expr.Including; Expr.Directly_including; Expr.Included;
                Expr.Directly_included;
              |],
            random_expr prng (depth - 1) )
  end

let parser_tests =
  [
    Alcotest.test_case "parses the paper's query expression" `Quick (fun () ->
        let got =
          Expr_parser.parse_exn
            "Reference >d Authors >d Name >d sigma[\"Chang\"](Last_Name)"
        in
        let want =
          Expr.(
            name "Reference"
            >.. (name "Authors" >.. (name "Name" >.. exactly "Chang" (name "Last_Name"))))
        in
        Alcotest.check expr "ast" want got);
    Alcotest.test_case "parses the §3.1 union example" `Quick (fun () ->
        let got =
          Expr_parser.parse_exn
            "(Reference > Authors > sigma[\"Chang\"](Last_Name)) | (Reference > Editors > sigma[\"Corliss\"](Last_Name))"
        in
        match got with
        | Expr.Setop (Expr.Union, _, _) -> ()
        | _ -> Alcotest.fail "expected a union");
    Alcotest.test_case "chain is right-associative" `Quick (fun () ->
        let got = Expr_parser.parse_exn "A > B > C" in
        Alcotest.check expr "grouping"
          Expr.(name "A" >. (name "B" >. name "C"))
          got);
    Alcotest.test_case "set operators are left-associative" `Quick (fun () ->
        let got = Expr_parser.parse_exn "A | B - C" in
        Alcotest.check expr "grouping"
          (Expr.Setop
             (Expr.Diff, Expr.Setop (Expr.Union, Expr.name "A", Expr.name "B"),
              Expr.name "C"))
          got);
    Alcotest.test_case ">d vs > followed by a name" `Quick (fun () ->
        Alcotest.check expr "A >d B"
          Expr.(name "A" >.. name "B")
          (Expr_parser.parse_exn "A >d B");
        Alcotest.check expr "A > delta"
          Expr.(name "A" >. name "delta")
          (Expr_parser.parse_exn "A > delta"));
    Alcotest.test_case "strict operators parse" `Quick (fun () ->
        Alcotest.check expr "A >! B"
          (Expr.Chain_strict (Expr.name "A", Expr.Including, Expr.name "B"))
          (Expr_parser.parse_exn "A >! B");
        Alcotest.check expr "A >d! B"
          (Expr.Chain_strict
             (Expr.name "A", Expr.Directly_including, Expr.name "B"))
          (Expr_parser.parse_exn "A >d! B");
        Alcotest.check expr "A <d! B"
          (Expr.Chain_strict
             (Expr.name "A", Expr.Directly_included, Expr.name "B"))
          (Expr_parser.parse_exn "A <d! B"));
    Alcotest.test_case "prefix selection parses" `Quick (fun () ->
        Alcotest.check expr "prefix"
          (Expr.Select (Expr.Prefix_word "Ref", Expr.name "Key"))
          (Expr_parser.parse_exn {|prefix["Ref"](Key)|}));
    Alcotest.test_case "reports errors with positions" `Quick (fun () ->
        (match Expr_parser.parse "A >" with
        | Error e -> Alcotest.(check bool) "position at end" true (e.position >= 3)
        | Ok _ -> Alcotest.fail "should not parse");
        match Expr_parser.parse "A @ B" with
        | Error e -> Alcotest.(check int) "position of @" 2 e.position
        | Ok _ -> Alcotest.fail "should not parse");
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pp/parse round-trip" ~count:500
         QCheck.(make Gen.(int_bound 10000))
         (fun seed ->
           let prng = Stdx.Prng.create seed in
           let e = random_expr prng 4 in
           match Expr_parser.parse (Expr.to_string e) with
           | Ok e' -> Expr.equal e e'
           | Error _ -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Cost model sanity *)

let cost_tests =
  [
    Alcotest.test_case "direct ops cost more than simple ones" `Quick
      (fun () ->
        let direct = Expr.(name "A" >.. name "B") in
        let simple = Expr.(name "A" >. name "B") in
        Alcotest.(check bool) "ordering" true
          (Cost.compare_weighted (Cost.estimate simple) (Cost.estimate direct)
          < 0));
    Alcotest.test_case "longer chains cost more" `Quick (fun () ->
        let long_e = Expr.(name "A" >. (name "B" >. name "C")) in
        let short_e = Expr.(name "A" >. name "C") in
        Alcotest.(check bool) "ordering" true
          (Cost.compare_weighted (Cost.estimate short_e) (Cost.estimate long_e)
          < 0));
    Alcotest.test_case "of_instance uses real cardinalities" `Quick (fun () ->
        let inst =
          Pat.Instance.create
            (Pat.Text.of_string "a b c d e f")
            [
              ("Big", Pat.Region_set.of_pairs [ (0, 1); (2, 3); (4, 5); (6, 7) ]);
              ("Small", Pat.Region_set.of_pairs [ (0, 11) ]);
            ]
        in
        let on_big = Cost.of_instance inst Expr.(name "Big" >. name "Big") in
        let on_small = Cost.of_instance inst Expr.(name "Small" >. name "Small") in
        Alcotest.(check bool) "bigger operands cost more" true
          (Cost.compare_weighted on_small on_big < 0));
    Alcotest.test_case "paper e1 costs more than e2" `Quick (fun () ->
        let e1 =
          Expr_parser.parse_exn
            "Reference >d Authors >d Name >d sigma[\"Chang\"](Last_Name)"
        in
        let e2 =
          Expr_parser.parse_exn
            "Reference > Authors > sigma[\"Chang\"](Last_Name)"
        in
        Alcotest.(check bool) "optimized is cheaper" true
          (Cost.compare_weighted (Cost.estimate e2) (Cost.estimate e1) < 0));
  ]

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE: the annotated evaluator's per-node self costs must
   sum to exactly the work the evaluation charged to the global
   counters, and sharing must show up as cached zero-cost nodes. *)

let annot_tests =
  [
    Alcotest.test_case "annotated self costs sum to the stats delta" `Quick
      (fun () ->
        for seed = 1 to 50 do
          let rig, inst, prng = Gen_instance.generate seed in
          let names = Array.of_list (Rig.names rig) in
          let e = random_general prng names 3 in
          let ops0 = Stdx.Stats.(value index_ops)
          and cmps0 = Stdx.Stats.(value region_comparisons)
          and lk0 = Stdx.Stats.(value word_lookups) in
          let r, a = Eval.eval_annotated inst e in
          let d_ops = Stdx.Stats.(value index_ops) - ops0
          and d_cmps = Stdx.Stats.(value region_comparisons) - cmps0
          and d_lk = Stdx.Stats.(value word_lookups) - lk0 in
          if Annot.total_ops a <> d_ops then
            Alcotest.failf "seed %d: tree ops %d <> delta %d on %s" seed
              (Annot.total_ops a) d_ops (Expr.to_string e);
          if Annot.total_cmps a <> d_cmps then
            Alcotest.failf "seed %d: tree cmps %d <> delta %d on %s" seed
              (Annot.total_cmps a) d_cmps (Expr.to_string e);
          if Annot.total_lookups a <> d_lk then
            Alcotest.failf "seed %d: tree lookups %d <> delta %d on %s" seed
              (Annot.total_lookups a) d_lk (Expr.to_string e);
          if a.Annot.out_card <> Pat.Region_set.cardinal r then
            Alcotest.failf "seed %d: out_card mismatch" seed;
          if not (Pat.Region_set.equal r (Eval.eval_plain inst e)) then
            Alcotest.failf "seed %d: annotated result differs" seed
        done);
    Alcotest.test_case "shared annotation marks repeats cached, still sums"
      `Quick
      (fun () ->
        let _, inst, _ = Gen_instance.generate 11 in
        let sub =
          match Pat.Instance.names inst with
          | a :: b :: _ -> Expr.(name a >. name b)
          | _ -> Alcotest.fail "need two names"
        in
        let e =
          Expr.Setop (Expr.Union, sub, Expr.Setop (Expr.Inter, sub, sub))
        in
        let ops0 = Stdx.Stats.(value index_ops) in
        let r, a = Eval.eval_shared_annotated inst e in
        let d_ops = Stdx.Stats.(value index_ops) - ops0 in
        Alcotest.(check int) "tree ops = stats delta" d_ops (Annot.total_ops a);
        let rec cached_count (n : Annot.t) =
          (if n.Annot.cached then 1 else 0)
          + List.fold_left (fun acc c -> acc + cached_count c) 0 n.Annot.children
        in
        Alcotest.(check bool) "has cached nodes" true (cached_count a >= 2);
        let cached_free (n : Annot.t) =
          (not n.Annot.cached)
          || (n.Annot.self_ops = 0 && n.Annot.children = [])
        in
        let rec all_ok n = cached_free n && List.for_all all_ok n.Annot.children in
        Alcotest.(check bool) "cached nodes carry no self cost" true (all_ok a);
        Alcotest.(check bool) "same result as eval" true
          (Pat.Region_set.equal r (Eval.eval_plain inst e)));
    Alcotest.test_case "node labels render the operator alone" `Quick
      (fun () ->
        Alcotest.(check string) "chain" ">d"
          (Expr.node_label Expr.(name "A" >.. name "B"));
        Alcotest.(check string)
          "select" {|sigma["w"]|}
          (Expr.node_label (Expr.exactly "w" (Expr.name "A")));
        Alcotest.(check string) "name" "A" (Expr.node_label (Expr.name "A")));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"eval_shared: same regions, strictly fewer ops on shared chains"
         ~count:100
         QCheck.(make Gen.(int_bound 10000))
         (fun seed ->
           let rig, inst, prng = Gen_instance.generate (1 + (seed mod 997)) in
           let names = Array.of_list (Rig.names rig) in
           let a = Stdx.Prng.choose prng names
           and b = Stdx.Prng.choose prng names in
           let op =
             Stdx.Prng.choose prng
               [|
                 Expr.Including; Expr.Directly_including; Expr.Included;
                 Expr.Directly_included;
               |]
           in
           (* a duplicated two-element chain: the canonical §5.2 shape *)
           let sub = Expr.Chain (Expr.Name a, op, Expr.Name b) in
           let setop =
             Stdx.Prng.choose prng [| Expr.Union; Expr.Inter; Expr.Diff |]
           in
           let e = Expr.Setop (setop, sub, Expr.Setop (Expr.Inter, sub, sub)) in
           let count f =
             let before = Stdx.Stats.(value index_ops) in
             let r = f inst e in
             (r, Stdx.Stats.(value index_ops) - before)
           in
           let plain_r, plain_ops = count Eval.eval in
           let shared_r, shared_ops = count Eval.eval_shared in
           Pat.Region_set.equal plain_r shared_r && shared_ops < plain_ops));
  ]

(* The tentpole property of the serve PR: the pull-based evaluator is
   byte-identical to the materialized one on random RIG-conforming
   instances, for every operator (including the prefix selection, which
   [random_general] does not emit — wrapped in here). *)
let lazy_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:400
         ~name:"lazy streams == materialized sets (random instances)"
         QCheck.(make Gen.(int_bound 100000))
         (fun seed ->
           let rig, inst, prng = Gen_instance.generate seed in
           let names = Array.of_list (Rig.names rig) in
           let e = random_general prng names 3 in
           let e =
             if Stdx.Prng.int prng 100 < 20 then
               Expr.Select
                 ( Expr.Prefix_word (Stdx.Prng.choose prng [| "a"; "b"; "c" |]),
                   e )
             else e
           in
           let materialized = Eval.eval_plain inst e in
           let streamed = Lazy_eval.to_set (Lazy_eval.eval inst e) in
           if not (Pat.Region_set.equal streamed materialized) then
             QCheck.Test.fail_reportf "seed %d: lazy mismatch on %s" seed
               (Expr.to_string e);
           true));
    Alcotest.test_case "pulled regions arrive in strict GC-list order" `Quick
      (fun () ->
        for seed = 1 to 60 do
          let rig, inst, prng = Gen_instance.generate seed in
          let names = Array.of_list (Rig.names rig) in
          let e = random_general prng names 3 in
          let prev = ref None in
          Seq.iter
            (fun r ->
              (match !prev with
              | Some p when Pat.Region.compare p r >= 0 ->
                  Alcotest.failf "seed %d: out of order on %s" seed
                    (Expr.to_string e)
              | _ -> ());
              prev := Some r)
            (Lazy_eval.eval inst e)
        done);
    Alcotest.test_case "streams are lazy: first pull before full scan" `Quick
      (fun () ->
        (* a union of two names must yield its first region without
           having pulled either operand to the end *)
        let _, inst, _ = Gen_instance.generate 3 in
        match Pat.Instance.names inst with
        | a :: b :: _ ->
            let s =
              Lazy_eval.eval inst
                (Expr.Setop (Expr.Union, Expr.Name a, Expr.Name b))
            in
            (match s () with
            | Seq.Nil ->
                (* an empty union is fine too; nothing to assert *)
                ()
            | Seq.Cons (first, _) ->
                let full =
                  Eval.eval_plain inst
                    (Expr.Setop (Expr.Union, Expr.Name a, Expr.Name b))
                in
                Alcotest.(check bool)
                  "first pulled equals least element" true
                  (match Pat.Region_set.choose full with
                  | Some least -> Pat.Region.equal least first
                  | None -> false))
        | _ -> Alcotest.fail "need two names");
    Alcotest.test_case "unknown region name raises at eval time" `Quick
      (fun () ->
        let _, inst, _ = Gen_instance.generate 5 in
        match Lazy_eval.eval inst (Expr.Name "NoSuchRegion") () with
        | exception Eval.Unknown_region n ->
            Alcotest.(check string) "name" "NoSuchRegion" n
        | _ -> Alcotest.fail "expected Unknown_region");
  ]

let suites =
  [
    ("ralg.rig", rig_tests);
    ("ralg.optimizer", optimizer_tests);
    ("ralg.trivial", trivial_tests);
    ("ralg.soundness", soundness_tests);
    ("ralg.lazy", lazy_tests);
    ("ralg.annot", annot_tests);
    ("ralg.parser", parser_tests);
    ("ralg.cost", cost_tests);
  ]
